"""Figure 6: top-down microarchitecture analysis of the CPU kernels.

Paper shape: GSSW/GBV/GWFA core-bound (GSSW also memory-bound); GBV has
high bad-speculation; GBWT is front-end/bad-spec exposed but NOT memory
bound; PGSGD is memory+core bound; TC retires the most.
"""

from _common import CHAR_STUDIES, emit, engine_reports

from repro.analysis.report import render_stacked_fractions, render_table
from repro.kernels import CPU_KERNELS

COMPONENTS = ("retiring", "frontend_bound", "bad_speculation", "core_bound",
              "memory_bound")


def run_experiment():
    # The full characterization study set: one traced run per kernel
    # serves this figure AND figs 7/8 + Table 6 from the result cache.
    return engine_reports(CPU_KERNELS, CHAR_STUDIES)


def test_fig6(benchmark):
    reports = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    fractions = {name: report.topdown for name, report in reports.items()}
    rows = [
        [name, *(f"{fractions[name][c]:.2f}" for c in COMPONENTS)]
        for name in CPU_KERNELS
    ]
    text = render_table(
        ["kernel", *COMPONENTS], rows, title="Figure 6: top-down slot fractions"
    ) + "\n\n" + render_stacked_fractions(fractions, COMPONENTS)
    emit("fig6_topdown", text)

    topdown = fractions
    # TC retires the most of any kernel.
    assert topdown["tc"]["retiring"] == max(t["retiring"] for t in topdown.values())
    # PGSGD: memory + core dominate.
    assert topdown["pgsgd"]["memory_bound"] + topdown["pgsgd"]["core_bound"] > 0.6
    # GBWT is NOT memory bound (the paper's surprise).
    assert topdown["gbwt"]["memory_bound"] < 0.15
    # GBV shows heavy bad speculation; GSSW shows core + some memory.
    assert topdown["gbv"]["bad_speculation"] > 0.15
    assert topdown["gssw"]["core_bound"] > 0.25
    assert topdown["gssw"]["memory_bound"] > 0.05
