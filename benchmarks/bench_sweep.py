"""Sweep driver end-to-end: grid wall time and warm cache-hit rate.

The sweep layer's load-bearing claim is that running the scenario
matrix is an *incremental* operation: a cold sweep executes every grid
point once, and a repeated sweep at identical parameters executes
nothing — every point is served from the result store (whose job keys
include the dataset spec digest, so this also proves manifest-installed
cells cache correctly).  This bench runs the committed ``suite``
manifest (5 cells, one paper-fidelity) times three kernels through the
real executor twice against a fresh store and checks:

* the cold pass executes all points and the warm pass executes none
  (warm cache-hit rate == 1.0);
* the paper cell's shape gates hold on real reports (topdown for CPU
  kernels, GPU counters for TSU);
* no grid point errors.

Each run appends an entry to ``BENCH_sweep.json`` at the repo root (the
committed trajectory) and fails only on a catastrophic cold-throughput
regression against the best prior entry, so CI noise cannot flake the
build.

Runs under plain pytest or standalone:
``PYTHONPATH=src python benchmarks/bench_sweep.py``.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from _common import RESULTS_DIR

from repro import __version__
from repro.harness.store import ResultStore
from repro.sweep import compile_sweep, run_sweep

#: Committed trajectory at the repo root (benchmarks/ is one level down).
TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

#: The grid under test: the committed 5-cell suite manifest times three
#: kernels (two CPU shapes plus the GPU kernel) at a small scale — big
#: enough to exercise manifest install, gate studies, and the cache
#: path; small enough to stay interactive.
MANIFEST = "suite"
KERNELS = ("tsu", "gbwt", "tc")
SCALE = 0.1

#: Catastrophe-only floor: fail if cold grid throughput drops below
#: this fraction of the best committed entry.  Deliberately loose — the
#: trajectory file is for trend-watching; the assertion only catches
#: order-of-magnitude regressions (a cache-key bug forcing dataset
#: rebuilds per point, a gate study accidentally running per cell, ...).
MIN_THROUGHPUT_RATIO = 0.05


def run_experiment() -> dict:
    plan = compile_sweep(MANIFEST, kernels=KERNELS, scales=(SCALE,))
    with tempfile.TemporaryDirectory(prefix="sweep-bench-") as tmp:
        store = ResultStore(Path(tmp))

        cold_start = time.monotonic()
        cold = run_sweep(plan, reuse=True, store=store)
        cold_wall = time.monotonic() - cold_start

        warm_start = time.monotonic()
        warm = run_sweep(plan, reuse=True, store=store)
        warm_wall = time.monotonic() - warm_start

    cold_origins = cold.origin_counts()
    warm_origins = warm.origin_counts()
    paper_points = [r for r in cold.results if r.fidelity == "paper"]
    return {
        "version": __version__,
        "manifest": MANIFEST,
        "kernels": list(KERNELS),
        "scale": SCALE,
        "grid_points": len(plan),
        "paper_points": len(paper_points),
        "cold_executed": cold_origins.get("executed", 0),
        "cold_wall_seconds": round(cold_wall, 3),
        "cold_points_per_sec": round(len(plan) / cold_wall, 2),
        "warm_cached": warm_origins.get("cached", 0),
        "warm_cache_hit_rate": round(
            warm_origins.get("cached", 0) / len(plan), 4),
        "warm_wall_seconds": round(warm_wall, 3),
        "warm_speedup": round(cold_wall / warm_wall, 1) if warm_wall else 0.0,
        "errors": len(cold.errors) + len(warm.errors),
        "gate_failures": len(cold.gate_failures) + len(warm.gate_failures),
    }


def _load_trajectory() -> list[dict]:
    if not TRAJECTORY.exists():
        return []
    return json.loads(TRAJECTORY.read_text())["entries"]


def _append_compare(entry: dict) -> None:
    """Append *entry* to the committed trajectory; fail only if cold
    grid throughput collapsed versus the best prior entry."""
    entries = _load_trajectory()
    best = max((e["cold_points_per_sec"] for e in entries), default=None)
    entries.append(entry)
    TRAJECTORY.write_text(json.dumps(
        {"bench": "sweep", "entries": entries}, indent=2) + "\n")
    if best is not None:
        floor = MIN_THROUGHPUT_RATIO * best
        assert entry["cold_points_per_sec"] >= floor, (
            f"sweep throughput collapsed: {entry['cold_points_per_sec']:.2f} "
            f"points/s vs best committed {best:.2f} (floor {floor:.2f})"
        )


def _emit(results: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sweep.json").write_text(
        json.dumps(results, indent=2) + "\n")
    print()
    for key in ("grid_points", "paper_points", "cold_executed",
                "cold_wall_seconds", "cold_points_per_sec", "warm_cached",
                "warm_cache_hit_rate", "warm_speedup", "errors",
                "gate_failures"):
        print(f"{key:<24}{results[key]}")


def test_sweep():
    results = run_experiment()
    _emit(results)
    assert results["errors"] == 0
    assert results["gate_failures"] == 0, (
        "paper-shape gates failed on a fidelity=paper cell"
    )
    # The cold pass executes the whole grid ...
    assert results["cold_executed"] == results["grid_points"]
    # ... and the warm pass executes none of it: every point is a
    # cache hit (dataset-digest job keys resolve manifest cells).
    assert results["warm_cache_hit_rate"] == 1.0, (
        f"warm sweep re-executed grid points: hit rate "
        f"{results['warm_cache_hit_rate']:.4f}"
    )
    assert results["paper_points"] >= 1
    _append_compare(results)
    print(f"trajectory: {TRAJECTORY} ({len(_load_trajectory())} entries)")


if __name__ == "__main__":
    test_sweep()
