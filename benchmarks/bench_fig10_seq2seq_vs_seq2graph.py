"""Figure 10 / case study 6.1: SSW (Seq2Seq) vs GSSW (Seq2Graph).

Paper: GSSW shows ~3x more memory stalls than SSW because it keeps every
node's full DP matrix and swizzle-writes packed SIMD buffers into it,
while SSW stores only the previous column.  We also run the ablation the
paper proposes as a software fix: GSSW without the full-matrix stores.
"""

from _common import BENCH_SCALE, BENCH_SEED, CHAR_STUDIES, emit, engine_reports

from repro.align.gssw import GSSW
from repro.align.scoring import VG_DEFAULT
from repro.analysis.report import render_table
from repro.kernels import create_kernel
from repro.uarch.machine import TraceMachine
from repro.uarch.topdown import analyze


def run_experiment():
    # gssw is a cache hit from figs 6-8; only ssw characterizes fresh.
    reports = engine_reports(("ssw", "gssw"), CHAR_STUDIES)
    # Ablation: GSSW with the full-matrix swizzle writes disabled (the
    # optimization Section 6.1 suggests).
    kernel = create_kernel("gssw", scale=BENCH_SCALE, seed=BENCH_SEED)
    kernel.ensure_prepared()
    machine = TraceMachine()
    for query, subgraph in kernel.items:
        GSSW(query, VG_DEFAULT, probe=machine, store_full_matrix=False).align(subgraph)
    ablation = analyze(machine.summary())
    return reports, ablation


def test_fig10(benchmark):
    reports, ablation = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for name in ("ssw", "gssw"):
        topdown = reports[name].topdown
        rows.append([
            name, f"{reports[name].ipc:.2f}",
            f"{topdown['retiring']:.2f}", f"{topdown['core_bound']:.2f}",
            f"{topdown['memory_bound']:.3f}",
            f"{reports[name].mpki['l1']:.2f}",
        ])
    rows.append([
        "gssw (no swizzle)", f"{ablation.ipc:.2f}",
        f"{ablation.retiring:.2f}", f"{ablation.core_bound:.2f}",
        f"{ablation.memory_bound:.3f}", "-",
    ])
    emit(
        "fig10_seq2seq_vs_seq2graph",
        render_table(
            ["kernel", "IPC", "retiring", "core", "memory", "l1 mpki"],
            rows,
            title="Figure 10: SSW vs GSSW (paper: GSSW ~3x more memory stalls)",
        ),
    )
    ssw_memory = reports["ssw"].topdown["memory_bound"]
    gssw_memory = reports["gssw"].topdown["memory_bound"]
    assert gssw_memory > 3 * max(ssw_memory, 1e-6)
    # The proposed optimization recovers most of the gap.
    assert ablation.memory_bound < 0.5 * gssw_memory
