"""Ablation: PGSGD's memory boundness comes from footprint, not graphs.

Section 5.2: PGSGD is memory bound "because of its random sampling
method, not because of the graph structure" — uniform random access to a
layout array that fits in no cache.  We ablate the footprint: the same
updates against a cache-resident array (virtual_anchor_scale=1) vs the
full-pangenome model (scale=512).  The access *pattern* is identical;
only the working-set size changes.
"""

import dataclasses

from _common import BENCH_SEED, bench_data, emit

from repro.analysis.report import render_table
from repro.layout.pgsgd import PGSGDLayout, PGSGDParams
from repro.uarch.machine import TraceMachine
from repro.uarch.topdown import analyze


def characterize(graph, params):
    machine = TraceMachine()
    PGSGDLayout(graph, params=params, probe=machine).run()
    summary = machine.summary()
    return analyze(summary), summary.mpki()


def run_experiment():
    data = bench_data()
    base = PGSGDParams(iterations=6, updates_per_iteration=4000,
                       seed=BENCH_SEED)
    small = characterize(data.graph, dataclasses.replace(base, virtual_anchor_scale=1))
    full = characterize(data.graph, dataclasses.replace(base, virtual_anchor_scale=512))
    return small, full


def test_ablation_pgsgd_footprint(benchmark):
    (small, small_mpki), (full, full_mpki) = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    rows = [
        ["cache-resident array", f"{small.ipc:.2f}",
         f"{small.memory_bound:.2f}", f"{small_mpki['l3']:.1f}"],
        ["full-pangenome array", f"{full.ipc:.2f}",
         f"{full.memory_bound:.2f}", f"{full_mpki['l3']:.1f}"],
    ]
    emit(
        "ablation_pgsgd_footprint",
        render_table(
            ["layout array", "IPC", "memory bound", "l3 mpki"], rows,
            title="Ablation: PGSGD working-set size (same accesses, bigger array)",
        ),
    )
    assert full_mpki["l3"] > 10 * max(small_mpki["l3"], 0.1)
    assert full.memory_bound > 2 * max(small.memory_bound, 0.05)
    assert full.ipc < small.ipc
