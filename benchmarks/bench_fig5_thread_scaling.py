"""Figure 5: end-to-end thread scaling (modelled; see DESIGN.md).

Paper shape: mapping tools scale near-linearly to 28 cores then bend at
the hyperthreading knee; Minigraph-cr does not scale; seqwish saturates
around 4 threads; odgi layout is sublinear (serial path index + memory).
"""

from _common import emit

from repro.analysis.report import render_table
from repro.analysis.threads import FIGURE5_THREADS, figure5_table


def run_experiment():
    return figure5_table()


def test_fig5(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [name, *(f"{curve[t]:.2f}x" for t in FIGURE5_THREADS)]
        for name, curve in table.items()
    ]
    emit(
        "fig5_thread_scaling",
        render_table(
            ["workload", *(f"{t} thr" for t in FIGURE5_THREADS)],
            rows,
            title="Figure 5: speedup relative to 4 threads (Machine A model)",
        ),
    )
    assert table["vg_map"][28] > 5.0
    assert table["vg_map"][56] / table["vg_map"][28] < 1.5  # HT knee
    assert table["minigraph-cr"][56] == 1.0
    assert table["seqwish"][56] < 1.3
    assert table["odgi-layout"][28] < table["graphaligner"][28]
