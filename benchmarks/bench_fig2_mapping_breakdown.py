"""Figure 2: Seq2Graph per-stage timing breakdown.

Paper shape: GraphAligner ~90% alignment / ~5% clustering; Minigraph is
chaining-heavy (GWFA inside chaining); Giraffe resolves most reads in
seeding+clustering+filtering; vg map is alignment-heavy (GSSW).
"""

from _common import bench_data, emit

from repro.analysis.report import render_stacked_fractions
from repro.tools import Giraffe, GraphAligner, Minigraph, VgMap
from repro.tools.base import STAGES


def run_experiment():
    data = bench_data()
    short = list(data.short_reads)[:20]
    long = list(data.long_reads)[:5]
    runs = {
        "vg_map": VgMap(data.graph).map_reads(short),
        "giraffe": Giraffe(data.graph).map_reads(short),
        "graphaligner": GraphAligner(data.graph).map_reads(long),
        "minigraph-lr": Minigraph(data.graph).map_reads(long),
    }
    return {name: run.timer.fractions() for name, run in runs.items()}, runs


def test_fig2(benchmark):
    fractions, runs = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        "fig2_mapping_breakdown",
        render_stacked_fractions(
            fractions, STAGES, title="Figure 2: mapping stage fractions"
        ),
    )
    # GraphAligner: alignment dominates, clustering is tiny.
    assert fractions["graphaligner"]["align"] > 0.7
    assert fractions["graphaligner"].get("cluster", 0.0) < 0.15
    # Minigraph: chaining (cluster stage) outweighs base-level alignment.
    assert fractions["minigraph-lr"]["cluster"] > fractions["minigraph-lr"].get("align", 0.0)
    # Giraffe resolves most reads without DP.
    resolved = runs["giraffe"].counters.get("resolved_by_extension", 0)
    assert resolved >= 0.6 * 20
