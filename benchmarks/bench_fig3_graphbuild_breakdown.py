"""Figure 3: graph-building pipeline stage breakdown (MC vs PGGB).

Paper shape: four stages (alignment, induction, polish, visualization);
PGGB's alignment is all-to-all (quadratic) while MC is progressive;
smoothxg's polish stage is POA-dominated.
"""

from _common import BENCH_SCALE, BENCH_SCENARIO, BENCH_SEED, emit

from repro.analysis.report import render_stacked_fractions, render_table
from repro.layout.pgsgd import PGSGDParams
from repro.tools.pipelines import (
    BUILD_STAGES,
    pipeline_records,
    run_minigraph_cactus,
    run_pggb,
)


def run_experiment():
    # The pipelines build from the same shared corpus the kernels
    # prepare on (capped: both alignment stages are super-linear).
    records = pipeline_records(BENCH_SCENARIO, scale=BENCH_SCALE,
                               seed=BENCH_SEED, limit=5)
    layout = PGSGDParams(iterations=5, updates_per_iteration=2000)
    mc = run_minigraph_cactus(records, layout_params=layout)
    pggb = run_pggb(records, layout_params=layout)
    return mc, pggb


def test_fig3(benchmark):
    mc, pggb = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    fractions = {
        "minigraph-cactus": mc.timer.fractions(),
        "pggb": pggb.timer.fractions(),
    }
    rows = [
        [name, *(f"{run.timer.seconds.get(stage, 0.0):.2f}" for stage in BUILD_STAGES)]
        for name, run in (("minigraph-cactus", mc), ("pggb", pggb))
    ]
    text = render_table(
        ["pipeline", *BUILD_STAGES], rows,
        title="Figure 3: graph-building stage seconds",
    ) + "\n\n" + render_stacked_fractions(
        fractions, BUILD_STAGES, title="stage fractions"
    )
    emit("fig3_graphbuild_breakdown", text)
    # Both pipelines produced usable graphs; PGGB spells all inputs.
    assert mc.graph is not None and pggb.graph is not None
    # Alignment is a major cost in both pipelines.
    assert fractions["pggb"]["alignment"] > 0.15
    assert fractions["minigraph-cactus"]["alignment"] > 0.15
