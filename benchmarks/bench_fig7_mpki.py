"""Figure 7: cache misses per kilo-instruction (exclusive).

Paper shape: the DP kernels miss mostly in L1 and almost never in L3
(they align to cache-resident subgraphs); PGSGD misses at every level
(whole-graph random access).
"""

from _common import CHAR_STUDIES, emit, engine_reports

from repro.analysis.report import render_table
from repro.kernels import CPU_KERNELS


def run_experiment():
    return engine_reports(CPU_KERNELS, CHAR_STUDIES)


def test_fig7(benchmark):
    reports = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [name, *(f"{reports[name].mpki[level]:.2f}" for level in ("l1", "l2", "l3"))]
        for name in CPU_KERNELS
    ]
    emit(
        "fig7_mpki",
        render_table(["kernel", "l1 mpki", "l2 mpki", "l3 mpki"], rows,
                     title="Figure 7: exclusive misses per kilo-instruction"),
    )
    mpki = {name: reports[name].mpki for name in CPU_KERNELS}
    # PGSGD misses at every cache level, l3/DRAM worst.
    assert mpki["pgsgd"]["l3"] > 5.0
    assert mpki["pgsgd"]["l1"] > 1.0
    # DP kernels: l3 misses are rare relative to PGSGD's.
    for kernel in ("gssw", "gbv", "gwfa-lr"):
        assert mpki[kernel]["l3"] < 0.2 * mpki["pgsgd"]["l3"]
