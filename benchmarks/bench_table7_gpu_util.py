"""Table 7: GPU microarchitecture utilization (TSU, PGSGD-GPU).

Paper: TSU occupancy 32.97% / warp util 69.72% / mem BW 39.89%;
PGSGD 53.85% / 88.31% / 41.91%.  Plus the Section 5.3 block-size study:
1024 -> 256 threads raises theoretical occupancy 66.7% -> 83.3%.
"""

from types import SimpleNamespace

from _common import BENCH_SEED, bench_data, emit, engine_reports

from repro.analysis.report import render_table
from repro.layout.pgsgd import PGSGDParams
from repro.layout.pgsgd_gpu import pgsgd_layout_gpu

PAPER = {
    "tsu": (0.3297, 0.6972, 0.3989),
    "pgsgd": (0.5385, 0.8831, 0.4191),
}


def run_experiment():
    data = bench_data()
    # The TSU row is the kernel's own gpu study (cached by the engine);
    # the kernel models the paper's saturated batch via its replicate.
    tsu = SimpleNamespace(**engine_reports(("tsu",), ("gpu",))["tsu"].gpu)
    params = PGSGDParams(iterations=8, updates_per_iteration=3000,
                         seed=BENCH_SEED)
    pgsgd_1024 = pgsgd_layout_gpu(data.graph, params, block_size=1024)
    pgsgd_256 = pgsgd_layout_gpu(data.graph, params, block_size=256)
    return tsu, pgsgd_1024.report, pgsgd_256.report


def test_table7(benchmark):
    tsu, pgsgd, pgsgd_256 = benchmark.pedantic(run_experiment, rounds=1,
                                               iterations=1)
    rows = []
    for name, report in (("tsu", tsu), ("pgsgd", pgsgd)):
        paper_occ, paper_warp, paper_bw = PAPER[name]
        rows.append([
            name,
            f"{report.achieved_occupancy:.1%}", f"{paper_occ:.1%}",
            f"{report.warp_utilization:.1%}", f"{paper_warp:.1%}",
            f"{report.memory_bw_utilization:.1%}", f"{paper_bw:.1%}",
        ])
    text = render_table(
        ["kernel", "occupancy", "paper", "warp util", "paper",
         "mem BW util", "paper"],
        rows,
        title="Table 7: GPU utilization",
    ) + "\n\n" + render_table(
        ["block size", "theoretical occ", "achieved occ"],
        [
            ["1024", f"{pgsgd.theoretical_occupancy:.1%}",
             f"{pgsgd.achieved_occupancy:.1%}"],
            ["256", f"{pgsgd_256.theoretical_occupancy:.1%}",
             f"{pgsgd_256.achieved_occupancy:.1%}"],
        ],
        title="Section 5.3 block-size study (paper: 66.7% -> 83.3%)",
    )
    emit("table7_gpu_util", text)
    assert abs(pgsgd.theoretical_occupancy - 2 / 3) < 0.01
    assert abs(pgsgd_256.theoretical_occupancy - 5 / 6) < 0.01
    assert abs(pgsgd.achieved_occupancy - 0.5385) < 0.08
    assert abs(pgsgd.warp_utilization - 0.8831) < 0.05
    assert abs(tsu.theoretical_occupancy - 1 / 3) < 0.01
    assert 0.2 < tsu.memory_bw_utilization < 0.6
