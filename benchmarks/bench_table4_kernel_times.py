"""Tables 2-4: dataset inventories and kernel execution times.

Paper Table 4 (Machine B, seconds): GWFA-cr 16657 >> TC 755 ~ GWFA-lr
720 > PGSGD 285 > GBV 192 > GSSW 35 > GBWT 23.  Absolute times are not
comparable (Python vs C++, downscaled data); the per-kernel work
ordering and the dataset inventory are the reproducible artifacts.
"""

from _common import bench_data, emit, engine_reports

from repro.analysis.report import render_table
from repro.kernels import SUITE_KERNELS, create_kernel

PAPER_TABLE4_SECONDS = {
    "gbv": 192, "gssw": 35, "gbwt": 23, "gwfa-cr": 16657,
    "gwfa-lr": 720, "pgsgd": 285, "tc": 755,
}


def run_experiment():
    return engine_reports(SUITE_KERNELS, ("timing",))


def test_tables_2_3_4(benchmark):
    reports = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    data = bench_data()
    inventory = render_table(
        ["item", "value"],
        [
            ["graph nodes", data.graph.node_count],
            ["graph edges", data.graph.edge_count],
            ["graph bases", data.graph.total_sequence_length],
            ["haplotype paths", data.graph.path_count],
            ["short reads", len(data.short_reads)],
            ["long reads", len(data.long_reads)],
            ["assemblies", len(data.assemblies)],
        ],
        title="Table 2 analog: suite corpus",
    )
    kernel_rows = []
    for name in SUITE_KERNELS:
        kernel = create_kernel(name)  # metadata only; never prepared
        report = reports[name]
        kernel_rows.append(
            [name, kernel.parent_tool, kernel.input_type,
             report.inputs_processed, f"{report.wall_seconds:.3f}",
             PAPER_TABLE4_SECONDS.get(name, "-")]
        )
    text = inventory + "\n\n" + render_table(
        ["kernel", "parent tool", "input type", "#inputs", "seconds",
         "paper seconds"],
        kernel_rows,
        title="Tables 3+4 analog: kernel datasets and execution times",
    )
    emit("table4_kernel_times", text)
    times = {name: reports[name].wall_seconds for name in SUITE_KERNELS}
    # Shape: the chromosome GWFA variant far outweighs the read variant.
    assert times["gwfa-cr"] > times["gwfa-lr"]
    # GBWT is the cheapest CPU kernel per unit, as in the paper.
    assert times["gbwt"] < times["gssw"]
