"""Shared helpers for the benchmark files.

Every bench prints the paper-style rows/series AND saves them under
``benchmarks/results/`` so ``pytest benchmarks/ --benchmark-only`` leaves
reviewable artifacts regardless of output capture.

Benches that execute registry kernels go through :func:`engine_reports`
— the harness engine with the shared result store — so a full
``pytest benchmarks/`` characterizes each kernel *once* and every later
figure at the same parameters is a cache hit (delete
``benchmarks/results/cache/`` to force fresh measurements).
"""

from __future__ import annotations

from pathlib import Path

from repro.data import default_store, scenario_spec
from repro.harness.runner import run_suite
from repro.serve.shards import ShardedResultStore

RESULTS_DIR = Path(__file__).parent / "results"

#: Dataset scale shared by the benches (keeps each bench under ~1 min).
BENCH_SCALE = 0.3
BENCH_SEED = 0
#: Named dataset scenario the benches run on.  The paper-shape
#: assertions are calibrated against ``default``; regenerate a figure on
#: another corpus by flipping this (or calling the helpers below with an
#: explicit scenario).
BENCH_SCENARIO = "default"

#: The shared characterization study set: figures 6/7/8 and Table 6 all
#: read different slices of the same traced execution, so requesting the
#: full set lets one cached run serve every figure.
CHAR_STUDIES = ("topdown", "cache", "instmix")

#: Result store shared by every bench (and the CLI's --reuse) — the
#: sharded, LRU-indexed store; old flat entries migrate on first use.
STORE = ShardedResultStore(RESULTS_DIR / "cache")


def bench_spec(scenario: str = BENCH_SCENARIO):
    """The benches' shared :class:`~repro.data.DatasetSpec`."""
    return scenario_spec(scenario, scale=BENCH_SCALE, seed=BENCH_SEED)


def bench_data(scenario: str = BENCH_SCENARIO):
    """The benches' shared corpus, via the dataset artifact store."""
    return default_store().corpus(bench_spec(scenario))


def engine_reports(kernels, studies, scenario: str = BENCH_SCENARIO):
    """Run *kernels* under *studies* through the cached harness engine."""
    return run_suite(
        tuple(kernels), studies=tuple(studies),
        scale=BENCH_SCALE, seed=BENCH_SEED,
        reuse=True, store=STORE, scenario=scenario,
    )


def emit(name: str, text: str) -> None:
    """Print a bench's report and persist it to benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
