"""Shared helpers for the benchmark files.

Every bench prints the paper-style rows/series AND saves them under
``benchmarks/results/`` so ``pytest benchmarks/ --benchmark-only`` leaves
reviewable artifacts regardless of output capture.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Dataset scale shared by the benches (keeps each bench under ~1 min).
BENCH_SCALE = 0.3
BENCH_SEED = 0


def emit(name: str, text: str) -> None:
    """Print a bench's report and persist it to benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
