"""Ablation: why the GBWT is NOT memory bound (Section 5.2's surprise).

The paper credits the GBWT's haplotype-aware record layout: consecutive
nodes of a haplotype occupy adjacent records, so a `find` query walks
forward through memory.  We ablate that choice by re-running the kernel
with records laid out by *node id* (the classic FM-index-style layout):
memory boundness should jump.
"""

from types import SimpleNamespace

from _common import BENCH_SCALE, BENCH_SEED, CHAR_STUDIES, emit, engine_reports

from repro.analysis.report import render_table
from repro.kernels import create_kernel
from repro.uarch.machine import TraceMachine
from repro.uarch.topdown import analyze


def characterize(kernel):
    machine = TraceMachine()
    kernel.run(probe=machine)
    summary = machine.summary()
    return analyze(summary), summary.mpki()


def run_experiment():
    # Baseline: the stock kernel's characterization, straight from the
    # engine's result cache (shared with figs 6-8).
    baseline = engine_reports(("gbwt",), CHAR_STUDIES)["gbwt"]
    haplotype_layout = SimpleNamespace(ipc=baseline.ipc, **baseline.topdown)
    haplotype_mpki = baseline.mpki

    # Ablation: records scattered one-per-page by node id (a per-node
    # heap allocation with no locality-aware ordering).
    kernel = create_kernel("gbwt", scale=BENCH_SCALE, seed=BENCH_SEED)
    # ensure_prepared records the spec digest, so run() below won't
    # re-prepare and silently undo the scattered layout.
    kernel.ensure_prepared()
    kernel.record_offset = {
        node_id: node_id * 347 for node_id in kernel.record_offset
    }
    scattered_layout, scattered_mpki = characterize(kernel)
    return (haplotype_layout, haplotype_mpki), (scattered_layout, scattered_mpki)


def test_ablation_gbwt_layout(benchmark):
    (good, good_mpki), (bad, bad_mpki) = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    rows = [
        ["haplotype-ordered (real GBWT)", f"{good.ipc:.2f}",
         f"{good.memory_bound:.3f}", f"{good_mpki['l1']:.2f}"],
        ["node-id scattered (ablation)", f"{bad.ipc:.2f}",
         f"{bad.memory_bound:.3f}", f"{bad_mpki['l1']:.2f}"],
    ]
    emit(
        "ablation_gbwt_layout",
        render_table(
            ["record layout", "IPC", "memory bound", "l1 mpki"], rows,
            title="Ablation: GBWT record layout (why GBWT is not memory bound)",
        ),
    )
    assert bad_mpki["l1"] + bad_mpki["l2"] + bad_mpki["l3"] > (
        good_mpki["l1"] + good_mpki["l2"] + good_mpki["l3"] + 1.0
    )
    assert bad.memory_bound > 1.3 * good.memory_bound
    assert bad.ipc < good.ipc
