"""Service load replay: p50/p99 latency, cache-hit rate, coalesce rate.

The serving layer's load-bearing claim is that a shared service absorbs
a skewed, duplicate-heavy request stream with a bounded number of real
executions: the result cache serves repeats of finished jobs, in-flight
coalescing serves repeats of running ones, and only the first request
per distinct job ever reaches the executor.  This bench replays a
seeded ~1200-request trace (rank-weighted popularity over a small
working set, plus injected duplicate bursts) through a fresh
:class:`BenchService` and checks the arithmetic end to end:

* ``executed`` == the working-set size — one execution per distinct job;
* ``cache_hits + coalesced`` == every duplicate request, i.e. the
  served-without-execution rate equals the trace's theoretical
  duplicate fraction;
* ``coalesced > 0`` — the bursts provably overlapped in-flight work.

The trace is replayed in chunks with a completion barrier between them,
so early chunks exercise coalescing (duplicates land while the first
occurrence is still running) and later chunks exercise the warm cache —
one cold trace measures both paths.

Each run appends an entry to ``BENCH_serve_load.json`` at the repo root
(the committed trajectory) and fails only on a catastrophic regression
against the best prior entry, so CI noise cannot flake the build.

Runs under plain pytest or standalone:
``PYTHONPATH=src python benchmarks/bench_serve_load.py``.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from _common import RESULTS_DIR

from repro import __version__
from repro.harness.executor import _prebuild_datasets
from repro.serve import (
    BenchService,
    ReplayResult,
    ShardedResultStore,
    TraceSpec,
    duplicate_fraction,
    generate_requests,
    replay,
    working_set,
)

#: Committed trajectory at the repo root (benchmarks/ is one level down).
TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_serve_load.json"

#: The seeded request distribution under test.  1200 requests over a
#: 12-job working set (4 kernels x 3 dataset seeds) keeps the replay
#: interactive while leaving a ~99% duplicate fraction — the regime a
#: shared service actually lives in.
TRACE = TraceSpec(requests=1200, seed=0)

#: Submission chunk size.  The barrier after each chunk lets earlier
#: executions finish, so later chunks measure warm cache hits while the
#: first chunk measures in-flight coalescing.
CHUNK = 150

WORKERS = 4

#: Catastrophe-only floor: fail if throughput drops below this fraction
#: of the best committed entry.  Deliberately loose — the trajectory
#: file is for trend-watching, the assertion only catches order-of-
#: magnitude regressions (an accidental sync-eviction in the submit
#: path, a lost coalesce making every duplicate re-execute, ...).
MIN_THROUGHPUT_RATIO = 0.05


def _serve_counter_totals(exported: dict) -> dict[str, int]:
    """Sum the exported ``serve.*`` counter series by base name
    (labels are baked into the exported series keys)."""
    totals: dict[str, int] = {}
    for series, value in exported.get("counters", {}).items():
        name = series.split("{", 1)[0]
        if name.startswith("serve."):
            totals[name] = totals.get(name, 0) + int(value)
    return dict(sorted(totals.items()))


def _merge(total: ReplayResult, part: ReplayResult) -> None:
    total.submitted += part.submitted
    total.completed += part.completed
    total.errors += part.errors
    total.rejected += part.rejected
    total.retries += part.retries
    total.latencies.extend(part.latencies)
    for origin, count in part.origins.items():
        total.origins[origin] = total.origins.get(origin, 0) + count
    total.wall_seconds += part.wall_seconds


def run_experiment() -> dict:
    trace = generate_requests(TRACE)
    unique = len(working_set(TRACE))
    dup_fraction = duplicate_fraction(trace)
    # Build the corpora once up front so dataset construction cost does
    # not pollute the first chunk's latency distribution.
    _prebuild_datasets(working_set(TRACE))

    result = ReplayResult()
    with tempfile.TemporaryDirectory(prefix="serve-load-") as tmp:
        store = ShardedResultStore(Path(tmp))
        with BenchService(workers=WORKERS, store=store) as service:
            for lo in range(0, len(trace), CHUNK):
                _merge(result, replay(service, trace[lo:lo + CHUNK]))
            exported = service.metrics.as_dict()

    served_free = result.cache_hits + result.coalesced
    return {
        "version": __version__,
        "requests": len(trace),
        "unique_jobs": unique,
        "workers": WORKERS,
        "chunk": CHUNK,
        "duplicate_fraction": round(dup_fraction, 4),
        "p50_ms": round(1000 * result.percentile(50), 3),
        "p99_ms": round(1000 * result.percentile(99), 3),
        "executed": result.executed,
        "cache_hits": result.cache_hits,
        "coalesced": result.coalesced,
        "cache_hit_rate": round(result.cache_hits / len(trace), 4),
        "coalesce_rate": round(result.coalesced / len(trace), 4),
        "served_without_execution_rate": round(served_free / len(trace), 4),
        "rejected": result.rejected,
        "errors": result.errors,
        "wall_seconds": round(result.wall_seconds, 3),
        "requests_per_sec": round(len(trace) / result.wall_seconds, 1),
        "serve_counters": _serve_counter_totals(exported),
    }


def _load_trajectory() -> list[dict]:
    if not TRAJECTORY.exists():
        return []
    return json.loads(TRAJECTORY.read_text())["entries"]


def _append_compare(entry: dict) -> None:
    """Append *entry* to the committed trajectory; fail only if
    throughput collapsed versus the best prior entry."""
    entries = _load_trajectory()
    best = max((e["requests_per_sec"] for e in entries), default=None)
    entries.append(entry)
    TRAJECTORY.write_text(json.dumps(
        {"bench": "serve_load", "entries": entries}, indent=2) + "\n")
    if best is not None:
        floor = MIN_THROUGHPUT_RATIO * best
        assert entry["requests_per_sec"] >= floor, (
            f"serve throughput collapsed: {entry['requests_per_sec']:.0f} "
            f"req/s vs best committed {best:.0f} (floor {floor:.0f})"
        )


def _emit(results: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_serve_load.json").write_text(
        json.dumps(results, indent=2) + "\n")
    print()
    for key in ("requests", "unique_jobs", "duplicate_fraction",
                "p50_ms", "p99_ms", "cache_hit_rate", "coalesce_rate",
                "served_without_execution_rate", "executed", "rejected",
                "errors", "wall_seconds", "requests_per_sec"):
        print(f"{key:<30}{results[key]}")


def test_serve_load():
    results = run_experiment()
    _emit(results)
    assert results["errors"] == 0
    assert results["completed" if "completed" in results else "requests"] \
        == TRACE.requests
    # One real execution per distinct job — the dedup layer's contract.
    assert results["executed"] == results["unique_jobs"], (
        f"{results['executed']} executions for "
        f"{results['unique_jobs']} distinct jobs"
    )
    # Every duplicate request was served without a new execution.
    assert results["served_without_execution_rate"] \
        >= results["duplicate_fraction"], (
        f"served-without-execution rate "
        f"{results['served_without_execution_rate']:.4f} below the "
        f"trace's duplicate fraction {results['duplicate_fraction']:.4f}"
    )
    # The bursts provably overlapped in-flight work.
    assert results["coalesced"] > 0, "no request ever coalesced"
    _append_compare(results)
    print(f"trajectory: {TRAJECTORY} ({len(_load_trajectory())} entries)")


if __name__ == "__main__":
    test_serve_load()
