"""Figure 8: dynamic instruction mix (hierarchical bins).

Paper shape: GSSW is vector-heavy (hand-vectorized); GWFA has few vector
operations (graph code defeats autovectorization); GBV is scalar (64-bit
bitvector words); PGSGD heavily uses (scalar-)SSE floating point; GBWT
and TC are scalar+memory.
"""

from _common import CHAR_STUDIES, emit, engine_reports

from repro.analysis.report import render_table
from repro.kernels import CPU_KERNELS

BINS = ("vector", "memory", "branch", "scalar", "register")


def run_experiment():
    return engine_reports(CPU_KERNELS, CHAR_STUDIES)


def test_fig8(benchmark):
    reports = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [name, *(f"{reports[name].instruction_mix[b]:.2f}" for b in BINS)]
        for name in CPU_KERNELS
    ]
    emit(
        "fig8_instmix",
        render_table(["kernel", *BINS], rows,
                     title="Figure 8: dynamic instruction mix fractions"),
    )
    mix = {name: reports[name].instruction_mix for name in CPU_KERNELS}
    assert mix["gssw"]["vector"] > 0.4           # hand-vectorized
    assert mix["gwfa-lr"]["vector"] < 0.05       # not vectorized
    assert mix["gbv"]["scalar"] > 0.7            # 64-bit word ops
    assert mix["pgsgd"]["vector"] > 0.3          # SSE scalar FP
    assert mix["tc"]["scalar"] + mix["tc"]["memory"] > 0.9
