"""CPU-vs-GPU layout crossover: where the GPU backend starts to pay.

The paper's GPU chapter frames PGSGD-GPU as a throughput play: the
device retires Hogwild updates far faster than a CPU core, but every
run pays fixed costs the CPU loop never sees — a kernel launch per
annealing iteration (the schedule's barriers force relaunches) and the
layout array's PCIe round trip.  Small graphs therefore run faster on
the CPU; past a break-even graph size the device rate wins, and the
gap keeps widening as the layout array outgrows the CPU cache ladder
(the Section 5.3 DRAM-latency regime).

This bench measures the device update rate once — a real
:func:`~repro.layout.pgsgd_gpu.pgsgd_layout_gpu` run on a synthetic
pangenome graph, the same simulator the registered ``pgsgd`` GPU
backend executes — then sweeps a modeled node-count ramp through the
calibrated CPU and GPU wall models
(:func:`~repro.layout.pgsgd_gpu.cpu_pgsgd_time_model` /
:func:`~repro.layout.pgsgd_gpu.gpu_pgsgd_wall_model`) and records the
interpolated crossover point.  Update counts scale with graph size
(annealing work is proportional to path steps), so the crossover is a
property of the overheads and latencies, not of a fixed work budget.

Each run appends an entry to ``BENCH_layout_crossover.json`` at the
repo root — the committed trajectory the regression sentinel watches
via ``repro obs check`` — and fails only if the crossover balloons
against the best prior entry.  The models are deterministic, so the
trajectory is stable run to run.

Runs under plain pytest or standalone:
``PYTHONPATH=src python benchmarks/bench_layout_crossover.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

from _common import RESULTS_DIR, emit

from repro import __version__
from repro.analysis.report import render_table
from repro.graph.builder import simulate_graph_pangenome
from repro.layout.pgsgd import PGSGDParams
from repro.layout.pgsgd_gpu import (
    cpu_pgsgd_time_model,
    gpu_pgsgd_wall_model,
    pgsgd_layout_gpu,
)

#: Committed trajectory at the repo root (benchmarks/ is one level down).
TRAJECTORY = Path(__file__).resolve().parent.parent / \
    "BENCH_layout_crossover.json"

#: Modeled graph sizes (node counts), small toys through a
#: chromosome-scale component whose layout array dwarfs the LLC.
NODE_RAMP = (250, 500, 1000, 2000, 4000, 8000, 16000, 64000,
             250_000, 1_000_000)

#: Annealing updates per node per layout run (~30 iterations at a few
#: term updates per node each — the odgi-style budget).
UPDATES_PER_NODE = 100

#: Calibration run: enough updates for a stable device rate while the
#: Python-level simulator stays interactive.
CALIBRATION_PARAMS = PGSGDParams(iterations=30, updates_per_iteration=600)

#: Catastrophe-only ceiling: fail if the crossover moved out past this
#: multiple of the best (lowest) committed entry.  Trend-watching is the
#: sentinel's job; this only catches an overhead regression that
#: de-justifies the GPU backend for everything but huge graphs.
MAX_CROSSOVER_RATIO = 4.0


def _interpolated_crossover(points: list[dict]) -> "float | None":
    """Node count where modeled speedup crosses 1.0 (log-linear
    interpolation between the bracketing ramp points)."""
    import math

    for below, above in zip(points, points[1:]):
        if below["speedup"] < 1.0 <= above["speedup"]:
            x0, x1 = math.log(below["nodes"]), math.log(above["nodes"])
            y0, y1 = below["speedup"], above["speedup"]
            return round(math.exp(x0 + (1.0 - y0) * (x1 - x0) / (y1 - y0)))
    return None


def run_experiment() -> dict:
    gp = simulate_graph_pangenome(genome_length=4000, n_haplotypes=6,
                                  seed=0)
    gpu = pgsgd_layout_gpu(gp.graph, params=CALIBRATION_PARAMS)
    device_seconds_per_update = (gpu.report.time_ms / 1e3
                                 / gpu.layout.updates)

    points = []
    for nodes in NODE_RAMP:
        anchors = 2 * nodes
        updates = UPDATES_PER_NODE * nodes
        cpu_seconds = cpu_pgsgd_time_model(anchors, updates)
        gpu_seconds = gpu_pgsgd_wall_model(
            device_seconds_per_update, anchors, updates,
            iterations=CALIBRATION_PARAMS.iterations,
        )
        points.append({
            "nodes": nodes,
            "footprint_kb": round(anchors * 16 / 1024, 1),
            "cpu_ms": round(cpu_seconds * 1e3, 4),
            "gpu_ms": round(gpu_seconds * 1e3, 4),
            "speedup": round(cpu_seconds / gpu_seconds, 4),
        })

    crossover = _interpolated_crossover(points)
    return {
        "version": __version__,
        "calibration": {
            "graph_nodes": gp.graph.node_count,
            "updates": gpu.layout.updates,
            "device_ns_per_update": round(
                device_seconds_per_update * 1e9, 4),
            "theoretical_occupancy": round(
                gpu.report.theoretical_occupancy, 4),
            "warp_utilization": round(gpu.report.warp_utilization, 4),
        },
        "updates_per_node": UPDATES_PER_NODE,
        "points": points,
        "crossover_nodes": crossover,
        "gpu_speedup_at_max": points[-1]["speedup"],
    }


def _load_trajectory() -> list[dict]:
    if not TRAJECTORY.exists():
        return []
    return json.loads(TRAJECTORY.read_text())["entries"]


def _append_compare(entry: dict) -> None:
    """Append *entry* to the committed trajectory; fail only if the
    crossover ballooned versus the best (lowest) prior entry."""
    entries = _load_trajectory()
    best = min((e["crossover_nodes"] for e in entries
                if e.get("crossover_nodes")), default=None)
    entries.append(entry)
    TRAJECTORY.write_text(json.dumps(
        {"bench": "layout_crossover", "entries": entries}, indent=2) + "\n")
    if best is not None:
        ceiling = MAX_CROSSOVER_RATIO * best
        assert entry["crossover_nodes"] <= ceiling, (
            f"GPU crossover ballooned: {entry['crossover_nodes']} nodes "
            f"vs best committed {best} (ceiling {ceiling:.0f})"
        )


def _emit(results: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_layout_crossover.json").write_text(
        json.dumps(results, indent=2) + "\n")
    rows = [
        [p["nodes"], p["footprint_kb"], f"{p['cpu_ms']:.3f}",
         f"{p['gpu_ms']:.3f}", f"{p['speedup']:.2f}x",
         "gpu" if p["speedup"] >= 1.0 else "cpu"]
        for p in results["points"]
    ]
    emit(
        "layout_crossover",
        render_table(
            ["nodes", "layout KB", "CPU ms", "GPU ms", "speedup",
             "winner"],
            rows,
            title=(f"PGSGD CPU vs GPU wall over graph size "
                   f"(crossover ~{results['crossover_nodes']} nodes)"),
        ),
    )


def test_layout_crossover():
    results = run_experiment()
    _emit(results)
    points = results["points"]
    # The fixed launch + transfer overheads must make the CPU win small
    # graphs, and the device rate must win big ones.
    assert points[0]["speedup"] < 1.0, (
        f"GPU should lose at {points[0]['nodes']} nodes "
        f"(speedup {points[0]['speedup']})"
    )
    assert points[-1]["speedup"] > 1.0, (
        f"GPU should win at {points[-1]['nodes']} nodes "
        f"(speedup {points[-1]['speedup']})"
    )
    assert results["crossover_nodes"] is not None, \
        "no CPU->GPU crossover inside the modeled ramp"
    # The advantage keeps widening as the layout array falls down the
    # CPU cache ladder.
    assert points[-1]["speedup"] > points[0]["speedup"]
    # The calibration run is the registered gpu backend's simulator:
    # occupancy pinned by 44 regs/thread at block 1024.
    assert abs(results["calibration"]["theoretical_occupancy"] - 2 / 3) \
        < 0.01
    _append_compare(results)
    print(f"trajectory: {TRAJECTORY} ({len(_load_trajectory())} entries)")


if __name__ == "__main__":
    test_layout_crossover()
