"""Figure 9: TSU (GPU WFA) vs CPU WFA timing over read length.

Paper shape: ~3.7x GPU speedup for short reads, a crossover as length
grows, and a slowdown at 10 kbp where 74% of Extend steps keep only one
of a block's 32 lanes busy.
"""

from _common import emit

from repro.analysis.report import render_table
from repro.gpu.tsu import cpu_wfa_time_model, tsu_align_batch
from repro.data import tsu_pairs

LENGTHS = (128, 500, 1000, 2500, 5000, 10000)
BATCH = 2000  # modelled batch size (pairs)


def run_experiment():
    results = {}
    for length in LENGTHS:
        n = max(2, min(8, 1200 // length + 2))
        pairs = tsu_pairs(n, length, error_rate=0.01, seed=1)
        replicate = max(1, BATCH // n)
        gpu = tsu_align_batch(pairs, replicate=replicate)
        cpu_seconds = cpu_wfa_time_model(pairs, replicate=replicate)
        results[length] = {
            "speedup": cpu_seconds / (gpu.report.time_ms / 1e3),
            "single_lane": gpu.single_lane_extend_fraction,
            "warp_util": gpu.report.warp_utilization,
        }
    return results


def test_fig9(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [length, f"{r['speedup']:.2f}x", f"{r['single_lane']:.2f}",
         f"{r['warp_util']:.2f}"]
        for length, r in results.items()
    ]
    emit(
        "fig9_gpu_vs_cpu_wfa",
        render_table(
            ["read length", "GPU speedup", "single-lane extends", "warp util"],
            rows,
            title="Figure 9: TSU vs CPU WFA over read length "
                  "(paper: 3.7x at short, slowdown at 10kbp, 74% single-lane)",
        ),
    )
    assert results[128]["speedup"] > 2.5          # large speedup at short reads
    assert results[10000]["speedup"] < 1.0        # slowdown at long reads
    assert results[10000]["single_lane"] > 0.65   # paper: 74%
    assert results[128]["single_lane"] < results[10000]["single_lane"]
    # monotone-ish decline
    assert results[128]["speedup"] > results[2500]["speedup"] > results[10000]["speedup"]
