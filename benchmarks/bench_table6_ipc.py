"""Table 6: kernel IPC on the 4-wide core model.

Paper: TC 3.14 > GWFA-lr 2.90 > GWFA-cr 2.67 > GBV 2.22 > GBWT 1.92 >
GSSW 1.77 > PGSGD 0.88.  Reproduced claims: TC highest, PGSGD lowest by
far, GSSW ~1.8, and the DP-kernel cluster in between.
"""

from _common import CHAR_STUDIES, emit, engine_reports

from repro.analysis.report import render_table
from repro.kernels import CPU_KERNELS

PAPER_IPC = {
    "gssw": 1.77, "gbv": 2.22, "gbwt": 1.92, "gwfa-cr": 2.67,
    "gwfa-lr": 2.90, "pgsgd": 0.88, "tc": 3.14,
}


def run_experiment():
    return engine_reports(CPU_KERNELS, CHAR_STUDIES)


def test_table6(benchmark):
    reports = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [name, f"{reports[name].ipc:.2f}", f"{PAPER_IPC[name]:.2f}"]
        for name in sorted(CPU_KERNELS, key=lambda n: -reports[n].ipc)
    ]
    emit(
        "table6_ipc",
        render_table(["kernel", "IPC (model)", "IPC (paper)"], rows,
                     title="Table 6: kernel IPC"),
    )
    ipc = {name: reports[name].ipc for name in CPU_KERNELS}
    assert max(ipc, key=ipc.get) == "tc"
    assert min(ipc, key=ipc.get) == "pgsgd"
    assert ipc["pgsgd"] < 0.6 * min(v for k, v in ipc.items() if k != "pgsgd")
    assert 1.2 < ipc["gssw"] < 2.4
