"""Figure 11 / case study 6.2: GSSW on the M-Graph vs the Split-M-Graph.

Paper: splitting every node longer than 8 bp into 8 bp chains shrinks
the average extracted subgraph (450 -> 233 bp) because finer nodes let
the pre-alignment stages localize better, making GSSW faster despite a
near-identical microarchitectural profile.
"""

from _common import bench_data, emit

from repro.align.gssw import GSSW
from repro.align.scoring import VG_DEFAULT
from repro.analysis.report import render_table
from repro.graph.model import GraphStats
from repro.graph.ops import split_nodes
from repro.kernels.gssw_kernel import extract_gssw_inputs
from repro.uarch.machine import TraceMachine
from repro.uarch.topdown import analyze


def characterize(graph, reads):
    items = extract_gssw_inputs(graph, reads)
    machine = TraceMachine()
    cells = 0
    for query, subgraph in items:
        result = GSSW(query, VG_DEFAULT, probe=machine).align(subgraph)
        cells += result.cells_computed
    mean_subgraph = sum(s.total_sequence_length for _q, s in items) / len(items)
    return analyze(machine.summary()), mean_subgraph, cells


def run_experiment():
    data = bench_data()
    reads = list(data.short_reads)[:20]
    m_graph = data.graph
    split_graph = split_nodes(m_graph, 8)
    return (
        characterize(m_graph, reads),
        characterize(split_graph, reads),
        GraphStats.of(m_graph),
        GraphStats.of(split_graph),
    )


def test_fig11(benchmark):
    (m_result, m_sub, m_cells), (s_result, s_sub, s_cells), m_stats, s_stats = (
        benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    )
    rows = [
        ["mean node length (bp)", f"{m_stats.mean_node_length:.2f}",
         f"{s_stats.mean_node_length:.2f}"],
        ["mean subgraph (bp)", f"{m_sub:.0f}", f"{s_sub:.0f}"],
        ["DP cells", m_cells, s_cells],
        ["model cycles", f"{m_result.cycles:.0f}", f"{s_result.cycles:.0f}"],
        ["IPC", f"{m_result.ipc:.2f}", f"{s_result.ipc:.2f}"],
        ["memory bound", f"{m_result.memory_bound:.2f}",
         f"{s_result.memory_bound:.2f}"],
        ["core bound", f"{m_result.core_bound:.2f}",
         f"{s_result.core_bound:.2f}"],
    ]
    emit(
        "fig11_graph_variation",
        render_table(
            ["metric", "M-Graph", "Split-M-Graph"], rows,
            title="Figure 11: graph representation vs GSSW performance",
        ),
    )
    # Node splitting shrinks nodes, subgraphs, and total cycles...
    assert s_stats.mean_node_length < 0.7 * m_stats.mean_node_length
    assert s_sub < m_sub
    assert s_result.cycles < m_result.cycles
    # ...while the microarchitectural profile stays similar.
    assert abs(s_result.ipc - m_result.ipc) < 0.4
