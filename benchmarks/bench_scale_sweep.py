"""Scale sweep: wall-time and peak-memory growth of the streaming mode.

The streaming execution mode (``repro run --stream``) exists so large
scales hold bounded memory: derived kernel inputs arrive as chunked
:class:`~repro.data.streaming.ChunkedSeries` views through the artifact
store instead of monolithic in-memory lists.  This bench sweeps the
streaming-enabled kernels (tsu, gbwt, gssw) over scale 0.25 → 4 on
fresh cold stores and fits log–log growth exponents for wall time and
tracemalloc peak memory.  Both must stay **sub-quadratic** — the
acceptance bar for the streaming mode (the kernels' own work is linear
in scale; a super-quadratic fit means some stage accidentally
materializes or recomputes the whole dataset).

Two passes per scale: an untraced pass for honest wall time, then a
``tracemalloc`` pass for allocation peak (tracemalloc slows execution
severely, so the traced pass contributes no timing).  Each run appends
an entry to ``BENCH_scale_sweep.json`` at the repo root — the committed
trajectory the regression sentinel watches via ``repro obs check``.

``REPRO_SCALE_SWEEP_MAX`` caps the sweep (CI perf-smoke uses 1) without
changing the fit logic.  Runs under plain pytest or standalone:
``PYTHONPATH=src python benchmarks/bench_scale_sweep.py``.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time
import tracemalloc
from pathlib import Path

from _common import RESULTS_DIR

from repro import __version__
from repro.data import ArtifactStore, use_store
from repro.data.streaming import streaming
from repro.harness.runner import run_suite

#: Committed trajectory at the repo root (benchmarks/ is one level down).
TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_scale_sweep.json"

#: The streaming-enabled kernels (the ones whose derived inputs dominate
#: memory at scale and arrive chunked under ``--stream``).
KERNELS = ("tsu", "gbwt", "gssw")

FULL_SCALES = (0.25, 0.5, 1.0, 2.0, 4.0)

#: Sub-quadratic acceptance bar on the fitted log-log slope.
MAX_EXPONENT = 2.0


def _scales() -> tuple[float, ...]:
    raw = os.environ.get("REPRO_SCALE_SWEEP_MAX", "")
    try:
        cap = float(raw) if raw else max(FULL_SCALES)
    except ValueError:
        cap = max(FULL_SCALES)
    picked = tuple(s for s in FULL_SCALES if s <= cap)
    return picked if len(picked) >= 2 else FULL_SCALES[:2]


def _run(scale: float, traced: bool) -> tuple[float, int]:
    """One cold streaming suite run; returns (wall seconds, peak bytes).

    Cold on purpose: a fresh artifact store per point, so every scale
    pays its full dataset build + chunk derivations and the growth fit
    measures the whole pipeline, not a warm cache.
    """
    peak = 0
    with tempfile.TemporaryDirectory(prefix="scale-sweep-") as tmp:
        with use_store(ArtifactStore(tmp)):
            with streaming():
                if traced:
                    tracemalloc.start()
                t0 = time.perf_counter()
                reports = run_suite(KERNELS, studies=("timing",), scale=scale)
                wall = time.perf_counter() - t0
                if traced:
                    _, peak = tracemalloc.get_traced_memory()
                    tracemalloc.stop()
    errors = {k: r.error for k, r in reports.items() if r.error}
    assert not errors, f"scale {scale} kernels failed: {errors}"
    return wall, peak


def _fit_exponent(scales, values) -> float:
    """Least-squares slope of log(value) vs log(scale)."""
    xs = [math.log(s) for s in scales]
    ys = [math.log(v) for v in values]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    denom = sum((x - mean_x) ** 2 for x in xs)
    return sum((x - mean_x) * (y - mean_y)
               for x, y in zip(xs, ys)) / denom


def run_experiment() -> dict:
    rows = []
    for scale in _scales():
        wall, _ = _run(scale, traced=False)
        _, peak = _run(scale, traced=True)
        rows.append({
            "scale": scale,
            "wall_seconds": round(wall, 3),
            "peak_mb": round(peak / 1e6, 2),
        })
    scales = [r["scale"] for r in rows]
    return {
        "version": __version__,
        "kernels": list(KERNELS),
        "points": rows,
        "wall_growth_exponent": round(
            _fit_exponent(scales, [r["wall_seconds"] for r in rows]), 3),
        "memory_growth_exponent": round(
            _fit_exponent(scales, [r["peak_mb"] for r in rows]), 3),
        "max_allowed_exponent": MAX_EXPONENT,
    }


def _load_trajectory() -> list[dict]:
    if not TRAJECTORY.exists():
        return []
    return json.loads(TRAJECTORY.read_text())["entries"]


def _append(entry: dict) -> None:
    entries = _load_trajectory()
    entries.append(entry)
    TRAJECTORY.write_text(json.dumps(
        {"bench": "scale_sweep", "entries": entries}, indent=2) + "\n")


def _emit(results: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_scale_sweep.json").write_text(
        json.dumps(results, indent=2) + "\n")
    print()
    print(f"{'scale':>6}{'wall s':>10}{'peak MB':>10}")
    for row in results["points"]:
        print(f"{row['scale']:>6}{row['wall_seconds']:>10.2f}"
              f"{row['peak_mb']:>10.1f}")
    print(f"wall growth exponent:   {results['wall_growth_exponent']:.2f}")
    print(f"memory growth exponent: {results['memory_growth_exponent']:.2f}"
          f"  (sub-quadratic bar: < {MAX_EXPONENT:.0f})")


def test_scale_sweep():
    results = run_experiment()
    _emit(results)
    assert results["wall_growth_exponent"] < MAX_EXPONENT, (
        f"wall time grows as scale^{results['wall_growth_exponent']:.2f}; "
        f"must stay sub-quadratic"
    )
    assert results["memory_growth_exponent"] < MAX_EXPONENT, (
        f"peak memory grows as scale^{results['memory_growth_exponent']:.2f};"
        f" must stay sub-quadratic"
    )
    _append(results)
    print(f"trajectory: {TRAJECTORY} ({len(_load_trajectory())} entries)")


if __name__ == "__main__":
    test_scale_sweep()
