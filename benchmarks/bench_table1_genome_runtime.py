"""Table 1: estimated full-genome assembly runtime per tool.

Paper values (hours): VgMap 67.1, Giraffe 4.8, GraphAligner 9.1,
Minigraph 20.5, BWA-MEM2 1.3.  The reproducible claim is the ordering
VgMap >> Minigraph > GraphAligner > Giraffe >> BWA and the rough ratios.
"""

from _common import bench_data, emit

from repro.analysis.estimate import (
    PAPER_TABLE1_HOURS,
    estimate_genome_runtime,
    normalize_to_baseline,
)
from repro.analysis.report import render_table
from repro.tools import BwaMem, Giraffe, GraphAligner, Minigraph, VgMap


def run_experiment():
    data = bench_data()
    short = list(data.short_reads)[:20]
    long = list(data.long_reads)[:5]
    long_length = round(sum(len(r) for r in long) / len(long))
    jobs = [
        ("vg_map", VgMap(data.graph), short, 150),
        ("giraffe", Giraffe(data.graph), short, 150),
        ("graphaligner", GraphAligner(data.graph), long, long_length),
        ("minigraph-lr", Minigraph(data.graph), long, long_length),
        ("bwa_mem", BwaMem(data.reference), short, 150),
    ]
    estimates = []
    for name, tool, reads, read_length in jobs:
        run = tool.map_reads(list(reads))
        estimates.append(
            estimate_genome_runtime(
                name, run.timer.total, len(reads), read_length
            )
        )
    return estimates


def test_table1(benchmark):
    estimates = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    ratios = normalize_to_baseline(estimates, "bwa_mem")
    paper_ratios = {
        tool: hours / PAPER_TABLE1_HOURS["bwa_mem"]
        for tool, hours in PAPER_TABLE1_HOURS.items()
    }
    rows = [
        [
            e.tool,
            f"{e.estimated_hours:.1f}",
            f"{ratios[e.tool]:.1f}x",
            f"{PAPER_TABLE1_HOURS[e.tool]:.1f}",
            f"{paper_ratios[e.tool]:.1f}x",
        ]
        for e in sorted(estimates, key=lambda e: -e.estimated_hours)
    ]
    emit(
        "table1_genome_runtime",
        render_table(
            ["tool", "est. hours", "vs bwa", "paper hours", "paper vs bwa"],
            rows,
            title="Table 1: estimated full-genome runtime (pseudo-hours)",
        ),
    )
    # Shape assertions.  Two of the paper's claims are robust under the
    # Python substrate: vg map is by far the slowest tool, and giraffe is
    # an order of magnitude faster than vg map.  The bwa-vs-giraffe
    # ordering does NOT survive the substrate change (our giraffe resolves
    # reads with cheap haplotype extensions while our SW model pays
    # per-cell numpy costs) — see EXPERIMENTS.md.
    hours = {e.tool: e.estimated_hours for e in estimates}
    assert hours["vg_map"] == max(hours.values())
    assert hours["vg_map"] > 10 * hours["giraffe"]
    assert hours["graphaligner"] > hours["giraffe"]
