"""Trace-ingestion throughput: scalar event calls vs the batched API.

The µarch tracing pipeline's cost is dominated by per-event Python
dispatch: every load walks the cache hierarchy, every branch updates the
gshare predictor.  The batched ``*_block`` entry points vectorize those
inner loops, and this bench measures the resulting events/second on the
streams the suite's kernels actually emit — sequential, strided, and
random loads; biased and random branch outcomes; and a mixed
load/store/branch/ALU program.

Each stream runs twice on fresh :class:`TraceMachine` instances — once
through scalar calls, once through the batch API — and the two resulting
:class:`MachineSummary` objects must be identical (the differential
guarantee the hypothesis suite enforces per-operation).  Results land in
``benchmarks/results/BENCH_trace_throughput.json`` for the CI perf-smoke
artifact.

On top of the ingestion microbench, this bench times the *cold* 7-kernel
characterization run (scale 0.25 under the topdown/cache/instmix
studies, fresh artifact store) — the end-to-end number the kernel
vectorization work moves.  Each run appends one entry to
``BENCH_trace_throughput.json`` at the repo root (the committed
trajectory the regression sentinel watches via ``repro obs check``) and
fails only on a catastrophic regression against the best prior entry.

Runs under plain pytest (no pytest-benchmark needed) or standalone:
``PYTHONPATH=src python benchmarks/bench_trace_throughput.py``.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import __version__
from repro.data import ArtifactStore, use_store
from repro.harness.runner import run_suite
from repro.uarch.events import OpClass
from repro.uarch.machine import TraceMachine

RESULTS_DIR = Path(__file__).parent / "results"

#: Committed trajectory at the repo root (benchmarks/ is one level down).
TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_trace_throughput.json"

#: The paper's seven characterized CPU kernels and the studies the
#: characterization chapters run them under.
CHARACTERIZATION_KERNELS = ("gssw", "gbv", "gbwt", "gwfa-cr", "gwfa-lr",
                            "pgsgd", "tc")
CHARACTERIZATION_STUDIES = ("topdown", "cache", "instmix")
CHARACTERIZATION_SCALE = 0.25

#: Catastrophe-only ceiling: fail when the cold characterization run
#: takes more than this multiple of the best committed entry.  Loose on
#: purpose — the trajectory is for trend-watching; the sentinel's
#: tighter median±MAD thresholds do the PR-over-PR gating.
MAX_WALL_RATIO = 3.0

#: Events per stream.  Large enough that per-call overhead amortizes on
#: the batched side and the scalar loop dominates timing noise.
N_EVENTS = 200_000

#: Batch size for the flushes — the order of magnitude the converted
#: kernels produce per wavefront / column / iteration barrier.
BLOCK = 16_384

#: Minimum acceptable overall speedup (total scalar time / total batched
#: time across all streams).  The issue's tentpole target.
MIN_SPEEDUP = 5.0

_BASE = 1 << 22


def _streams(seed: int = 7):
    """Named event streams: (kind, payload) pairs."""
    rng = np.random.default_rng(seed)
    n = N_EVENTS
    return [
        ("sequential_loads", "load",
         _BASE + 8 * np.arange(n, dtype=np.int64)),
        ("strided_loads", "load",
         _BASE + 256 * np.arange(n, dtype=np.int64)),
        ("random_loads", "load",
         _BASE + rng.integers(0, 1 << 26, size=n, dtype=np.int64)),
        ("biased_branches", "branch",
         rng.random(n) < 0.95),
        ("random_branches", "branch",
         rng.random(n) < 0.5),
        ("mixed", "mixed",
         (_BASE + rng.integers(0, 1 << 24, size=n, dtype=np.int64),
          rng.random(n) < 0.8)),
    ]


def _run_scalar(kind, payload) -> TraceMachine:
    machine = TraceMachine()
    if kind == "load":
        for address in payload.tolist():
            machine.load(address, 8)
    elif kind == "branch":
        for taken in payload.tolist():
            machine.branch(17, taken)
    else:
        # Same chunked event order as the batched side (the kernels'
        # accumulate-then-flush pattern), issued one event at a time.
        addresses, outcomes = payload
        for lo in range(0, len(addresses), BLOCK):
            for address in addresses[lo:lo + BLOCK].tolist():
                machine.load(address, 8)
            for address in (addresses[lo:lo + BLOCK] ^ 4096).tolist():
                machine.store(address, 8)
            for taken in outcomes[lo:lo + BLOCK].tolist():
                machine.branch(17, taken)
                machine.alu(OpClass.SCALAR_ALU, 4)
    return machine


def _run_batched(kind, payload) -> TraceMachine:
    machine = TraceMachine()
    if kind == "load":
        for lo in range(0, len(payload), BLOCK):
            machine.load_block(payload[lo:lo + BLOCK], 8)
    elif kind == "branch":
        for lo in range(0, len(payload), BLOCK):
            machine.branch_trace(17, payload[lo:lo + BLOCK])
    else:
        addresses, outcomes = payload
        for lo in range(0, len(addresses), BLOCK):
            chunk = addresses[lo:lo + BLOCK]
            machine.load_block(chunk, 8)
            machine.store_block(chunk ^ 4096, 8)
            machine.branch_trace(17, outcomes[lo:lo + BLOCK])
            machine.alu_bulk(OpClass.SCALAR_ALU, 4 * len(chunk))
    return machine


def _events_of(kind) -> int:
    return 4 * N_EVENTS if kind == "mixed" else N_EVENTS


def run_experiment() -> dict:
    streams = []
    scalar_total = 0.0
    batched_total = 0.0
    for name, kind, payload in _streams():
        t0 = time.perf_counter()
        scalar_machine = _run_scalar(kind, payload)
        scalar_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        batched_machine = _run_batched(kind, payload)
        batched_seconds = time.perf_counter() - t0
        assert scalar_machine.summary() == batched_machine.summary(), \
            f"stream {name}: batched summary diverges from scalar"
        events = _events_of(kind)
        scalar_total += scalar_seconds
        batched_total += batched_seconds
        streams.append({
            "stream": name,
            "events": events,
            "scalar_seconds": round(scalar_seconds, 4),
            "batched_seconds": round(batched_seconds, 4),
            "scalar_events_per_sec": round(events / scalar_seconds),
            "batched_events_per_sec": round(events / batched_seconds),
            "speedup": round(scalar_seconds / batched_seconds, 2),
        })
    return {
        "version": __version__,
        "n_events_per_stream": N_EVENTS,
        "block_size": BLOCK,
        "streams": streams,
        "overall_speedup": round(scalar_total / batched_total, 2),
        "min_required_speedup": MIN_SPEEDUP,
    }


def run_characterization() -> dict:
    """Time the cold 7-kernel characterization run on a fresh artifact
    store (dataset build included — the number a user's first
    ``repro run`` actually costs)."""
    kernel_seconds: dict[str, float] = {}
    with tempfile.TemporaryDirectory(prefix="trace-throughput-") as tmp:
        with use_store(ArtifactStore(tmp)):
            t0 = time.perf_counter()
            for kernel in CHARACTERIZATION_KERNELS:
                k0 = time.perf_counter()
                reports = run_suite(
                    (kernel,),
                    studies=CHARACTERIZATION_STUDIES,
                    scale=CHARACTERIZATION_SCALE,
                )
                kernel_seconds[kernel] = round(time.perf_counter() - k0, 3)
                error = reports[kernel].error
                assert error is None, f"{kernel} failed: {error}"
            wall = time.perf_counter() - t0
    return {
        "characterization_wall_seconds": round(wall, 3),
        "characterization_kernels_per_sec":
            round(len(CHARACTERIZATION_KERNELS) / wall, 3),
        "kernel_seconds": dict(sorted(kernel_seconds.items())),
    }


def _load_trajectory() -> list[dict]:
    if not TRAJECTORY.exists():
        return []
    return json.loads(TRAJECTORY.read_text())["entries"]


def _append_compare(entry: dict) -> None:
    """Append *entry* to the committed trajectory; fail only if the
    characterization run collapsed versus the best prior entry."""
    entries = _load_trajectory()
    best = min((e["characterization_wall_seconds"] for e in entries),
               default=None)
    entries.append(entry)
    TRAJECTORY.write_text(json.dumps(
        {"bench": "trace_throughput", "entries": entries}, indent=2) + "\n")
    if best is not None:
        ceiling = MAX_WALL_RATIO * best
        assert entry["characterization_wall_seconds"] <= ceiling, (
            f"cold characterization collapsed: "
            f"{entry['characterization_wall_seconds']:.1f}s vs best "
            f"committed {best:.1f}s (ceiling {ceiling:.1f}s)"
        )


def _emit(results: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_trace_throughput.json"
    path.write_text(json.dumps(results, indent=2) + "\n")
    header = f"{'stream':<20}{'scalar ev/s':>14}{'batched ev/s':>14}{'speedup':>9}"
    print()
    print(header)
    for row in results["streams"]:
        print(f"{row['stream']:<20}{row['scalar_events_per_sec']:>14,}"
              f"{row['batched_events_per_sec']:>14,}{row['speedup']:>8.1f}x")
    print(f"overall speedup: {results['overall_speedup']:.1f}x "
          f"(required >= {MIN_SPEEDUP:.0f}x)")
    print(f"cold 7-kernel characterization: "
          f"{results['characterization_wall_seconds']:.2f}s "
          f"(scale {CHARACTERIZATION_SCALE})")
    for kernel, seconds in results["kernel_seconds"].items():
        print(f"  {kernel:<10}{seconds:>8.3f}s")
    print(f"saved {path}")


def test_trace_throughput():
    results = run_experiment()
    results.update(run_characterization())
    _emit(results)
    assert results["overall_speedup"] >= MIN_SPEEDUP, (
        f"batched ingestion only {results['overall_speedup']:.1f}x faster; "
        f"need >= {MIN_SPEEDUP:.0f}x"
    )
    _append_compare(results)
    print(f"trajectory: {TRAJECTORY} ({len(_load_trajectory())} entries)")


if __name__ == "__main__":
    test_trace_throughput()
