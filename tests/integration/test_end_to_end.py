"""End-to-end integration: build a graph, map reads to it, lay it out."""

import pytest

from repro.layout.pgsgd import PGSGDParams, pgsgd_layout
from repro.sequence.simulate import ILLUMINA, ReadSimulator, simulate_pangenome
from repro.tools import Giraffe, VgMap
from repro.tools.pipelines import run_pggb


@pytest.fixture(scope="module")
def built_world():
    """A pangenome built by the PGGB pipeline from scratch."""
    pangenome = simulate_pangenome(genome_length=2500, n_haplotypes=3, seed=21)
    run = run_pggb(
        pangenome.records,
        layout_params=PGSGDParams(iterations=3, updates_per_iteration=300),
    )
    return pangenome, run.graph


class TestBuildThenMap:
    def test_reads_map_to_discovered_graph(self, built_world):
        pangenome, graph = built_world
        donor = pangenome.haplotypes[0]
        reads = list(ReadSimulator(ILLUMINA, seed=3).simulate(donor, n_reads=10))
        run = VgMap(graph).map_reads(reads)
        assert run.mapped_fraction >= 0.8

    def test_giraffe_on_discovered_graph(self, built_world):
        pangenome, graph = built_world
        donor = pangenome.haplotypes[1]
        reads = list(ReadSimulator(ILLUMINA, seed=4).simulate(donor, n_reads=10))
        run = Giraffe(graph).map_reads(reads)
        assert run.mapped_fraction >= 0.8

    def test_layout_of_discovered_graph(self, built_world):
        _, graph = built_world
        params = PGSGDParams(
            iterations=8, updates_per_iteration=4000, initialization="random"
        )
        result = pgsgd_layout(graph, params)
        assert result.final_stress < 0.2 * result.stress_history[0]


class TestGroundTruthAgainstDiscovery:
    def test_discovered_graph_compresses_like_truth(self, built_world):
        pangenome, graph = built_world
        from repro.graph.builder import build_variation_graph  # noqa: F401
        total = sum(len(r) for r in pangenome.records)
        assert graph.total_sequence_length < 0.6 * total
