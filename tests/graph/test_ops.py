"""Graph algorithms: topological sort, subgraphs, split/compact."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CyclicGraphError, GraphError
from repro.graph.builder import simulate_graph_pangenome
from repro.graph.model import SequenceGraph
from repro.graph.ops import (
    compact_chains,
    connected_components,
    dagify,
    induced_subgraph,
    is_acyclic,
    local_subgraph,
    split_nodes,
    topological_sort,
)


def chain_graph(sequences):
    graph = SequenceGraph()
    for index, sequence in enumerate(sequences):
        graph.add_node(index, sequence)
        if index:
            graph.add_edge(index - 1, index)
    return graph


def random_dag(seed, n_nodes=12):
    rng = random.Random(seed)
    graph = SequenceGraph()
    for index in range(n_nodes):
        graph.add_node(index, "".join(rng.choice("ACGT") for _ in range(rng.randint(1, 6))))
    for i in range(n_nodes):
        for j in range(i + 1, min(i + 4, n_nodes)):
            if rng.random() < 0.4:
                graph.add_edge(i, j)
    return graph


class TestTopologicalSort:
    @given(st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_order_respects_edges(self, seed):
        graph = random_dag(seed)
        order = topological_sort(graph)
        position = {node: index for index, node in enumerate(order)}
        for source, target in graph.edges():
            assert position[source] < position[target]
        assert sorted(order) == sorted(graph.node_ids())

    def test_cycle_detected(self):
        graph = chain_graph(["A", "C"])
        graph.add_edge(1, 0)
        with pytest.raises(CyclicGraphError):
            topological_sort(graph)
        assert not is_acyclic(graph)

    def test_deterministic(self):
        graph = random_dag(1)
        assert topological_sort(graph) == topological_sort(graph)


class TestSubgraphs:
    def test_induced_keeps_internal_edges(self):
        graph = chain_graph(["A", "C", "G", "T"])
        sub = induced_subgraph(graph, [1, 2])
        assert sub.node_count == 2
        assert sub.has_edge(1, 2)
        assert not sub.has_edge(0, 1)

    def test_induced_unknown_node_rejected(self):
        graph = chain_graph(["A"])
        with pytest.raises(GraphError):
            induced_subgraph(graph, [5])

    def test_local_subgraph_radius(self):
        graph = chain_graph(["AAAA"] * 10)
        sub = local_subgraph(graph, 5, radius_bp=8)
        # 8 bp budget = 2 hops in each direction.
        assert set(sub.node_ids()) == {3, 4, 5, 6, 7}

    def test_local_subgraph_acyclic(self):
        graph = chain_graph(["AAAA", "CCCC"])
        graph.add_edge(1, 0)  # cycle
        sub = local_subgraph(graph, 0, radius_bp=100, acyclic=True)
        assert is_acyclic(sub)

    def test_dagify_no_op_on_dag(self):
        graph = random_dag(3)
        assert dagify(graph) is graph


class TestSplitCompact:
    def test_split_lengths(self):
        graph = chain_graph(["ACGTACGTACGT"])
        split = split_nodes(graph, 5)
        lengths = sorted(len(node) for node in split.nodes())
        assert lengths == [2, 5, 5]
        assert split.total_sequence_length == graph.total_sequence_length

    def test_split_preserves_small_nodes(self):
        graph = chain_graph(["ACG"])
        split = split_nodes(graph, 5)
        assert split.node_count == 1

    def test_split_rejects_bad_length(self):
        with pytest.raises(GraphError):
            split_nodes(chain_graph(["A"]), 0)

    @given(st.integers(0, 300), st.integers(2, 9))
    @settings(max_examples=15, deadline=None)
    def test_split_compact_preserve_paths(self, seed, max_length):
        pangenome = simulate_graph_pangenome(
            genome_length=1500, n_haplotypes=3, seed=seed
        )
        graph = pangenome.graph
        split = split_nodes(graph, max_length)
        for haplotype in pangenome.haplotypes:
            assert split.path_sequence(haplotype.name) == haplotype.sequence
        compacted = compact_chains(split)
        for haplotype in pangenome.haplotypes:
            assert compacted.path_sequence(haplotype.name) == haplotype.sequence

    def test_compact_merges_chains(self):
        graph = chain_graph(["AC", "GT", "AA"])
        graph.add_path("p", [0, 1, 2])
        compacted = compact_chains(graph)
        assert compacted.node_count == 1
        assert compacted.path_sequence("p") == "ACGTAA"

    def test_compact_handles_self_loop(self):
        graph = SequenceGraph()
        graph.add_node(0, "AC")
        graph.add_edge(0, 0)
        graph.add_path("p", [0, 0])
        compacted = compact_chains(graph)
        assert compacted.path_sequence("p") == "ACAC"


class TestComponents:
    def test_two_components(self):
        graph = SequenceGraph()
        for index in range(4):
            graph.add_node(index, "A")
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        components = connected_components(graph)
        assert len(components) == 2
        assert {frozenset(c) for c in components} == {frozenset({0, 1}), frozenset({2, 3})}
