"""GFA file-level I/O."""

from repro.graph.builder import simulate_graph_pangenome
from repro.graph.gfa import parse_gfa, write_gfa


class TestGfaFiles:
    def test_file_roundtrip(self, tmp_path):
        graph = simulate_graph_pangenome(
            genome_length=1000, n_haplotypes=2, seed=4
        ).graph
        path = tmp_path / "graph.gfa"
        write_gfa(graph, path)
        back = parse_gfa(path)
        assert back.node_count == graph.node_count
        for name in graph.path_names():
            assert back.path_sequence(name) == graph.path_sequence(name)

    def test_string_path_accepted(self, tmp_path):
        graph = simulate_graph_pangenome(
            genome_length=500, n_haplotypes=2, seed=4
        ).graph
        path = str(tmp_path / "g.gfa")
        write_gfa(graph, path)
        assert parse_gfa(path).node_count == graph.node_count
