"""GFA1 parsing and writing."""

import pytest

from repro.errors import GFAError
from repro.graph.builder import simulate_graph_pangenome
from repro.graph.gfa import gfa_string, parse_gfa_string


class TestRoundTrip:
    def test_simulated_graph_roundtrips(self):
        graph = simulate_graph_pangenome(genome_length=1500, n_haplotypes=3, seed=2).graph
        back = parse_gfa_string(gfa_string(graph))
        assert back.node_count == graph.node_count
        assert back.edge_count == graph.edge_count
        assert back.path_names() == graph.path_names()
        for name in graph.path_names():
            assert back.path_sequence(name) == graph.path_sequence(name)

    def test_minimal_document(self):
        text = "H\tVN:Z:1.0\nS\t1\tACGT\nS\t2\tTT\nL\t1\t+\t2\t+\t0M\nP\tp\t1+,2+\t*\n"
        graph = parse_gfa_string(text)
        assert graph.path_sequence("p") == "ACGTTT"

    def test_comments_and_blank_lines_skipped(self):
        graph = parse_gfa_string("# hi\n\nS\t1\tAC\n")
        assert graph.node_count == 1


class TestErrors:
    def test_reverse_orientation_rejected(self):
        with pytest.raises(GFAError):
            parse_gfa_string("S\t1\tAC\nS\t2\tGG\nL\t1\t+\t2\t-\t0M\n")

    def test_unknown_record_rejected(self):
        with pytest.raises(GFAError):
            parse_gfa_string("Z\tnope\n")

    def test_star_sequence_rejected(self):
        with pytest.raises(GFAError):
            parse_gfa_string("S\t1\t*\n")

    def test_non_integer_id_rejected(self):
        with pytest.raises(GFAError):
            parse_gfa_string("S\tx\tAC\n")

    def test_link_to_unknown_segment_rejected(self):
        with pytest.raises(GFAError):
            parse_gfa_string("S\t1\tAC\nL\t1\t+\t9\t+\t0M\n")

    def test_bad_path_step_rejected(self):
        with pytest.raises(GFAError):
            parse_gfa_string("S\t1\tAC\nP\tp\t1-\t*\n")

    def test_error_carries_line_number(self):
        with pytest.raises(GFAError) as excinfo:
            parse_gfa_string("S\t1\tAC\nZ\tnope\n")
        assert "line 2" in str(excinfo.value)
