"""Graph shortest-distance queries."""

import pytest

from repro.errors import GraphError
from repro.graph.distance import UNREACHABLE, GraphPosition, min_distance, reachable_within
from repro.graph.model import SequenceGraph


def chain(sequences):
    graph = SequenceGraph()
    for index, sequence in enumerate(sequences):
        graph.add_node(index, sequence)
        if index:
            graph.add_edge(index - 1, index)
    return graph


class TestMinDistance:
    def test_same_node(self):
        graph = chain(["ACGTACGT"])
        assert min_distance(graph, GraphPosition(0, 2), GraphPosition(0, 6)) == 4

    def test_chain_matches_coordinates(self):
        graph = chain(["AAAA", "CCCC", "GGGG"])
        # distance from (0,1) to (2,1): 3 remaining in node0 + 4 + 1
        assert min_distance(graph, GraphPosition(0, 1), GraphPosition(2, 1)) == 8

    def test_bubble_takes_shorter_branch(self):
        graph = SequenceGraph()
        graph.add_node(0, "AA")
        graph.add_node(1, "C")         # short branch
        graph.add_node(2, "GGGGGGGG")  # long branch
        graph.add_node(3, "TT")
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        graph.add_edge(1, 3)
        graph.add_edge(2, 3)
        assert min_distance(graph, GraphPosition(0, 1), GraphPosition(3, 0)) == 2

    def test_unreachable(self):
        graph = chain(["AA", "CC"])
        assert (
            min_distance(graph, GraphPosition(1, 0), GraphPosition(0, 0)) == UNREACHABLE
        )

    def test_limit_respected(self):
        graph = chain(["AAAA"] * 20)
        assert (
            min_distance(graph, GraphPosition(0, 0), GraphPosition(19, 0), limit=8)
            == UNREACHABLE
        )

    def test_offset_validation(self):
        graph = chain(["AA"])
        with pytest.raises(GraphError):
            min_distance(graph, GraphPosition(0, 5), GraphPosition(0, 0))

    def test_cycle_distance(self):
        graph = SequenceGraph()
        graph.add_node(0, "AAAA")
        graph.add_node(1, "CC")
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        # going backwards requires looping around: 0@2 -> end of 0 (2) + node1 (2) -> 0@1
        assert min_distance(graph, GraphPosition(0, 2), GraphPosition(0, 1)) == 5


class TestReachableWithin:
    def test_downstream_distances(self):
        graph = chain(["AAAA", "CC", "GG"])
        reachable = reachable_within(graph, 0, limit_bp=10)
        assert reachable == {1: 0, 2: 2}

    def test_limit(self):
        graph = chain(["AAAA", "CC", "GG"])
        reachable = reachable_within(graph, 0, limit_bp=1)
        assert reachable == {1: 0}

    def test_unknown_node(self):
        with pytest.raises(GraphError):
            reachable_within(chain(["A"]), 7, 10)
