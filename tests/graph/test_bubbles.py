"""Superbubbles and variant deconstruction (roundtrip property)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.bubbles import deconstruct, find_superbubbles, superbubble_from
from repro.graph.builder import simulate_graph_pangenome
from repro.graph.model import SequenceGraph
from repro.sequence.mutate import apply_variants


def simple_bubble():
    graph = SequenceGraph()
    graph.add_node(0, "AAAA")
    graph.add_node(1, "C")
    graph.add_node(2, "G")
    graph.add_node(3, "TTTT")
    for s, t in [(0, 1), (0, 2), (1, 3), (2, 3)]:
        graph.add_edge(s, t)
    return graph


class TestSuperbubbles:
    def test_simple_bubble_found(self):
        bubble = superbubble_from(simple_bubble(), 0)
        assert bubble is not None
        assert bubble.source == 0
        assert bubble.sink == 3
        assert bubble.interior == frozenset({1, 2})

    def test_linear_node_is_not_a_bubble(self):
        graph = SequenceGraph()
        graph.add_node(0, "A")
        graph.add_node(1, "C")
        graph.add_edge(0, 1)
        assert superbubble_from(graph, 0) is None

    def test_tip_disqualifies(self):
        graph = simple_bubble()
        graph.add_node(4, "T")  # dead-end branch out of the bubble
        graph.add_edge(1, 4)
        assert superbubble_from(graph, 0) is None

    def test_deletion_bypass_is_a_bubble(self):
        graph = SequenceGraph()
        graph.add_node(0, "AA")
        graph.add_node(1, "CC")
        graph.add_node(2, "GG")
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(0, 2)  # deletion edge
        bubble = superbubble_from(graph, 0)
        assert bubble is not None and bubble.sink == 2

    def test_every_builder_site_yields_bubbles(self):
        pangenome = simulate_graph_pangenome(genome_length=2000, n_haplotypes=3, seed=1)
        bubbles = find_superbubbles(pangenome.graph)
        assert len(bubbles) > 5
        node_on_ref = set(pangenome.graph.path(pangenome.reference.name).nodes)
        # bubble endpoints sit on the reference backbone
        assert all(b.source in node_on_ref and b.sink in node_on_ref for b in bubbles)


class TestDeconstruct:
    @given(st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_roundtrip_reproduces_haplotypes(self, seed):
        pangenome = simulate_graph_pangenome(
            genome_length=2000, n_haplotypes=3, seed=seed
        )
        recovered = deconstruct(pangenome.graph, pangenome.reference.name)
        for haplotype in pangenome.haplotypes:
            rebuilt = apply_variants(
                pangenome.reference.sequence, recovered[haplotype.name]
            )
            assert rebuilt == haplotype.sequence

    def test_identical_path_has_no_variants(self):
        graph = simple_bubble()
        graph.add_path("ref", [0, 1, 3])
        graph.add_path("same", [0, 1, 3])
        graph.add_path("other", [0, 2, 3])
        recovered = deconstruct(graph, "ref")
        assert recovered["same"] == []
        assert len(recovered["other"]) == 1
        assert recovered["other"][0].ref == "C"
        assert recovered["other"][0].alt == "G"
        assert recovered["other"][0].position == 4
