"""Variation-graph construction correctness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import build_variation_graph, simulate_graph_pangenome
from repro.graph.ops import is_acyclic
from repro.sequence.mutate import Variant, VariantType
from repro.sequence.records import SequenceRecord


class TestSmallCases:
    def test_single_snp_makes_bubble(self):
        reference = SequenceRecord("ref", "AACCGGTT")
        variant = Variant(VariantType.SNP, 3, "C", "T")
        graph = build_variation_graph(reference, {"h": [variant]})
        assert graph.path_sequence("ref") == "AACCGGTT"
        assert graph.path_sequence("h") == "AACTGGTT"
        # left segment, ref allele, alt allele, right segment
        assert graph.node_count == 4

    def test_deletion_makes_bypass_edge(self):
        reference = SequenceRecord("ref", "AAACCCGGG")
        variant = Variant(VariantType.DELETION, 2, "ACCC", "A")
        graph = build_variation_graph(reference, {"h": [variant]})
        assert graph.path_sequence("h") == "AAAGGG"
        assert graph.path_sequence("ref") == reference.sequence

    def test_insertion_adds_node(self):
        reference = SequenceRecord("ref", "AAAGGG")
        variant = Variant(VariantType.INSERTION, 2, "A", "ATTT")
        graph = build_variation_graph(reference, {"h": [variant]})
        assert graph.path_sequence("h") == "AAATTTGGG"

    def test_multiallelic_site(self):
        reference = SequenceRecord("ref", "AACCGG")
        a = Variant(VariantType.SNP, 2, "C", "T")
        b = Variant(VariantType.SNP, 2, "C", "G")
        graph = build_variation_graph(reference, {"h1": [a], "h2": [b]})
        assert graph.path_sequence("h1") == "AATCGG"
        assert graph.path_sequence("h2") == "AAGCGG"

    def test_shared_variant_shares_node(self):
        reference = SequenceRecord("ref", "AACCGG")
        variant = Variant(VariantType.SNP, 2, "C", "T")
        graph = build_variation_graph(reference, {"h1": [variant], "h2": [variant]})
        assert graph.path("h1").nodes == graph.path("h2").nodes


class TestSimulatedPangenome:
    @given(st.integers(0, 200))
    @settings(max_examples=10, deadline=None)
    def test_paths_spell_haplotypes_exactly(self, seed):
        pangenome = simulate_graph_pangenome(
            genome_length=2000, n_haplotypes=4, seed=seed
        )
        for haplotype in pangenome.haplotypes:
            assert pangenome.graph.path_sequence(haplotype.name) == haplotype.sequence
        assert (
            pangenome.graph.path_sequence(pangenome.reference.name)
            == pangenome.reference.sequence
        )

    def test_graph_is_acyclic_without_svs(self):
        from repro.sequence.mutate import VariantRates

        rates = VariantRates(inversion=0.0, duplication=0.0)
        pangenome = simulate_graph_pangenome(
            genome_length=3000, n_haplotypes=4, seed=5, rates=rates
        )
        assert is_acyclic(pangenome.graph)

    def test_more_haplotypes_more_nodes(self):
        small = simulate_graph_pangenome(genome_length=3000, n_haplotypes=2, seed=1)
        large = simulate_graph_pangenome(genome_length=3000, n_haplotypes=8, seed=1)
        assert large.graph.node_count > small.graph.node_count
