"""Sequence graph model: construction rules and accessors."""

import pytest

from repro.errors import GraphError
from repro.graph.model import GraphStats, Node, Path, SequenceGraph


def bubble_graph():
    """A -> (C | G) -> T with two paths."""
    graph = SequenceGraph()
    graph.add_node(0, "A")
    graph.add_node(1, "C")
    graph.add_node(2, "G")
    graph.add_node(3, "T")
    graph.add_edge(0, 1)
    graph.add_edge(0, 2)
    graph.add_edge(1, 3)
    graph.add_edge(2, 3)
    graph.add_path("left", [0, 1, 3])
    graph.add_path("right", [0, 2, 3])
    return graph


class TestConstruction:
    def test_duplicate_node_rejected(self):
        graph = SequenceGraph()
        graph.add_node(0, "A")
        with pytest.raises(GraphError):
            graph.add_node(0, "C")

    def test_edge_requires_nodes(self):
        graph = SequenceGraph()
        graph.add_node(0, "A")
        with pytest.raises(GraphError):
            graph.add_edge(0, 1)

    def test_edge_idempotent(self):
        graph = SequenceGraph()
        graph.add_node(0, "A")
        graph.add_node(1, "C")
        graph.add_edge(0, 1)
        graph.add_edge(0, 1)
        assert graph.edge_count == 1

    def test_path_requires_edges(self):
        graph = SequenceGraph()
        graph.add_node(0, "A")
        graph.add_node(1, "C")
        with pytest.raises(GraphError):
            graph.add_path("p", [0, 1])

    def test_path_requires_known_nodes(self):
        graph = SequenceGraph()
        graph.add_node(0, "A")
        with pytest.raises(GraphError):
            graph.add_path("p", [0, 9])

    def test_duplicate_path_rejected(self):
        graph = bubble_graph()
        with pytest.raises(GraphError):
            graph.add_path("left", [0, 1, 3])

    def test_empty_path_rejected(self):
        with pytest.raises(GraphError):
            Path("p", ())

    def test_negative_node_id_rejected(self):
        with pytest.raises(GraphError):
            Node(-1, "A")


class TestAccessors:
    def test_counts(self):
        graph = bubble_graph()
        assert graph.node_count == 4
        assert graph.edge_count == 4
        assert graph.path_count == 2
        assert graph.total_sequence_length == 4

    def test_adjacency(self):
        graph = bubble_graph()
        assert graph.successors(0) == [1, 2]
        assert graph.predecessors(3) == [1, 2]
        assert graph.out_degree(0) == 2
        assert graph.in_degree(0) == 0

    def test_sources_sinks(self):
        graph = bubble_graph()
        assert graph.sources() == [0]
        assert graph.sinks() == [3]

    def test_path_sequence(self):
        graph = bubble_graph()
        assert graph.path_sequence("left") == "ACT"
        assert graph.path_sequence("right") == "AGT"
        assert graph.path_length("left") == 3

    def test_unknown_lookups_raise(self):
        graph = bubble_graph()
        with pytest.raises(GraphError):
            graph.node(99)
        with pytest.raises(GraphError):
            graph.path("missing")
        with pytest.raises(GraphError):
            graph.successors(99)

    def test_copy_is_independent(self):
        graph = bubble_graph()
        clone = graph.copy()
        clone.add_node(10, "AAAA")
        assert 10 not in graph
        assert clone.node_count == graph.node_count + 1

    def test_validate_passes(self):
        bubble_graph().validate()

    def test_remove_path(self):
        graph = bubble_graph()
        graph.remove_path("left")
        assert graph.path_count == 1
        with pytest.raises(GraphError):
            graph.remove_path("left")


class TestStats:
    def test_graph_stats(self):
        stats = GraphStats.of(bubble_graph())
        assert stats.node_count == 4
        assert stats.mean_node_length == 1.0
        assert stats.max_out_degree == 2
        assert stats.source_count == 1
