"""Shared fixtures: a small deterministic corpus reused across tests."""

import pytest

from repro.graph.builder import simulate_graph_pangenome
from repro.kernels.datasets import suite_data


TEST_SCALE = 0.25


@pytest.fixture(scope="session")
def small_suite():
    """The shared kernel corpus at test scale (memoized library-side)."""
    return suite_data(TEST_SCALE, 0)


@pytest.fixture(scope="session")
def small_graph_pangenome():
    """A small ground-truth variation graph + consistent haplotypes."""
    return simulate_graph_pangenome(genome_length=4000, n_haplotypes=4, seed=11)
