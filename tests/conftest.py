"""Shared fixtures: a small deterministic corpus reused across tests."""

import pytest

from repro.data import ArtifactStore, corpus, set_default_store
from repro.graph.builder import simulate_graph_pangenome


TEST_SCALE = 0.25


@pytest.fixture(scope="session", autouse=True)
def _isolated_dataset_store(tmp_path_factory):
    """Resolve datasets against a session-private artifact store.

    Keeps the test run from reading (or polluting) the repository's
    ``benchmarks/datasets/`` cache, and makes the first build of each
    corpus deterministic — every session starts cold.
    """
    store = ArtifactStore(tmp_path_factory.mktemp("datasets"))
    set_default_store(store)
    yield store
    set_default_store(None)


@pytest.fixture(scope="session")
def small_suite(_isolated_dataset_store):
    """The shared kernel corpus at test scale (memoized store-side)."""
    return corpus("default", TEST_SCALE, 0)


@pytest.fixture(scope="session")
def small_graph_pangenome():
    """A small ground-truth variation graph + consistent haplotypes."""
    return simulate_graph_pangenome(genome_length=4000, n_haplotypes=4, seed=11)
