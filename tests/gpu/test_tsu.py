"""TSU: exact distances plus the divergence signature of Figure 9."""

import pytest

from repro.align.myers import edit_distance
from repro.errors import SimulationError
from repro.gpu.tsu import cpu_wfa_time_model, tsu_align_batch
from repro.kernels.datasets import tsu_pairs


class TestTSU:
    def test_distances_exact(self):
        pairs = tsu_pairs(3, 250, error_rate=0.02, seed=1)
        result = tsu_align_batch(pairs)
        for (a, b), got in zip(pairs, result.distances):
            assert got == edit_distance(a, b)

    def test_single_lane_fraction_grows_with_length(self):
        short = tsu_align_batch(tsu_pairs(3, 128, seed=2))
        long = tsu_align_batch(tsu_pairs(3, 2000, seed=2))
        assert (
            long.single_lane_extend_fraction > short.single_lane_extend_fraction
        )

    def test_warp_utilization_drops_with_length(self):
        short = tsu_align_batch(tsu_pairs(3, 128, seed=3))
        long = tsu_align_batch(tsu_pairs(3, 2000, seed=3))
        assert long.report.warp_utilization < short.report.warp_utilization

    def test_occupancy_one_third(self):
        result = tsu_align_batch(tsu_pairs(2, 200, seed=4))
        assert abs(result.report.theoretical_occupancy - 1 / 3) < 0.01

    def test_empty_batch_rejected(self):
        with pytest.raises(SimulationError):
            tsu_align_batch([])

    def test_wrong_block_size_rejected(self):
        with pytest.raises(SimulationError):
            tsu_align_batch(tsu_pairs(1, 100, seed=5), block_size=64)

    def test_cpu_model_scales_with_work(self):
        small = cpu_wfa_time_model(tsu_pairs(2, 200, seed=6))
        large = cpu_wfa_time_model(tsu_pairs(2, 800, seed=6))
        assert large > small
