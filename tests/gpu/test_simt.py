"""SIMT accounting: occupancy limits, coalescing, reports."""

import pytest

from repro.errors import SimulationError
from repro.gpu.simt import A6000, GPUKernelRun, occupancy_for


class TestOccupancy:
    def test_tsu_configuration(self):
        # 32-thread blocks, block-count-limited: 16 blocks/SM = 512 threads
        occupancy = occupancy_for(A6000, block_size=32, registers_per_thread=40)
        assert occupancy.blocks_per_sm == 16
        assert abs(occupancy.theoretical - 1 / 3) < 0.01
        assert occupancy.limited_by == "blocks"

    def test_pgsgd_configuration(self):
        # 1024-thread blocks at 44 regs: register/thread-limited to 1 block
        occupancy = occupancy_for(A6000, block_size=1024, registers_per_thread=44)
        assert occupancy.blocks_per_sm == 1
        assert abs(occupancy.theoretical - 2 / 3) < 0.01

    def test_block_256_pgsgd(self):
        occupancy = occupancy_for(A6000, block_size=256, registers_per_thread=44)
        assert occupancy.blocks_per_sm == 5
        assert abs(occupancy.theoretical - 5 / 6) < 0.01

    def test_bad_block_size_rejected(self):
        with pytest.raises(SimulationError):
            occupancy_for(A6000, block_size=33, registers_per_thread=32)

    def test_impossible_config_rejected(self):
        with pytest.raises(SimulationError):
            occupancy_for(A6000, block_size=1024, registers_per_thread=100)


class TestCoalescing:
    def test_sequential_addresses_coalesce(self):
        run = GPUKernelRun("t", n_blocks=1)
        run.memory([i * 4 for i in range(32)])  # 128 contiguous bytes
        assert run.memory_transactions == 4

    def test_scattered_addresses_do_not(self):
        run = GPUKernelRun("t", n_blocks=1)
        run.memory([i * 4096 for i in range(32)])
        assert run.memory_transactions == 32

    def test_empty_access_ignored(self):
        run = GPUKernelRun("t", n_blocks=1)
        run.memory([])
        assert run.memory_transactions == 0


class TestReport:
    def test_warp_utilization(self):
        run = GPUKernelRun("t", n_blocks=1)
        run.issue(32, count=10)
        run.issue(1, count=10)
        report = run.report()
        assert abs(report.warp_utilization - (33 / 64)) < 0.01

    def test_empty_run_rejected(self):
        run = GPUKernelRun("t", n_blocks=1)
        with pytest.raises(SimulationError):
            run.report()

    def test_more_blocks_faster(self):
        def make(n_blocks):
            run = GPUKernelRun("t", n_blocks=n_blocks)
            for _ in range(n_blocks):
                run.issue(32, count=100)
            return run.report()

        few = make(2)
        many = make(84)
        # same per-block work: many blocks spread across SMs
        assert many.time_ms <= few.time_ms * 84 / 2 * 1.01

    def test_lane_bounds_checked(self):
        run = GPUKernelRun("t", n_blocks=1)
        with pytest.raises(SimulationError):
            run.issue(0)
        with pytest.raises(SimulationError):
            run.issue(40)
