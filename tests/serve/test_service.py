"""BenchService: the async job API, caching, admission control, obs."""

from __future__ import annotations

import threading
import time

import pytest
from serveutil import make_job, ok_report

from repro.errors import (
    KernelError,
    ServeError,
    ServeTimeout,
    ServiceOverloaded,
)
from repro.obs import trace
from repro.obs.spans import Tracer
from repro.serve import (
    CACHED,
    DONE,
    EXECUTED,
    QUEUED,
    BenchService,
    ShardedResultStore,
    counter_total,
)


def counting_runner(calls: list, delay: float = 0.0):
    """A runner that records each executed job and returns an ok report."""

    def run(job):
        calls.append(job)
        if delay:
            time.sleep(delay)
        return ok_report(job)

    return run


class TestAsyncJobAPI:
    def test_submit_returns_immediately_wait_returns_report(self, tmp_path):
        calls = []
        with BenchService(workers=1, isolation="inline",
                          store=ShardedResultStore(tmp_path),
                          runner=counting_runner(calls, delay=0.05)) as svc:
            handle = svc.submit_job(make_job(seed=1))
            report = handle.wait(timeout=10)
        assert report.kernel == "fake-ok"
        assert handle.done
        assert handle.origin == EXECUTED
        assert handle.poll().state == DONE
        assert handle.latency_seconds is not None
        assert handle.latency_seconds >= 0.05
        assert len(calls) == 1

    def test_poll_reports_queued_before_start(self, tmp_path):
        svc = BenchService(workers=1, isolation="inline",
                           store=ShardedResultStore(tmp_path),
                           runner=counting_runner([]), autostart=False)
        handle = svc.submit_job(make_job())
        assert handle.poll().state == QUEUED
        assert not handle.done
        svc.start()
        handle.wait(timeout=10)
        svc.shutdown()

    def test_wait_timeout_raises_serve_timeout(self, tmp_path):
        svc = BenchService(workers=1, isolation="inline",
                           store=ShardedResultStore(tmp_path),
                           runner=counting_runner([]), autostart=False)
        handle = svc.submit_job(make_job())
        with pytest.raises(ServeTimeout, match="queued"):
            handle.wait(timeout=0.05)
        svc.start()
        handle.wait(timeout=10)
        svc.shutdown()

    def test_subscribe_before_and_after_resolution(self, tmp_path):
        seen = []
        svc = BenchService(workers=1, isolation="inline",
                           store=ShardedResultStore(tmp_path),
                           runner=counting_runner([]), autostart=False)
        handle = svc.submit_job(make_job())
        handle.subscribe(lambda report: seen.append(("early", report.kernel)))
        svc.start()
        handle.wait(timeout=10)
        handle.subscribe(lambda report: seen.append(("late", report.kernel)))
        svc.shutdown()
        assert seen == [("early", "fake-ok"), ("late", "fake-ok")]

    def test_subscriber_exception_does_not_kill_worker(self, tmp_path):
        def explode(_report):
            raise RuntimeError("subscriber bug")

        with BenchService(workers=1, isolation="inline",
                          store=ShardedResultStore(tmp_path),
                          runner=counting_runner([])) as svc:
            first = svc.submit_job(make_job(seed=1))
            first.subscribe(explode)
            first.wait(timeout=10)
            # The worker survived and still serves the next job.
            second = svc.submit_job(make_job(seed=2))
            assert second.wait(timeout=10).error is None

    def test_submit_validates_kernel_name(self, tmp_path):
        with BenchService(workers=1, isolation="inline",
                          store=ShardedResultStore(tmp_path),
                          runner=counting_runner([])) as svc:
            with pytest.raises(KernelError):
                svc.submit("no-such-kernel")

    def test_submit_after_shutdown_rejected(self, tmp_path):
        svc = BenchService(workers=1, isolation="inline",
                           store=ShardedResultStore(tmp_path),
                           runner=counting_runner([]))
        svc.shutdown()
        with pytest.raises(ServeError, match="shutting down"):
            svc.submit_job(make_job())

    def test_constructor_validation(self):
        with pytest.raises(ServeError):
            BenchService(workers=0, autostart=False)
        with pytest.raises(ServeError):
            BenchService(isolation="container", autostart=False)

    def test_stats_snapshot(self, tmp_path):
        with BenchService(workers=3, isolation="inline",
                          store=ShardedResultStore(tmp_path),
                          runner=counting_runner([])) as svc:
            svc.submit_job(make_job()).wait(timeout=10)
            stats = svc.stats()
        assert stats["workers"] == 3
        assert stats["queued"] == 0
        assert stats["inflight"] == 0
        assert counter_total(stats["metrics"], "serve.submitted") == 1


class TestResultCaching:
    def test_cache_hit_resolves_without_execution(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        job = make_job(seed=3)
        store.save(job, ok_report(job))
        calls = []
        with BenchService(workers=1, isolation="inline", store=store,
                          runner=counting_runner(calls)) as svc:
            handle = svc.submit_job(job)
            report = handle.wait(timeout=10)
        assert handle.origin == CACHED
        assert report.kernel == job.kernel
        assert calls == []
        exported = svc.metrics.as_dict()
        assert counter_total(exported, "serve.cache_hits") == 1
        assert counter_total(exported, "serve.executed") == 0

    def test_execution_populates_cache_for_next_submission(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        calls = []
        job = make_job(seed=4)
        with BenchService(workers=1, isolation="inline", store=store,
                          runner=counting_runner(calls)) as svc:
            svc.submit_job(job).wait(timeout=10)
            rerun = svc.submit_job(job)
            rerun.wait(timeout=10)
        assert len(calls) == 1
        assert rerun.origin == CACHED

    def test_failed_report_is_not_cached(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        job = make_job(seed=5)

        def crash(_job):
            raise RuntimeError("boom")

        with BenchService(workers=1, isolation="inline", store=store,
                          runner=crash) as svc:
            report = svc.submit_job(job).wait(timeout=10)
        assert report.error == "RuntimeError: boom"
        assert store.load(job) is None
        exported = svc.metrics.as_dict()
        assert counter_total(exported, "serve.executed") == 1

    def test_reuse_false_always_executes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        calls = []
        job = make_job(seed=6)
        with BenchService(workers=1, isolation="inline", reuse=False,
                          runner=counting_runner(calls)) as svc:
            svc.submit_job(job).wait(timeout=10)
            handle = svc.submit_job(job)
            handle.wait(timeout=10)
        assert len(calls) == 2
        assert handle.origin == EXECUTED


class TestAdmissionControl:
    def test_overload_rejected_with_retry_after(self, tmp_path):
        svc = BenchService(workers=1, max_queue=2, isolation="inline",
                           store=ShardedResultStore(tmp_path),
                           runner=counting_runner([]), autostart=False)
        svc.submit_job(make_job(seed=1))
        svc.submit_job(make_job(seed=2))
        with pytest.raises(ServiceOverloaded) as excinfo:
            svc.submit_job(make_job(seed=3))
        assert excinfo.value.retry_after > 0
        exported = svc.metrics.as_dict()
        assert counter_total(exported, "serve.rejected") == 1
        svc.start()
        svc.shutdown()

    def test_duplicates_and_hits_bypass_admission_control(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        cached_job = make_job(seed=9)
        store.save(cached_job, ok_report(cached_job))
        svc = BenchService(workers=1, max_queue=1, isolation="inline",
                           store=store, runner=counting_runner([]),
                           autostart=False)
        queued = svc.submit_job(make_job(seed=1))  # fills the queue
        # A duplicate coalesces rather than occupying a queue slot...
        dup = svc.submit_job(make_job(seed=1))
        # ...and a cache hit never touches the queue at all.
        hit = svc.submit_job(cached_job)
        assert dup.origin == "coalesced"
        assert hit.origin == CACHED
        svc.start()
        queued.wait(timeout=10)
        svc.shutdown()

    def test_retry_after_tracks_backlog(self, tmp_path):
        svc = BenchService(workers=2, max_queue=0, isolation="inline",
                           store=ShardedResultStore(tmp_path),
                           runner=counting_runner([]), autostart=False)
        with pytest.raises(ServiceOverloaded) as shallow:
            svc.submit_job(make_job(seed=1))
        svc.max_queue = 4
        svc.submit_job(make_job(seed=2))
        svc.submit_job(make_job(seed=3))
        svc.submit_job(make_job(seed=4))
        svc.submit_job(make_job(seed=5))
        with pytest.raises(ServiceOverloaded) as deep:
            svc.submit_job(make_job(seed=6))
        assert deep.value.retry_after > shallow.value.retry_after
        svc.start()
        svc.shutdown()


class TestObservability:
    def test_spans_and_latency_histograms(self, tmp_path):
        tracer = Tracer()
        job = make_job(seed=7)
        with trace.use(tracer):
            with BenchService(workers=1, isolation="inline",
                              store=ShardedResultStore(tmp_path),
                              runner=counting_runner([], delay=0.01)) as svc:
                svc.submit_job(job).wait(timeout=10)
                svc.submit_job(job).wait(timeout=10)  # warm: cache hit
        names = [record["name"] for record in tracer.records()]
        assert any(name.startswith("serve/execute/") for name in names)
        assert any(name.startswith("serve/queue-wait/") for name in names)
        exported = svc.metrics.as_dict()
        latency_series = [key for key in exported["histograms"]
                          if key.startswith("serve.latency_seconds")]
        assert any("origin=executed" in key for key in latency_series)
        assert any("origin=cached" in key for key in latency_series)
        total = sum(exported["histograms"][key]["count"]
                    for key in latency_series)
        assert total == 2

    def test_shutdown_merges_metrics_into_ambient_registry(self, tmp_path):
        from repro.obs import metrics as obs_metrics

        registry = obs_metrics.MetricsRegistry()
        with obs_metrics.use(registry):
            with BenchService(workers=1, isolation="inline",
                              store=ShardedResultStore(tmp_path),
                              runner=counting_runner([])) as svc:
                svc.submit_job(make_job()).wait(timeout=10)
        exported = registry.as_dict()
        assert counter_total(exported, "serve.submitted") == 1
        assert counter_total(exported, "serve.executed") == 1


class TestEngineExecution:
    """The real engine path (no injected runner) with fake kernels."""

    def test_inline_executes_registered_kernel(self, fake_kernels, tmp_path):
        with BenchService(workers=1, isolation="inline",
                          store=ShardedResultStore(tmp_path)) as svc:
            handle = svc.submit("fake-ok", studies=("timing",), scale=0.05)
            report = handle.wait(timeout=60)
        assert report.error is None
        assert report.kernel == "fake-ok"
        assert handle.origin == EXECUTED

    def test_worker_survives_crashing_kernel(self, fake_kernels, tmp_path):
        with BenchService(workers=1, isolation="inline",
                          store=ShardedResultStore(tmp_path)) as svc:
            crashed = svc.submit("fake-crash", scale=0.05)
            assert crashed.wait(timeout=60).error is not None
            healthy = svc.submit("fake-ok", scale=0.05)
            assert healthy.wait(timeout=60).error is None

    def test_process_isolation_enforces_timeout(self, fake_kernels, tmp_path):
        with BenchService(workers=1, isolation="process", timeout=1.0,
                          store=ShardedResultStore(tmp_path)) as svc:
            handle = svc.submit("fake-hang", scale=0.05)
            report = handle.wait(timeout=60)
        assert report.error is not None
        assert "Timeout" in report.error
        # Timed-out reports are failures: never cached.
        assert ShardedResultStore(tmp_path).load(handle.job) is None


class TestConcurrency:
    def test_parallel_workers_drain_distinct_jobs(self, tmp_path):
        started = []
        gate = threading.Event()

        def runner(job):
            started.append(job.seed)
            gate.wait(timeout=10)
            return ok_report(job)

        with BenchService(workers=4, isolation="inline",
                          store=ShardedResultStore(tmp_path),
                          runner=runner) as svc:
            handles = [svc.submit_job(make_job(seed=seed))
                       for seed in range(4)]
            deadline = time.time() + 10
            while len(started) < 4 and time.time() < deadline:
                time.sleep(0.01)
            # All four distinct jobs run concurrently before any finishes.
            assert sorted(started) == [0, 1, 2, 3]
            gate.set()
            for handle in handles:
                assert handle.wait(timeout=10).error is None
