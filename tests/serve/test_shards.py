"""ShardedResultStore: layout, migration, LRU eviction, budgets, gc."""

from __future__ import annotations

import json

from serveutil import make_job, ok_report

from repro.harness.store import (
    ResultStore,
    default_result_store,
    job_digest,
)
from repro.obs import metrics as obs_metrics
from repro.serve.shards import ShardedResultStore


def populate(store: ShardedResultStore, count: int, **job_kwargs) -> list:
    """Save *count* distinct reports; returns their jobs in save order."""
    jobs = [make_job(seed=seed, **job_kwargs) for seed in range(count)]
    for job in jobs:
        store.save(job, ok_report(job))
    return jobs


class TestShardedLayout:
    def test_entries_land_in_digest_prefix_shards(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        job = make_job()
        path = store.save(job, ok_report(job))
        digest = job_digest(job)
        assert path == tmp_path / digest[:2] / f"{digest}.json"
        assert path.is_file()
        assert (tmp_path / "index.json").is_file()

    def test_load_roundtrip_across_instances(self, tmp_path):
        job = make_job(seed=11)
        ShardedResultStore(tmp_path).save(job, ok_report(job))
        loaded = ShardedResultStore(tmp_path).load(job)
        assert loaded is not None
        assert loaded.kernel == job.kernel
        assert loaded.error is None

    def test_miss_returns_none(self, tmp_path):
        assert ShardedResultStore(tmp_path).load(make_job()) is None

    def test_failed_reports_are_never_stored(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        job = make_job()
        assert store.save(job, ok_report(job, error="RuntimeError: x")) is None
        assert store.load(job) is None
        assert store.entries() == []

    def test_clear_removes_shards_and_index(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        populate(store, 3)
        assert store.clear() == 3
        assert not (tmp_path / "index.json").exists()
        assert not any(tmp_path.glob("??/*.json"))
        assert store.entries() == []


class TestFlatMigration:
    def test_valid_flat_entries_move_into_shards(self, tmp_path):
        # Seed the old layout with the pre-shard store implementation.
        flat = ResultStore(tmp_path)
        jobs = [make_job(seed=seed) for seed in range(3)]
        for job in jobs:
            flat.save(job, ok_report(job))
        assert len(list(tmp_path.glob("*.json"))) == 3

        registry = obs_metrics.MetricsRegistry()
        with obs_metrics.use(registry):
            store = ShardedResultStore(tmp_path)
            for job in jobs:  # every migrated report is still served
                assert store.load(job) is not None
        # No flat entries remain (only the index), all live in shards.
        assert {p.name for p in tmp_path.glob("*.json")} == {"index.json"}
        for job in jobs:
            assert store.path(job).is_file()
        moved = registry.as_dict()["counters"][
            "serve.cache.migrated{outcome=moved}"]
        assert moved == 3

    def test_unservable_flat_entries_are_cleanly_invalidated(self, tmp_path):
        corrupt = tmp_path / "deadbeefdeadbeef.json"
        corrupt.write_text("{not json")
        stale = tmp_path / "feedfacefeedface.json"
        stale.write_text(json.dumps({"schema_version": -1, "report": {}}))
        foreign = tmp_path / "notes.json"
        foreign.write_text("{}")

        registry = obs_metrics.MetricsRegistry()
        with obs_metrics.use(registry):
            store = ShardedResultStore(tmp_path)
            assert store.load(make_job()) is None  # no stale-path crash
        assert not corrupt.exists()
        assert not stale.exists()
        assert not foreign.exists()
        invalidated = registry.as_dict()["counters"][
            "serve.cache.migrated{outcome=invalidated}"]
        assert invalidated == 3
        assert store.entries() == []


class TestLRUEviction:
    def test_least_recently_used_evicted_first(self, tmp_path):
        store = ShardedResultStore(tmp_path, max_entries=2,
                                   background_eviction=False)
        first, second = populate(store, 2)
        assert store.load(first) is not None  # touch: first is now MRU
        third = make_job(seed=2)
        store.save(third, ok_report(third))  # over budget -> evict LRU
        assert store.load(second) is None
        assert store.load(first) is not None
        assert store.load(third) is not None
        assert len(store.entries()) == 2

    def test_entries_listed_most_recent_first(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        jobs = populate(store, 3)
        store.load(jobs[0])
        listed = store.entries()
        assert listed[0]["digest"] == job_digest(jobs[0])
        assert {meta["digest"] for meta in listed} == {
            job_digest(job) for job in jobs
        }

    def test_byte_budget_enforced(self, tmp_path):
        unbounded = ShardedResultStore(tmp_path)
        populate(unbounded, 4)
        total = unbounded.total_bytes()
        per_entry = total // 4
        bounded = ShardedResultStore(tmp_path, max_bytes=2 * per_entry + 1,
                                     background_eviction=False)
        removed, freed = bounded.evict()
        assert removed == 2
        assert freed > 0
        assert bounded.total_bytes() <= 2 * per_entry + 1
        assert len(bounded.entries()) == 2

    def test_background_eviction_runs_off_thread(self, tmp_path):
        store = ShardedResultStore(tmp_path, max_entries=1,
                                   background_eviction=True)
        populate(store, 3)
        store.join_eviction()
        # Possibly several background passes; the budget always wins.
        store.evict()
        assert len(store.entries()) == 1

    def test_eviction_metrics(self, tmp_path):
        registry = obs_metrics.MetricsRegistry()
        with obs_metrics.use(registry):
            store = ShardedResultStore(tmp_path, max_entries=1,
                                       background_eviction=False)
            populate(store, 3)
        exported = registry.as_dict()
        assert exported["counters"]["serve.cache.evictions"] == 2
        assert exported["gauges"]["serve.cache.bytes"] > 0

    def test_env_budget_knobs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "7")
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "not-a-number")
        store = ShardedResultStore(tmp_path)
        assert store.max_entries == 7
        assert store.max_bytes is None  # unparsable -> unbounded


class TestIndexResilience:
    def test_corrupt_index_is_rebuilt_from_shards(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        jobs = populate(store, 3)
        (tmp_path / "index.json").write_text("}}garbage{{")
        fresh = ShardedResultStore(tmp_path)
        assert len(fresh.entries()) == 3
        for job in jobs:
            assert fresh.load(job) is not None

    def test_missing_index_is_rebuilt(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        jobs = populate(store, 2)
        (tmp_path / "index.json").unlink()
        assert len(ShardedResultStore(tmp_path).entries()) == 2
        assert ShardedResultStore(tmp_path).load(jobs[0]) is not None


class TestGC:
    def test_gc_drops_unservable_and_adopts_orphans(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        jobs = populate(store, 2)
        # An unservable shard file (corrupt payload)...
        bad = tmp_path / "ab" / "abadcafe0badcafe.json"
        bad.parent.mkdir(exist_ok=True)
        bad.write_text("{corrupt")
        # ...an orphan index row (file deleted behind the index)...
        store.path(jobs[0]).unlink()
        # ...and an orphan file (a valid report on disk, never indexed).
        orphan_job = make_job(seed=77)
        elsewhere = ShardedResultStore(tmp_path / "elsewhere")
        written = elsewhere.save(orphan_job, ok_report(orphan_job))
        orphan_path = store.path(orphan_job)
        orphan_path.parent.mkdir(exist_ok=True)
        orphan_path.write_text(written.read_text())

        removed, _freed = store.gc()
        assert removed >= 1
        assert not bad.exists()
        digests = {meta["digest"] for meta in store.entries()}
        assert job_digest(jobs[0]) not in digests   # orphan row dropped
        assert job_digest(jobs[1]) in digests
        assert job_digest(orphan_job) in digests    # orphan file adopted
        assert store.load(orphan_job) is not None

    def test_gc_everything_clears_the_store(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        populate(store, 3)
        removed, freed = store.gc(everything=True)
        assert removed == 3
        assert freed > 0
        assert store.entries() == []


class TestDefaultStore:
    def test_default_result_store_is_sharded_and_env_rooted(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store = default_result_store()
        assert isinstance(store, ShardedResultStore)
        assert store.root == tmp_path
        job = make_job(seed=42)
        store.save(job, ok_report(job))
        assert store.path(job).parent.name == job_digest(job)[:2]
