"""Load generator: seeded traces, duplicate accounting, replay driver."""

from __future__ import annotations

import pytest
from serveutil import ok_report

from repro.harness.store import job_digest
from repro.serve import (
    BenchService,
    ShardedResultStore,
    TraceSpec,
    duplicate_fraction,
    generate_requests,
    replay,
    working_set,
)

#: A small, fast spec — validation only (no execution) plus fake-runner
#: replays keep these tests sub-second.
SMALL = TraceSpec(requests=80, seed=3, dataset_seeds=(0, 1), scale=0.05)


class TestTraceGeneration:
    def test_working_set_is_kernels_times_dataset_seeds(self):
        jobs = working_set(SMALL)
        assert len(jobs) == len(SMALL.kernels) * len(SMALL.dataset_seeds)
        assert len({job_digest(job) for job in jobs}) == len(jobs)

    def test_trace_is_a_pure_function_of_its_seed(self):
        first = [job_digest(job) for job in generate_requests(SMALL)]
        second = [job_digest(job) for job in generate_requests(SMALL)]
        assert first == second
        reseeded = [job_digest(job) for job in
                    generate_requests(TraceSpec(
                        requests=80, seed=4, dataset_seeds=(0, 1),
                        scale=0.05))]
        assert reseeded != first

    def test_trace_length_and_membership(self):
        trace = generate_requests(SMALL)
        assert len(trace) == SMALL.requests
        allowed = {job_digest(job) for job in working_set(SMALL)}
        assert {job_digest(job) for job in trace} <= allowed

    def test_bursts_inject_consecutive_duplicates(self):
        trace = generate_requests(SMALL)
        longest = run = 1
        for previous, current in zip(trace, trace[1:]):
            run = run + 1 if job_digest(previous) == job_digest(current) else 1
            longest = max(longest, run)
        assert longest >= SMALL.burst

    def test_burst_free_spec_has_no_injection(self):
        spec = TraceSpec(requests=40, seed=3, dataset_seeds=(0,),
                         scale=0.05, burst=0, burst_fraction=0.0)
        assert len(generate_requests(spec)) == 40

    def test_duplicate_fraction(self):
        trace = generate_requests(SMALL)
        unique = len({job_digest(job) for job in trace})
        assert duplicate_fraction(trace) == pytest.approx(
            1.0 - unique / len(trace))
        assert duplicate_fraction([]) == 0.0


class TestReplay:
    def test_replay_accounts_for_every_request(self, tmp_path):
        trace = generate_requests(SMALL)
        executions = []

        def runner(job):
            executions.append(job_digest(job))
            return ok_report(job)

        with BenchService(workers=2, isolation="inline",
                          store=ShardedResultStore(tmp_path),
                          runner=runner) as svc:
            result = replay(svc, trace)

        assert result.submitted == result.completed == len(trace)
        assert result.errors == 0
        # Conservation: every request either executed, coalesced onto an
        # in-flight execution, or hit the cache.
        assert (result.executed + result.coalesced + result.cache_hits
                == len(trace))
        # Each distinct job executed at most once (single-flight + cache).
        assert len(executions) == len(set(executions)) == result.executed
        assert len(result.latencies) == len(trace)
        assert result.percentile(99) >= result.percentile(50) >= 0.0
        assert result.rate("executed") == pytest.approx(
            result.executed / len(trace))

    def test_replay_retries_after_overload(self, tmp_path):
        import time

        def slow(job):
            time.sleep(0.05)
            return ok_report(job)

        spec = TraceSpec(requests=6, seed=0, kernels=("tsu",),
                         dataset_seeds=(0, 1, 2), scale=0.05,
                         burst=0, burst_fraction=0.0)
        distinct = working_set(spec)  # three distinct jobs
        trace = distinct * 2
        with BenchService(workers=1, max_queue=1, isolation="inline",
                          store=ShardedResultStore(tmp_path),
                          runner=slow) as svc:
            result = replay(svc, trace, wait_timeout=30)
        assert result.completed == len(trace)
        assert result.errors == 0
        # With a one-deep queue and a slow runner, at least one distinct
        # submission had to back off and retry.
        assert result.rejected >= 1
        assert result.retries == result.rejected
