"""Shared serve-test helpers (uniquely named — tests run unpackaged)."""

from __future__ import annotations

from repro.harness.executor import Job
from repro.harness.runner import KernelReport


def make_job(kernel: str = "fake-ok", seed: int = 0,
             scale: float = 0.05,
             studies: tuple[str, ...] = ("timing",)) -> Job:
    """A :class:`Job` built directly (no registry validation), for
    store/service tests that never execute a real kernel."""
    return Job(kernel=kernel, studies=studies, scale=scale, seed=seed)


def ok_report(job: Job, **extra) -> KernelReport:
    """A well-formed successful report for *job*."""
    return KernelReport(
        kernel=job.kernel, wall_seconds=0.01, inputs_processed=1,
        scale=job.scale, seed=job.seed, machine=job.cache_config.name,
        scenario=job.scenario, **extra,
    )
