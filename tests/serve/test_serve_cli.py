"""`repro serve submit` and `repro cache {list,gc}`."""

from __future__ import annotations

import json

from serveutil import make_job, ok_report

from repro.harness.cli import main
from repro.serve import ShardedResultStore


class TestServeSubmitCli:
    def test_duplicates_coalesce_and_metrics_dump(self, capsys, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        metrics_path = tmp_path / "serve-metrics.json"
        assert main([
            "serve", "submit", "tsu", "tsu",
            "--studies", "timing", "--scale", "0.05",
            "--workers", "1", "--isolation", "inline",
            "--metrics-out", str(metrics_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "executed" in out
        assert "submitted=2 executed=1 coalesced=1" in out

        exported = json.loads(metrics_path.read_text())
        executed = sum(value for key, value
                       in exported["counters"].items()
                       if key.startswith("serve.executed"))
        coalesced = sum(value for key, value
                        in exported["counters"].items()
                        if key.startswith("serve.coalesced"))
        assert executed == 1
        assert coalesced == 1

    def test_warm_rerun_serves_from_cache(self, capsys, tmp_path,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        argv = ["serve", "submit", "tsu", "--studies", "timing",
                "--scale", "0.05", "--workers", "1",
                "--isolation", "inline"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "cache_hits=1" in capsys.readouterr().out

    def test_unknown_kernel_fails_cleanly(self, capsys, tmp_path,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["serve", "submit", "no-such-kernel",
                     "--isolation", "inline"]) != 0


class TestCacheCli:
    def _populated(self, root, count=3):
        store = ShardedResultStore(root)
        for seed in range(count):
            job = make_job(seed=seed, kernel=f"fake-{seed}")
            store.save(job, ok_report(job))
        return store

    def test_list_shows_entries(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        self._populated(tmp_path)
        assert main(["cache", "list"]) == 0
        out = capsys.readouterr().out
        assert "fake-0" in out and "fake-2" in out
        assert str(tmp_path) in out

    def test_list_empty_store(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "fresh"))
        assert main(["cache", "list"]) == 0

    def test_gc_enforces_entry_budget(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        self._populated(tmp_path)
        assert main(["cache", "gc", "--max-entries", "1"]) == 0
        assert "removed 2 report(s)" in capsys.readouterr().out
        assert len(ShardedResultStore(tmp_path).entries()) == 1

    def test_gc_all_clears_everything(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        self._populated(tmp_path)
        assert main(["cache", "gc", "--all"]) == 0
        assert ShardedResultStore(tmp_path).entries() == []


class TestServeStatusCli:
    def test_status_against_a_live_endpoint(self, capsys):
        from repro.obs import metrics as obs_metrics
        from repro.obs.telemetry import TelemetryServer

        registry = obs_metrics.MetricsRegistry()
        registry.counter("serve.submitted", kernel="tc").inc()
        with TelemetryServer(registry=registry) as server:
            code = main(["serve", "status", "--url", server.url,
                         "--metrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "/healthz [200]" in out
        assert "/readyz [200]" in out
        assert 'serve_submitted_total{kernel="tc"} 1' in out

    def test_status_unreachable_exits_2(self, capsys):
        code = main(["serve", "status",
                     "--url", "http://127.0.0.1:1"])
        assert code == 2

    def test_submit_with_telemetry_port_prints_url(self, capsys, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main([
            "serve", "submit", "tsu", "--studies", "timing",
            "--scale", "0.05", "--workers", "1", "--isolation", "inline",
            "--telemetry-port", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry at http://127.0.0.1:" in out
        # The per-origin latency summary (interpolated quantiles).
        assert "latency[executed]: n=1 p50=" in out
        assert "p95=" in out and "p99=" in out
