"""Request coalescing: identical submissions share one execution.

The contention test runs in a subprocess so the whole stack — service
threads, the engine execution path, the sharded store, the metrics —
is exercised exactly as a real deployment would see it, and the proof
is read from the ``serve.executed`` / ``serve.coalesced`` counters the
service itself exports (not from test-side bookkeeping).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

from serveutil import make_job, ok_report

from repro.serve import (
    CACHED,
    COALESCED,
    EXECUTED,
    BenchService,
    ShardedResultStore,
    counter_total,
)

#: Source tree for subprocess imports (tests run without installation).
SRC = Path(__file__).resolve().parents[2] / "src"


class TestCoalescing:
    def test_inflight_duplicate_attaches_to_running_execution(self, tmp_path):
        gate = threading.Event()
        calls = []

        def runner(job):
            calls.append(job)
            gate.wait(timeout=10)
            return ok_report(job)

        with BenchService(workers=1, isolation="inline",
                          store=ShardedResultStore(tmp_path),
                          runner=runner) as svc:
            first = svc.submit_job(make_job())
            while not calls:  # first is genuinely mid-execution
                time.sleep(0.005)
            second = svc.submit_job(make_job())
            assert second.origin == COALESCED  # known at submit time
            gate.set()
            first_report = first.wait(timeout=10)
            second_report = second.wait(timeout=10)
        assert len(calls) == 1
        assert first.origin == EXECUTED
        # Both handles carry the single execution's report.
        assert first_report.kernel == second_report.kernel == "fake-ok"
        exported = svc.metrics.as_dict()
        assert counter_total(exported, "serve.executed") == 1
        assert counter_total(exported, "serve.coalesced") == 1

    def test_queued_duplicates_all_resolve_from_one_execution(self, tmp_path):
        calls = []
        svc = BenchService(workers=2, isolation="inline",
                           store=ShardedResultStore(tmp_path),
                           runner=lambda job: (calls.append(job),
                                               ok_report(job))[1],
                           autostart=False)
        handles = [svc.submit_job(make_job()) for _ in range(5)]
        svc.start()
        reports = [handle.wait(timeout=10) for handle in handles]
        svc.shutdown()
        assert len(calls) == 1
        origins = [handle.origin for handle in handles]
        assert origins.count(EXECUTED) == 1
        assert origins.count(COALESCED) == 4
        assert all(report.error is None for report in reports)
        exported = svc.metrics.as_dict()
        assert counter_total(exported, "serve.submitted") == 5
        assert counter_total(exported, "serve.executed") == 1
        assert counter_total(exported, "serve.coalesced") == 4

    def test_distinct_jobs_do_not_coalesce(self, tmp_path):
        calls = []
        svc = BenchService(workers=2, isolation="inline",
                           store=ShardedResultStore(tmp_path),
                           runner=lambda job: (calls.append(job),
                                               ok_report(job))[1],
                           autostart=False)
        handles = [svc.submit_job(make_job(seed=seed)) for seed in range(3)]
        svc.start()
        for handle in handles:
            handle.wait(timeout=10)
        svc.shutdown()
        assert len(calls) == 3
        assert all(handle.origin == EXECUTED for handle in handles)


#: Submits N identical real-engine requests before the workers start,
#: so every duplicate is provably concurrent with the one execution,
#: then prints the counter totals the parent asserts on.
_CONTENTION_SCRIPT = """
import json, sys
from repro.serve import BenchService, ShardedResultStore, counter_total

cache_dir, n = sys.argv[1], int(sys.argv[2])
service = BenchService(workers=4, store=ShardedResultStore(cache_dir),
                       autostart=False)
handles = [service.submit("tsu", studies=("timing",), scale=0.05)
           for _ in range(n)]
service.start()
reports = [handle.wait(timeout=240) for handle in handles]
service.shutdown()
exported = service.metrics.as_dict()
print(json.dumps({
    "errors": sum(1 for report in reports if report.error is not None),
    "origins": sorted(handle.origin for handle in handles),
    "submitted": counter_total(exported, "serve.submitted"),
    "executed": counter_total(exported, "serve.executed"),
    "coalesced": counter_total(exported, "serve.coalesced"),
    "cache_hits": counter_total(exported, "serve.cache_hits"),
}))
"""


def _run_contention(cache_dir: Path, n: int) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", textwrap.dedent(_CONTENTION_SCRIPT),
         str(cache_dir), str(n)],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout.strip().splitlines()[-1])


class TestCoalescingUnderContention:
    def test_concurrent_identical_submissions_share_one_execution(
            self, tmp_path):
        n = 6
        cold = _run_contention(tmp_path / "cache", n)
        assert cold["errors"] == 0
        assert cold["submitted"] == n
        # The dedup proof, from the service's own metrics: exactly one
        # real execution, every other submission coalesced onto it.
        assert cold["executed"] == 1
        assert cold["coalesced"] == n - 1
        assert cold["origins"].count(EXECUTED) == 1
        assert cold["origins"].count(COALESCED) == n - 1

        # A second process against the same store executes nothing:
        # the one cached report serves every request.
        warm = _run_contention(tmp_path / "cache", n)
        assert warm["errors"] == 0
        assert warm["executed"] == 0
        assert warm["coalesced"] == 0
        assert warm["cache_hits"] == n
        assert warm["origins"] == [CACHED] * n
