"""Cross-process trace stitching: one trace id per submission, from the
service's submit span through the child worker's kernel spans."""

import json
import os

import pytest

from repro.harness.cli import main
from repro.obs import trace
from repro.obs.context import stitch_trace, trace_ids
from repro.obs.spans import Tracer
from repro.serve.service import COALESCED, EXECUTED, BenchService
from serveutil import make_job, ok_report


@pytest.mark.usefixtures("fake_kernels")
class TestCrossProcessStitching:
    def test_one_trace_id_from_submit_to_child_kernel_spans(self):
        tracer = Tracer()
        with trace.use(tracer):
            with BenchService(workers=1, isolation="process",
                              store=None, reuse=False) as service:
                handle = service.submit("fake-ok", studies=("timing",),
                                        scale=0.05)
                report = handle.wait(timeout=60)
        assert report.error is None
        assert handle.origin == EXECUTED
        assert handle.trace_id

        stitched = stitch_trace(handle.trace_id, tracer.records(),
                                report.spans)
        names = {record["name"] for record in stitched}
        # Service-side spans (parent process)...
        assert "serve/submit/fake-ok" in names
        assert "serve/execute/fake-ok" in names
        # ...and kernel spans recorded inside the worker process.
        assert "kernel/fake-ok/prepare" in names
        assert "kernel/fake-ok/execute" in names

        pids = {record.get("pid") for record in stitched}
        assert len(pids) >= 2, "expected spans from parent and child"
        assert all(record.get("trace") == handle.trace_id
                   for record in stitched)

        # Child-side roots point back at the submit record, so the
        # stitched view is one tree per request, not a forest.
        submit_id = next(r["id"] for r in stitched
                         if r["name"] == "serve/submit/fake-ok")
        child_roots = [r for r in stitched
                       if r.get("pid") != os.getpid()
                       and r.get("parent", -1) == -1]
        assert child_roots
        assert all(r.get("parent_span") == submit_id for r in child_roots)

    def test_distinct_submissions_get_distinct_traces(self):
        tracer = Tracer()
        with trace.use(tracer):
            with BenchService(workers=1, isolation="process",
                              store=None, reuse=False) as service:
                first = service.submit("fake-ok", scale=0.05, seed=1)
                second = service.submit("fake-ok", scale=0.05, seed=2)
                first.wait(timeout=60)
                second.wait(timeout=60)
        assert first.trace_id != second.trace_id
        ids = trace_ids(tracer.records())
        assert first.trace_id in ids and second.trace_id in ids


@pytest.mark.usefixtures("fake_kernels")
class TestLinkSpans:
    def test_coalesced_request_links_to_executing_trace(self):
        tracer = Tracer()
        with trace.use(tracer):
            service = BenchService(workers=1, isolation="inline",
                                   store=None, reuse=False,
                                   runner=ok_report, autostart=False)
            leader = service.submit_job(make_job(seed=7))
            follower = service.submit_job(make_job(seed=7))
            assert follower.origin == COALESCED
            service.start()
            leader.wait(timeout=10)
            follower.wait(timeout=10)
            service.shutdown()

        assert follower.trace_id != leader.trace_id
        link = next(r for r in tracer.records()
                    if r["name"] == "serve/coalesce/fake-ok")
        # The link span lives in the follower's trace and points at the
        # execution that actually served it.
        assert link["trace"] == follower.trace_id
        assert link["attrs"]["link"] == leader.trace_id

    def test_cache_hit_links_to_original_trace(self, tmp_path):
        from repro.serve.shards import ShardedResultStore

        store = ShardedResultStore(tmp_path)
        tracer = Tracer()
        with trace.use(tracer):
            with BenchService(workers=1, isolation="inline",
                              store=store, runner=ok_report) as service:
                first = service.submit_job(make_job(seed=9))
                first.wait(timeout=10)
                second = service.submit_job(make_job(seed=9))
                report = second.wait(timeout=10)
        assert report is not None
        assert second.origin != EXECUTED
        hit = next(r for r in tracer.records()
                   if r["name"] == "serve/cache-hit/fake-ok")
        assert hit["trace"] == second.trace_id
        # Cached spans keep the original trace id; the hit span links
        # back to it when the stored report carries spans.
        assert hit["attrs"]["digest"] == second.digest


@pytest.mark.usefixtures("fake_kernels")
class TestServeTraceCLI:
    def test_serve_trace_writes_single_trace_chrome_file(
            self, tmp_path, capsys):
        out = tmp_path / "fake.trace.json"
        code = main(["serve", "trace", "fake-ok", "--scale", "0.05",
                     "--isolation", "inline", "--out", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "Stitched trace" in stdout
        assert "one trace id:" in stdout

        events = json.loads(out.read_text())["traceEvents"]
        assert events
        ids = {event["args"]["trace"] for event in events
               if event.get("args", {}).get("trace")}
        assert len(ids) == 1
        names = {event["name"] for event in events}
        assert "serve/submit/fake-ok" in names
        assert "kernel/fake-ok/execute" in names
