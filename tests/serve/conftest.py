"""Serve-layer fixtures: per-test registration of the fake kernels."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# The disposable fake kernels live next to the harness tests.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "harness"))
from fakes import FAKES, CrashKernel, OkKernel  # noqa: E402

from repro.kernels.base import KERNEL_REGISTRY, register  # noqa: E402


@pytest.fixture
def fake_kernels():
    """Register the fake kernels for one test; reset counters."""
    for cls in FAKES:
        KERNEL_REGISTRY.pop(cls.name, None)
        register(cls)
    OkKernel.executions = 0
    CrashKernel.executions = 0
    yield
    for cls in FAKES:
        KERNEL_REGISTRY.pop(cls.name, None)
