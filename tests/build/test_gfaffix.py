"""GFAffix reproduction: redundancy collapse preserving path spellings."""

from repro.build.gfaffix import polish
from repro.build.seqwish import induce_graph
from repro.graph.model import SequenceGraph


def _graph_with_identical_siblings():
    graph = SequenceGraph()
    graph.add_node(0, "ACGT")
    graph.add_node(1, "TTT")
    graph.add_node(2, "TTT")
    graph.add_node(3, "GGAA")
    graph.add_edge(0, 1)
    graph.add_edge(0, 2)
    graph.add_edge(1, 3)
    graph.add_edge(2, 3)
    graph.add_path("p", [0, 1, 3])
    graph.add_path("q", [0, 2, 3])
    return graph


def _graph_with_shared_prefix():
    graph = SequenceGraph()
    graph.add_node(0, "ACGT")
    graph.add_node(1, "TTGA")
    graph.add_node(2, "TTCC")
    graph.add_node(3, "GGAA")
    graph.add_edge(0, 1)
    graph.add_edge(0, 2)
    graph.add_edge(1, 3)
    graph.add_edge(2, 3)
    graph.add_path("p", [0, 1, 3])
    graph.add_path("q", [0, 2, 3])
    return graph


class TestPolish:
    def test_identical_siblings_merge(self):
        graph = _graph_with_identical_siblings()
        polished, stats = polish(graph)
        assert stats.nodes_merged == 1
        assert polished.node_count == 3
        assert polished.path_sequence("p") == "ACGTTTTGGAA"
        assert polished.path_sequence("q") == "ACGTTTTGGAA"

    def test_shared_prefix_splits(self):
        graph = _graph_with_shared_prefix()
        polished, stats = polish(graph)
        assert stats.prefixes_collapsed >= 1
        # The shared "TT" now lives in one node.
        assert polished.total_sequence_length < graph.total_sequence_length
        assert polished.path_sequence("p") == "ACGTTTGAGGAA"
        assert polished.path_sequence("q") == "ACGTTTCCGGAA"

    def test_input_graph_unmodified(self):
        graph = _graph_with_identical_siblings()
        before = sorted(graph.node_ids())
        polish(graph)
        assert sorted(graph.node_ids()) == before
        assert graph.path_sequence("p") == "ACGTTTTGGAA"

    def test_idempotent(self):
        graph = _graph_with_shared_prefix()
        once, stats_once = polish(graph)
        twice, stats_twice = polish(once)
        assert stats_twice.nodes_merged == 0
        assert stats_twice.prefixes_collapsed == 0
        assert stats_twice.rounds == 1
        assert twice.node_count == once.node_count

    def test_preserves_induced_graph_spellings(self, assemblies,
                                               assembly_matches):
        induced = induce_graph(assemblies, assembly_matches)
        polished, stats = polish(induced.graph)
        polished.validate()
        for record in assemblies:
            assert polished.path_sequence(record.name) == record.sequence
        assert stats.rounds >= 1

    def test_bases_removed_counts_shrinkage(self):
        graph = _graph_with_identical_siblings()
        polished, stats = polish(graph)
        shrinkage = graph.total_sequence_length - polished.total_sequence_length
        assert stats.bases_removed == shrinkage == 3

    def test_probe_sees_all_event_classes(self, probe):
        graph = _graph_with_shared_prefix()
        polish(graph, probe=probe)
        assert probe.loads > 0
        assert probe.stores > 0
        assert probe.branches > 0
        assert probe.alu_ops > 0
