"""Minigraph-Cactus reproduction: progressive reference-biased build."""

import pytest

from repro.build.cactus import build_progressive
from repro.build.gfaffix import PolishStats
from repro.errors import GraphError
from repro.sequence.records import SequenceRecord


@pytest.fixture(scope="module")
def build(assemblies):
    return build_progressive(assemblies)


class TestBuildProgressive:
    def test_reference_spelled_exactly(self, assemblies, build):
        reference = assemblies[0]
        assert build.graph.path_sequence(reference.name) == reference.sequence

    def test_every_record_threads_a_path(self, assemblies, build):
        names = set(build.graph.path_names())
        assert {record.name for record in assemblies} <= names

    def test_haplotypes_spell_close_to_their_records(self, assemblies, build):
        """Reference bias absorbs small divergence, so non-reference
        paths are approximate — but within a few percent, not garbage."""
        for record in assemblies[1:]:
            spelled = build.graph.path_sequence(record.name)
            assert abs(len(spelled) - len(record.sequence)) < \
                0.1 * len(record.sequence)

    def test_stats_counters(self, assemblies, build):
        stats = build.stats
        assert stats.anchors > 0
        assert stats.gwfa_invocations > 0
        assert stats.variants > 0
        assert stats.alt_nodes <= stats.variants
        assert stats.patched_bases > 0

    def test_polish_toggle(self, assemblies):
        polished = build_progressive(assemblies, run_polish=True)
        raw = build_progressive(assemblies, run_polish=False)
        assert isinstance(polished.polish_stats, PolishStats)
        assert raw.polish_stats is None
        # Polishing deduplicates spelled bases (prefix splits may add
        # nodes, but never bases).
        assert polished.graph.total_sequence_length <= \
            raw.graph.total_sequence_length
        reference = assemblies[0]
        assert raw.graph.path_sequence(reference.name) == reference.sequence

    def test_graph_is_valid(self, build):
        build.graph.validate()

    def test_single_record_is_just_the_reference(self):
        record = SequenceRecord("ref", "ACGTACGTACGT" * 12)
        build = build_progressive([record], run_polish=False)
        assert build.graph.path_sequence("ref") == record.sequence
        assert build.stats.variants == 0
        assert build.stats.anchors == 0

    def test_unrelated_haplotype_becomes_one_alt_node(self):
        import random
        rng = random.Random(7)
        reference = SequenceRecord(
            "ref", "".join(rng.choice("ACGT") for _ in range(600)))
        alien = SequenceRecord(
            "alien", "".join(rng.choice("ACGT") for _ in range(600)))
        build = build_progressive([reference, alien], run_polish=False)
        path = build.graph.path(alien.name)
        assert build.graph.path_sequence(alien.name) == alien.sequence
        assert len(path.nodes) == 1

    def test_empty_records_rejected(self):
        with pytest.raises(GraphError):
            build_progressive([])

    def test_probe_sees_all_event_classes(self, assemblies, probe):
        build_progressive(assemblies, probe=probe)
        assert probe.loads > 0
        assert probe.stores > 0
        assert probe.branches > 0
        assert probe.alu_ops > 0
