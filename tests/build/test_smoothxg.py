"""smoothxg reproduction: block partitioning + POA re-alignment."""

import pytest

from repro.build.seqwish import induce_graph
from repro.build.smoothxg import smooth
from repro.errors import GraphError
from repro.graph.model import SequenceGraph


@pytest.fixture(scope="module")
def induced_graph(assemblies, assembly_matches):
    return induce_graph(assemblies, assembly_matches).graph


class TestSmooth:
    def test_blocks_cover_every_path_base(self, induced_graph):
        blocks, stats = smooth(induced_graph, block_length=400)
        total_fragment = sum(len(s) for b in blocks for s in b.sequences)
        total_path = sum(induced_graph.path_length(name)
                        for name in induced_graph.path_names())
        assert total_fragment == total_path
        assert stats.fragments == sum(len(b.sequences) for b in blocks)

    def test_blocks_cover_every_path_node(self, induced_graph):
        blocks, _ = smooth(induced_graph, block_length=400)
        block_nodes = {n for b in blocks for n in b.node_ids}
        path_nodes = {n for p in induced_graph.paths() for n in p.nodes}
        assert path_nodes <= block_nodes

    def test_fragments_partition_known_paths(self):
        """On a hand-built chain the block cuts are fully predictable."""
        graph = SequenceGraph()
        graph.add_node(0, "AAAA")   # offsets 0-3  -> block 0
        graph.add_node(1, "CCCC")   # offsets 4-7  -> block 0
        graph.add_node(2, "GGGG")   # offsets 8-11 -> block 1
        graph.add_node(3, "TTTT")   # offsets 12-15 -> block 1
        for source, target in [(0, 1), (1, 2), (2, 3)]:
            graph.add_edge(source, target)
        graph.add_path("p", [0, 1, 2, 3])
        graph.add_path("q", [0, 1, 2, 3])
        blocks, stats = smooth(graph, block_length=8)
        by_id = {b.block_id: b for b in blocks}
        assert sorted(by_id) == [0, 1]
        assert sorted(by_id[0].sequences) == ["AAAACCCC", "AAAACCCC"]
        assert sorted(by_id[1].sequences) == ["GGGGTTTT", "GGGGTTTT"]
        assert by_id[0].node_ids == (0, 1)
        assert by_id[1].node_ids == (2, 3)
        assert stats.blocks == 2
        assert stats.fragments == 4

    def test_poa_work_is_counted(self, induced_graph):
        blocks, stats = smooth(induced_graph, block_length=400)
        assert stats.poa_cells > 0
        assert stats.poa_cells == sum(b.poa_cells for b in blocks)
        assert all(b.consensus for b in blocks)
        assert stats.consensus_bases == sum(len(b.consensus) for b in blocks)

    def test_shorter_blocks_mean_more_blocks(self, induced_graph):
        short, _ = smooth(induced_graph, block_length=150)
        long, _ = smooth(induced_graph, block_length=1200)
        assert len(short) > len(long)

    def test_block_length_must_be_positive(self, induced_graph):
        with pytest.raises(GraphError):
            smooth(induced_graph, block_length=0)

    def test_needs_paths(self):
        graph = SequenceGraph()
        graph.add_node(0, "ACGT")
        with pytest.raises(GraphError):
            smooth(graph)

    def test_probe_sees_all_event_classes(self, induced_graph, probe):
        smooth(induced_graph, block_length=400, probe=probe)
        assert probe.loads > 0
        assert probe.stores > 0
        assert probe.branches > 0
        assert probe.alu_ops > 0
