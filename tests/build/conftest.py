"""Shared fixtures for the graph-construction subsystem tests."""

import pytest

from repro.build.wfmash import all_to_all
from repro.uarch.events import MachineProbe


class CountingProbe(MachineProbe):
    """Counts every event class a build stage reports."""

    __slots__ = ("alu_ops", "loads", "stores", "branches")

    def __init__(self):
        self.alu_ops = 0
        self.loads = 0
        self.stores = 0
        self.branches = 0

    def alu(self, op_class, count=1, dependent=False):
        self.alu_ops += count

    def load(self, address, size=8):
        self.loads += 1

    def store(self, address, size=8):
        self.stores += 1

    def branch(self, site, taken):
        self.branches += 1

    def branch_bulk(self, site, taken_count):
        # branch_run simulates the boundary outcomes via branch() and
        # credits the saturated bulk here, so counting stays exact.
        self.branches += taken_count


@pytest.fixture
def probe():
    return CountingProbe()


@pytest.fixture(scope="session")
def assemblies(small_suite):
    """Four related haplotype assemblies from the shared corpus."""
    return list(small_suite.assemblies[:4])


@pytest.fixture(scope="session")
def assembly_matches(assemblies):
    """The wfmash all-to-all exact-match set over ``assemblies``."""
    matches, stats = all_to_all(assemblies)
    return matches
