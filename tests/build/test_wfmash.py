"""wfmash reproduction: sketch mapping + WFA-verified exact matches."""

import pytest

from repro.build.wfmash import Match, WfmashStats, all_to_all
from repro.sequence.records import SequenceRecord


def _random_record(name, length, seed):
    import random
    rng = random.Random(seed)
    return SequenceRecord(name, "".join(rng.choice("ACGT") for _ in range(length)))


class TestAllToAll:
    def test_matches_are_exact(self, assemblies, assembly_matches):
        by_name = {r.name: r.sequence for r in assemblies}
        assert assembly_matches
        for match in assembly_matches:
            q = by_name[match.query_name]
            t = by_name[match.target_name]
            assert q[match.query_start:match.query_start + match.length] == \
                t[match.target_start:match.target_start + match.length]

    def test_matches_in_range_and_long_enough(self, assemblies, assembly_matches):
        by_name = {r.name: r.sequence for r in assemblies}
        for match in assembly_matches:
            assert match.length >= 20
            assert 0 <= match.query_start
            assert match.query_start + match.length <= len(by_name[match.query_name])
            assert match.target_start + match.length <= len(by_name[match.target_name])

    def test_query_precedes_target(self, assemblies, assembly_matches):
        order = {r.name: i for i, r in enumerate(assemblies)}
        for match in assembly_matches:
            assert order[match.query_name] < order[match.target_name]

    def test_stats_account_for_the_work(self, assemblies):
        matches, stats = all_to_all(assemblies)
        n = len(assemblies)
        assert stats.pairs_considered == n * (n - 1) // 2
        assert 0 < stats.pairs_mapped <= stats.pairs_considered
        assert stats.wfa_cells > 0
        assert stats.anchors > 0
        assert stats.matched_bases == sum(m.length for m in matches)

    def test_unrelated_sequences_do_not_map(self):
        records = [_random_record("a", 2000, 1), _random_record("b", 2000, 2)]
        matches, stats = all_to_all(records)
        assert stats.pairs_considered == 1
        assert matches == []

    def test_identical_sequences_match_end_to_end(self):
        record = _random_record("x", 1500, 3)
        twin = SequenceRecord("y", record.sequence)
        matches, stats = all_to_all([record, twin])
        assert stats.pairs_mapped == 1
        covered = set()
        for match in matches:
            assert match.query_start == match.target_start
            covered.update(range(match.query_start, match.query_start + match.length))
        assert len(covered) > 0.9 * len(record.sequence)

    def test_probe_sees_all_event_classes(self, assemblies, probe):
        all_to_all(assemblies, probe=probe)
        assert probe.loads > 0
        assert probe.stores > 0
        assert probe.branches > 0
        assert probe.alu_ops > 0

    def test_match_is_frozen(self):
        match = Match("a", "b", 0, 0, 25)
        with pytest.raises(Exception):
            match.length = 30
