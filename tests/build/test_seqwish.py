"""seqwish reproduction: transitive closure and graph induction."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.build.seqwish import (
    ImplicitIntervalTree,
    TranscloseStats,
    induce_graph,
    transclose,
)
from repro.build.wfmash import Match, all_to_all
from repro.errors import GraphError
from repro.sequence.records import SequenceRecord
from repro.uarch.events import NULL_PROBE, AddressSpace


def _check_closure_oracle(records, matches, result):
    """The TC kernel's validation oracle (tc_kernel.validate)."""
    text = "".join(record.sequence for record in records)
    for match in matches:
        q = result.offsets[match.query_name] + match.query_start
        t = result.offsets[match.target_name] + match.target_start
        for i in range(match.length):
            assert result.closure_of[q + i] == result.closure_of[t + i]
    for position, closure in enumerate(result.closure_of):
        assert text[position] == result.closure_base[closure]


@st.composite
def _populations(draw):
    """A tiny pangenome: one ancestor plus point-mutated descendants."""
    rng = random.Random(draw(st.integers(0, 2**20)))
    length = draw(st.integers(min_value=80, max_value=240))
    ancestor = "".join(rng.choice("ACGT") for _ in range(length))
    records = [SequenceRecord("anc", ancestor)]
    for index in range(draw(st.integers(min_value=1, max_value=3))):
        bases = list(ancestor)
        for _ in range(draw(st.integers(min_value=0, max_value=4))):
            site = rng.randrange(length)
            bases[site] = rng.choice("ACGT")
        records.append(SequenceRecord(f"hap{index}", "".join(bases)))
    return records


class TestTransclose:
    def test_oracle_on_suite_assemblies(self, assemblies, assembly_matches):
        result = transclose(assemblies, assembly_matches)
        _check_closure_oracle(assemblies, assembly_matches, result)

    def test_closure_ids_dense_and_ascending(self, assemblies, assembly_matches):
        result = transclose(assemblies, assembly_matches)
        seen_order = []
        seen = set()
        for closure in result.closure_of:
            assert 0 <= closure < len(result.closure_base)
            if closure not in seen:
                seen.add(closure)
                seen_order.append(closure)
        assert seen_order == sorted(seen_order)
        assert len(seen) == len(result.closure_base)

    def test_stats_counters(self, assemblies, assembly_matches):
        result = transclose(assemblies, assembly_matches)
        stats = result.stats
        total = sum(len(r.sequence) for r in assemblies)
        assert stats.positions == total
        assert stats.matches == len(assembly_matches)
        assert stats.closures == len(result.closure_base) < total
        assert stats.tree_queries > 0
        assert stats.tree_nodes_visited >= stats.tree_queries
        assert stats.bitvector_reads >= stats.positions

    def test_no_matches_yields_one_closure_per_position(self):
        records = [SequenceRecord("a", "ACGT"), SequenceRecord("b", "GGCC")]
        result = transclose(records, [])
        assert result.closure_of == list(range(8))
        assert "".join(result.closure_base) == "ACGTGGCC"

    def test_duplicate_record_names_rejected(self):
        records = [SequenceRecord("a", "ACGT"), SequenceRecord("a", "ACGT")]
        with pytest.raises(GraphError):
            transclose(records, [])

    def test_non_exact_match_rejected(self):
        records = [SequenceRecord("a", "AAAAACCCCCAAAAACCCCC"),
                   SequenceRecord("b", "AAAAAGGGGGAAAAAGGGGG")]
        bad = [Match("a", "b", 0, 0, 10)]
        with pytest.raises(GraphError):
            transclose(records, bad)

    def test_out_of_range_match_rejected(self):
        records = [SequenceRecord("a", "ACGT"), SequenceRecord("b", "ACGT")]
        with pytest.raises(GraphError):
            transclose(records, [Match("a", "b", 2, 0, 4)])

    def test_empty_records_rejected(self):
        with pytest.raises(GraphError):
            transclose([], [])

    def test_probe_sees_all_event_classes(self, assemblies, assembly_matches,
                                          probe):
        transclose(assemblies, assembly_matches, probe=probe)
        assert probe.loads > 0
        assert probe.stores > 0
        assert probe.branches > 0
        assert probe.alu_ops > 0

    @settings(max_examples=20, deadline=None)
    @given(records=_populations())
    def test_property_pipeline_closure_is_consistent(self, records):
        """For any mutated population, wfmash matches transitively close
        into single-character equivalence classes (the TC oracle)."""
        matches, _ = all_to_all(records)
        result = transclose(records, matches)
        _check_closure_oracle(records, matches, result)


class TestImplicitIntervalTree:
    @settings(max_examples=40, deadline=None)
    @given(
        spans=st.lists(
            st.tuples(st.integers(0, 120), st.integers(1, 30), st.integers(0, 120)),
            max_size=25,
        ),
        position=st.integers(0, 150),
    )
    def test_stab_matches_brute_force(self, spans, position):
        intervals = [(start, start + length, other)
                     for start, length, other in spans]
        tree = ImplicitIntervalTree(intervals, AddressSpace())
        stats = TranscloseStats()
        hits = tree.stab(position, NULL_PROBE, stats)
        expected = [iv for iv in sorted(intervals) if iv[0] <= position < iv[1]]
        assert sorted(hits) == expected
        assert stats.tree_queries == 1


class TestInduceGraph:
    def test_paths_spell_records_exactly(self, assemblies, assembly_matches):
        induced = induce_graph(assemblies, assembly_matches)
        for record in assemblies:
            assert induced.graph.path_sequence(record.name) == record.sequence

    def test_graph_is_compacted_and_valid(self, assemblies, assembly_matches):
        induced = induce_graph(assemblies, assembly_matches)
        graph = induced.graph
        graph.validate()
        assert graph.node_count < len(induced.closure.closure_base)
        # No node pair is mergeable: a unary edge chain would mean the
        # compaction missed a merge.
        for node_id in graph.node_ids():
            succ = graph.successors(node_id)
            if len(succ) == 1 and succ[0] != node_id:
                preds = graph.predecessors(succ[0])
                starts = {p.nodes[0] for p in graph.paths()}
                ends = {p.nodes[-1] for p in graph.paths()}
                assert (len(preds) != 1 or succ[0] in starts
                        or node_id in ends)

    def test_stats_mirror_the_closure(self, assemblies, assembly_matches):
        induced = induce_graph(assemblies, assembly_matches)
        assert induced.stats is induced.closure.stats
        assert induced.stats.closures == len(induced.closure.closure_base)

    def test_without_matches_one_node_per_record(self):
        records = [SequenceRecord("a", "ACGTACGT"), SequenceRecord("b", "TTGG")]
        induced = induce_graph(records, [])
        assert induced.graph.node_count == 2
        for record in records:
            assert induced.graph.path_sequence(record.name) == record.sequence
