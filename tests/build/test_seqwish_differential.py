"""Vectorized transclose is bit-identical to the scalar reference.

The seqwish interval-stab and tree phases were converted to batched
numpy purely for speed (the attribution study ranked them among the top
scalar hot loops).  Like the batched probe API itself
(``tests/uarch/test_batch_events.py``), the conversion must be
invisible: same closure outputs, same probe event stream (the batched
side reassembles flushes in scalar order, so whole
:class:`MachineSummary` objects match, not just totals), and the same
per-phase attribution under the span tracer.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.build.seqwish import transclose
from repro.build.wfmash import all_to_all
from repro.obs import trace
from repro.obs.attribution import PhaseAttributor
from repro.obs.spans import Tracer
from repro.sequence.records import SequenceRecord
from repro.uarch.cache import MACHINE_B
from repro.uarch.machine import TraceMachine


def _corpus(seed: int, n_records: int, length: int, mutations: int):
    """Related records (an ancestor plus mutated copies), so all_to_all
    yields real overlapping match structure."""
    rng = random.Random(seed)
    base = "".join(rng.choice("ACGT") for _ in range(length))
    records = [SequenceRecord("r0", base)]
    for i in range(1, n_records):
        s = list(base)
        for _ in range(mutations):
            s[rng.randrange(len(s))] = rng.choice("ACGT")
        records.append(SequenceRecord(f"r{i}", "".join(s)))
    return records


def _close(records, matches, backend):
    machine = TraceMachine()
    result = transclose(records, matches, probe=machine, backend=backend)
    return result, machine


class TestTranscloseDifferential:
    @given(
        seed=st.integers(min_value=0, max_value=200),
        n_records=st.integers(min_value=1, max_value=5),
        length=st.integers(min_value=40, max_value=400),
        mutations=st.integers(min_value=0, max_value=12),
    )
    @settings(max_examples=25, deadline=None)
    def test_outputs_and_events_bit_identical(self, seed, n_records,
                                              length, mutations):
        records = _corpus(seed, n_records, length, mutations)
        matches, _ = all_to_all(records)
        fast, fast_machine = _close(records, matches, backend="vectorized")
        slow, slow_machine = _close(records, matches, backend="scalar")
        assert fast.closure_of == slow.closure_of
        assert fast.closure_base == slow.closure_base
        assert fast.stats == slow.stats
        assert fast_machine.summary() == slow_machine.summary()

    def test_per_phase_attribution_identical(self):
        records = _corpus(seed=7, n_records=4, length=300, mutations=8)
        matches, _ = all_to_all(records)

        def attributed(backend):
            machine = TraceMachine(MACHINE_B)
            tracer = Tracer()
            attributor = PhaseAttributor(machine)
            tracer.listeners.append(attributor)
            with trace.use(tracer):
                transclose(records, matches, probe=machine,
                           backend=backend)
            attributor.finish()
            return machine, attributor

        fast_machine, fast = attributed("vectorized")
        slow_machine, slow = attributed("scalar")
        assert set(fast.phases) == set(slow.phases)
        for phase in fast.phases:
            assert fast.phases[phase].summary(MACHINE_B) \
                == slow.phases[phase].summary(MACHINE_B), phase
        # Sum-exactness survives the conversion on both sides.
        for machine, attributor in ((fast_machine, fast),
                                    (slow_machine, slow)):
            total = sum(p.instructions for p in attributor.phases.values())
            assert total == machine.summary().instructions
