"""The execution layer: plans, parallel dispatch, isolation, reuse."""

import time

import pytest
from fakes import CrashKernel, OkKernel

from repro.errors import KernelError
from repro.harness.executor import (
    CACHED,
    EXECUTED,
    Job,
    compile_plan,
    execute_jobs,
    execute_plan,
)
from repro.harness.runner import run_suite
from repro.harness.store import ResultStore
from repro.obs import trace
from repro.obs.spans import Tracer
from repro.uarch.cache import MACHINE_A, MACHINE_B


class TestPlanCompilation:
    def test_one_job_per_kernel(self):
        plan = compile_plan(("gbwt", "tsu"), studies=("timing",), scale=0.25)
        assert len(plan) == 2
        assert [job.kernel for job in plan.jobs] == ["gbwt", "tsu"]
        assert plan.jobs[0].studies == ("timing",)
        assert plan.jobs[0].cache_config is MACHINE_B

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KernelError):
            compile_plan(("no-such-kernel",))

    def test_unknown_study_rejected(self):
        with pytest.raises(KernelError):
            compile_plan(("gbwt",), studies=("vtune",))

    def test_jobs_are_picklable_values(self):
        import pickle

        job = Job(kernel="gbwt", studies=("timing",), cache_config=MACHINE_A)
        assert pickle.loads(pickle.dumps(job)) == job


class TestFailureIsolation:
    def test_serial_crash_is_isolated(self, fake_kernels):
        reports = run_suite(("fake-crash", "fake-ok"), jobs=1)
        assert set(reports) == {"fake-crash", "fake-ok"}
        assert reports["fake-crash"].error == "RuntimeError: boom"
        assert not reports["fake-crash"].ok
        assert reports["fake-ok"].ok
        assert reports["fake-ok"].inputs_processed == 3

    def test_parallel_crash_is_isolated(self, fake_kernels):
        reports = run_suite(("fake-crash", "fake-ok"), jobs=2)
        assert set(reports) == {"fake-crash", "fake-ok"}
        assert "RuntimeError: boom" in reports["fake-crash"].error
        assert reports["fake-ok"].ok
        assert reports["fake-ok"].inputs_processed == 3

    def test_dead_worker_is_isolated(self, fake_kernels):
        reports = run_suite(("fake-die", "fake-ok"), jobs=2)
        assert "WorkerDied" in reports["fake-die"].error
        assert reports["fake-ok"].ok

    def test_timeout_terminates_hung_kernel(self, fake_kernels):
        start = time.monotonic()
        reports = run_suite(("fake-hang", "fake-ok"), jobs=2, timeout=1.0)
        elapsed = time.monotonic() - start
        assert "Timeout" in reports["fake-hang"].error
        assert reports["fake-ok"].ok
        assert elapsed < 30  # the 300 s sleep was terminated

    def test_failure_report_carries_metadata(self, fake_kernels):
        reports = run_suite(
            ("fake-crash",), scale=0.5, seed=7, cache_config=MACHINE_A
        )
        report = reports["fake-crash"]
        assert (report.scale, report.seed, report.machine) == (
            0.5, 7, "machine_a",
        )


class TestParallelDispatch:
    def test_matches_serial_results(self, fake_kernels):
        serial = run_suite(("fake-ok",), studies=("instmix",), jobs=1)
        parallel = run_suite(("fake-ok",), studies=("instmix",), jobs=2)
        assert parallel["fake-ok"].instruction_mix == (
            serial["fake-ok"].instruction_mix
        )
        assert parallel["fake-ok"].instructions == serial["fake-ok"].instructions

    def test_real_kernel_over_the_pool(self):
        reports = run_suite(("gbwt",), studies=("timing",), scale=0.25, jobs=2)
        assert reports["gbwt"].ok
        assert reports["gbwt"].inputs_processed > 0

    def test_bad_job_count_rejected(self):
        plan = compile_plan(("gbwt",))
        with pytest.raises(KernelError):
            execute_plan(plan, jobs=0)


class TestExecutorObservability:
    def test_parallel_reports_carry_worker_spans(self, fake_kernels):
        reports = run_suite(("fake-ok",), jobs=2)
        names = {r["name"] for r in reports["fake-ok"].spans}
        assert "kernel/fake-ok/execute" in names
        assert "kernel/fake-ok/prepare" in names

    def test_executor_metrics_merged_into_report(self, fake_kernels):
        reports = run_suite(("fake-ok",), jobs=2)
        metrics = reports["fake-ok"].metrics
        gauges = metrics["gauges"]
        assert gauges["executor.wall_seconds{kernel=fake-ok}"] > 0
        assert "executor.queue_wait_seconds{kernel=fake-ok}" in gauges
        counters = metrics["counters"]
        assert counters["executor.jobs{kernel=fake-ok,outcome=ok}"] == 1.0
        # The worker's own kernel metrics survived the merge.
        assert counters["kernel.runs{backend=vectorized,kernel=fake-ok}"] == 1.0

    def test_timeout_report_carries_wall_and_partial_spans(
        self, fake_kernels
    ):
        reports = run_suite(("fake-hang",), jobs=2, timeout=1.0)
        report = reports["fake-hang"]
        assert "Timeout" in report.error
        assert report.wall_seconds >= 1.0
        names = {r["name"] for r in report.spans}
        # prepare finished (and hit the spool) before the hang; the
        # execute span never closed, so it cannot appear.
        assert "kernel/fake-hang/prepare" in names
        assert "kernel/fake-hang/execute" not in names

    def test_crash_report_carries_wall_time_and_spans(self, fake_kernels):
        reports = run_suite(("fake-crash",), jobs=2)
        report = reports["fake-crash"]
        assert report.wall_seconds > 0
        names = {r["name"] for r in report.spans}
        # The execute span closed on the way out of the raise.
        assert "kernel/fake-crash/execute" in names

    def test_serial_crash_report_carries_wall_time(self, fake_kernels):
        reports = run_suite(("fake-crash",), jobs=1)
        assert reports["fake-crash"].wall_seconds > 0

    def test_dead_worker_report_carries_wall_and_spool_spans(
        self, fake_kernels
    ):
        reports = run_suite(("fake-die",), jobs=2)
        report = reports["fake-die"]
        assert "WorkerDied" in report.error
        assert report.wall_seconds > 0
        names = {r["name"] for r in report.spans}
        assert "kernel/fake-die/prepare" in names

    def test_parent_tracer_gets_job_lifecycle_records(self, fake_kernels):
        tracer = Tracer()
        with trace.use(tracer):
            run_suite(("fake-ok", "fake-crash"), jobs=2)
        records = [r for r in tracer.records()
                   if r["name"].startswith("executor/job/")]
        by_name = {r["name"]: r for r in records}
        assert by_name["executor/job/fake-ok"]["attrs"]["outcome"] == "ok"
        assert by_name["executor/job/fake-crash"]["attrs"]["outcome"] == "error"


class TestSpanSpool:
    def job(self, kernel="fake-ok"):
        return Job(kernel=kernel, studies=("timing",),
                   cache_config=MACHINE_B)

    def test_spool_files_removed_after_success(self, fake_kernels,
                                               tmp_path):
        from repro.harness.executor import _execute_pool

        reports = _execute_pool([self.job()], workers=2, timeout=None,
                                spool_dir=tmp_path)
        assert reports[0].ok
        # Spans shipped with the report; the crash-recovery spool has
        # served its purpose and must not accumulate on disk.
        assert list(tmp_path.iterdir()) == []

    def test_spool_recovered_then_removed_on_timeout(self, fake_kernels,
                                                     tmp_path):
        from repro.harness.executor import _execute_pool

        reports = _execute_pool([self.job("fake-hang")], workers=2,
                                timeout=1.0, spool_dir=tmp_path)
        assert "Timeout" in reports[0].error
        names = {r["name"] for r in reports[0].spans}
        assert "kernel/fake-hang/prepare" in names
        assert list(tmp_path.iterdir()) == []

    def test_cap_drops_spool_lines_but_report_keeps_spans(
        self, fake_kernels, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SPAN_SPOOL_MAX_BYTES", "512")
        reports = run_suite(("fake-spanspam",), jobs=2)
        report = reports["fake-spanspam"]
        assert report.ok
        names = {r["name"] for r in report.spans}
        # In-memory records are unaffected by the spool cap: every
        # spammed span still ships back with the successful report.
        assert "spam/0" in names and "spam/63" in names
        dropped = report.metrics["counters"][
            "executor.spool_dropped_spans"]
        assert dropped > 0

    def test_default_cap_drops_nothing_for_normal_runs(
        self, fake_kernels
    ):
        reports = run_suite(("fake-spanspam",), jobs=2)
        counters = reports["fake-spanspam"].metrics["counters"]
        assert "executor.spool_dropped_spans" not in counters


class TestReuse:
    def test_second_run_executes_no_kernel(self, fake_kernels, tmp_path):
        store = ResultStore(tmp_path)
        first = run_suite(("fake-ok",), studies=("timing",), reuse=True,
                          store=store)
        assert OkKernel.executions == 1
        second = run_suite(("fake-ok",), studies=("timing",), reuse=True,
                           store=store)
        assert OkKernel.executions == 1  # cache hit: zero executions
        assert second["fake-ok"] == first["fake-ok"]

    def test_different_parameters_miss(self, fake_kernels, tmp_path):
        store = ResultStore(tmp_path)
        run_suite(("fake-ok",), studies=("timing",), seed=0, reuse=True,
                  store=store)
        run_suite(("fake-ok",), studies=("timing",), seed=1, reuse=True,
                  store=store)
        assert OkKernel.executions == 2

    def test_failures_are_not_cached(self, fake_kernels, tmp_path):
        store = ResultStore(tmp_path)
        run_suite(("fake-crash",), reuse=True, store=store)
        assert CrashKernel.executions == 1
        run_suite(("fake-crash",), reuse=True, store=store)
        assert CrashKernel.executions == 2  # re-executed, not served

    def test_reuse_off_always_executes(self, fake_kernels, tmp_path):
        store = ResultStore(tmp_path)
        run_suite(("fake-ok",), reuse=True, store=store)
        run_suite(("fake-ok",), reuse=False, store=store)
        assert OkKernel.executions == 2


class TestExecuteJobs:
    def job(self, seed=0):
        return Job(kernel="fake-ok", studies=("timing",), seed=seed,
                   cache_config=MACHINE_B)

    def test_one_outcome_per_job_preserving_multiplicity(
        self, fake_kernels
    ):
        """Identical jobs in one batch each get their own outcome — the
        sweep driver relies on positional alignment with its grid."""
        jobs = (self.job(), self.job(), self.job(seed=1))
        outcomes = execute_jobs(jobs, reuse=False)
        assert len(outcomes) == 3
        assert [o.job for o in outcomes] == list(jobs)
        for outcome in outcomes:
            assert outcome.report.kernel == "fake-ok"
            assert outcome.report.ok

    def test_origin_tracks_the_result_cache(self, fake_kernels, tmp_path):
        store = ResultStore(tmp_path)
        cold = execute_jobs((self.job(),), reuse=True, store=store)
        assert [o.origin for o in cold] == [EXECUTED]
        warm = execute_jobs((self.job(),), reuse=True, store=store)
        assert [o.origin for o in warm] == [CACHED]
        assert OkKernel.executions == 1
        assert warm[0].report == cold[0].report
