"""Harness fixtures: per-test registration of the fake kernels."""

from __future__ import annotations

import pytest
from fakes import FAKES, CrashKernel, OkKernel

from repro.kernels.base import KERNEL_CLASSES, KERNEL_REGISTRY, register


@pytest.fixture
def fake_kernels():
    """Register the fake kernels for one test; reset counters."""
    for cls in FAKES:
        KERNEL_REGISTRY.pop(cls.name, None)
        KERNEL_CLASSES.pop(cls.name, None)
        register(cls)
    OkKernel.executions = 0
    CrashKernel.executions = 0
    yield
    for cls in FAKES:
        KERNEL_REGISTRY.pop(cls.name, None)
        KERNEL_CLASSES.pop(cls.name, None)
