"""Command-line interface."""

import json

import pytest

from repro.data import ArtifactStore, use_store
from repro.harness.cli import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gssw" in out
        assert "vg_map" in out

    def test_run_timing(self, capsys, tmp_path):
        path = tmp_path / "r.json"
        code = main([
            "run", "--kernels", "gbwt", "--studies", "timing",
            "--scale", "0.25", "--out", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "gbwt" in out
        payload = json.loads(path.read_text())
        assert payload["schema_version"] >= 2
        assert payload["reports"]["gbwt"]["inputs_processed"] > 0

    def test_run_topdown(self, capsys):
        assert main([
            "run", "--kernels", "gbwt", "--studies", "topdown",
            "--scale", "0.25",
        ]) == 0
        assert "IPC" in capsys.readouterr().out

    def test_run_machine_a(self, capsys, tmp_path):
        path = tmp_path / "r.json"
        assert main([
            "run", "--kernels", "gbwt", "--studies", "cache",
            "--scale", "0.25", "--machine", "A", "--out", str(path),
        ]) == 0
        assert "machine=A" in capsys.readouterr().out
        payload = json.loads(path.read_text())
        assert payload["reports"]["gbwt"]["machine"] == "machine_a"

    def test_run_parallel_jobs(self, capsys):
        assert main([
            "run", "--kernels", "gbwt", "tsu", "--studies", "timing,gpu",
            "--scale", "0.25", "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "gbwt" in out and "tsu" in out

    def test_run_reuse_hits_cache(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        argv = ["run", "--kernels", "gbwt", "--studies", "timing",
                "--scale", "0.25", "--reuse"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        # The cached report is served verbatim: identical wall seconds.
        assert second == first
        assert list((tmp_path / "cache").glob("*.json"))

    def test_failing_kernel_exits_nonzero(self, capsys, fake_kernels):
        code = main(["run", "--kernels", "fake-crash", "fake-ok",
                     "--studies", "timing"])
        assert code == 1
        captured = capsys.readouterr()
        assert "RuntimeError: boom" in captured.out
        assert "fake-crash" in captured.err

    def test_validate(self, capsys):
        assert main(["validate", "--kernels", "gbwt", "--scale", "0.25"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_bad_study_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--studies", "vtune"])

    def test_gpu_is_a_known_study(self):
        args = build_parser().parse_args(["run", "tsu", "--studies", "gpu"])
        assert args.studies[-1] == ["gpu"]

    def test_run_scenario(self, capsys):
        assert main([
            "run", "--kernels", "tsu", "--scenario", "divergent",
            "--scale", "0.25", "--studies", "timing",
        ]) == 0
        out = capsys.readouterr().out
        assert "scenario=divergent" in out

    def test_bad_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scenario", "nope"])


class TestDataCli:
    def test_build_then_list(self, capsys, tmp_path):
        with use_store(ArtifactStore(tmp_path)):
            assert main(["data", "build", "--scenario", "default",
                         "divergent", "--scale", "0.05"]) == 0
            out = capsys.readouterr().out
            assert out.count("(built)") == 2
            # Second build is a warm no-op served from the store.
            assert main(["data", "build", "--scenario", "default",
                         "--scale", "0.05"]) == 0
            assert "(memory)" in capsys.readouterr().out
            assert main(["data", "list"]) == 0
            out = capsys.readouterr().out
            assert "default" in out and "divergent" in out

    def test_list_empty_store(self, capsys, tmp_path):
        with use_store(ArtifactStore(tmp_path)):
            assert main(["data", "list"]) == 0
            assert "no datasets" in capsys.readouterr().out

    def test_gc_all(self, capsys, tmp_path):
        with use_store(ArtifactStore(tmp_path)):
            assert main(["data", "build", "--scale", "0.05"]) == 0
            capsys.readouterr()
            assert main(["data", "gc", "--all"]) == 0
            assert "removed 1 dataset(s)" in capsys.readouterr().out
            assert main(["data", "list"]) == 0
            assert "no datasets" in capsys.readouterr().out
