"""Command-line interface."""

import json

import pytest

from repro.data import ArtifactStore, use_store
from repro.errors import SweepError
from repro.harness.cli import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gssw" in out
        assert "vg_map" in out

    def test_run_timing(self, capsys, tmp_path):
        path = tmp_path / "r.json"
        code = main([
            "run", "--kernels", "gbwt", "--studies", "timing",
            "--scale", "0.25", "--out", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "gbwt" in out
        payload = json.loads(path.read_text())
        assert payload["schema_version"] >= 2
        assert payload["reports"]["gbwt"]["inputs_processed"] > 0

    def test_run_topdown(self, capsys):
        assert main([
            "run", "--kernels", "gbwt", "--studies", "topdown",
            "--scale", "0.25",
        ]) == 0
        assert "IPC" in capsys.readouterr().out

    def test_run_machine_a(self, capsys, tmp_path):
        path = tmp_path / "r.json"
        assert main([
            "run", "--kernels", "gbwt", "--studies", "cache",
            "--scale", "0.25", "--machine", "A", "--out", str(path),
        ]) == 0
        assert "machine=A" in capsys.readouterr().out
        payload = json.loads(path.read_text())
        assert payload["reports"]["gbwt"]["machine"] == "machine_a"

    def test_run_parallel_jobs(self, capsys):
        assert main([
            "run", "--kernels", "gbwt", "tsu", "--studies", "timing,gpu",
            "--scale", "0.25", "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "gbwt" in out and "tsu" in out

    def test_run_reuse_hits_cache(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        argv = ["run", "--kernels", "gbwt", "--studies", "timing",
                "--scale", "0.25", "--reuse"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        # The cached report is served verbatim: identical wall seconds.
        assert second == first
        assert list((tmp_path / "cache").glob("*.json"))

    def test_failing_kernel_exits_nonzero(self, capsys, fake_kernels):
        code = main(["run", "--kernels", "fake-crash", "fake-ok",
                     "--studies", "timing"])
        assert code == 1
        captured = capsys.readouterr()
        assert "RuntimeError: boom" in captured.out
        assert "fake-crash" in captured.err

    def test_validate(self, capsys):
        assert main(["validate", "--kernels", "gbwt", "--scale", "0.25"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_bad_study_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--studies", "vtune"])

    def test_gpu_is_a_known_study(self):
        args = build_parser().parse_args(["run", "tsu", "--studies", "gpu"])
        assert args.studies[-1] == ["gpu"]

    def test_run_scenario(self, capsys):
        assert main([
            "run", "--kernels", "tsu", "--scenario", "divergent",
            "--scale", "0.25", "--studies", "timing",
        ]) == 0
        out = capsys.readouterr().out
        assert "scenario=divergent" in out

    def test_bad_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scenario", "nope"])


class TestBackendCli:
    def test_run_threads_backend_through_to_the_report(
            self, capsys, tmp_path):
        path = tmp_path / "r.json"
        assert main([
            "run", "--kernels", "gbwt", "--studies", "timing",
            "--scale", "0.25", "--backend", "scalar", "--out", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "backend" in out and "scalar" in out
        payload = json.loads(path.read_text())
        assert payload["reports"]["gbwt"]["backend"] == "scalar"

    def test_unknown_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--backend", "avx512"])

    def test_unsupported_backend_fails_listing_supported(self, capsys):
        code = main(["run", "--kernels", "gbv", "--studies", "timing",
                     "--scale", "0.25", "--backend", "gpu"])
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err and "supported: vectorized" in err

    def test_silent_degradation_warns_on_stderr(
            self, capsys, monkeypatch):
        """A report carrying a ``kernel.backend_fallback`` counter gets
        a one-line warning after the run table."""
        from repro.harness import cli
        from repro.harness.runner import KernelReport

        key = ("kernel.backend_fallback{actual=scalar,component=gssw,"
               "reason=scoring-incompatible,requested=vectorized}")
        report = KernelReport(
            kernel="gssw", inputs_processed=1, backend="scalar",
            metrics={"counters": {key: 2.0}})
        monkeypatch.setattr(cli, "run_suite",
                            lambda *a, **k: {"gssw": report})
        assert main(["run", "--kernels", "gssw",
                     "--studies", "timing"]) == 0
        err = capsys.readouterr().err
        assert ("warning: gssw (gssw): backend 'vectorized' fell back "
                "to 'scalar' [scoring-incompatible, x2]") in err


class TestDataCli:
    def test_build_then_list(self, capsys, tmp_path):
        with use_store(ArtifactStore(tmp_path)):
            assert main(["data", "build", "--scenario", "default",
                         "divergent", "--scale", "0.05"]) == 0
            out = capsys.readouterr().out
            assert out.count("(built)") == 2
            # Second build is a warm no-op served from the store.
            assert main(["data", "build", "--scenario", "default",
                         "--scale", "0.05"]) == 0
            assert "(memory)" in capsys.readouterr().out
            assert main(["data", "list"]) == 0
            out = capsys.readouterr().out
            assert "default" in out and "divergent" in out

    def test_list_empty_store(self, capsys, tmp_path):
        with use_store(ArtifactStore(tmp_path)):
            assert main(["data", "list"]) == 0
            assert "no datasets" in capsys.readouterr().out

    def test_gc_all(self, capsys, tmp_path):
        with use_store(ArtifactStore(tmp_path)):
            assert main(["data", "build", "--scale", "0.05"]) == 0
            capsys.readouterr()
            assert main(["data", "gc", "--all"]) == 0
            assert "removed 1 dataset(s)" in capsys.readouterr().out
            assert main(["data", "list"]) == 0
            assert "no datasets" in capsys.readouterr().out


class TestSweepCli:
    def test_expand_suite(self, capsys):
        assert main(["sweep", "expand", "--manifest", "suite"]) == 0
        out = capsys.readouterr().out
        assert "Manifest 'suite': 5 cells" in out
        assert "33190fcb6023c929" in out  # default cell's golden digest
        assert "1 paper-fidelity cell(s): default" in out

    def test_expand_matrix_grid(self, capsys):
        assert main(["sweep", "expand", "--manifest", "matrix"]) == 0
        out = capsys.readouterr().out
        assert "Manifest 'matrix': 54 cells" in out
        assert "pop8-div1x-sv1x-short" in out

    def test_run_then_report(self, capsys, tmp_path):
        out_dir = tmp_path / "sweep"
        code = main([
            "sweep", "run", "--manifest", "suite", "--kernels", "tsu",
            "--cells", "default", "--scales", "0.25",
            "--dir", str(out_dir),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep: 1 grid points" in out
        assert "executed=1" in out
        assert (out_dir / "sweep.json").exists()
        assert main(["sweep", "report", "--dir", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "Leaderboard: suite (1 grid points)" in out
        assert "tsu" in out
        assert (out_dir / "summary_per_kernel_per_scenario.tsv").exists()
        assert (out_dir / "leaderboard_by_metric.tsv").exists()
        summary = (out_dir /
                   "summary_per_kernel_per_scenario.tsv").read_text()
        lines = summary.splitlines()
        assert len(lines) == 2
        assert "\tpaper\t" in lines[1]  # suite default is a paper cell
        assert "\tok\t" in lines[1]     # ... whose gates pass for real

    def test_run_unknown_cell_fails_fast(self, tmp_path):
        with pytest.raises(SweepError, match="no cell"):
            main([
                "sweep", "run", "--manifest", "suite", "--kernels", "tsu",
                "--cells", "nope", "--dir", str(tmp_path),
            ])

    def test_comma_separated_kernel_lists(self, capsys, tmp_path):
        out_dir = tmp_path / "sweep"
        code = main([
            "sweep", "run", "--manifest", "suite", "--kernels", "tsu,gbwt",
            "--cells", "dense-pop", "--scales", "0.25",
            "--dir", str(out_dir),
        ])
        assert code == 0
        assert "2 kernels" in capsys.readouterr().out


class TestObsCli:
    def test_obs_check_passes_on_committed_trajectories(
            self, capsys, tmp_path):
        out = tmp_path / "obs_check.json"
        assert main(["obs", "check", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "overall:" in stdout
        payload = json.loads(out.read_text())
        assert payload["status"] in ("ok", "warn")

    def test_obs_check_fails_on_degraded_trajectories(
            self, capsys, tmp_path):
        from repro.obs.baseline import repo_root

        for name in ("BENCH_serve_load.json", "BENCH_sweep.json"):
            payload = json.loads((repo_root() / name).read_text())
            entry = dict(payload["entries"][-1])
            for field in ("p50_ms", "p99_ms", "cold_wall_seconds"):
                if field in entry:
                    entry[field] *= 2.0
            for field in ("cold_points_per_sec", "warm_speedup"):
                if field in entry:
                    entry[field] /= 4.0
            payload["entries"].append(entry)
            (tmp_path / name).write_text(json.dumps(payload))
        out = tmp_path / "obs_check.json"
        code = main(["obs", "check", "--root", str(tmp_path),
                     "--out", str(out)])
        assert code == 1
        assert json.loads(out.read_text())["status"] == "regress"
        assert "regress" in capsys.readouterr().out

    def test_obs_check_compares_report_files(self, capsys, tmp_path):
        from repro.harness.runner import KernelReport, save_reports

        fast = {"tc": KernelReport(kernel="tc", wall_seconds=1.0)}
        slow = {"tc": KernelReport(kernel="tc", wall_seconds=3.0)}
        save_reports(fast, tmp_path / "base.json")
        save_reports(slow, tmp_path / "cand.json")
        code = main(["obs", "check",
                     "--candidate", str(tmp_path / "cand.json"),
                     "--baseline", str(tmp_path / "base.json")])
        assert code == 1
        assert "report.tc.wall_seconds" in capsys.readouterr().out

    def test_obs_export_renders_report_metrics(self, capsys, tmp_path,
                                               fake_kernels):
        from repro.harness.runner import run_suite, save_reports

        reports = run_suite(("fake-ok",), studies=("timing",))
        save_reports(reports, tmp_path / "r.json")
        code = main(["obs", "export", "--reports", str(tmp_path / "r.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert '# TYPE kernel_runs_total counter' in out
        assert 'kernel_runs_total{backend="vectorized",kernel="fake-ok"} 1' in out

    def test_obs_export_json_snapshot(self, capsys, tmp_path,
                                      fake_kernels):
        from repro.harness.runner import run_suite, save_reports

        reports = run_suite(("fake-ok",), studies=("timing",))
        save_reports(reports, tmp_path / "r.json")
        out = tmp_path / "snap.json"
        code = main(["obs", "export", "--reports", str(tmp_path / "r.json"),
                     "--format", "json", "--out", str(out)])
        assert code == 0
        snap = json.loads(out.read_text())
        assert snap["schema"] == 1
        assert "kernel.runs{backend=vectorized,kernel=fake-ok}" in snap["metrics"]["counters"]
