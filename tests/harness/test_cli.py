"""Command-line interface."""

import json

import pytest

from repro.harness.cli import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gssw" in out
        assert "vg_map" in out

    def test_run_timing(self, capsys, tmp_path):
        path = tmp_path / "r.json"
        code = main([
            "run", "--kernels", "gbwt", "--studies", "timing",
            "--scale", "0.25", "--out", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "gbwt" in out
        payload = json.loads(path.read_text())
        assert payload["gbwt"]["inputs_processed"] > 0

    def test_run_topdown(self, capsys):
        assert main([
            "run", "--kernels", "gbwt", "--studies", "topdown",
            "--scale", "0.25",
        ]) == 0
        assert "IPC" in capsys.readouterr().out

    def test_validate(self, capsys):
        assert main(["validate", "--kernels", "gbwt", "--scale", "0.25"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_bad_study_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--studies", "vtune"])