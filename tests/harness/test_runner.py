"""Suite runner: studies, serialization, schema compatibility."""

import json

import pytest

from repro.errors import KernelError
from repro.harness.runner import (
    SCHEMA_VERSION,
    KernelReport,
    load_reports,
    run_kernel_studies,
    run_suite,
    save_reports,
)


class TestStudies:
    def test_timing_study(self):
        report = run_kernel_studies("gbwt", studies=("timing",), scale=0.25)
        assert report.wall_seconds > 0
        assert report.inputs_processed > 0
        assert not report.topdown

    def test_characterization_studies(self):
        report = run_kernel_studies(
            "gbwt", studies=("topdown", "cache", "instmix"), scale=0.25
        )
        assert abs(sum(report.topdown.values()) - 1.0) < 1e-6
        assert report.ipc > 0
        assert set(report.mpki) == {"l1", "l2", "l3"}
        assert abs(sum(report.instruction_mix.values()) - 1.0) < 1e-6
        assert report.instructions > 0

    def test_validate_study(self):
        report = run_kernel_studies("gbwt", studies=("validate",), scale=0.25)
        assert report.validated

    def test_unknown_study_rejected(self):
        with pytest.raises(KernelError):
            run_kernel_studies("gbwt", studies=("vtune",))

    def test_run_metadata_recorded(self):
        report = run_kernel_studies("gbwt", studies=("timing",), scale=0.25,
                                    seed=3)
        assert report.scale == 0.25
        assert report.seed == 3
        assert report.machine == "machine_b"
        assert report.ok


class TestSuiteAndSerialization:
    def test_run_subset(self):
        reports = run_suite(("gbwt", "tsu"), studies=("timing",), scale=0.25)
        assert set(reports) == {"gbwt", "tsu"}

    def test_save_load_roundtrip(self, tmp_path):
        reports = run_suite(("gbwt",), studies=("timing",), scale=0.25)
        path = tmp_path / "reports.json"
        save_reports(reports, path)
        loaded = load_reports(path)
        assert loaded["gbwt"].inputs_processed == reports["gbwt"].inputs_processed
        assert loaded["gbwt"].work == reports["gbwt"].work
        assert loaded["gbwt"] == reports["gbwt"]

    def test_saved_payload_is_versioned_with_metadata(self, tmp_path):
        path = tmp_path / "reports.json"
        save_reports({"gbwt": KernelReport(kernel="gbwt")}, path)
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == SCHEMA_VERSION
        assert "package_version" in payload["metadata"]
        assert "git_sha" in payload["metadata"]
        assert "gbwt" in payload["reports"]

    def test_load_ignores_unknown_report_fields(self, tmp_path):
        path = tmp_path / "reports.json"
        save_reports({"gbwt": KernelReport(kernel="gbwt", ipc=2.0)}, path)
        payload = json.loads(path.read_text())
        payload["reports"]["gbwt"]["metric_from_the_future"] = [1, 2, 3]
        path.write_text(json.dumps(payload))
        loaded = load_reports(path)
        assert loaded["gbwt"].ipc == 2.0

    def test_load_rejects_future_schema(self, tmp_path):
        path = tmp_path / "reports.json"
        path.write_text(json.dumps({
            "schema_version": SCHEMA_VERSION + 10, "reports": {},
        }))
        with pytest.raises(KernelError):
            load_reports(path)

    def test_load_reads_legacy_unversioned_layout(self, tmp_path):
        """Schema-1 files (a bare name -> fields mapping) still load."""
        path = tmp_path / "reports.json"
        path.write_text(json.dumps({
            "gbwt": {"kernel": "gbwt", "wall_seconds": 1.0,
                     "inputs_processed": 9},
        }))
        loaded = load_reports(path)
        assert loaded["gbwt"].inputs_processed == 9
