"""Suite runner: studies, serialization."""

import pytest

from repro.errors import KernelError
from repro.harness.runner import (
    load_reports,
    run_kernel_studies,
    run_suite,
    save_reports,
)


class TestStudies:
    def test_timing_study(self):
        report = run_kernel_studies("gbwt", studies=("timing",), scale=0.25)
        assert report.wall_seconds > 0
        assert report.inputs_processed > 0
        assert not report.topdown

    def test_characterization_studies(self):
        report = run_kernel_studies(
            "gbwt", studies=("topdown", "cache", "instmix"), scale=0.25
        )
        assert abs(sum(report.topdown.values()) - 1.0) < 1e-6
        assert report.ipc > 0
        assert set(report.mpki) == {"l1", "l2", "l3"}
        assert abs(sum(report.instruction_mix.values()) - 1.0) < 1e-6
        assert report.instructions > 0

    def test_validate_study(self):
        report = run_kernel_studies("gbwt", studies=("validate",), scale=0.25)
        assert report.validated

    def test_unknown_study_rejected(self):
        with pytest.raises(KernelError):
            run_kernel_studies("gbwt", studies=("vtune",))


class TestSuiteAndSerialization:
    def test_run_subset(self):
        reports = run_suite(("gbwt", "tsu"), studies=("timing",), scale=0.25)
        assert set(reports) == {"gbwt", "tsu"}

    def test_save_load_roundtrip(self, tmp_path):
        reports = run_suite(("gbwt",), studies=("timing",), scale=0.25)
        path = tmp_path / "reports.json"
        save_reports(reports, path)
        loaded = load_reports(path)
        assert loaded["gbwt"].inputs_processed == reports["gbwt"].inputs_processed
        assert loaded["gbwt"].work == reports["gbwt"].work
