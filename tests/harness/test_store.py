"""The cached result store: digests, round-trips, compatibility."""

import json

from repro.harness.executor import Job
from repro.harness.runner import SCHEMA_VERSION, KernelReport
from repro.harness.store import ResultStore, job_digest
from repro.uarch.cache import MACHINE_A, MACHINE_B


def _job(**overrides):
    defaults = dict(kernel="gbwt", studies=("timing",), scale=0.25, seed=0,
                    cache_config=MACHINE_B)
    defaults.update(overrides)
    return Job(**defaults)


class TestDigest:
    def test_stable(self):
        assert job_digest(_job()) == job_digest(_job())

    def test_study_order_is_normalized(self):
        a = job_digest(_job(studies=("timing", "topdown")))
        b = job_digest(_job(studies=("topdown", "timing")))
        assert a == b

    def test_parameters_change_the_digest(self):
        base = job_digest(_job())
        assert job_digest(_job(kernel="tsu")) != base
        assert job_digest(_job(scale=0.5)) != base
        assert job_digest(_job(seed=1)) != base
        assert job_digest(_job(studies=("cache",))) != base
        assert job_digest(_job(cache_config=MACHINE_A)) != base
        assert job_digest(_job(scenario="divergent")) != base

    def test_default_scenario_in_key(self):
        """The scenario is always part of the cache key (reports from a
        non-default corpus never collide with default ones)."""
        from repro.harness.store import job_key

        assert job_key(_job())["scenario"] == "default"

    def test_backend_changes_the_digest(self):
        assert (job_digest(_job(backend="scalar"))
                != job_digest(_job(backend="vectorized")))

    def test_backend_resolved_before_hashing(self):
        """A job carrying '' (kernel default) and one naming the default
        explicitly share a cache entry; gpu-native kernels key as gpu
        even when the job never set a backend."""
        from repro.harness.store import job_key

        assert (job_digest(_job())
                == job_digest(_job(backend="vectorized")))
        assert job_key(_job(kernel="tsu"))["backend"] == "gpu"

    def test_unregistered_kernel_keys_on_raw_backend(self):
        """Foreign job records must stay digestible — there is no
        registry default to resolve to."""
        from repro.harness.store import job_key

        assert job_key(_job(kernel="not-registered"))["backend"] == ""
        assert (job_key(_job(kernel="not-registered", backend="simd"))
                ["backend"] == "simd")


class TestStore:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        job = _job()
        report = KernelReport(kernel="gbwt", wall_seconds=1.5,
                              inputs_processed=10, work={"w": 2.0},
                              scale=0.25, machine="machine_b")
        path = store.save(job, report)
        assert path is not None and path.is_file()
        assert store.load(job) == report

    def test_miss_when_absent(self, tmp_path):
        assert ResultStore(tmp_path).load(_job()) is None

    def test_miss_on_corrupt_file(self, tmp_path):
        store = ResultStore(tmp_path)
        job = _job()
        store.save(job, KernelReport(kernel="gbwt"))
        store.path(job).write_text("not json {")
        assert store.load(job) is None

    def test_miss_on_other_schema_version(self, tmp_path):
        store = ResultStore(tmp_path)
        job = _job()
        store.save(job, KernelReport(kernel="gbwt"))
        payload = json.loads(store.path(job).read_text())
        payload["schema_version"] = SCHEMA_VERSION + 1
        store.path(job).write_text(json.dumps(payload))
        assert store.load(job) is None

    def test_unknown_report_fields_ignored(self, tmp_path):
        """Forward compatibility: a report written by newer code with
        extra fields still loads."""
        store = ResultStore(tmp_path)
        job = _job()
        store.save(job, KernelReport(kernel="gbwt", inputs_processed=5))
        payload = json.loads(store.path(job).read_text())
        payload["report"]["a_future_metric"] = 42
        store.path(job).write_text(json.dumps(payload))
        loaded = store.load(job)
        assert loaded is not None
        assert loaded.inputs_processed == 5

    def test_error_reports_never_stored(self, tmp_path):
        store = ResultStore(tmp_path)
        job = _job()
        assert store.save(job, KernelReport(kernel="gbwt", error="boom")) is None
        assert store.load(job) is None

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(_job(), KernelReport(kernel="gbwt"))
        store.save(_job(seed=1), KernelReport(kernel="gbwt"))
        assert store.clear() == 2
        assert store.load(_job()) is None

    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        store = ResultStore()
        assert store.root == tmp_path / "alt"
