"""The study plugin layer: registry, hooks, shared executions."""

import pytest

from repro.errors import KernelError
from repro.harness.runner import run_kernel_studies
from repro.harness.studies import (
    GPU_METRIC_KEYS,
    STUDY_REGISTRY,
    Study,
    create_study,
    register_study,
    study_names,
)

from fakes import OkKernel


class TestRegistry:
    def test_builtin_studies_registered(self):
        assert set(study_names()) >= {
            "timing", "topdown", "cache", "instmix", "validate", "gpu",
        }

    def test_display_order_starts_with_timing(self):
        assert study_names()[0] == "timing"

    def test_unknown_study_rejected(self):
        with pytest.raises(KernelError):
            create_study("vtune")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(KernelError):
            @register_study
            class Duplicate(Study):
                name = "timing"

    def test_unnamed_study_rejected(self):
        with pytest.raises(KernelError):
            @register_study
            class Nameless(Study):
                pass


class TestPluggability:
    def test_custom_study_needs_only_registration(self, fake_kernels):
        """Adding a study = registering a subclass; no engine edits."""

        @register_study
        class RateStudy(Study):
            name = "rate-test"

            def collect(self, kernel, result, summary, report):
                report.work["inputs_per_second"] = result.rate()

        try:
            report = run_kernel_studies("fake-ok", studies=("rate-test",))
            assert "inputs_per_second" in report.work
        finally:
            STUDY_REGISTRY.pop("rate-test", None)


class TestSharedExecution:
    def test_trace_and_timing_share_one_run(self, fake_kernels):
        report = run_kernel_studies(
            "fake-ok", studies=("timing", "topdown", "cache", "instmix")
        )
        assert OkKernel.executions == 1
        assert report.wall_seconds > 0
        assert report.topdown and report.mpki and report.instruction_mix
        assert report.instructions > 0

    def test_validate_only_never_executes(self, fake_kernels):
        report = run_kernel_studies("fake-ok", studies=("validate",))
        assert OkKernel.executions == 0
        assert report.validated
        assert report.inputs_processed == 0

    def test_bulk_branches_in_instruction_counts(self, fake_kernels):
        """branch_run's saturated iterations reach the instmix/MPKI
        denominators (the old probe default dropped them)."""
        report = run_kernel_studies("fake-ok", studies=("instmix",))
        # 40 alu + 1 load + (10 taken + 1 exit) branches = 52
        assert report.instructions == 52
        assert report.instruction_mix["branch"] == pytest.approx(11 / 52)


class TestGpuStudy:
    def test_surfaces_simt_counters_for_tsu(self):
        report = run_kernel_studies("tsu", studies=("gpu",), scale=0.25)
        assert set(report.gpu) == set(GPU_METRIC_KEYS)
        assert 0 < report.gpu["achieved_occupancy"] <= 1
        assert 0 < report.gpu["warp_utilization"] <= 1
        assert report.gpu["gpu_time_ms"] > 0

    def test_empty_for_cpu_kernels(self, fake_kernels):
        report = run_kernel_studies("fake-ok", studies=("gpu",))
        assert report.gpu == {}
