"""Disposable fake kernels for harness-engine tests.

Registered per-test by the ``fake_kernels`` fixture (tests/harness/
conftest.py) and removed afterwards, so the rest of the suite never sees
them.  The executor's fork-based workers inherit the registration, which
lets the crash/hang/die kernels exercise failure isolation across
process boundaries.
"""

from __future__ import annotations

import os
import time

from repro.kernels.base import Kernel, KernelResult
from repro.uarch.events import OpClass


class _FakeKernel(Kernel):
    parent_tool = "fake"
    input_type = "nothing"

    def prepare(self) -> None:
        pass


class OkKernel(_FakeKernel):
    """A well-behaved kernel with an in-process execution counter."""

    name = "fake-ok"
    executions = 0

    def _execute(self, probe):
        type(self).executions += 1
        probe.alu(OpClass.SCALAR_ALU, 40)
        probe.load(1 << 20)
        probe.branch_run(7, taken_count=10)
        return KernelResult(
            kernel=self.name, wall_seconds=0.0, inputs_processed=3,
            work={"units": 1.0},
        )


class SpanSpamKernel(_FakeKernel):
    """Emits a burst of tiny spans — pressure for the span-spool cap."""

    name = "fake-spanspam"
    spans = 64

    def _execute(self, probe):
        from repro.obs import trace

        for i in range(type(self).spans):
            with trace.span(f"spam/{i}"):
                pass
        probe.alu(OpClass.SCALAR_ALU, 1)
        return KernelResult(kernel=self.name, wall_seconds=0.0,
                            inputs_processed=1)


class CrashKernel(_FakeKernel):
    """Raises from its hot loop."""

    name = "fake-crash"
    executions = 0

    def _execute(self, probe):
        type(self).executions += 1
        raise RuntimeError("boom")


class HangKernel(_FakeKernel):
    """Never finishes (within any reasonable test budget)."""

    name = "fake-hang"

    def _execute(self, probe):
        time.sleep(300)
        return KernelResult(kernel=self.name, wall_seconds=0.0,
                            inputs_processed=1)


class DieKernel(_FakeKernel):
    """Kills its own worker process outright (models a native crash)."""

    name = "fake-die"

    def _execute(self, probe):
        os._exit(3)


FAKES = (OkKernel, SpanSpamKernel, CrashKernel, HangKernel, DieKernel)
