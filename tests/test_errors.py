"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    AlignmentError,
    CyclicGraphError,
    DatasetError,
    GFAError,
    GraphError,
    IndexError_,
    KernelError,
    ReproError,
    SequenceError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [SequenceError, GraphError, IndexError_, AlignmentError,
         DatasetError, KernelError, SimulationError],
    )
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_cyclic_is_graph_error(self):
        assert issubclass(CyclicGraphError, GraphError)
        assert "cycle" in str(CyclicGraphError())

    def test_gfa_error_line_number(self):
        error = GFAError("bad record", line_number=7)
        assert "line 7" in str(error)
        assert error.line_number == 7

    def test_gfa_error_without_line(self):
        assert GFAError("bad").line_number is None

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise KernelError("x")
