"""FM-index backward search and locate vs naive scanning."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.index.fmindex import FMIndex

dna = st.text(alphabet="ACGT", min_size=20, max_size=200)


class TestFMIndex:
    @given(dna, st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_locate_matches_naive(self, text, seed):
        rng = random.Random(seed)
        fm = FMIndex(text)
        start = rng.randrange(len(text))
        length = rng.randint(1, min(8, len(text) - start))
        pattern = text[start : start + length]
        naive = [
            i for i in range(len(text) - length + 1) if text[i : i + length] == pattern
        ]
        assert fm.locate(pattern) == naive
        assert fm.count(pattern) == len(naive)

    def test_absent_pattern(self):
        fm = FMIndex("AAAA")
        assert fm.count("G") == 0
        assert fm.locate("GG") == []

    def test_locate_limit(self):
        fm = FMIndex("ACAC" * 10)
        assert len(fm.locate("AC", limit=3)) == 3

    def test_extract(self):
        fm = FMIndex("ACGTACGT")
        assert fm.extract(2, 4) == "GTAC"
        with pytest.raises(IndexError_):
            fm.extract(6, 4)

    def test_sampling_rates_validated(self):
        with pytest.raises(IndexError_):
            FMIndex("ACGT", occ_sample=0)

    def test_small_sampling_still_correct(self):
        text = "ACGTTGCAACGT" * 5
        fm = FMIndex(text, occ_sample=3, sa_sample=5)
        assert fm.locate("ACGT") == [
            i for i in range(len(text) - 3) if text[i : i + 4] == "ACGT"
        ]
