"""Minimizer seeding: invariants and index behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.index.minimizer import (
    GraphMinimizerIndex,
    SequenceMinimizerIndex,
    canonical_hash,
    encode_kmer,
    hash64,
    minimizers,
)
from repro.sequence.alphabet import reverse_complement

dna = st.text(alphabet="ACGT", min_size=30, max_size=300)


class TestHashing:
    def test_hash64_is_deterministic(self):
        assert hash64(12345) == hash64(12345)

    def test_encode_kmer(self):
        assert encode_kmer("AA") == 0
        assert encode_kmer("AC") == 1
        assert encode_kmer("CA") == 4

    def test_encode_rejects_n(self):
        with pytest.raises(IndexError_):
            encode_kmer("AN")

    @given(st.text(alphabet="ACGT", min_size=5, max_size=15))
    @settings(max_examples=40)
    def test_canonical_strand_invariance(self, kmer):
        forward, _ = canonical_hash(kmer)
        backward, _ = canonical_hash(reverse_complement(kmer))
        assert forward == backward


class TestMinimizers:
    @given(dna)
    @settings(max_examples=25, deadline=None)
    def test_positions_valid_and_increasing(self, sequence):
        result = minimizers(sequence, k=11, w=5)
        positions = [m.position for m in result]
        assert positions == sorted(positions)
        assert all(0 <= p <= len(sequence) - 11 for p in positions)

    @given(dna)
    @settings(max_examples=25, deadline=None)
    def test_window_density(self, sequence):
        # Every window of w k-mers contributes a minimizer: gaps bounded.
        result = minimizers(sequence, k=11, w=5)
        positions = [m.position for m in result]
        for a, b in zip(positions, positions[1:]):
            assert b - a <= 5

    def test_short_sequence_empty(self):
        assert minimizers("ACG", k=11, w=5) == []

    def test_n_kmers_skipped(self):
        result = minimizers("ACGTN" * 10, k=5, w=3)
        assert result == []

    def test_args_validated(self):
        with pytest.raises(IndexError_):
            minimizers("ACGT", k=1, w=5)


class TestSequenceIndex:
    def test_finds_embedded_copy(self):
        reference = "TTTT" + "ACGTACGGTACGTTACG" * 3 + "GGGG"
        index = SequenceMinimizerIndex(k=7, w=3)
        index.add("ref", reference)
        seeds = index.seeds_for("ACGTACGGTACGTTACG")
        assert seeds, "expected at least one seed"
        assert all(name == "ref" for _rp, name, _tp, _o in seeds)

    def test_distinct_minimizers_counted(self):
        index = SequenceMinimizerIndex(k=7, w=3)
        index.add("ref", "ACGTACGTTGCAACGT" * 4)
        assert index.distinct_minimizers > 0


class TestGraphIndex:
    def test_requires_paths(self, small_graph_pangenome):
        from repro.graph.model import SequenceGraph

        empty = SequenceGraph()
        empty.add_node(0, "ACGT")
        with pytest.raises(IndexError_):
            GraphMinimizerIndex(empty)

    def test_seeds_land_on_path_nodes(self, small_graph_pangenome):
        graph = small_graph_pangenome.graph
        index = GraphMinimizerIndex(graph, k=15, w=10)
        haplotype = small_graph_pangenome.haplotypes[0]
        query = haplotype.sequence[100:250]
        seeds = index.seeds_for(query)
        assert seeds
        path_nodes = set(graph.path(haplotype.name).nodes)
        assert any(seed.node_id in path_nodes for seed in seeds)

    def test_oriented_seeds_flip(self, small_graph_pangenome):
        graph = small_graph_pangenome.graph
        index = GraphMinimizerIndex(graph, k=15, w=10)
        query = small_graph_pangenome.haplotypes[0].sequence[100:250]
        seeds_f, flipped_f = index.oriented_seeds(query)
        seeds_r, flipped_r = index.oriented_seeds(reverse_complement(query))
        assert not flipped_f
        assert flipped_r
        assert {(s.node_id, s.node_offset) for s in seeds_f} == {
            (s.node_id, s.node_offset) for s in seeds_r
        }

    def test_repetitive_minimizers_capped(self, small_graph_pangenome):
        graph = small_graph_pangenome.graph
        index = GraphMinimizerIndex(graph, k=15, w=10)
        query = small_graph_pangenome.haplotypes[0].sequence[:200]
        few = index.seeds_for(query, max_hits_per_minimizer=1)
        many = index.seeds_for(query, max_hits_per_minimizer=1000)
        assert len(few) <= len(many)
