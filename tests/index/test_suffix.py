"""Suffix arrays, BWT, LCP."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.suffix import (
    bwt,
    inverse_bwt,
    longest_common_prefix_array,
    suffix_array,
    suffix_array_of_string,
)

int_text = st.lists(st.integers(2, 6), min_size=1, max_size=120)


class TestSuffixArray:
    @given(int_text)
    @settings(max_examples=40, deadline=None)
    def test_suffixes_sorted(self, text):
        sa = suffix_array(text)
        suffixes = [tuple(text[i:]) for i in sa]
        assert suffixes == sorted(suffixes)
        assert sorted(sa) == list(range(len(text)))

    def test_known_banana(self):
        sa = suffix_array_of_string("banana")
        assert sa == [5, 3, 1, 0, 4, 2]

    def test_empty(self):
        assert suffix_array([]) == []

    def test_all_equal(self):
        assert suffix_array([1, 1, 1]) == [2, 1, 0]


class TestBWT:
    @given(int_text)
    @settings(max_examples=40, deadline=None)
    def test_inverse_roundtrip(self, text):
        sequence = [t + 1 for t in text] + [0]  # unique smallest sentinel
        assert inverse_bwt(bwt(sequence), 0) == sequence

    def test_known_value(self):
        # "banana$" with $ -> 0, letters by rank
        text = [2, 1, 4, 1, 4, 1, 0]
        transformed = bwt(text)
        assert transformed == [1, 4, 4, 2, 0, 1, 1]  # "annb$aa"


class TestLCP:
    def test_against_naive(self):
        rng = random.Random(5)
        text = [rng.randint(1, 4) for _ in range(80)]
        sa = suffix_array(text)
        lcp = longest_common_prefix_array(text, sa)
        for i in range(1, len(sa)):
            a = text[sa[i - 1]:]
            b = text[sa[i]:]
            common = 0
            while common < min(len(a), len(b)) and a[common] == b[common]:
                common += 1
            assert lcp[i] == common
