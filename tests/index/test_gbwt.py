"""GBWT: haplotype-aware search vs naive scanning."""

import random

import pytest

from repro.errors import IndexError_
from repro.index.gbwt import ENDMARKER, GBWT


def naive_occurrences(paths, query):
    count = 0
    for path in paths:
        for i in range(len(path) - len(query) + 1):
            if tuple(path[i : i + len(query)]) == tuple(query):
                count += 1
    return count


def naive_successors(paths, query):
    out = {}
    for path in paths:
        for i in range(len(path) - len(query) + 1):
            if tuple(path[i : i + len(query)]) == tuple(query):
                nxt = path[i + len(query)] if i + len(query) < len(path) else ENDMARKER
                out[nxt] = out.get(nxt, 0) + 1
    return out


class TestGBWT:
    def setup_method(self):
        rng = random.Random(42)
        self.paths = [
            [rng.randrange(0, 20) for _ in range(rng.randint(4, 50))] for _ in range(10)
        ]
        self.gbwt = GBWT(self.paths)

    def test_find_matches_naive(self):
        rng = random.Random(1)
        for _ in range(200):
            path = rng.choice(self.paths)
            start = rng.randrange(len(path))
            length = rng.randint(1, min(6, len(path) - start))
            query = path[start : start + length]
            assert self.gbwt.find(query).size == naive_occurrences(self.paths, query)

    def test_successors_match_naive(self):
        rng = random.Random(2)
        for _ in range(100):
            path = rng.choice(self.paths)
            start = rng.randrange(len(path))
            length = rng.randint(1, min(4, len(path) - start))
            query = path[start : start + length]
            state = self.gbwt.find(query)
            assert self.gbwt.successors(state) == naive_successors(self.paths, query)

    def test_absent_sequence_empty(self):
        state = self.gbwt.find([99, 98])
        assert state.is_empty
        assert self.gbwt.successors(state) == {}

    def test_locate_positions_are_real(self):
        path = self.paths[0]
        query = path[:3]
        state = self.gbwt.find(query)
        for name, step in self.gbwt.locate(state):
            index = int(name.replace("path", ""))
            # step indexes the LAST node of the query
            assert tuple(self.paths[index][step - 2 : step + 1]) == tuple(query)

    def test_empty_query_rejected(self):
        with pytest.raises(IndexError_):
            self.gbwt.find([])

    def test_counts(self):
        assert self.gbwt.path_count == 10
        assert self.gbwt.total_visits == sum(len(p) for p in self.paths)

    def test_from_graph(self, small_graph_pangenome):
        graph = small_graph_pangenome.graph
        gbwt = GBWT.from_graph(graph)
        name = graph.path_names()[0]
        nodes = graph.path(name).nodes
        state = gbwt.find(nodes[:5])
        assert state.size >= 1

    def test_requires_paths(self):
        with pytest.raises(IndexError_):
            GBWT([])
        with pytest.raises(IndexError_):
            GBWT([[]])
