"""Report rendering."""

import pytest

from repro.analysis.report import render_bars, render_stacked_fractions, render_table
from repro.errors import ReproError


class TestTable:
    def test_contains_values(self):
        text = render_table(["a", "b"], [["x", 1.5], ["y", 2.0]], title="T")
        assert "T" in text
        assert "1.500" in text
        assert "x" in text

    def test_row_width_checked(self):
        with pytest.raises(ReproError):
            render_table(["a"], [["x", "extra"]])


class TestBars:
    def test_bars_scale(self):
        text = render_bars({"big": 10.0, "small": 1.0})
        lines = text.splitlines()
        assert lines[0].count("#") > lines[1].count("#")

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            render_bars({})


class TestStacked:
    def test_stacked_output(self):
        text = render_stacked_fractions(
            {"k": {"a": 0.5, "b": 0.5}}, components=("a", "b"), title="S"
        )
        assert "legend" in text
        assert "k" in text
