"""Whole-genome runtime extrapolation (Table 1 mechanics)."""

import pytest

from repro.analysis.estimate import (
    GenomeEstimate,
    estimate_genome_runtime,
    normalize_to_baseline,
    reads_for_coverage,
)
from repro.errors import ReproError


class TestEstimate:
    def test_reads_for_coverage(self):
        assert reads_for_coverage(150) == round(3_100_000_000 * 30 / 150)

    def test_extrapolation_scales(self):
        slow = estimate_genome_runtime("slow", 10.0, reads_measured=10, read_length=150)
        fast = estimate_genome_runtime("fast", 1.0, reads_measured=10, read_length=150)
        assert abs(slow.estimated_hours / fast.estimated_hours - 10.0) < 1e-9

    def test_longer_reads_need_fewer(self):
        short = estimate_genome_runtime("s", 1.0, 10, read_length=150)
        long = estimate_genome_runtime("l", 1.0, 10, read_length=15_000)
        assert long.reads_needed < short.reads_needed

    def test_normalize(self):
        estimates = [
            GenomeEstimate("a", 0.0, 150, 1, 10.0),
            GenomeEstimate("b", 0.0, 150, 1, 5.0),
        ]
        ratios = normalize_to_baseline(estimates, "b")
        assert ratios == {"a": 2.0, "b": 1.0}

    def test_bad_inputs_rejected(self):
        with pytest.raises(ReproError):
            reads_for_coverage(0)
        with pytest.raises(ReproError):
            estimate_genome_runtime("x", 1.0, 0, 150)
        with pytest.raises(ReproError):
            normalize_to_baseline([], "x")
