"""Thread-scaling model (Figure 5 shapes)."""

from repro.analysis.threads import (
    FIGURE5_THREADS,
    FIGURE5_WORKLOADS,
    MACHINE_A_TOPOLOGY,
    WorkloadModel,
    figure5_table,
)


class TestMachineModel:
    def test_effective_cores_linear_then_smt(self):
        machine = MACHINE_A_TOPOLOGY
        assert machine.effective_cores(14) == 14
        assert machine.effective_cores(28) == 28
        # hyperthreads contribute fractionally
        assert 28 < machine.effective_cores(56) < 56


class TestWorkloadShapes:
    def test_mapping_tools_near_linear_to_28(self):
        curve = FIGURE5_WORKLOADS["vg_map"].speedup_curve()
        assert curve[28] > 5.0  # near-linear (Amdahl-limited) from 4 threads
        # hyperthreading knee: going 28 -> 56 helps much less than 2x
        assert curve[56] / curve[28] < 1.5

    def test_minigraph_cr_does_not_scale(self):
        curve = FIGURE5_WORKLOADS["minigraph-cr"].speedup_curve()
        assert all(abs(v - 1.0) < 1e-9 for v in curve.values())

    def test_seqwish_saturates_early(self):
        curve = FIGURE5_WORKLOADS["seqwish"].speedup_curve()
        assert curve[14] < 2.0
        assert curve[56] / curve[14] < 1.3

    def test_odgi_sublinear(self):
        odgi = FIGURE5_WORKLOADS["odgi-layout"].speedup_curve()
        mapping = FIGURE5_WORKLOADS["vg_map"].speedup_curve()
        assert odgi[28] < mapping[28]
        assert odgi[28] > 1.5  # still scales meaningfully

    def test_table_covers_all_workloads(self):
        table = figure5_table()
        assert set(table) == set(FIGURE5_WORKLOADS)
        for curve in table.values():
            assert set(curve) == set(FIGURE5_THREADS)
            assert abs(curve[4] - 1.0) < 1e-9

    def test_monotone_time_in_threads(self):
        model = WorkloadModel("x", serial_fraction=0.05)
        times = [model.time_at(t) for t in (1, 2, 4, 8, 16, 28, 56)]
        assert all(a >= b for a, b in zip(times, times[1:]))
