"""Cross-scenario aggregation: summary tables, leaderboards, drift."""

import json

import pytest

from repro.analysis.aggregate import (
    LEADERBOARD_COLUMNS,
    LEADERBOARD_TSV,
    SUMMARY_COLUMNS,
    SUMMARY_TSV,
    aggregate_sweep,
    leaderboard,
    render_leaderboard,
    summary_rows,
    topdown_drift,
)
from repro.errors import SweepError
from repro.harness.runner import KernelReport
from repro.sweep import CellResult, SweepResult


def cell(kernel, scenario, wall=1.0, inputs=10, ipc=0.0, topdown=None,
         error=None, fidelity="bench", origin="executed", violations=()):
    report = KernelReport(kernel=kernel, scenario=scenario,
                          wall_seconds=wall, inputs_processed=inputs,
                          ipc=ipc, topdown=topdown or {}, error=error)
    return CellResult(scenario=scenario, kernel=kernel, scale=1.0, seed=0,
                      fidelity=fidelity, origin=origin, report=report,
                      gate_violations=tuple(violations))


def sweep_of(*cells):
    return SweepResult(manifest_name="test", results=list(cells))


class TestSummaryRows:
    def test_sorted_and_derived_columns(self):
        sweep = sweep_of(
            cell("zz", "b", wall=2.0, inputs=10),
            cell("aa", "b", wall=4.0, inputs=8,
                 topdown={"retiring": 0.6, "memory_bound": 0.2}),
            cell("aa", "a", wall=1.0, inputs=10),
        )
        rows = summary_rows(sweep)
        assert [(r.kernel, r.scenario) for r in rows] == \
            [("aa", "a"), ("aa", "b"), ("zz", "b")]
        assert rows[0].throughput == pytest.approx(10.0)
        assert rows[1].throughput == pytest.approx(2.0)
        assert rows[1].top_slot == "retiring"
        assert rows[0].top_slot == "-"
        assert rows[0].gates == "ok"
        assert rows[0].error == "-"

    def test_gate_violations_and_errors_render(self):
        sweep = sweep_of(
            cell("aa", "a", violations=("g1: bad", "g2: worse")),
            cell("bb", "a", error="KernelError: boom", wall=0.0),
        )
        rows = summary_rows(sweep)
        assert rows[0].gates == "g1: bad; g2: worse"
        assert rows[1].error == "KernelError: boom"
        assert rows[1].throughput == 0.0  # zero wall time, not inf


class TestLeaderboard:
    def test_throughput_ranks_higher_is_better(self):
        sweep = sweep_of(
            cell("slow", "a", wall=2.0, inputs=10),   # 5/s
            cell("fast", "a", wall=1.0, inputs=30),   # 30/s
        )
        entries = leaderboard(sweep, metrics=("throughput",))
        assert [(e.rank, e.kernel) for e in entries] == \
            [(1, "fast"), (2, "slow")]
        assert entries[0].best == pytest.approx(30.0)
        assert entries[0].verdict == "single-scenario"

    def test_wall_seconds_ranks_lower_is_better(self):
        sweep = sweep_of(
            cell("slow", "a", wall=2.0),
            cell("fast", "a", wall=0.5),
        )
        entries = leaderboard(sweep, metrics=("wall_seconds",))
        assert [e.kernel for e in entries] == ["fast", "slow"]
        assert entries[0].best == pytest.approx(0.5)

    def test_sensitivity_verdicts(self):
        sweep = sweep_of(
            # invariant: 10/s and 11/s -> spread ~0.095
            cell("steady", "a", wall=1.0, inputs=10),
            cell("steady", "b", wall=1.0, inputs=11),
            # sensitive: 10/s and 30/s -> spread 1.0
            cell("touchy", "a", wall=1.0, inputs=10),
            cell("touchy", "b", wall=1.0, inputs=30),
        )
        verdicts = {e.kernel: e.verdict
                    for e in leaderboard(sweep, metrics=("throughput",))}
        assert verdicts == {"steady": "scenario-invariant",
                            "touchy": "scenario-sensitive"}

    def test_best_scenario_and_mean(self):
        sweep = sweep_of(
            cell("k", "a", wall=1.0, inputs=10),
            cell("k", "b", wall=1.0, inputs=30),
        )
        (entry,) = leaderboard(sweep, metrics=("throughput",))
        assert entry.best_scenario == "b"
        assert entry.mean == pytest.approx(20.0)
        assert entry.scenarios == 2

    def test_seeds_average_within_a_scenario(self):
        sweep = sweep_of(
            cell("k", "a", wall=1.0, inputs=10),
            cell("k", "a", wall=1.0, inputs=20),
        )
        (entry,) = leaderboard(sweep, metrics=("throughput",))
        assert entry.best == pytest.approx(15.0)
        assert entry.verdict == "single-scenario"

    def test_zero_ipc_is_unmeasured_not_a_value(self):
        """A grid point that never ran the topdown study must not drag
        a kernel's IPC to zero — and a kernel with no measured IPC at
        all drops off the board entirely."""
        sweep = sweep_of(
            cell("cpu", "a", ipc=2.0),
            cell("cpu", "b", ipc=0.0),   # timing-only point
            cell("gpu", "a", ipc=0.0),   # never measures CPU IPC
        )
        entries = leaderboard(sweep, metrics=("ipc",))
        assert [e.kernel for e in entries] == ["cpu"]
        assert entries[0].best == pytest.approx(2.0)
        assert entries[0].verdict == "single-scenario"

    def test_error_cells_excluded(self):
        sweep = sweep_of(
            cell("ok", "a", wall=2.0, inputs=10),
            cell("crashy", "a", wall=0.0, error="KernelError: boom"),
        )
        entries = leaderboard(sweep, metrics=("wall_seconds",))
        assert [e.kernel for e in entries] == ["ok"]

    def test_tie_breaks_by_kernel_name(self):
        sweep = sweep_of(
            cell("bbb", "a", wall=1.0, inputs=10),
            cell("aaa", "a", wall=1.0, inputs=10),
        )
        entries = leaderboard(sweep, metrics=("throughput",))
        assert [e.kernel for e in entries] == ["aaa", "bbb"]

    def test_unknown_metric_raises(self):
        with pytest.raises(SweepError, match="unknown leaderboard metric"):
            leaderboard(sweep_of(cell("k", "a")), metrics=("bogus",))

    def test_default_covers_all_metrics(self):
        sweep = sweep_of(cell("k", "a", ipc=1.0))
        metrics = {e.metric for e in leaderboard(sweep)}
        assert metrics == {"throughput", "wall_seconds", "ipc"}


class TestTopdownDrift:
    def test_flags_only_drifting_kernels(self):
        sweep = sweep_of(
            cell("steady", "a", topdown={"retiring": 0.6, "core_bound": 0.2}),
            cell("steady", "b", topdown={"retiring": 0.7, "core_bound": 0.1}),
            cell("drifty", "a", topdown={"retiring": 0.6, "core_bound": 0.2}),
            cell("drifty", "b", topdown={"retiring": 0.2, "core_bound": 0.6}),
        )
        drift = topdown_drift(sweep)
        assert set(drift) == {"drifty"}
        assert drift["drifty"] == {"a": "retiring", "b": "core_bound"}

    def test_errors_and_missing_topdown_ignored(self):
        sweep = sweep_of(
            cell("k", "a", topdown={"retiring": 0.6}),
            cell("k", "b", error="boom",
                 topdown={"core_bound": 0.9}),
            cell("k", "c"),
        )
        assert topdown_drift(sweep) == {}


class TestAggregateSweep:
    def test_writes_all_four_artifacts(self, tmp_path):
        sweep = sweep_of(
            cell("aa", "a", wall=1.0, inputs=10, ipc=1.5),
            cell("bb", "a", wall=2.0, inputs=10, ipc=2.5),
        )
        paths = aggregate_sweep(sweep, tmp_path)
        assert len(paths) == 4
        for path in paths.values():
            assert path.exists()
        summary = (tmp_path / SUMMARY_TSV).read_text().splitlines()
        assert summary[0] == "\t".join(SUMMARY_COLUMNS)
        assert len(summary) == 3
        board = (tmp_path / LEADERBOARD_TSV).read_text().splitlines()
        assert board[0] == "\t".join(LEADERBOARD_COLUMNS)
        assert len(board) == 1 + 3 * 2  # 3 metrics x 2 kernels
        records = json.loads(
            (tmp_path / "leaderboard_by_metric.json").read_text())
        assert {r["metric"] for r in records} == \
            {"throughput", "wall_seconds", "ipc"}

    def test_empty_sweep_raises(self, tmp_path):
        with pytest.raises(SweepError, match="empty sweep"):
            aggregate_sweep(sweep_of(), tmp_path)


class TestRenderLeaderboard:
    def test_renders_every_entry(self):
        sweep = sweep_of(
            cell("aa", "a", wall=1.0, inputs=10),
            cell("bb", "a", wall=2.0, inputs=10),
        )
        text = render_leaderboard(leaderboard(sweep), title="board")
        assert "board" in text
        assert "aa" in text and "bb" in text
        assert "verdict" in text
