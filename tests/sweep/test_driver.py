"""Sweep driver: grid compilation, execution paths, persistence."""

import json

import pytest

from repro.data import loads_manifest, scenario_spec
from repro.errors import KernelError, SweepError
from repro.harness.runner import KernelReport
from repro.harness.store import ResultStore
from repro.serve import BenchService
from repro.sweep import (
    SWEEP_FILE,
    compile_sweep,
    load_sweep,
    run_sweep,
    save_sweep,
)

MINI = """
[manifest]
name = "mini-sweep"
axis_order = ["pop", "div"]

[axes.pop.p4]
n_haplotypes = 4
[axes.pop.p8]
fidelity = "paper"

[axes.div.d1]
fidelity = "paper"
[axes.div.d2]
rate_scale = {snp = 2.0}
"""

GOOD_TOPDOWN = {
    "retiring": 0.55, "frontend_bound": 0.05, "bad_speculation": 0.2,
    "core_bound": 0.55, "memory_bound": 0.1,
}


def mini():
    return loads_manifest(MINI)


def ok_runner(job):
    """A runner whose reports satisfy every CPU paper gate."""
    return KernelReport(
        kernel=job.kernel, scenario=job.scenario, scale=job.scale,
        seed=job.seed, wall_seconds=0.5, inputs_processed=7,
        ipc=1.5, topdown=dict(GOOD_TOPDOWN),
    )


class TestCompile:
    def test_grid_shape_and_loop_order(self):
        plan = compile_sweep(mini(), kernels=("tc", "gbwt"),
                             scales=(0.25, 0.5), seeds=(0, 1))
        assert len(plan) == 4 * 2 * 2 * 2
        # cell is the slowest axis, kernel the fastest.
        assert plan.cells[0] == plan.cells[7] == "p4-d1"
        assert plan.jobs[0].kernel == "tc"
        assert plan.jobs[1].kernel == "gbwt"
        assert plan.jobs[0].scale == plan.jobs[1].scale == 0.25
        assert plan.jobs[-1].scale == 0.5

    def test_paper_cells_get_gate_studies(self):
        plan = compile_sweep(mini(), kernels=("tc",))
        by_cell = dict(zip(plan.cells, plan.jobs))
        assert by_cell["p8-d1"].studies == ("timing", "topdown")
        assert by_cell["p4-d1"].studies == ("timing",)
        assert plan.paper[plan.cells.index("p8-d1")] is True

    def test_gate_studies_not_duplicated(self):
        plan = compile_sweep(mini(), kernels=("tc",),
                             studies=("timing", "topdown"))
        by_cell = dict(zip(plan.cells, plan.jobs))
        assert by_cell["p8-d1"].studies == ("timing", "topdown")

    def test_compile_installs_manifest_cells(self):
        compile_sweep(mini(), kernels=("tc",))
        assert scenario_spec("p4-d2").n_haplotypes == 4

    def test_compile_by_manifest_name(self):
        plan = compile_sweep("suite", kernels=("tc",))
        assert len(plan) == 5
        assert set(plan.cells) == {
            "default", "dense-pop", "divergent", "long-read-heavy",
            "sv-rich",
        }

    def test_cell_subset(self):
        plan = compile_sweep(mini(), kernels=("tc",),
                             cells=("p8-d1", "p4-d2"))
        assert plan.cells == ("p8-d1", "p4-d2")

    @pytest.mark.parametrize("kwargs, match", [
        (dict(kernels=()), "at least one kernel"),
        (dict(kernels=("tc",), scales=()), "at least one scale"),
        (dict(kernels=("tc",), scales=(0.5, -1.0)), "must be > 0"),
        (dict(kernels=("tc",), seeds=()), "at least one seed"),
        (dict(kernels=("tc",), cells=()), "selected no cells"),
    ])
    def test_bad_grids_raise(self, kwargs, match):
        with pytest.raises(SweepError, match=match):
            compile_sweep(mini(), **kwargs)

    def test_unknown_cells_raise_sorted(self):
        with pytest.raises(SweepError, match="no cell") as excinfo:
            compile_sweep(mini(), kernels=("tc",),
                          cells=("zz-later", "aa-first"))
        message = str(excinfo.value)
        assert message.index("'aa-first'") < message.index("'zz-later'")

    def test_unknown_kernel_raises_before_running(self):
        with pytest.raises(KernelError, match="unknown kernel"):
            compile_sweep(mini(), kernels=("no-such-kernel",))


class TestBackendAxis:
    def test_backend_axis_multiplies_grid(self):
        base = compile_sweep(mini(), kernels=("tc",))
        plan = compile_sweep(mini(), kernels=("tc",),
                             backends=("scalar", "vectorized"))
        assert len(plan) == 2 * len(base)
        assert plan.backends == ("scalar", "vectorized")
        assert ({job.backend for job in plan.jobs}
                == {"scalar", "vectorized"})

    def test_default_axis_resolves_kernel_default(self):
        plan = compile_sweep(mini(), kernels=("tc",))
        assert plan.backends == ("",)
        assert all(job.backend == "vectorized" for job in plan.jobs)

    def test_backends_get_distinct_cache_entries(self):
        from repro.harness.store import job_digest

        plan = compile_sweep(mini(), kernels=("tc",), cells=("p4-d1",),
                             backends=("scalar", "vectorized"))
        digests = {job_digest(job) for job in plan.jobs}
        assert len(digests) == len(plan.jobs) == 2

    def test_unsupported_backend_fails_at_compile(self):
        with pytest.raises(KernelError,
                           match="does not support backend 'gpu'"):
            compile_sweep(mini(), kernels=("tc",), backends=("gpu",))

    def test_results_and_roundtrip_carry_backend(self, tmp_path):
        plan = compile_sweep(mini(), kernels=("tc",), cells=("p4-d1",),
                             backends=("scalar", "vectorized"))
        sweep = run_sweep(plan, runner=ok_runner)
        assert sweep.metadata["backends"] == ["scalar", "vectorized"]
        assert ({r.backend for r in sweep.results}
                == {"scalar", "vectorized"})
        path = save_sweep(sweep, tmp_path / SWEEP_FILE)
        loaded = load_sweep(path)
        assert ({r.backend for r in loaded.results}
                == {"scalar", "vectorized"})


class TestRunnerPath:
    def test_runner_results_and_fidelity(self):
        plan = compile_sweep(mini(), kernels=("tc",))
        sweep = run_sweep(plan, runner=ok_runner)
        assert len(sweep) == 4
        assert sweep.errors == []
        assert sweep.gate_failures == []
        assert sweep.origin_counts() == {"executed": 4}
        by_cell = {r.scenario: r for r in sweep.results}
        assert by_cell["p8-d1"].fidelity == "paper"
        assert by_cell["p4-d2"].fidelity == "bench"
        assert sweep.manifest_name == "mini-sweep"
        assert sweep.metadata["grid_points"] == 4

    def test_sweep_folds_metrics_into_current_registry(self):
        from repro.obs import metrics as obs_metrics

        scoped = obs_metrics.MetricsRegistry()
        plan = compile_sweep(mini(), kernels=("tc",))
        with obs_metrics.use(scoped):
            run_sweep(plan, runner=ok_runner)
        exported = scoped.as_dict()
        counters = exported["counters"]
        assert counters[
            "sweep.results{manifest=mini-sweep,origin=executed}"] == 4.0
        assert not any(key.startswith("sweep.errors")
                       for key in counters)
        gauges = exported["gauges"]
        assert gauges["sweep.grid_points{manifest=mini-sweep}"] == 4.0
        assert gauges["sweep.wall_seconds{manifest=mini-sweep}"] >= 0.0

    def test_sweep_errors_and_gate_failures_counted(self):
        from repro.obs import metrics as obs_metrics

        def flaky(job):
            if job.scenario == "p4-d1":
                return KernelReport(kernel=job.kernel, wall_seconds=0.0,
                                    error="RuntimeError: boom")
            return ok_runner(job)

        scoped = obs_metrics.MetricsRegistry()
        plan = compile_sweep(mini(), kernels=("tc",))
        with obs_metrics.use(scoped):
            run_sweep(plan, runner=flaky)
        counters = scoped.as_dict()["counters"]
        assert counters[
            "sweep.errors{kernel=tc,manifest=mini-sweep}"] == 1.0

    def test_sweep_emits_a_root_span(self):
        from repro.obs import trace
        from repro.obs.spans import Tracer

        tracer = Tracer()
        plan = compile_sweep(mini(), kernels=("tc",))
        with trace.use(tracer):
            run_sweep(plan, runner=ok_runner)
        root = next(r for r in tracer.records()
                    if r["name"] == "sweep/mini-sweep")
        assert root["attrs"]["grid_points"] == 4

    def test_gates_checked_only_on_paper_cells(self):
        def no_topdown(job):
            return KernelReport(kernel=job.kernel, scenario=job.scenario,
                                inputs_processed=3)
        plan = compile_sweep(mini(), kernels=("tc",))
        sweep = run_sweep(plan, runner=no_topdown)
        failing = {r.scenario for r in sweep.gate_failures}
        assert failing == {"p8-d1"}
        bench = next(r for r in sweep.results if r.scenario == "p4-d2")
        assert bench.gate_violations == ()
        assert bench.ok

    def test_kernel_errors_surface(self):
        def crash(job):
            return KernelReport(kernel=job.kernel, scenario=job.scenario,
                                error="KernelError: boom")
        plan = compile_sweep(mini(), kernels=("tc",), cells=("p4-d2",))
        sweep = run_sweep(plan, runner=crash)
        assert len(sweep.errors) == 1
        assert not sweep.results[0].ok


class TestServicePath:
    def test_sweep_through_bench_service(self):
        plan = compile_sweep(mini(), kernels=("tc", "gbwt"),
                             cells=("p4-d1", "p8-d1"))
        with BenchService(workers=1, isolation="inline", reuse=False,
                          runner=ok_runner) as service:
            sweep = run_sweep(plan, service=service, timeout=30.0)
        assert len(sweep) == 4
        assert sweep.errors == []
        assert sweep.gate_failures == []
        # Origins come from the service (executed / cached / coalesced).
        assert sum(sweep.origin_counts().values()) == 4
        paper = [r for r in sweep.results if r.fidelity == "paper"]
        assert {r.scenario for r in paper} == {"p8-d1"}


class TestPersistence:
    def make_sweep(self):
        plan = compile_sweep(mini(), kernels=("tc",))
        return run_sweep(plan, runner=ok_runner)

    def test_round_trip(self, tmp_path):
        sweep = self.make_sweep()
        path = save_sweep(sweep, tmp_path)
        assert path == tmp_path / SWEEP_FILE
        for target in (path, tmp_path):  # file or directory
            loaded = load_sweep(target)
            assert loaded.manifest_name == sweep.manifest_name
            assert len(loaded) == len(sweep)
            for got, want in zip(loaded.results, sweep.results):
                assert got.scenario == want.scenario
                assert got.fidelity == want.fidelity
                assert got.origin == want.origin
                assert got.report.kernel == want.report.kernel
                assert got.report.topdown == want.report.topdown

    def test_load_missing_path(self, tmp_path):
        with pytest.raises(SweepError, match="cannot read"):
            load_sweep(tmp_path / "nope.json")

    def test_load_bad_json(self, tmp_path):
        target = tmp_path / SWEEP_FILE
        target.write_text("{not json")
        with pytest.raises(SweepError, match="not JSON"):
            load_sweep(target)

    def test_load_without_results(self, tmp_path):
        target = tmp_path / SWEEP_FILE
        target.write_text(json.dumps({"manifest": "x"}))
        with pytest.raises(SweepError, match="no results"):
            load_sweep(target)

    def test_load_newer_schema(self, tmp_path):
        sweep = self.make_sweep()
        path = save_sweep(sweep, tmp_path)
        payload = json.loads(path.read_text())
        payload["schema_version"] = payload["schema_version"] + 100
        path.write_text(json.dumps(payload))
        with pytest.raises(SweepError, match="unsupported sweep schema"):
            load_sweep(path)


class TestExecutorIntegration:
    def test_real_paper_cell_passes_its_gates(self, tmp_path, small_suite):
        """tsu on the suite's paper cell: runs for real through the
        executor, gets the gpu study unioned in, and satisfies the
        occupancy-shape gate; an identical re-sweep is fully cached."""
        plan = compile_sweep("suite", kernels=("tsu",), scales=(0.25,),
                             cells=("default",))
        assert plan.jobs[0].studies == ("timing", "gpu")
        store = ResultStore(tmp_path / "cache")
        cold = run_sweep(plan, store=store)
        assert cold.errors == []
        assert cold.gate_failures == []
        assert cold.origin_counts() == {"executed": 1}
        warm = run_sweep(plan, store=store)
        assert warm.origin_counts() == {"cached": 1}
        assert warm.results[0].gate_violations == ()
