"""Sweep fixtures: keep manifest installs out of the global registry."""

from __future__ import annotations

import pytest

from repro.data import SCENARIO_REGISTRY


@pytest.fixture(autouse=True)
def _registry_snapshot():
    """compile_sweep installs manifest cells into the global scenario
    registry; restore it after each test so nothing leaks."""
    saved = dict(SCENARIO_REGISTRY)
    yield
    SCENARIO_REGISTRY.clear()
    SCENARIO_REGISTRY.update(saved)
