"""Paper-shape gates: the per-kernel fidelity predicates."""

from repro.harness.runner import KernelReport
from repro.sweep import check_paper_gates, gate_studies, kernel_gates
from repro.sweep.gates import COMPLETION_GATE

#: A top-down split that satisfies every CPU gate simultaneously —
#: handy as a baseline to perturb per test.
GOOD_TOPDOWN = {
    "retiring": 0.55, "frontend_bound": 0.05, "bad_speculation": 0.2,
    "core_bound": 0.55, "memory_bound": 0.1,
}


def report(kernel, **kwargs):
    kwargs.setdefault("inputs_processed", 10)
    return KernelReport(kernel=kernel, **kwargs)


class TestCompletionGate:
    def test_error_violates(self):
        violations = check_paper_gates(report("ssw", error="Boom: x"))
        assert any("kernel failed" in v for v in violations)

    def test_no_inputs_violates(self):
        violations = check_paper_gates(report("ssw", inputs_processed=0))
        assert any("no inputs" in v for v in violations)

    def test_clean_report_passes(self):
        assert check_paper_gates(report("ssw")) == ()

    def test_every_kernel_gets_the_completion_gate(self):
        for kernel in ("ssw", "tc", "tsu", "no-such-kernel"):
            assert kernel_gates(kernel)[0] is COMPLETION_GATE


class TestTopdownGates:
    def test_missing_topdown_data_violates(self):
        violations = check_paper_gates(report("tc"))
        assert any("no top-down data" in v for v in violations)

    def test_tc_retiring(self):
        good = report("tc", topdown=GOOD_TOPDOWN)
        assert check_paper_gates(good) == ()
        bad = report("tc", topdown={**GOOD_TOPDOWN, "retiring": 0.3})
        assert any("tc-retiring-dominant" in v
                   for v in check_paper_gates(bad))

    def test_gbwt_not_memory_bound(self):
        good = report("gbwt", topdown=GOOD_TOPDOWN)
        assert check_paper_gates(good) == ()
        bad = report("gbwt", topdown={**GOOD_TOPDOWN, "memory_bound": 0.4})
        assert any("gbwt-not-memory-bound" in v
                   for v in check_paper_gates(bad))

    def test_gssw_core_and_memory(self):
        good = report("gssw", topdown=GOOD_TOPDOWN)
        assert check_paper_gates(good) == ()
        bad = report("gssw", topdown={**GOOD_TOPDOWN, "core_bound": 0.1})
        assert any("gssw-core-and-memory" in v
                   for v in check_paper_gates(bad))

    def test_gbv_bad_speculation(self):
        good = report("gbv", topdown=GOOD_TOPDOWN)
        assert check_paper_gates(good) == ()
        bad = report("gbv", topdown={**GOOD_TOPDOWN, "bad_speculation": 0.05})
        assert any("gbv-bad-speculation" in v
                   for v in check_paper_gates(bad))

    def test_pgsgd_memory_core(self):
        good = report("pgsgd", topdown=GOOD_TOPDOWN)
        assert check_paper_gates(good) == ()
        bad = report("pgsgd", topdown={**GOOD_TOPDOWN,
                                       "memory_bound": 0.1,
                                       "core_bound": 0.2})
        assert any("pgsgd-memory-core-bound" in v
                   for v in check_paper_gates(bad))


class TestTsuGate:
    GOOD_GPU = {
        "theoretical_occupancy": 1 / 3,
        "achieved_occupancy": 0.3,
        "warp_utilization": 0.6,
        "gpu_time_ms": 4.2,
    }

    def test_good_profile_passes(self):
        assert check_paper_gates(report("tsu", gpu=self.GOOD_GPU)) == ()

    def test_missing_counters_violate(self):
        violations = check_paper_gates(report("tsu"))
        assert any("no GPU counters" in v for v in violations)

    def test_occupancy_shape_enforced(self):
        wrong = {**self.GOOD_GPU, "theoretical_occupancy": 0.5}
        assert any("1/3" in v
                   for v in check_paper_gates(report("tsu", gpu=wrong)))
        idle = {**self.GOOD_GPU, "achieved_occupancy": 0.0}
        assert check_paper_gates(report("tsu", gpu=idle)) != ()


class TestGateStudies:
    def test_cpu_kernels_need_topdown(self):
        for kernel in ("tc", "gbwt", "gssw", "gbv", "pgsgd",
                       "gwfa-lr", "gwfa-cr"):
            assert gate_studies(kernel) == ("topdown",), kernel

    def test_tsu_needs_gpu(self):
        assert gate_studies("tsu") == ("gpu",)

    def test_ungated_kernel_needs_nothing(self):
        assert gate_studies("ssw") == ()
