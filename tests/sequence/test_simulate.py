"""Genome, pangenome, and read simulation."""

import pytest

from repro.errors import SequenceError
from repro.sequence.alphabet import gc_content, reverse_complement
from repro.sequence.simulate import (
    HIFI,
    ILLUMINA,
    ReadSimulator,
    random_genome,
    simulate_pangenome,
    simulate_reads,
)


class TestRandomGenome:
    def test_length(self):
        assert len(random_genome(1234)) == 1234

    def test_gc_near_target(self):
        genome = random_genome(50_000, seed=1, gc=0.41)
        assert abs(gc_content(genome.sequence) - 0.41) < 0.05

    def test_deterministic(self):
        assert random_genome(500, seed=7).sequence == random_genome(500, seed=7).sequence

    def test_rejects_bad_args(self):
        with pytest.raises(SequenceError):
            random_genome(0)
        with pytest.raises(SequenceError):
            random_genome(10, gc=1.5)


class TestPangenome:
    def test_population_size(self):
        pangenome = simulate_pangenome(genome_length=2000, n_haplotypes=5, seed=2)
        assert len(pangenome) == 5
        assert len(pangenome.records) == 6  # ancestor + haplotypes

    def test_haplotypes_diverge(self):
        pangenome = simulate_pangenome(genome_length=5000, n_haplotypes=2, seed=2)
        assert pangenome.haplotypes[0].sequence != pangenome.ancestor.sequence

    def test_haplotypes_similar_length(self):
        pangenome = simulate_pangenome(genome_length=5000, n_haplotypes=3, seed=2)
        for haplotype in pangenome.haplotypes:
            assert abs(len(haplotype) - 5000) < 1000


class TestReadSimulator:
    def test_short_read_length(self):
        genome = random_genome(5000, seed=3)
        reads = simulate_reads(genome, ILLUMINA, n_reads=20, seed=1)
        assert all(len(read) in range(140, 165) for read in reads)

    def test_provenance_matches_truth(self):
        from repro.align.myers import edit_distance

        genome = random_genome(5000, seed=3)
        reads = ReadSimulator(ILLUMINA, seed=1).simulate(genome, n_reads=20)
        for read in reads:
            window = genome.sequence[read.truth_start : read.truth_end]
            if read.is_reverse:
                window = reverse_complement(window)
            # Low error rate: the read stays close to its source window.
            assert edit_distance(read.sequence, window) < 0.1 * len(window)

    def test_coverage_determines_read_count(self):
        genome = random_genome(15_000, seed=4)
        reads = simulate_reads(genome, ILLUMINA, coverage=2.0, seed=1)
        assert abs(reads.coverage(len(genome)) - 2.0) < 0.3

    def test_requires_exactly_one_sizing(self):
        genome = random_genome(1000, seed=5)
        simulator = ReadSimulator(ILLUMINA)
        with pytest.raises(SequenceError):
            simulator.simulate(genome)
        with pytest.raises(SequenceError):
            simulator.simulate(genome, n_reads=5, coverage=1.0)

    def test_long_reads_longer(self):
        genome = random_genome(60_000, seed=6)
        reads = simulate_reads(genome, HIFI, n_reads=5, seed=2)
        assert reads.mean_length > 5_000

    def test_deterministic(self):
        genome = random_genome(2000, seed=7)
        a = simulate_reads(genome, ILLUMINA, n_reads=5, seed=9)
        b = simulate_reads(genome, ILLUMINA, n_reads=5, seed=9)
        assert [r.sequence for r in a] == [r.sequence for r in b]
