"""Alphabet utilities: validation, complement, 2-bit packing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SequenceError
from repro.sequence.alphabet import (
    complement,
    decode,
    encode,
    gc_content,
    hamming_distance,
    is_dna,
    pack_2bit,
    reverse_complement,
    unpack_2bit,
    validate_dna,
)

dna = st.text(alphabet="ACGT", min_size=1, max_size=200)


class TestValidation:
    def test_accepts_plain_dna(self):
        assert validate_dna("ACGT") == "ACGT"

    def test_rejects_empty(self):
        with pytest.raises(SequenceError):
            validate_dna("")

    def test_rejects_lowercase(self):
        with pytest.raises(SequenceError):
            validate_dna("acgt")

    def test_n_requires_flag(self):
        with pytest.raises(SequenceError):
            validate_dna("ACGN")
        assert validate_dna("ACGN", allow_n=True) == "ACGN"

    def test_is_dna(self):
        assert is_dna("ACGT")
        assert not is_dna("ACGU")
        assert is_dna("NNNN", allow_n=True)


class TestComplement:
    def test_complement_pairs(self):
        assert complement("ACGT") == "TGCA"

    def test_reverse_complement_known(self):
        assert reverse_complement("AACG") == "CGTT"

    def test_n_maps_to_n(self):
        assert complement("N") == "N"

    @given(dna)
    @settings(max_examples=50)
    def test_reverse_complement_involution(self, sequence):
        assert reverse_complement(reverse_complement(sequence)) == sequence

    @given(dna)
    @settings(max_examples=25)
    def test_complement_preserves_length(self, sequence):
        assert len(complement(sequence)) == len(sequence)


class TestEncoding:
    @given(dna)
    @settings(max_examples=50)
    def test_encode_decode_roundtrip(self, sequence):
        assert decode(encode(sequence)) == sequence

    def test_encode_rejects_n(self):
        with pytest.raises(SequenceError):
            encode("ACGN")

    @given(dna)
    @settings(max_examples=25)
    def test_pack_unpack_roundtrip(self, sequence):
        words, length = pack_2bit(sequence)
        assert unpack_2bit(words, length) == sequence

    def test_pack_word_boundary(self):
        sequence = "A" * 32 + "C"
        words, length = pack_2bit(sequence)
        assert len(words) == 2
        assert unpack_2bit(words, length) == sequence


class TestStats:
    def test_gc_content(self):
        assert gc_content("GGCC") == 1.0
        assert gc_content("AATT") == 0.0
        assert gc_content("ACGT") == 0.5
        assert gc_content("") == 0.0

    def test_hamming(self):
        assert hamming_distance("ACGT", "ACGA") == 1

    def test_hamming_rejects_length_mismatch(self):
        with pytest.raises(SequenceError):
            hamming_distance("AC", "A")
