"""FASTA / FASTQ round trips and error handling."""

import io

import pytest

from repro.errors import SequenceError
from repro.sequence.fasta import (
    fasta_string,
    parse_fasta,
    parse_fastq,
    read_fasta,
    write_fastq,
)
from repro.sequence.records import Read, SequenceRecord


class TestFasta:
    def test_roundtrip(self, tmp_path):
        records = [SequenceRecord("a", "ACGT" * 30), SequenceRecord("b", "TTTT")]
        path = tmp_path / "x.fa"
        from repro.sequence.fasta import write_fasta

        write_fasta(records, path, line_width=40)
        back = read_fasta(path)
        assert back == records

    def test_wrapped_lines_joined(self):
        text = ">x\nACGT\nACGT\n"
        records = list(parse_fasta(io.StringIO(text)))
        assert records[0].sequence == "ACGTACGT"

    def test_description_parsed(self):
        text = ">x some description here\nACGT\n"
        record = list(parse_fasta(io.StringIO(text)))[0]
        assert record.name == "x"
        assert record.description == "some description here"

    def test_lowercase_uppercased(self):
        records = list(parse_fasta(io.StringIO(">x\nacgt\n")))
        assert records[0].sequence == "ACGT"

    def test_data_before_header_rejected(self):
        with pytest.raises(SequenceError):
            list(parse_fasta(io.StringIO("ACGT\n")))

    def test_empty_header_rejected(self):
        with pytest.raises(SequenceError):
            list(parse_fasta(io.StringIO(">\nACGT\n")))

    def test_fasta_string(self):
        text = fasta_string([SequenceRecord("a", "ACGT")])
        assert text == ">a\nACGT\n"


class TestFastq:
    def test_roundtrip(self):
        reads = [Read("r1", "ACGT", quality=(30, 31, 32, 33))]
        buffer = io.StringIO()
        write_fastq(reads, buffer)
        back = list(parse_fastq(io.StringIO(buffer.getvalue())))
        assert back[0].sequence == "ACGT"
        assert back[0].quality == (30, 31, 32, 33)

    def test_default_quality(self):
        buffer = io.StringIO()
        write_fastq([Read("r1", "AC")], buffer)
        assert "??" in buffer.getvalue()  # Q30

    def test_bad_separator_rejected(self):
        with pytest.raises(SequenceError):
            list(parse_fastq(io.StringIO("@r\nAC\nXX\nII\n")))

    def test_quality_length_mismatch_rejected(self):
        with pytest.raises(SequenceError):
            list(parse_fastq(io.StringIO("@r\nACGT\n+\nII\n")))
