"""Variant model: application semantics and sampling."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SequenceError
from repro.sequence.alphabet import is_dna
from repro.sequence.mutate import (
    Variant,
    VariantRates,
    VariantType,
    apply_variants,
    sample_variants,
)


class TestApplyVariants:
    def test_snp(self):
        variant = Variant(VariantType.SNP, 1, "C", "G")
        assert apply_variants("ACGT", [variant]) == "AGGT"

    def test_insertion(self):
        variant = Variant(VariantType.INSERTION, 1, "C", "CTT")
        assert apply_variants("ACGT", [variant]) == "ACTTGT"

    def test_deletion(self):
        variant = Variant(VariantType.DELETION, 0, "ACG", "A")
        assert apply_variants("ACGT", [variant]) == "AT"

    def test_ref_mismatch_rejected(self):
        variant = Variant(VariantType.SNP, 0, "G", "T")
        with pytest.raises(SequenceError):
            apply_variants("ACGT", [variant])

    def test_out_of_range_rejected(self):
        variant = Variant(VariantType.DELETION, 3, "TA", "T")
        with pytest.raises(SequenceError):
            apply_variants("ACGT", [variant])

    def test_overlapping_first_wins(self):
        a = Variant(VariantType.DELETION, 0, "AC", "A")
        b = Variant(VariantType.SNP, 1, "C", "G")
        assert apply_variants("ACGT", [a, b]) == "AGT"

    def test_variant_requires_change(self):
        with pytest.raises(SequenceError):
            Variant(VariantType.SNP, 0, "", "")


class TestSampling:
    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_sampled_variants_apply_cleanly(self, seed):
        rng = random.Random(seed)
        reference = "".join(rng.choice("ACGT") for _ in range(500))
        variants = sample_variants(reference, rng=rng)
        mutated = apply_variants(reference, variants)
        assert is_dna(mutated)

    def test_zero_rates_yield_nothing(self):
        rates = VariantRates(snp=0, insertion=0, deletion=0, inversion=0, duplication=0)
        assert sample_variants("ACGT" * 100, rates=rates) == []

    def test_deterministic(self):
        reference = "ACGT" * 200
        a = sample_variants(reference, rng=random.Random(1))
        b = sample_variants(reference, rng=random.Random(1))
        assert a == b

    def test_non_overlapping(self):
        reference = "ACGT" * 500
        variants = sample_variants(reference, rng=random.Random(3))
        end = -1
        for variant in sorted(variants, key=lambda v: v.position):
            assert variant.position >= end
            end = max(end, variant.end)
