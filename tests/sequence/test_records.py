"""Sequence and read record types."""

import pytest

from repro.errors import SequenceError
from repro.sequence.records import Read, ReadSet, SequenceRecord


class TestSequenceRecord:
    def test_basic(self):
        record = SequenceRecord("chr1", "ACGT")
        assert len(record) == 4

    def test_requires_name(self):
        with pytest.raises(SequenceError):
            SequenceRecord("", "ACGT")

    def test_rejects_bad_sequence(self):
        with pytest.raises(SequenceError):
            SequenceRecord("x", "ACGU")

    def test_subsequence(self):
        record = SequenceRecord("chr1", "ACGTACGT")
        sub = record.subsequence(2, 6)
        assert sub.sequence == "GTAC"
        assert "2-6" in sub.name

    def test_subsequence_bounds(self):
        record = SequenceRecord("chr1", "ACGT")
        with pytest.raises(SequenceError):
            record.subsequence(2, 8)

    def test_reverse_complement(self):
        record = SequenceRecord("chr1", "AACG")
        assert record.reverse_complement().sequence == "CGTT"


class TestRead:
    def test_provenance(self):
        read = Read("r1", "ACGT", truth_name="chr1", truth_start=10, truth_end=14)
        assert read.has_provenance

    def test_no_provenance(self):
        assert not Read("r1", "ACGT").has_provenance

    def test_quality_length_checked(self):
        with pytest.raises(SequenceError):
            Read("r1", "ACGT", quality=(30, 30))


class TestReadSet:
    def test_stats(self):
        reads = ReadSet((Read("a", "ACGT"), Read("b", "ACGTAC")))
        assert len(reads) == 2
        assert reads.total_bases == 10
        assert reads.mean_length == 5.0
        assert reads.coverage(10) == 1.0

    def test_coverage_rejects_bad_length(self):
        with pytest.raises(SequenceError):
            ReadSet(()).coverage(0)
