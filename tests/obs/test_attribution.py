"""Per-phase μarch attribution: the sums-to-whole-run invariant."""

from repro.obs.attribution import UNTRACED, PhaseAttributor
from repro.obs.spans import Tracer
from repro.uarch.cache import MACHINE_B
from repro.uarch.events import OpClass
from repro.uarch.machine import TraceMachine


def _instrumented_run(machine, tracer):
    """Probe work split across nested spans plus untraced stretches."""
    machine.alu(OpClass.SCALAR_ALU, 10)  # before any span -> UNTRACED
    with tracer.span("phase/a"):
        machine.alu(OpClass.SCALAR_ALU, 100)
        machine.load(1 << 16)
        with tracer.span("phase/a/inner"):
            machine.alu(OpClass.VECTOR_ALU, 50)
            machine.branch(site=1, taken=True)
        machine.store(1 << 17)  # back in phase/a after the inner span
    with tracer.span("phase/b"):
        machine.alu(OpClass.SCALAR_MUL_DIV, 30)
    machine.alu(OpClass.SCALAR_ALU, 5)  # tail -> UNTRACED


def _attributed(machine=None):
    machine = machine or TraceMachine(MACHINE_B)
    tracer = Tracer()
    attributor = PhaseAttributor(machine)
    tracer.listeners.append(attributor)
    _instrumented_run(machine, tracer)
    attributor.finish()
    return machine, attributor


class TestExclusiveAttribution:
    def test_phase_sums_equal_whole_run(self):
        machine, attributor = _attributed()
        report = attributor.report(MACHINE_B)
        total = sum(phase["instructions"] for phase in report.values())
        assert total == machine.summary().instructions

    def test_inner_span_counts_are_exclusive(self):
        _, attributor = _attributed()
        inner = attributor.phases["phase/a/inner"]
        outer = attributor.phases["phase/a"]
        # 50 vector ops + 1 branch in the inner span, none leaked out.
        assert inner.instructions == 51
        assert inner.op_counts[list(OpClass).index(OpClass.VECTOR_ALU)] == 50
        # phase/a keeps its own 100 ALU + load + store only.
        assert outer.instructions == 102

    def test_untraced_bucket_collects_outside_work(self):
        _, attributor = _attributed()
        assert attributor.phases[UNTRACED].instructions == 15

    def test_repeated_spans_aggregate_by_name(self):
        machine = TraceMachine(MACHINE_B)
        tracer = Tracer()
        attributor = PhaseAttributor(machine)
        tracer.listeners.append(attributor)
        for _ in range(3):
            with tracer.span("loop"):
                machine.alu(OpClass.SCALAR_ALU, 7)
        attributor.finish()
        assert attributor.phases["loop"].instructions == 21

    def test_batched_events_across_span_boundaries(self):
        """Batch calls update counters atomically inside their span, so
        attribution stays exact when a logical stream is chopped into
        batches emitted across phase boundaries."""
        import numpy as np

        machine = TraceMachine(MACHINE_B)
        tracer = Tracer()
        attributor = PhaseAttributor(machine)
        tracer.listeners.append(attributor)
        addresses = np.arange(0, 400 * 64, 64, dtype=np.int64)
        outcomes = np.tile([True, True, False], 60)
        machine.load_block(addresses[:50])  # before any span -> UNTRACED
        with tracer.span("phase/a"):
            machine.load_block(addresses[50:300])
            machine.branch_trace(site=5, outcomes=outcomes[:100])
            with tracer.span("phase/a/inner"):
                machine.store_block(addresses[:80])
                machine.alu_bulk(OpClass.VECTOR_ALU, 500, dependent_count=120)
            machine.branch_trace(site=5, outcomes=outcomes[100:])
        with tracer.span("phase/b"):
            machine.load_block(addresses[300:])
        attributor.finish()

        summary = machine.summary()
        phases = attributor.phases.values()
        assert sum(p.instructions for p in phases) == summary.instructions
        report = attributor.report(MACHINE_B)
        assert sum(p["instructions"] for p in report.values()) == (
            summary.instructions
        )
        inner = attributor.phases["phase/a/inner"]
        assert inner.instructions == 80 + 500  # stores + ALU, exclusive
        outer = attributor.phases["phase/a"]
        assert outer.instructions == 250 + len(outcomes)
        assert attributor.phases[UNTRACED].instructions == 50
        assert attributor.phases["phase/b"].instructions == 100

    def test_report_drops_zero_instruction_phases(self):
        machine = TraceMachine(MACHINE_B)
        tracer = Tracer()
        attributor = PhaseAttributor(machine)
        tracer.listeners.append(attributor)
        with tracer.span("empty"):
            pass
        with tracer.span("busy"):
            machine.alu(OpClass.SCALAR_ALU, 3)
        attributor.finish()
        report = attributor.report(MACHINE_B)
        assert "empty" not in report
        assert set(report) == {"busy"}

    def test_report_orders_largest_phase_first(self):
        _, attributor = _attributed()
        report = attributor.report(MACHINE_B)
        counts = [phase["instructions"] for phase in report.values()]
        assert counts == sorted(counts, reverse=True)


class TestPhaseAnalyses:
    def test_phase_entries_carry_full_analysis(self):
        _, attributor = _attributed()
        report = attributor.report(MACHINE_B)
        phase = report["phase/a/inner"]
        assert set(phase) == {
            "instructions", "ipc", "topdown", "mpki", "instruction_mix",
            "branch_misprediction_rate",
        }
        assert phase["ipc"] > 0
        slots = phase["topdown"]
        assert set(slots) == {"retiring", "frontend_bound",
                              "bad_speculation", "core_bound", "memory_bound"}
        assert sum(slots.values()) == 1.0 or abs(sum(slots.values()) - 1.0) < 1e-9

    def test_phase_summary_matches_whole_run_when_single_phase(self):
        machine = TraceMachine(MACHINE_B)
        tracer = Tracer()
        attributor = PhaseAttributor(machine)
        tracer.listeners.append(attributor)
        with tracer.span("only"):
            machine.alu(OpClass.SCALAR_ALU, 64)
            machine.load(1 << 12)
            machine.branch(site=9, taken=False)
        attributor.finish()
        phase = attributor.phases["only"].summary(MACHINE_B)
        whole = machine.summary()
        assert phase.op_counts == whole.op_counts
        assert phase.branch_stats == whole.branch_stats
        assert phase.l1_misses == whole.l1_misses
