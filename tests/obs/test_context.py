"""TraceContext: minting, child derivation, record annotation."""

from repro.obs.context import (
    TraceContext,
    annotate_records,
    stitch_trace,
    trace_ids,
)


class TestMint:
    def test_mint_is_unique_and_hex(self):
        contexts = {TraceContext.mint().trace_id for _ in range(64)}
        assert len(contexts) == 64
        for trace_id in contexts:
            assert len(trace_id) == 16
            int(trace_id, 16)  # must parse as hex

    def test_child_keeps_trace_id_sets_span(self):
        parent = TraceContext.mint()
        child = parent.child(42)
        assert child.trace_id == parent.trace_id
        assert child.span_id == 42
        assert parent.span_id == -1  # frozen: parent untouched


class TestAnnotate:
    def test_roots_get_parent_span(self):
        ctx = TraceContext(trace_id="aa" * 8, span_id=7)
        records = [
            {"id": 0, "parent": -1, "name": "root"},
            {"id": 1, "parent": 0, "name": "inner"},
        ]
        annotate_records(records, ctx)
        assert records[0]["trace"] == ctx.trace_id
        assert records[0]["parent_span"] == 7
        assert records[1]["trace"] == ctx.trace_id
        assert "parent_span" not in records[1]

    def test_existing_trace_not_overwritten(self):
        # Cached reports keep their original trace id — annotation is
        # link semantics, never a re-tag.
        original = TraceContext(trace_id="bb" * 8)
        fresh = TraceContext(trace_id="cc" * 8)
        records = [{"id": 0, "parent": -1, "trace": original.trace_id}]
        annotate_records(records, fresh)
        assert records[0]["trace"] == original.trace_id


class TestStitch:
    def test_stitch_filters_by_trace_id(self):
        records_a = [{"id": 0, "parent": -1, "trace": "a" * 16,
                      "start": 0.0}]
        records_b = [{"id": 0, "parent": -1, "trace": "b" * 16,
                      "start": 1.0}]
        stitched = stitch_trace("a" * 16, records_a, records_b)
        assert [r["trace"] for r in stitched] == ["a" * 16]

    def test_trace_ids_first_seen_order(self):
        records = [{"trace": "b" * 16}, {"trace": "a" * 16},
                   {"trace": "b" * 16}, {}]
        assert trace_ids(records) == ["b" * 16, "a" * 16]
