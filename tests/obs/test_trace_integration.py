"""End-to-end observability: traced kernel runs, the CLI, overhead."""

import json
from time import perf_counter

from repro.harness.cli import main
from repro.harness.runner import (
    load_reports,
    run_kernel_studies,
    save_reports,
)
from repro.obs import metrics, trace
from repro.obs.spans import Tracer

TRACE_STUDIES = ("timing", "topdown", "cache", "instmix")


def _traced_tc_report():
    tracer = Tracer()
    with trace.use(tracer), metrics.use(metrics.MetricsRegistry()):
        report = run_kernel_studies("tc", studies=TRACE_STUDIES, scale=0.25)
    return tracer, report


class TestTracedKernelRun:
    def test_execute_has_nested_phase_spans(self):
        tracer, report = _traced_tc_report()
        records = {r["name"]: r for r in tracer.records()}
        assert "kernel/tc/prepare" in records
        assert "kernel/tc/execute" in records
        execute_id = records["kernel/tc/execute"]["id"]
        phases = [r for r in tracer.records()
                  if r["parent"] == execute_id]
        assert len(phases) >= 3  # seqwish intervals / tree / closure
        assert report.spans == tracer.records()

    def test_prepare_has_nested_build_spans(self, tmp_path):
        """Cold prepare: the store's derivation-build span sits under the
        kernel's prepare span, with the wfmash stages nested inside it."""
        from repro.data import ArtifactStore, use_store

        tracer = Tracer()
        with use_store(ArtifactStore(tmp_path)), trace.use(tracer), \
                metrics.use(metrics.MetricsRegistry()):
            run_kernel_studies("tc", studies=TRACE_STUDIES, scale=0.25)
        records = {r["name"]: r for r in tracer.records()}
        prepare_id = records["kernel/tc/prepare"]["id"]
        children = {r["name"] for r in tracer.records()
                    if r["parent"] == prepare_id}
        assert "data/build/derived/tc_inputs" in children
        build_id = records["data/build/derived/tc_inputs"]["id"]
        grandchildren = {r["name"] for r in tracer.records()
                         if r["parent"] == build_id}
        assert {"wfmash/sketch", "wfmash/map"} <= grandchildren

    def test_phase_instructions_sum_to_whole_run(self):
        _, report = _traced_tc_report()
        assert report.phases
        total = sum(p["instructions"] for p in report.phases.values())
        assert total == report.instructions
        assert report.instructions > 0

    def test_run_metrics_exported_on_report(self):
        _, report = _traced_tc_report()
        assert report.metrics["counters"]["kernel.runs{backend=vectorized,kernel=tc}"] == 1.0
        gauges = report.metrics["gauges"]
        assert gauges["kernel.execute_seconds{backend=vectorized,kernel=tc}"] > 0

    def test_untraced_run_has_no_span_overhead_fields(self):
        report = run_kernel_studies("tc", studies=("timing",), scale=0.25)
        assert report.spans == []
        assert report.phases == {}

    def test_reports_round_trip_with_observability(self, tmp_path):
        _, report = _traced_tc_report()
        path = tmp_path / "reports.json"
        save_reports({"tc": report}, path)
        loaded = load_reports(path)["tc"]
        assert loaded.spans == report.spans
        assert loaded.metrics == report.metrics
        assert loaded.phases == report.phases


class TestTraceCommand:
    def test_trace_writes_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "tc.trace.json"
        code = main(["trace", "tc", "--scale", "0.25",
                     "--trace-out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        assert events
        names = {event["name"] for event in events}
        assert "kernel/tc/prepare" in names
        assert "kernel/tc/execute" in names
        assert sum(n not in ("kernel/tc/prepare", "kernel/tc/execute")
                   for n in names) >= 3
        assert all(event["ph"] == "X" and event["dur"] >= 0
                   for event in events)
        text = capsys.readouterr().out
        assert "Span tree" in text
        assert "Per-phase top-down" in text
        assert "seqwish/closure" in text

    def test_run_trace_out_covers_suite(self, tmp_path, capsys):
        out = tmp_path / "suite.trace.json"
        code = main(["run", "tc", "--scale", "0.25", "--studies", "timing",
                     "--trace-out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        names = {event["name"] for event in payload["traceEvents"]}
        assert "kernel/tc/execute" in names


class TestDisabledOverhead:
    def test_null_tracing_costs_under_two_percent(self):
        tracer, report = _traced_tc_report()
        span_count = len(tracer.records())
        assert span_count > 0
        # Per-call cost of the disabled path, measured directly.
        iterations = 200_000
        start = perf_counter()
        for _ in range(iterations):
            with trace.span("hot"):
                pass
        per_span = (perf_counter() - start) / iterations
        # All the spans a traced tc run opens, priced at the null rate,
        # must stay under 2% of the kernel's execute wall time.
        assert per_span * span_count <= 0.02 * max(report.wall_seconds, 1e-3)
