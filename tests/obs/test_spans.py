"""Span tracer: nesting, exception safety, the null path, exports."""

import json
import threading
import tracemalloc

import pytest

from repro.errors import ReproError
from repro.obs import trace
from repro.obs.spans import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    chrome_trace,
    merge_records,
    render_tree,
    spans_from_chrome_trace,
    write_chrome_trace,
)


class TestNesting:
    def test_parent_links_follow_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        records = {r["name"]: r for r in tracer.records()}
        assert records["outer"]["parent"] == -1
        assert records["inner"]["parent"] == records["outer"]["id"]
        assert records["sibling"]["parent"] == records["outer"]["id"]

    def test_records_in_finish_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [r["name"] for r in tracer.records()] == ["b", "a"]

    def test_durations_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        records = {r["name"]: r for r in tracer.records()}
        assert 0 <= records["inner"]["dur"] <= records["outer"]["dur"]
        assert records["outer"]["ts"] <= records["inner"]["ts"]

    def test_attrs_recorded_only_when_present(self):
        tracer = Tracer()
        with tracer.span("plain"):
            pass
        with tracer.span("labeled", {"k": "v"}):
            pass
        records = {r["name"]: r for r in tracer.records()}
        assert "attrs" not in records["plain"]
        assert records["labeled"]["attrs"] == {"k": "v"}

    def test_traced_decorator(self):
        tracer = Tracer()

        @tracer.traced("fn")
        def double(x):
            return 2 * x

        assert double(21) == 42
        assert [r["name"] for r in tracer.records()] == ["fn"]


class TestExceptionSafety:
    def test_record_survives_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        names = [r["name"] for r in tracer.records()]
        assert names == ["inner", "outer"]

    def test_stack_unwinds_after_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failed"):
                raise ValueError("boom")
        with tracer.span("after"):
            pass
        records = {r["name"]: r for r in tracer.records()}
        assert records["after"]["parent"] == -1  # not parented to "failed"


class TestThreadSafety:
    def test_threads_keep_independent_stacks(self):
        tracer = Tracer()

        def work(label):
            with tracer.span(f"outer-{label}"):
                with tracer.span(f"inner-{label}"):
                    pass

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = {r["name"]: r for r in tracer.records()}
        assert len(records) == 8
        for i in range(4):
            inner, outer = records[f"inner-{i}"], records[f"outer-{i}"]
            assert inner["parent"] == outer["id"]
            assert inner["tid"] == outer["tid"]
        assert len({r["id"] for r in tracer.records()}) == 8  # ids unique


class TestNullPath:
    def test_disabled_span_is_the_shared_singleton(self):
        assert trace.current_tracer() is NULL_TRACER
        assert trace.span("anything") is NULL_SPAN
        assert trace.span("other", {"k": 1}) is NULL_SPAN

    def test_null_span_context_manager_is_inert(self):
        with trace.span("nothing") as span:
            assert span is NULL_SPAN
        assert span.duration == 0.0

    def test_hot_path_does_not_allocate(self):
        with trace.span("warm"):  # warm any lazy interpreter state
            pass
        tracemalloc.start()
        before = tracemalloc.get_traced_memory()[0]
        for _ in range(1000):
            with trace.span("hot"):
                pass
        after = tracemalloc.get_traced_memory()[0]
        tracemalloc.stop()
        # The loop machinery itself may allocate once; the 1000 span
        # enters/exits must not (they return the shared NULL_SPAN).
        assert after - before < 512

    def test_timed_span_measures_without_a_tracer(self):
        span = trace.timed_span("unbound")
        assert isinstance(span, Span)
        with span:
            pass
        assert span.duration > 0.0
        assert trace.current_tracer() is NULL_TRACER

    def test_timed_span_records_with_a_tracer(self):
        tracer = Tracer()
        with trace.use(tracer):
            with trace.timed_span("bound"):
                pass
        assert [r["name"] for r in tracer.records()] == ["bound"]


class TestCurrentTracer:
    def test_use_installs_and_restores(self):
        tracer = Tracer()
        assert not trace.enabled()
        with trace.use(tracer):
            assert trace.enabled()
            assert trace.current_tracer() is tracer
            with trace.span("seen"):
                pass
        assert not trace.enabled()
        assert [r["name"] for r in tracer.records()] == ["seen"]

    def test_set_tracer_none_restores_null(self):
        trace.set_tracer(Tracer())
        try:
            assert trace.enabled()
        finally:
            trace.set_tracer(None)
        assert trace.current_tracer() is NULL_TRACER


class TestMarks:
    def test_records_since_mark(self):
        tracer = Tracer()
        with tracer.span("early"):
            pass
        mark = tracer.mark()
        with tracer.span("late"):
            pass
        assert [r["name"] for r in tracer.records_since(mark)] == ["late"]

    def test_add_record_external_timing(self):
        tracer = Tracer()
        record = tracer.add_record("ext", tracer.epoch + 1.0, 0.5,
                                   {"outcome": "ok"})
        assert record["ts"] == pytest.approx(1.0)
        assert record["dur"] == 0.5
        assert record["attrs"] == {"outcome": "ok"}
        assert tracer.records() == [record]

    def test_on_finish_sees_every_record(self):
        seen = []
        tracer = Tracer(on_finish=seen.append)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [r["name"] for r in seen] == ["b", "a"]


class TestChromeTrace:
    def test_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", {"k": "v"}):
            with tracer.span("inner"):
                pass
        path = write_chrome_trace(tracer.records(), tmp_path / "t.json")
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        back = spans_from_chrome_trace(payload)
        original = tracer.records()
        assert [r["name"] for r in back] == [r["name"] for r in original]
        for a, b in zip(back, original):
            assert a["ts"] == pytest.approx(b["ts"])
            assert a["dur"] == pytest.approx(b["dur"])
        assert back[1]["attrs"] == {"k": "v"}

    def test_events_are_complete_events_in_microseconds(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        record = tracer.records()[0]
        event = chrome_trace([record])["traceEvents"][0]
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(record["ts"] * 1e6)
        assert event["dur"] == pytest.approx(record["dur"] * 1e6)

    def test_rejects_non_trace_payload(self):
        with pytest.raises(ReproError):
            spans_from_chrome_trace({"not": "a trace"})

    def test_merge_records_drops_duplicates(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        records = tracer.records()
        other = [{"name": "w", "id": 0, "parent": -1, "ts": 0.0,
                  "dur": 0.1, "tid": 1, "pid": records[0]["pid"] + 1}]
        merged = merge_records(records, records, other)
        assert len(merged) == 2  # the duplicate list collapsed


class TestRenderTree:
    def test_tree_shows_nesting_counts_and_shares(self):
        tracer = Tracer()
        with tracer.span("outer"):
            for _ in range(3):
                with tracer.span("inner"):
                    pass
        text = render_tree(tracer.records(), title="T")
        assert "T" in text
        assert "outer" in text and "inner" in text
        assert "3x" in text
        assert "%" in text
        # children indented under their parent
        outer_line = next(l for l in text.splitlines() if "outer" in l)
        inner_line = next(l for l in text.splitlines() if "inner" in l)
        assert inner_line.startswith("  ")
        assert not outer_line.startswith(" ")
