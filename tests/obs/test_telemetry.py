"""The telemetry endpoint: /metrics, /healthz, /readyz over real HTTP,
plus the disabled-telemetry overhead bound."""

import json
import urllib.error
import urllib.request
from time import perf_counter

import pytest

from repro.errors import ReproError
from repro.obs import metrics, trace
from repro.obs.exposition import TEXT_CONTENT_TYPE
from repro.obs.telemetry import TelemetryServer


def _get(url: str):
    """(status, headers, body) — 4xx/5xx included, not raised."""
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


@pytest.fixture
def server():
    registry = metrics.MetricsRegistry()
    registry.counter("unit.requests", kernel="tc").inc(2)
    registry.histogram("unit.wait", bounds=(1.0,)).observe(0.5)
    with TelemetryServer(registry=registry) as srv:
        yield srv


class TestEndpoints:
    def test_metrics_text_exposition(self, server):
        status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == TEXT_CONTENT_TYPE
        text = body.decode()
        assert 'unit_requests_total{kernel="tc"} 2' in text
        assert 'unit_wait_bucket{le="+Inf"} 1' in text
        # Live gauges ride along even without a service attached.
        assert "telemetry_uptime_seconds" in text

    def test_metrics_json_snapshot(self, server):
        status, headers, body = _get(server.url + "/metrics?format=json")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        snap = json.loads(body)
        assert snap["schema"] == 1
        assert "unit.requests{kernel=tc}" in snap["metrics"]["counters"]

    def test_healthz_ok_without_service(self, server):
        status, _, body = _get(server.url + "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0

    def test_readyz_ok_without_service(self, server):
        status, _, body = _get(server.url + "/readyz")
        assert status == 200
        assert json.loads(body)["ready"] is True

    def test_unknown_route_404_lists_routes(self, server):
        status, _, body = _get(server.url + "/nope")
        assert status == 404
        assert b"/metrics" in body

    def test_scrapes_are_deterministic(self, server):
        def page(raw: bytes) -> list[str]:
            # Everything except the live uptime gauge is state, not
            # time, so back-to-back scrapes must render identically.
            return [line for line in raw.decode().splitlines()
                    if "uptime" not in line]

        first = page(_get(server.url + "/metrics")[2])
        second = page(_get(server.url + "/metrics")[2])
        assert first == second


class TestServiceIntegration:
    def test_service_health_and_readiness_flow_through(self):
        from repro.serve.service import BenchService

        from repro.harness.runner import KernelReport

        def runner(job):
            return KernelReport(kernel=job.kernel, wall_seconds=0.01,
                                inputs_processed=1)

        service = BenchService(workers=2, isolation="inline",
                               store=None, runner=runner,
                               telemetry_port=0)
        try:
            url = service.telemetry.url
            status, _, body = _get(url + "/healthz")
            assert status == 200
            health = json.loads(body)
            assert health["workers"]["alive"] == 2
            assert health["workers"]["configured"] == 2
            status, _, body = _get(url + "/readyz")
            assert status == 200
            ready = json.loads(body)
            assert ready["ready"] is True
            assert ready["queue_depth"] == 0
            status, _, body = _get(url + "/metrics")
            assert status == 200
            assert b"serve_queue_depth" in body
            assert b"serve_workers_alive 2" in body
        finally:
            service.shutdown()
        # Shutdown also tears the endpoint down.
        assert service.telemetry is None

    def test_stopping_service_reports_unready(self):
        from repro.serve.service import BenchService

        service = BenchService(workers=1, isolation="inline",
                               store=None, runner=lambda job: None,
                               autostart=False)
        with TelemetryServer(service=service) as srv:
            status, _, body = _get(srv.url + "/readyz")
            assert status == 503
            assert json.loads(body)["ready"] is False


class TestLifecycle:
    def test_port_before_start_rejected(self):
        with pytest.raises(ReproError):
            TelemetryServer().port

    def test_stop_is_idempotent(self):
        server = TelemetryServer().start()
        server.stop()
        server.stop()

    def test_bind_conflict_raises_repro_error(self):
        with TelemetryServer() as first:
            with pytest.raises(ReproError):
                TelemetryServer(port=first.port).start()


class TestDisabledTelemetryOverhead:
    def test_disabled_plane_costs_under_two_percent(self):
        """With no tracer installed and no endpoint running, the whole
        telemetry plane — null spans plus the ambient-registry check —
        prices out below 2% of a real traced kernel run (the PR 3
        bound, re-asserted over the PR 8 surface)."""
        from repro.harness.runner import run_kernel_studies
        from repro.obs.spans import Tracer

        tracer = Tracer()
        with trace.use(tracer), metrics.use(metrics.MetricsRegistry()):
            report = run_kernel_studies("tc", studies=("timing",),
                                        scale=0.25)
        span_count = len(tracer.records())
        assert span_count > 0

        iterations = 200_000
        start = perf_counter()
        for _ in range(iterations):
            with trace.span("hot"):
                pass
        per_span = (perf_counter() - start) / iterations
        assert per_span * span_count <= 0.02 * max(report.wall_seconds, 1e-3)
