"""Concurrency: a shared registry hammered from N threads equals the
associative merge of per-thread snapshots.

Metric *objects* are deliberately lock-free (single-writer discipline:
each series is owned by the thread that created it — the registry keys
worker identity into the labels).  The registry itself takes a lock
only for series creation and export, so the contract to pin down is:
N threads writing N disjoint label series concurrently produce exactly
the same export as N private registries merged afterwards.
"""

import threading
from functools import reduce

from repro.obs.metrics import MetricsRegistry, merge

THREADS = 8
ITERATIONS = 400


def _hammer(registry: MetricsRegistry, worker: int) -> None:
    labels = {"worker": str(worker)}
    for i in range(ITERATIONS):
        registry.counter("hammer.ops", **labels).inc()
        registry.gauge("hammer.last", **labels).set(float(i))
        registry.histogram("hammer.wait", bounds=(1.0, 10.0),
                           **labels).observe(float(i % 20))


class TestConcurrentRegistry:
    def test_shared_registry_equals_merged_private_snapshots(self):
        shared = MetricsRegistry()
        barrier = threading.Barrier(THREADS)

        def run(worker: int) -> None:
            barrier.wait()
            _hammer(shared, worker)

        threads = [threading.Thread(target=run, args=(w,))
                   for w in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        privates = []
        for worker in range(THREADS):
            private = MetricsRegistry()
            _hammer(private, worker)
            privates.append(private.as_dict())
        expected = reduce(merge, privates)

        assert shared.as_dict() == expected

    def test_concurrent_series_creation_yields_one_series_each(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(THREADS)

        def run() -> None:
            barrier.wait()
            # Every thread races to create the *same* series; the
            # registry lock must hand all of them one shared object.
            for _ in range(ITERATIONS):
                registry.counter("race.ops").inc()

        threads = [threading.Thread(target=run) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Creation is serialized, so there is exactly one series; its
        # count is <= the total (increments on a lock-free counter may
        # race) but every thread's first increment must have landed.
        counters = registry.as_dict()["counters"]
        assert set(counters) == {"race.ops"}
        assert THREADS <= counters["race.ops"] <= THREADS * ITERATIONS

    def test_export_during_writes_never_corrupts(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        errors: list[BaseException] = []

        def write() -> None:
            worker = threading.get_ident()
            try:
                while not stop.is_set():
                    registry.counter("mix.ops", worker=str(worker)).inc()
                    registry.histogram("mix.wait",
                                       worker=str(worker)).observe(0.5)
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        writers = [threading.Thread(target=write) for _ in range(4)]
        for thread in writers:
            thread.start()
        try:
            for _ in range(50):
                exported = registry.as_dict()
                for payload in exported.get("histograms", {}).values():
                    assert payload["count"] >= 0
                    assert set(payload) == {"count", "sum", "buckets"}
        finally:
            stop.set()
            for thread in writers:
                thread.join()
        assert not errors
