"""Metrics registry: series naming, export schema, associative merge."""

import math

import pytest

from repro.errors import ReproError
from repro.obs import metrics
from repro.obs.metrics import (
    MetricsRegistry,
    merge,
    quantile_estimate,
    series_name,
)


class TestSeriesNaming:
    def test_no_labels_is_bare_name(self):
        assert series_name("kernel.runs", {}) == "kernel.runs"

    def test_labels_sorted_canonically(self):
        assert series_name("m", {"b": 2, "a": 1}) == "m{a=1,b=2}"


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        registry.counter("runs").inc(2)
        assert registry.as_dict() == {"counters": {"runs": 3.0}}

    def test_counter_rejects_negative(self):
        with pytest.raises(ReproError):
            MetricsRegistry().counter("runs").inc(-1)

    def test_labels_make_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("runs", kernel="tc").inc()
        registry.counter("runs", kernel="gcsa").inc(5)
        counters = registry.as_dict()["counters"]
        assert counters == {"runs{kernel=tc}": 1.0, "runs{kernel=gcsa}": 5.0}

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("seconds").set(1.5)
        registry.gauge("seconds").set(0.5)
        assert registry.as_dict() == {"gauges": {"seconds": 0.5}}

    def test_histogram_buckets_and_overflow(self):
        registry = MetricsRegistry()
        h = registry.histogram("wait", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            h.observe(value)
        payload = registry.as_dict()["histograms"]["wait"]
        assert payload["count"] == 3
        assert payload["sum"] == pytest.approx(55.5)
        assert payload["buckets"] == {"1.0": 1, "10.0": 1, "inf": 1}

    def test_empty_sections_omitted(self):
        assert MetricsRegistry().as_dict() == {}


class TestMerge:
    def test_counters_add_gauges_overwrite(self):
        left = {"counters": {"runs": 1.0}, "gauges": {"s": 1.0}}
        right = {"counters": {"runs": 2.0, "new": 1.0}, "gauges": {"s": 9.0}}
        merged = merge(left, right)
        assert merged["counters"] == {"runs": 3.0, "new": 1.0}
        assert merged["gauges"] == {"s": 9.0}

    def test_histograms_add_bucketwise(self):
        registry = MetricsRegistry()
        registry.histogram("wait", bounds=(1.0,)).observe(0.5)
        one = registry.as_dict()
        merged = merge(one, one)
        payload = merged["histograms"]["wait"]
        assert payload["count"] == 2
        assert payload["buckets"] == {"1.0": 2, "inf": 0}

    def test_histogram_bound_mismatch_rejected(self):
        a = MetricsRegistry()
        a.histogram("wait", bounds=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("wait", bounds=(2.0,)).observe(0.5)
        with pytest.raises(ReproError):
            merge(a.as_dict(), b.as_dict())

    def test_merge_does_not_mutate_inputs(self):
        left = {"counters": {"runs": 1.0}}
        right = {"counters": {"runs": 2.0}}
        merge(left, right)
        assert left == {"counters": {"runs": 1.0}}

    def test_merge_dict_folds_into_registry(self):
        registry = MetricsRegistry()
        registry.counter("runs", kernel="tc").inc()
        registry.merge_dict(
            {"counters": {"runs{kernel=tc}": 2.0},
             "gauges": {"s{kernel=tc}": 0.25}}
        )
        out = registry.as_dict()
        assert out["counters"] == {"runs{kernel=tc}": 3.0}
        assert out["gauges"] == {"s{kernel=tc}": 0.25}
        # Instruments keep working after a merge rebuild.
        registry.counter("runs", kernel="tc").inc()
        assert registry.as_dict()["counters"]["runs{kernel=tc}"] == 4.0

    def test_associativity_over_worker_exports(self):
        exports = []
        for _ in range(3):
            registry = MetricsRegistry()
            registry.counter("jobs", outcome="ok").inc()
            registry.histogram("wait").observe(0.05)
            exports.append(registry.as_dict())
        left_first = merge(merge(exports[0], exports[1]), exports[2])
        right_first = merge(exports[0], merge(exports[1], exports[2]))
        assert left_first == right_first
        assert left_first["counters"]["jobs{outcome=ok}"] == 3.0


class TestCurrentRegistry:
    def test_use_installs_and_restores(self):
        ambient = metrics.current_registry()
        scoped = MetricsRegistry()
        with metrics.use(scoped):
            assert metrics.current_registry() is scoped
            metrics.counter("scoped.runs").inc()
        assert metrics.current_registry() is ambient
        assert scoped.as_dict() == {"counters": {"scoped.runs": 1.0}}
        assert "scoped.runs" not in ambient.as_dict().get("counters", {})


class TestQuantiles:
    def test_quantile_estimate_bucket_bound(self):
        registry = MetricsRegistry()
        h = registry.histogram("wait", bounds=(1.0, 10.0))
        for value in (0.5, 0.6, 5.0, 50.0):
            h.observe(value)
        payload = registry.as_dict()["histograms"]["wait"]
        assert quantile_estimate(payload, 0.5) == 1.0
        assert quantile_estimate(payload, 0.75) == 10.0
        # The overflow bucket clamps to the largest finite bound instead
        # of reporting +Inf (a useless answer for a latency readout).
        assert quantile_estimate(payload, 1.0) == 10.0

    def test_quantile_interpolates_within_bucket(self):
        registry = MetricsRegistry()
        h = registry.histogram("wait", bounds=(1.0, 10.0))
        for value in (2.0, 4.0, 6.0, 8.0):
            h.observe(value)
        payload = registry.as_dict()["histograms"]["wait"]
        # All four samples land in (1, 10]; the estimate walks linearly
        # through the bucket instead of snapping to its upper bound.
        assert quantile_estimate(payload, 0.25) == pytest.approx(3.25)
        assert quantile_estimate(payload, 0.5) == pytest.approx(5.5)
        assert quantile_estimate(payload, 1.0) == pytest.approx(10.0)

    def test_quantile_first_bucket_interpolates_from_zero(self):
        registry = MetricsRegistry()
        h = registry.histogram("wait", bounds=(4.0,))
        h.observe(1.0)
        h.observe(2.0)
        payload = registry.as_dict()["histograms"]["wait"]
        # Lower edge of the first bucket is 0, so the median of two
        # first-bucket samples is halfway up: 0 + 4 * (1/2) = 2.
        assert quantile_estimate(payload, 0.5) == pytest.approx(2.0)

    def test_quantile_empty_histogram_is_zero(self):
        registry = MetricsRegistry()
        registry.histogram("wait", bounds=(1.0,))
        payload = registry.as_dict()["histograms"]["wait"]
        assert quantile_estimate(payload, 0.99) == 0.0

    def test_quantile_monotone_in_q(self):
        registry = MetricsRegistry()
        h = registry.histogram("wait", bounds=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.7, 3.0, 20.0):
            h.observe(value)
        payload = registry.as_dict()["histograms"]["wait"]
        estimates = [quantile_estimate(payload, q / 20) for q in range(21)]
        assert estimates == sorted(estimates)
        assert all(math.isfinite(e) for e in estimates)

    def test_quantile_out_of_range_rejected(self):
        with pytest.raises(ReproError):
            quantile_estimate({"count": 0, "buckets": {}}, 1.5)
