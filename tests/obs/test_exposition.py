"""Exposition format: Prometheus text rendering and snapshot round-trip."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.obs.exposition import (
    TEXT_CONTENT_TYPE,
    exposition,
    parse_series,
    registry_from_snapshot,
    snapshot,
)
from repro.obs.metrics import MetricsRegistry, merge


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("serve.submitted", kernel="tc").inc(3)
    registry.counter("serve.submitted", kernel="gbwt").inc()
    registry.gauge("serve.queue_depth").set(2)
    h = registry.histogram("serve.latency_seconds", bounds=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        h.observe(value)
    return registry


class TestTextFormat:
    def test_content_type_is_prometheus_004(self):
        assert "version=0.0.4" in TEXT_CONTENT_TYPE

    def test_counters_get_total_suffix_and_type_line(self):
        text = exposition(_sample_registry().as_dict())
        assert "# TYPE serve_submitted_total counter" in text
        assert 'serve_submitted_total{kernel="tc"} 3' in text
        assert 'serve_submitted_total{kernel="gbwt"} 1' in text

    def test_dots_become_underscores(self):
        text = exposition(_sample_registry().as_dict())
        assert "serve.submitted" not in text
        assert "# TYPE serve_queue_depth gauge" in text

    def test_histogram_buckets_are_cumulative(self):
        text = exposition(_sample_registry().as_dict())
        assert 'serve_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'serve_latency_seconds_bucket{le="1"} 2' in text
        assert 'serve_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "serve_latency_seconds_count 3" in text
        assert "serve_latency_seconds_sum 5.55" in text

    def test_empty_registry_renders_empty_page(self):
        assert exposition(MetricsRegistry().as_dict()) == ""

    def test_ends_with_single_newline(self):
        text = exposition(_sample_registry().as_dict())
        assert text.endswith("\n") and not text.endswith("\n\n")

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("runs", note='say "hi"').inc()
        text = exposition(registry.as_dict())
        assert 'note="say \\"hi\\""' in text

    def test_scalar_colliding_with_histogram_renamed(self):
        registry = MetricsRegistry()
        registry.gauge("executor.queue_wait_seconds", kernel="tc").set(0.5)
        registry.histogram("executor.queue_wait_seconds").observe(0.5)
        text = exposition(registry.as_dict())
        # One TYPE per family name: the last-value gauge moves aside.
        assert text.count("# TYPE executor_queue_wait_seconds ") == 1
        assert "# TYPE executor_queue_wait_seconds histogram" in text
        assert "# TYPE executor_queue_wait_seconds_gauge gauge" in text


class TestParseSeries:
    def test_inverts_series_name(self):
        assert parse_series("a.b{k=v,x=1}") == ("a.b", {"k": "v", "x": "1"})

    def test_bare_name(self):
        assert parse_series("a.b") == ("a.b", {})


_names = st.sampled_from(
    ["serve.latency", "executor.jobs", "kernel.runs", "data.bytes"])
_labels = st.dictionaries(
    st.sampled_from(["kernel", "origin", "scenario"]),
    st.sampled_from(["tc", "gbwt", "tsu", "default"]),
    max_size=2,
)
_events = st.lists(
    st.tuples(st.sampled_from(["counter", "gauge", "histogram"]),
              _names, _labels,
              st.floats(min_value=0.0, max_value=1e6,
                        allow_nan=False, allow_infinity=False)),
    max_size=30,
)


def _apply(registry: MetricsRegistry, events) -> None:
    for kind, name, labels, value in events:
        if kind == "counter":
            registry.counter(name, **labels).inc(value)
        elif kind == "gauge":
            registry.gauge(name, **labels).set(value)
        else:
            registry.histogram(name, **labels).observe(value)


class TestDeterminism:
    @settings(max_examples=50, deadline=None)
    @given(_events)
    def test_insertion_order_does_not_change_page(self, events):
        forward, backward = MetricsRegistry(), MetricsRegistry()
        _apply(forward, events)
        _apply(backward, list(reversed(events)))
        # Counters accumulate and histograms are order-free; gauges are
        # last-write-wins, so only compare when both orders agree.
        gauge_series = {(n, tuple(sorted(l.items())))
                        for kind, n, l, _ in events if kind == "gauge"}
        if len(gauge_series) == sum(1 for e in events if e[0] == "gauge"):
            assert exposition(forward.as_dict()) == \
                exposition(backward.as_dict())

    @settings(max_examples=50, deadline=None)
    @given(_events)
    def test_snapshot_round_trip_preserves_page(self, events):
        registry = MetricsRegistry()
        _apply(registry, events)
        wire = json.dumps(snapshot(registry.as_dict(), source="test"))
        rebuilt = registry_from_snapshot(json.loads(wire))
        assert exposition(rebuilt.as_dict()) == \
            exposition(registry.as_dict())

    @settings(max_examples=25, deadline=None)
    @given(_events, _events)
    def test_exposition_of_merge_equals_merged_exposition(self, a, b):
        left, right = MetricsRegistry(), MetricsRegistry()
        _apply(left, a)
        _apply(right, b)
        merged = merge(left.as_dict(), right.as_dict())
        folded = MetricsRegistry()
        folded.merge_dict(left.as_dict())
        folded.merge_dict(right.as_dict())
        assert exposition(merged) == exposition(folded.as_dict())


class TestSnapshot:
    def test_snapshot_carries_metadata(self):
        snap = snapshot({}, source="unit", uptime=1.5)
        assert snap["source"] == "unit"
        assert snap["uptime"] == 1.5
        assert snap["schema"] == 1

    def test_rejects_non_snapshot_payload(self):
        with pytest.raises(ReproError):
            registry_from_snapshot({"nope": 1})

    def test_rejects_future_schema(self):
        with pytest.raises(ReproError):
            registry_from_snapshot({"schema": 99, "metrics": {}})
