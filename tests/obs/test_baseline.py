"""The perf-regression sentinel: robust baselines, classification,
trajectory checks, and the obs_check.json artifact."""

import json
import math

import pytest

from repro.errors import ReproError
from repro.harness.runner import KernelReport
from repro.obs import baseline
from repro.obs.baseline import (
    SeriesSpec,
    check_reports,
    check_trajectories,
    classify,
    overall_status,
    render_checks,
    robust_center,
    write_check,
)

LOWER = SeriesSpec("t.latency", "BENCH_t.json", "latency", "lower",
                   warn_ratio=1.3, regress_ratio=1.8)
HIGHER = SeriesSpec("t.rate", "BENCH_t.json", "rate", "higher",
                    warn_ratio=1.3, regress_ratio=2.0)


class TestRobustCenter:
    def test_median_and_mad(self):
        median, mad = robust_center([1.0, 2.0, 3.0, 4.0, 100.0])
        assert median == 3.0
        assert mad == 1.0  # deviations 2,1,0,1,97 -> median 1

    def test_single_outlier_cannot_poison_the_baseline(self):
        clean, _ = robust_center([10.0] * 7)
        dirty, _ = robust_center([10.0] * 7 + [1000.0])
        assert dirty == clean

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            robust_center([])


class TestClassify:
    def test_no_history(self):
        check = classify([], 5.0, LOWER)
        assert check.status == "no-history"
        assert overall_status([check]) == "ok"

    def test_lower_better_within_threshold_ok(self):
        check = classify([10.0, 10.0, 10.0], 11.0, LOWER)
        assert check.status == "ok"
        assert check.baseline == 10.0
        assert check.ratio == pytest.approx(1.1)

    def test_lower_better_warns_then_regresses(self):
        history = [10.0, 10.0, 10.0]
        assert classify(history, 14.0, LOWER).status == "warn"
        assert classify(history, 20.0, LOWER).status == "regress"

    def test_doubled_latency_is_a_regression(self):
        # The acceptance scenario: regress_ratio 1.8 < 2.0, so a 2x
        # latency bump on a stable series must fire.
        check = classify([10.0, 10.1, 9.9, 10.0], 20.0, LOWER)
        assert check.status == "regress"
        assert "grew to 2.00x" in check.note

    def test_higher_better_shrinkage_regresses(self):
        history = [100.0, 100.0, 100.0]
        assert classify(history, 95.0, HIGHER).status == "ok"
        assert classify(history, 70.0, HIGHER).status == "warn"
        assert classify(history, 25.0, HIGHER).status == "regress"
        note = classify(history, 25.0, HIGHER).note
        assert "fell to 0.25x" in note

    def test_mad_guard_spares_noisy_series(self):
        # Historical jitter is wide (MAD 4): a value only 1.4x the
        # median is still inside median + 3*MAD, so no alarm.
        noisy = [10.0, 6.0, 14.0, 8.0, 12.0, 5.0, 15.0]
        median, mad = robust_center(noisy)
        value = median * 1.4
        assert value < median + baseline.MAD_WARN * mad
        assert classify(noisy, value, LOWER).status == "ok"

    def test_unknown_direction_rejected(self):
        bad = SeriesSpec("t.x", "f.json", "x", "sideways")
        with pytest.raises(ReproError):
            classify([1.0], 1.0, bad)

    def test_zero_baseline_lower_better_is_inf_ratio(self):
        check = classify([0.0, 0.0], 1.0, LOWER)
        assert check.ratio == math.inf
        assert check.status == "regress"


def _write_trajectory(path, field, values):
    path.write_text(json.dumps(
        {"bench": "t", "entries": [{field: v} for v in values]}))


class TestCheckTrajectories:
    def test_missing_file_reports_missing_not_failure(self, tmp_path):
        checks = check_trajectories(root=tmp_path, specs=[LOWER])
        assert [c.status for c in checks] == ["missing"]
        assert overall_status(checks) == "ok"

    def test_single_entry_is_no_history(self, tmp_path):
        _write_trajectory(tmp_path / "BENCH_t.json", "latency", [10.0])
        checks = check_trajectories(root=tmp_path, specs=[LOWER])
        assert [c.status for c in checks] == ["no-history"]

    def test_window_trims_old_history(self, tmp_path):
        # Ancient slowness outside the window must not inflate the
        # baseline: with window=3 only the recent fast entries count.
        values = [100.0] * 5 + [10.0, 10.0, 10.0, 20.0]
        _write_trajectory(tmp_path / "BENCH_t.json", "latency", values)
        wide = check_trajectories(root=tmp_path, specs=[LOWER], window=8)[0]
        tight = check_trajectories(root=tmp_path, specs=[LOWER], window=3)[0]
        assert wide.status == "ok"          # baseline dragged up to 100
        assert tight.status == "regress"    # honest recent baseline 10

    def test_committed_trajectories_pass(self):
        # `repro obs check` with no arguments must exit 0 on the
        # repo's own committed trajectory files.
        checks = check_trajectories()
        assert checks, "expected tracked series"
        assert overall_status(checks) != "regress"

    def test_degraded_copy_regresses(self, tmp_path):
        # The CI smoke scenario: clone the committed trajectories,
        # append an entry with doubled latency / quartered throughput,
        # and the sentinel must fire.
        for name in ("BENCH_serve_load.json", "BENCH_sweep.json"):
            source = baseline.repo_root() / name
            payload = json.loads(source.read_text())
            entry = dict(payload["entries"][-1])
            for field in ("p50_ms", "p99_ms", "cold_wall_seconds"):
                if field in entry:
                    entry[field] = entry[field] * 2.0
            for field in ("cold_points_per_sec", "warm_speedup",
                          "requests_per_sec"):
                if field in entry:
                    entry[field] = entry[field] / 4.0
            payload["entries"] = payload["entries"] + [entry]
            (tmp_path / name).write_text(json.dumps(payload))
        checks = check_trajectories(root=tmp_path)
        assert overall_status(checks) == "regress"
        regressed = {c.series for c in checks if c.status == "regress"}
        assert "serve_load.p50_ms" in regressed


def _report(kernel, wall, ipc=None, error=None):
    return KernelReport(kernel=kernel, wall_seconds=wall, ipc=ipc,
                        error=error)


class TestCheckReports:
    def test_wall_and_ipc_compared(self):
        checks = check_reports(
            {"tc": _report("tc", 2.0, ipc=1.0)},
            {"tc": _report("tc", 1.0, ipc=2.0)},
        )
        statuses = {c.series: c.status for c in checks}
        assert statuses["report.tc.wall_seconds"] == "regress"
        assert statuses["report.tc.ipc"] == "regress"

    def test_matching_reports_ok(self):
        checks = check_reports(
            {"tc": _report("tc", 1.02)}, {"tc": _report("tc", 1.0)})
        assert overall_status(checks) == "ok"

    def test_errored_and_absent_kernels_marked_missing(self):
        checks = check_reports(
            {"tc": _report("tc", 1.0, error="boom")},
            {"tc": _report("tc", 1.0), "gbwt": _report("gbwt", 1.0)},
        )
        assert sorted(c.status for c in checks) == ["missing", "missing"]


class TestArtifact:
    def test_write_check_round_trips(self, tmp_path):
        checks = [classify([10.0, 10.0], 20.0, LOWER),
                  classify([], 1.0, HIGHER)]
        out = write_check(checks, tmp_path / "obs_check.json",
                          metadata={"git": "abc"})
        payload = json.loads(out.read_text())
        assert payload["schema"] == baseline.CHECK_SCHEMA
        assert payload["status"] == "regress"
        assert payload["metadata"] == {"git": "abc"}
        assert len(payload["checks"]) == 2
        assert payload["checks"][0]["series"] == "t.latency"

    def test_non_finite_values_serialized_as_null(self, tmp_path):
        check = classify([0.0, 0.0], 1.0, LOWER)
        out = write_check([check], tmp_path / "c.json")
        payload = json.loads(out.read_text())  # must be strict JSON
        assert payload["checks"][0]["ratio"] is None

    def test_render_ends_with_overall_line(self):
        rendered = render_checks([classify([10.0, 10.0], 10.5, LOWER)])
        assert rendered.splitlines()[-1] == "overall: ok"
