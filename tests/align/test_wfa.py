"""WFA edit-distance and gap-affine variants vs DP oracles."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.myers import edit_distance
from repro.align.wfa import (
    AffinePenalties,
    affine_global_cost,
    wfa_affine,
    wfa_edit_distance,
)
from repro.errors import AlignmentError

dna = st.text(alphabet="ACGT", min_size=1, max_size=100)


class TestEditWFA:
    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_matches_dp(self, a, b):
        assert wfa_edit_distance(a, b).distance == edit_distance(a, b)

    def test_identical_zero_score_steps(self):
        result = wfa_edit_distance("ACGTACGT", "ACGTACGT")
        assert result.distance == 0
        assert result.stats.scores == 0

    def test_extend_lengths_recorded(self):
        result = wfa_edit_distance("ACGTACGT", "ACGAACGT", record_extends=True)
        assert result.stats.extend_lengths
        assert sum(result.stats.extend_lengths) == result.stats.cells_extended

    def test_similar_sequences_cheap(self):
        rng = random.Random(3)
        a = "".join(rng.choice("ACGT") for _ in range(500))
        b = a[:250] + "T" + a[251:]
        result = wfa_edit_distance(a, b)
        assert result.distance <= 2
        assert result.stats.diagonals_processed < 50

    def test_empty_rejected(self):
        with pytest.raises(AlignmentError):
            wfa_edit_distance("", "ACGT")


class TestAffineWFA:
    @given(
        dna,
        dna,
        st.integers(1, 5),
        st.integers(0, 6),
        st.integers(1, 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_gotoh_oracle(self, a, b, mismatch, gap_open, gap_extend):
        penalties = AffinePenalties(
            mismatch=mismatch, gap_open=gap_open, gap_extend=gap_extend
        )
        assert (
            wfa_affine(a, b, penalties).distance == affine_global_cost(a, b, penalties)
        )

    def test_gap_cost_structure(self):
        penalties = AffinePenalties(mismatch=10, gap_open=4, gap_extend=1)
        # one gap of length 2 (cost 4 + 2) beats two mismatches (20)
        assert wfa_affine("AACC", "AATTCC", penalties).distance == 6

    def test_penalties_validated(self):
        with pytest.raises(ValueError):
            AffinePenalties(mismatch=0)
