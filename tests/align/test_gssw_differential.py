"""Vectorized GSSW (striped graph Smith–Waterman) vs the scalar path.

The vectorized column kernel must produce bit-identical alignments and
an *event-equivalent* probe stream: identical op counts, branch
statistics, dependent latency, and total load/store event counts.  The
one sanctioned difference is the cache *level* distribution — the
vectorized path flushes its per-column event buffers in a different
interleaving than the scalar loop emits them, which shifts which level
an access hits without changing what is accessed (this is the
interleaving change behind the 1.6.0 result-store version bump).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.gssw import GSSW, graph_smith_waterman_scalar
from repro.align.scoring import VG_DEFAULT
from repro.graph.ops import local_subgraph
from repro.uarch.machine import TraceMachine


def _case(gp, seed):
    """A (query, acyclic subgraph) pair like the gssw kernel's inputs."""
    rng = random.Random(seed)
    node_ids = sorted(gp.graph.node_ids())
    node = node_ids[rng.randrange(len(node_ids))]
    subgraph = local_subgraph(gp.graph, node, radius_bp=rng.randrange(120, 320),
                              acyclic=True)
    start = rng.randrange(max(1, len(gp.reference.sequence) - 160))
    query = gp.reference.sequence[start:start + rng.randrange(30, 150)]
    return query or "ACGT", subgraph


def _align(query, subgraph, backend):
    machine = TraceMachine()
    result = GSSW(query, VG_DEFAULT, probe=machine,
                  backend=backend).align(subgraph)
    return result, machine.summary()


class TestGsswDifferential:
    @given(seed=st.integers(min_value=0, max_value=400))
    @settings(max_examples=20, deadline=None)
    def test_alignment_and_event_totals_identical(self, seed,
                                                  small_graph_pangenome):
        query, subgraph = _case(small_graph_pangenome, seed)
        fast, fast_summary = _align(query, subgraph, backend="vectorized")
        slow, slow_summary = _align(query, subgraph, backend="scalar")
        assert fast == slow  # score, end position, cells — the output
        assert fast_summary.op_counts == slow_summary.op_counts
        assert fast_summary.branch_stats == slow_summary.branch_stats
        assert fast_summary.dependent_latency_cycles \
            == slow_summary.dependent_latency_cycles
        # Flush reordering may move accesses between cache levels, but
        # the event stream itself — how many loads/stores happened — is
        # the same stream.
        assert sum(fast_summary.load_level_counts.values()) \
            == sum(slow_summary.load_level_counts.values())
        assert sum(fast_summary.store_level_counts.values()) \
            == sum(slow_summary.store_level_counts.values())

    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=10, deadline=None)
    def test_vectorized_matches_scalar_oracle(self, seed,
                                              small_graph_pangenome):
        """End to end against the independent scalar graph-SW oracle."""
        query, subgraph = _case(small_graph_pangenome, seed)
        fast, _ = _align(query, subgraph, backend="vectorized")
        oracle = graph_smith_waterman_scalar(query, subgraph, VG_DEFAULT)
        assert fast.score == oracle.score
