"""GSSW vs the scalar graph Smith-Waterman oracle."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.gssw import GSSW, graph_smith_waterman_scalar, gssw_align
from repro.align.smith_waterman import smith_waterman
from repro.errors import CyclicGraphError
from repro.graph.model import SequenceGraph


def random_dag(seed, max_nodes=9):
    rng = random.Random(seed)
    graph = SequenceGraph()
    n = rng.randint(2, max_nodes)
    for i in range(n):
        graph.add_node(i, "".join(rng.choice("ACGT") for _ in range(rng.randint(1, 10))))
    for i in range(n):
        for j in range(i + 1, min(i + 4, n)):
            if rng.random() < 0.5:
                graph.add_edge(i, j)
    return graph


class TestEquivalence:
    @given(st.integers(0, 400), st.integers(5, 40))
    @settings(max_examples=25, deadline=None)
    def test_matches_scalar_oracle(self, seed, query_length):
        rng = random.Random(seed)
        graph = random_dag(seed)
        query = "".join(rng.choice("ACGT") for _ in range(query_length))
        fast = gssw_align(query, graph)
        slow = graph_smith_waterman_scalar(query, graph)
        assert fast.score == slow.score

    def test_single_node_equals_linear(self):
        rng = random.Random(9)
        target = "".join(rng.choice("ACGT") for _ in range(60))
        query = "".join(rng.choice("ACGT") for _ in range(20))
        graph = SequenceGraph()
        graph.add_node(0, target)
        assert gssw_align(query, graph).score == smith_waterman(query, target).score

    def test_path_through_bubble_found(self):
        graph = SequenceGraph()
        graph.add_node(0, "AAAA")
        graph.add_node(1, "C")
        graph.add_node(2, "G")
        graph.add_node(3, "TTTT")
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        graph.add_edge(1, 3)
        graph.add_edge(2, 3)
        # query follows the C branch exactly
        assert gssw_align("AAAACTTTT", graph).score == 9

    def test_cyclic_graph_rejected(self):
        graph = SequenceGraph()
        graph.add_node(0, "AC")
        graph.add_node(1, "GT")
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        with pytest.raises(CyclicGraphError):
            gssw_align("ACGT", graph)

    def test_cells_counted(self):
        graph = random_dag(3)
        result = gssw_align("ACGTACGT", graph)
        assert result.cells_computed == 8 * graph.total_sequence_length

    def test_store_full_matrix_off_same_score(self):
        graph = random_dag(5)
        query = "ACGTTGCA"
        with_store = GSSW(query).align(graph).score
        without = GSSW(query, store_full_matrix=False).align(graph).score
        assert with_store == without
