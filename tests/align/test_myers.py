"""Myers bit-parallel matcher vs DP oracles, incl. block boundaries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.myers import (
    MyersBitvector,
    best_substring_distance,
    edit_distance,
)
from repro.errors import AlignmentError

dna = st.text(alphabet="ACGT", min_size=1, max_size=150)


class TestEditDistanceOracle:
    def test_known_values(self):
        assert edit_distance("kitten", "sitting") == 3
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "abc") == 0


class TestGlobal:
    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_matches_dp(self, pattern, text):
        assert MyersBitvector(pattern).global_distance(text) == edit_distance(
            pattern, text
        )

    @pytest.mark.parametrize("length", [63, 64, 65, 127, 128, 129])
    def test_block_boundaries(self, length):
        pattern = ("ACGT" * 40)[:length]
        text = pattern[: length // 2] + "T" + pattern[length // 2 :]
        assert MyersBitvector(pattern).global_distance(text) == edit_distance(
            pattern, text
        )


class TestSearch:
    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_matches_semiglobal_dp(self, pattern, text):
        got = MyersBitvector(pattern).search(text)
        want, _ = best_substring_distance(pattern, text)
        assert got.distance == want

    def test_exact_substring_found(self):
        match = MyersBitvector("ACGTAC").search("TTTTACGTACTTTT")
        assert match.distance == 0
        assert match.text_end == 10

    def test_empty_inputs_rejected(self):
        with pytest.raises(AlignmentError):
            MyersBitvector("")
        with pytest.raises(AlignmentError):
            MyersBitvector("ACGT").search("")
