"""Partial order alignment: consensus quality and banding."""

import random

import pytest

from repro.align.myers import edit_distance
from repro.align.poa import PoaGraph, abpoa_align, poa_consensus
from repro.errors import AlignmentError


def mutated_copies(base, n, rate, seed):
    rng = random.Random(seed)
    return [
        "".join(c if rng.random() > rate else rng.choice("ACGT") for c in base)
        for _ in range(n)
    ]


class TestPoa:
    def test_identical_sequences_consensus(self):
        consensus, _ = poa_consensus(["ACGTACGT"] * 4)
        assert consensus == "ACGTACGT"

    def test_majority_substitution_wins(self):
        consensus, _ = poa_consensus(["ACGTAACGT", "ACGTTACGT", "ACGTAACGT"])
        assert consensus == "ACGTAACGT"

    def test_consensus_close_to_truth(self):
        rng = random.Random(4)
        base = "".join(rng.choice("ACGT") for _ in range(150))
        sequences = mutated_copies(base, 6, 0.04, seed=9)
        consensus, cells = poa_consensus(sequences)
        assert edit_distance(consensus, base) <= 5
        assert cells > 0

    def test_alignment_pairs_cover_sequence(self):
        graph = PoaGraph()
        graph.add_sequence("ACGTACGT")
        alignment = graph.add_sequence("ACGAACGT")
        consumed = [s for _n, s in alignment.pairs if s is not None]
        assert consumed == list(range(8))

    def test_empty_rejected(self):
        with pytest.raises(AlignmentError):
            poa_consensus([])
        with pytest.raises(AlignmentError):
            PoaGraph().add_sequence("")


class TestBanding:
    def test_band_reduces_cells(self):
        rng = random.Random(5)
        base = "".join(rng.choice("ACGT") for _ in range(200))
        sequences = mutated_copies(base, 4, 0.02, seed=2)
        _, full = poa_consensus(sequences)
        consensus, banded = abpoa_align(sequences, band=16)
        assert banded < full
        assert edit_distance(consensus, base) <= 12
