"""GWFA vs the scalar fixed-start oracle, incl. cycles."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.gwfa import graph_edit_distance_from, gwfa_align
from repro.errors import AlignmentError
from repro.graph.model import SequenceGraph


def random_graph(seed):
    rng = random.Random(seed)
    graph = SequenceGraph()
    n = rng.randint(1, 7)
    for i in range(n):
        graph.add_node(i, "".join(rng.choice("ACGT") for _ in range(rng.randint(1, 7))))
    for i in range(n):
        for j in range(n):
            if i != j and rng.random() < 0.3:
                graph.add_edge(i, j)
    return graph, rng


class TestEquivalence:
    @given(st.integers(0, 400))
    @settings(max_examples=25, deadline=None)
    def test_matches_oracle(self, seed):
        graph, rng = random_graph(seed)
        query = "".join(rng.choice("ACGT") for _ in range(rng.randint(3, 22)))
        start_node = rng.randrange(graph.node_count)
        start_offset = rng.randrange(len(graph.node(start_node)))
        got = gwfa_align(query, graph, start_node, start_offset).distance
        want = graph_edit_distance_from(query, graph, start_node, start_offset)
        assert got == want

    def test_exact_walk_zero(self):
        graph = SequenceGraph()
        graph.add_node(0, "ACGT")
        graph.add_node(1, "TTTT")
        graph.add_edge(0, 1)
        result = gwfa_align("GTTT", graph, 0, 2)
        assert result.distance == 0
        assert result.end_node == 1

    def test_cycle_reentry_uses_full_node(self):
        graph = SequenceGraph()
        graph.add_node(0, "ACGT")
        graph.add_node(1, "GG")
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        # start mid-node, loop back through node 0's full sequence
        result = gwfa_align("GTGGACGT", graph, 0, 2)
        assert result.distance == 0

    def test_max_score_enforced(self):
        graph = SequenceGraph()
        graph.add_node(0, "A")
        with pytest.raises(AlignmentError):
            gwfa_align("GGGGGGGG", graph, 0, max_score=2)

    def test_offset_validated(self):
        graph = SequenceGraph()
        graph.add_node(0, "ACG")
        with pytest.raises(AlignmentError):
            gwfa_align("A", graph, 0, start_offset=5)

    def test_stats_populated(self):
        graph, rng = random_graph(8)
        query = "".join(rng.choice("ACGT") for _ in range(15))
        result = gwfa_align(query, graph, 0)
        assert result.stats.states_processed > 0
