"""GBV: graph Myers alignment vs oracles, incl. cyclic graphs."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.gbv import GBV, gbv_align, graph_edit_distance_scalar
from repro.align.myers import best_substring_distance
from repro.graph.model import SequenceGraph


def chain_of(text, piece, rng):
    graph = SequenceGraph()
    position = 0
    node_id = 0
    while position < len(text):
        length = rng.randint(1, piece)
        graph.add_node(node_id, text[position : position + length])
        if node_id:
            graph.add_edge(node_id - 1, node_id)
        node_id += 1
        position += length
    return graph


def random_graph(seed, allow_cycles=True):
    rng = random.Random(seed)
    graph = SequenceGraph()
    n = rng.randint(2, 7)
    for i in range(n):
        graph.add_node(i, "".join(rng.choice("ACGT") for _ in range(rng.randint(1, 5))))
    for i in range(n):
        for j in range(n):
            if i != j and (allow_cycles or j > i) and rng.random() < 0.3:
                graph.add_edge(i, j)
    return graph


class TestChainEquivalence:
    @given(st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_chain_equals_sequence_search(self, seed):
        rng = random.Random(seed)
        text = "".join(rng.choice("ACGT") for _ in range(rng.randint(20, 100)))
        query = "".join(rng.choice("ACGT") for _ in range(rng.randint(5, 40)))
        graph = chain_of(text, 7, rng)
        want, _ = best_substring_distance(query, text)
        assert gbv_align(query, graph).distance == want


class TestGraphEquivalence:
    @given(st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_matches_scalar_oracle(self, seed):
        rng = random.Random(seed)
        graph = random_graph(seed)
        query = "".join(rng.choice("ACGT") for _ in range(rng.randint(4, 20)))
        assert gbv_align(query, graph).distance == graph_edit_distance_scalar(
            query, graph
        )

    def test_cyclic_graph_recomputes(self):
        graph = SequenceGraph()
        graph.add_node(0, "ACGT")
        graph.add_node(1, "TTGC")
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        result = gbv_align("ACGTTTGCACGT", graph)
        assert result.distance == 0  # query follows the cycle
        assert result.queue_pushes > 2

    def test_work_counters(self):
        graph = random_graph(7, allow_cycles=False)
        result = gbv_align("ACGTACGT", graph)
        assert result.rows_computed >= graph.total_sequence_length
        assert result.recomputations >= 0

    def test_reusable_aligner(self):
        aligner = GBV("ACGTAC")
        a = aligner.align(random_graph(1, allow_cycles=False))
        b = aligner.align(random_graph(2, allow_cycles=False))
        assert a.distance >= 0 and b.distance >= 0
