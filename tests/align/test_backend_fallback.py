"""The striped aligners' reported backend fallback.

The striped (Farrar) cores require ``gap_open + gap_extend >=
gap_extend``; :class:`~repro.align.scoring.AffineScoring` forbids
negative penalties, so every *public* scoring satisfies this and the
vectorized path always engages.  A scoring object from outside that
validation (research code probing exotic scoring spaces) can still
violate it — the aligners then degrade to the scalar core, and the
backend plane requires that degradation to be *reported*: the instance
ends up labeled ``backend == "scalar"`` and a
``kernel.backend_fallback`` counter fires, which ``repro run`` surfaces
as a one-line warning.
"""

from dataclasses import dataclass

import pytest

from repro.align.gssw import GSSW
from repro.align.scoring import VG_DEFAULT
from repro.align.smith_waterman import StripedSmithWaterman
from repro.backends import SCALAR, VECTORIZED
from repro.errors import AlignmentError
from repro.obs import metrics


@dataclass(frozen=True)
class _HostileScoring:
    """Scoring the striped core cannot represent: gap_open negative
    enough that opening a gap is *cheaper* than extending one."""

    match: int = 1
    mismatch: int = 4
    gap_open: int = -2
    gap_extend: int = 1

    def substitution(self, a: str, b: str) -> int:
        return self.match if a == b else -self.mismatch


def _counters(registry):
    return registry.as_dict().get("counters", {})


class TestGsswFallback:
    def test_valid_scoring_keeps_vectorized(self):
        registry = metrics.MetricsRegistry()
        with metrics.use(registry):
            aligner = GSSW("ACGTACGT", VG_DEFAULT, backend=VECTORIZED)
        assert aligner.backend == VECTORIZED
        assert aligner.vectorize
        assert not _counters(registry)

    def test_hostile_scoring_degrades_and_reports(self):
        registry = metrics.MetricsRegistry()
        with metrics.use(registry):
            aligner = GSSW("ACGTACGT", _HostileScoring(),
                           backend=VECTORIZED)
        assert aligner.backend == SCALAR
        assert not aligner.vectorize
        key = ("kernel.backend_fallback{actual=scalar,component=gssw,"
               "reason=scoring-incompatible,requested=vectorized}")
        assert _counters(registry)[key] == 1.0

    def test_explicit_scalar_is_not_a_fallback(self):
        registry = metrics.MetricsRegistry()
        with metrics.use(registry):
            aligner = GSSW("ACGTACGT", _HostileScoring(), backend=SCALAR)
        assert aligner.backend == SCALAR
        assert not _counters(registry)

    def test_unknown_backend_rejected(self):
        with pytest.raises(AlignmentError,
                           match="supported: scalar, vectorized"):
            GSSW("ACGT", VG_DEFAULT, backend="gpu")


class TestSswFallback:
    def test_hostile_scoring_degrades_and_reports(self):
        registry = metrics.MetricsRegistry()
        with metrics.use(registry):
            aligner = StripedSmithWaterman("ACGTACGT", _HostileScoring(),
                                           backend=VECTORIZED)
        assert aligner.backend == SCALAR
        assert not aligner.vectorize
        key = ("kernel.backend_fallback{actual=scalar,component=ssw,"
               "reason=scoring-incompatible,requested=vectorized}")
        assert _counters(registry)[key] == 1.0

    def test_fallback_still_aligns_correctly(self):
        aligner = StripedSmithWaterman("ACGT", _HostileScoring(),
                                       backend=VECTORIZED)
        result = aligner.align("ACGT")
        assert result.score > 0
