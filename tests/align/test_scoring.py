"""Scoring schemes and alignment result types."""

import pytest

from repro.align.scoring import (
    AffineScoring,
    AlignmentResult,
    CigarOp,
    VG_DEFAULT,
    cigar_string,
)


class TestAffineScoring:
    def test_vg_default_values(self):
        assert (VG_DEFAULT.match, VG_DEFAULT.mismatch) == (1, 4)
        assert (VG_DEFAULT.gap_open, VG_DEFAULT.gap_extend) == (6, 1)

    def test_substitution(self):
        assert VG_DEFAULT.substitution("A", "A") == 1
        assert VG_DEFAULT.substitution("A", "C") == -4

    def test_validation(self):
        with pytest.raises(ValueError):
            AffineScoring(match=0)
        with pytest.raises(ValueError):
            AffineScoring(mismatch=-1)


class TestCigar:
    def test_string(self):
        ops = [CigarOp("M", 10), CigarOp("I", 2), CigarOp("D", 1)]
        assert cigar_string(ops) == "10M2I1D"

    def test_validation(self):
        with pytest.raises(ValueError):
            CigarOp("Q", 1)
        with pytest.raises(ValueError):
            CigarOp("M", 0)

    def test_result_cigar_string(self):
        result = AlignmentResult(score=5, cigar=(CigarOp("=", 5),))
        assert result.cigar_string == "5="
