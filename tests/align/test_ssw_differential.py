"""Vectorized striped SW (SSW) vs the scalar segment loop.

The linear SSW column was converted with the same max-plus F scan as
GSSW's column kernel; unlike GSSW there is no flush reordering — the
per-column probe emission is shared between the two paths — so whole
:class:`MachineSummary` objects must match, not just totals.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.smith_waterman import StripedSmithWaterman, smith_waterman
from repro.uarch.machine import TraceMachine


def _pair(seed: int, qlen: int, tlen: int):
    rng = random.Random(seed)
    query = "".join(rng.choice("ACGT") for _ in range(qlen))
    target = list(query * (tlen // max(1, qlen) + 1))[:tlen]
    for _ in range(tlen // 10):
        target[rng.randrange(tlen)] = rng.choice("ACGTN")
    return query, "".join(target)


def _align(query, target, backend):
    machine = TraceMachine()
    result = StripedSmithWaterman(query, probe=machine,
                                  backend=backend).align(target)
    return result, machine.summary()


class TestSswDifferential:
    @given(
        seed=st.integers(min_value=0, max_value=300),
        qlen=st.integers(min_value=1, max_value=150),
        tlen=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=25, deadline=None)
    def test_alignment_and_events_bit_identical(self, seed, qlen, tlen):
        query, target = _pair(seed, qlen, tlen)
        fast, fast_summary = _align(query, target, backend="vectorized")
        slow, slow_summary = _align(query, target, backend="scalar")
        assert fast == slow  # score, ends, cells — dataclass equality
        assert fast_summary == slow_summary

    @given(
        seed=st.integers(min_value=0, max_value=100),
        qlen=st.integers(min_value=1, max_value=60),
        tlen=st.integers(min_value=1, max_value=80),
    )
    @settings(max_examples=15, deadline=None)
    def test_matches_the_scalar_oracle(self, seed, qlen, tlen):
        """ACGT-only: the striped profile scores N as A (the SSW library's
        behaviour) while the Gotoh oracle scores it directly."""
        query, target = _pair(seed, qlen, tlen)
        target = target.replace("N", "C")
        fast, _ = _align(query, target, backend="vectorized")
        oracle = smith_waterman(query, target)
        assert fast.score == oracle.score
