"""Striped Smith-Waterman vs the scalar Gotoh oracle."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.scoring import AffineScoring
from repro.align.smith_waterman import (
    StripedSmithWaterman,
    smith_waterman,
    striped_smith_waterman,
)
from repro.errors import AlignmentError

dna = st.text(alphabet="ACGT", min_size=1, max_size=80)


class TestScalar:
    def test_perfect_match_scores_length(self):
        result = smith_waterman("ACGTACGT", "TTACGTACGTTT")
        assert result.score == 8  # match bonus 1 per base

    def test_local_ignores_flanks(self):
        a = smith_waterman("ACGT", "ACGT")
        b = smith_waterman("ACGT", "GGGGACGTGGGG")
        assert a.score == b.score

    def test_empty_rejected(self):
        with pytest.raises(AlignmentError):
            smith_waterman("", "ACGT")


class TestStripedEquivalence:
    @given(dna, dna, st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_matches_scalar(self, query, target, seed):
        rng = random.Random(seed)
        if rng.random() < 0.5:  # embed a mutated copy for interesting cases
            copy = "".join(
                c if rng.random() > 0.15 else rng.choice("ACGT") for c in query
            )
            target = target + copy
        scalar = smith_waterman(query, target)
        striped = striped_smith_waterman(query, target)
        assert scalar.score == striped.score

    @given(dna)
    @settings(max_examples=15, deadline=None)
    def test_self_alignment(self, sequence):
        result = striped_smith_waterman(sequence, sequence)
        assert result.score == len(sequence)

    def test_different_lane_counts_agree(self):
        query = "ACGTACGTACGTTGCA"
        target = "TTACGAACGTACGTTGCATT"
        scores = {
            striped_smith_waterman(query, target, lanes=lanes).score
            for lanes in (2, 4, 8, 16)
        }
        assert len(scores) == 1

    def test_profile_reuse(self):
        aligner = StripedSmithWaterman("ACGTACGT")
        first = aligner.align("GGACGTACGTGG")
        second = aligner.align("ACGTACGT")
        assert first.score == second.score == 8

    def test_end_positions_plausible(self):
        result = striped_smith_waterman("ACGT", "TTTTACGTTTT")
        assert result.target_end == 8
        assert result.query_end == 4

    def test_rejects_bad_args(self):
        with pytest.raises(AlignmentError):
            StripedSmithWaterman("")
        with pytest.raises(AlignmentError):
            StripedSmithWaterman("ACGT", lanes=1)
        with pytest.raises(AlignmentError):
            StripedSmithWaterman("ACGT").align("")


class TestScoringSchemes:
    @given(dna, dna, st.integers(1, 3), st.integers(0, 8), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_equivalence_across_schemes(self, query, target, mismatch, gap_open, gap_extend):
        scoring = AffineScoring(
            match=1, mismatch=mismatch, gap_open=gap_open, gap_extend=gap_extend
        )
        assert (
            smith_waterman(query, target, scoring).score
            == striped_smith_waterman(query, target, scoring).score
        )
