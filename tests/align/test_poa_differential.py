"""Vectorized POA inner loop is bit-identical to the scalar reference.

The smoothxg POA column loop was converted to batched numpy; the
conversion must be invisible — same alignments (score and pairs), same
fused graph and consensus, same cell counts, and the same probe event
stream (flushes reassemble in scalar order, so whole
:class:`MachineSummary` objects match).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.poa import PoaGraph
from repro.uarch.machine import TraceMachine


def _sequences(seed: int, count: int, length: int, mutations: int):
    rng = random.Random(seed)
    base = "".join(rng.choice("ACGT") for _ in range(length))
    out = []
    for _ in range(count):
        s = list(base)
        for _ in range(mutations):
            op = rng.randrange(3)
            p = rng.randrange(len(s))
            if op == 0:
                s[p] = rng.choice("ACGT")
            elif op == 1 and len(s) > 2:
                del s[p]
            else:
                s.insert(p, rng.choice("ACGT"))
        out.append("".join(s))
    return out


def _build(sequences, band, backend):
    machine = TraceMachine()
    graph = PoaGraph(probe=machine, backend=backend)
    alignments = [graph.add_sequence(s, band=band) for s in sequences]
    return graph, alignments, machine


class TestPoaDifferential:
    @given(
        seed=st.integers(min_value=0, max_value=300),
        count=st.integers(min_value=1, max_value=5),
        length=st.integers(min_value=10, max_value=120),
        mutations=st.integers(min_value=0, max_value=8),
        band=st.sampled_from([None, 8, 24]),
    )
    @settings(max_examples=25, deadline=None)
    def test_outputs_and_events_bit_identical(self, seed, count, length,
                                              mutations, band):
        sequences = _sequences(seed, count, length, mutations)
        fast_graph, fast_aligns, fast_machine = _build(sequences, band, "vectorized")
        slow_graph, slow_aligns, slow_machine = _build(sequences, band, "scalar")
        for fast, slow in zip(fast_aligns, slow_aligns):
            if fast is None or slow is None:
                assert fast is slow
                continue
            assert fast.score == slow.score
            assert fast.pairs == slow.pairs
            assert fast.cells_computed == slow.cells_computed
        assert fast_graph.cells_computed == slow_graph.cells_computed
        assert fast_graph.node_count == slow_graph.node_count
        assert fast_graph.consensus() == slow_graph.consensus()
        assert fast_machine.summary() == slow_machine.summary()
