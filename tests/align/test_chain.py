"""Clustering and anchor chaining."""

from repro.align.chain import (
    Anchor,
    anchors_from_seeds,
    chain_anchors,
    cluster_seeds,
)
from repro.index.minimizer import GraphMinimizerIndex, Seed


class TestChaining:
    def test_colinear_anchors_all_kept(self):
        anchors = [Anchor(i * 20, 100 + i * 20, 10) for i in range(6)]
        chain = chain_anchors(anchors)
        assert len(chain) == 6
        assert chain.score > 50

    def test_outlier_dropped(self):
        anchors = [Anchor(i * 20, 100 + i * 20, 10) for i in range(6)]
        anchors.append(Anchor(65, 90_000, 10))  # far-away target
        chain = chain_anchors(anchors)
        target_positions = [a.target_position for a in chain.anchors]
        assert 90_000 not in target_positions

    def test_empty_input(self):
        chain = chain_anchors([])
        assert len(chain) == 0
        assert chain.score == 0.0

    def test_pairs_bounded_by_lookback(self):
        anchors = [Anchor(i, 100 + i, 5) for i in range(100)]
        chain = chain_anchors(anchors, max_lookback=8)
        assert chain.pairs_evaluated <= 100 * 8


class TestClustering:
    def test_groups_by_locality(self, small_graph_pangenome):
        graph = small_graph_pangenome.graph
        index = GraphMinimizerIndex(graph, k=15, w=10)
        haplotype = small_graph_pangenome.haplotypes[0]
        query = haplotype.sequence[200:350]
        seeds, _ = index.oriented_seeds(query)
        clusters = cluster_seeds(graph, seeds, min_cluster_size=2)
        assert clusters
        biggest = max(clusters, key=len)
        assert len(biggest) >= 2
        low, high = biggest.read_span
        assert 0 <= low <= high < len(query)

    def test_min_cluster_size_filters(self, small_graph_pangenome):
        graph = small_graph_pangenome.graph
        seeds = [Seed(0, graph.node_ids()[0], 0, False)]
        assert cluster_seeds(graph, seeds, min_cluster_size=2) == []


class TestAnchorsFromSeeds:
    def test_linearized_coordinates_monotone_on_chain(self, small_graph_pangenome):
        graph = small_graph_pangenome.graph
        nodes = sorted(graph.node_ids())[:3]
        seeds = [Seed(i * 10, node, 0, False) for i, node in enumerate(nodes)]
        anchors = anchors_from_seeds(graph, seeds, kmer_length=15)
        targets = [a.target_position for a in anchors]
        assert targets == sorted(targets)
