"""The repro.kernels.datasets compat shim: warns once, stays bit-for-bit."""

import warnings

import pytest

import repro.kernels.datasets as shim
from repro.data import corpus, scenario_spec
from repro.data.corpus import build_corpus, corpus_fingerprint

#: Golden fingerprint of the default corpus at the shim-test scale —
#: the historical corpus bytes the shim must keep reproducing.
GOLDEN_FINGERPRINT = "904b83702eaccf38"
SCALE = 0.05


@pytest.fixture
def _fresh_warning_state(monkeypatch):
    """The shim warns once per process; rewind so this test sees it."""
    monkeypatch.setattr(shim, "_warned", False)


class TestDeprecationWarning:
    def test_warns_exactly_once_across_calls(self, _fresh_warning_state):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim.suite_data(SCALE, 0)
            shim.suite_data(SCALE, 0)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "repro.data.corpus" in str(deprecations[0].message)

    def test_warning_names_the_old_entry_point(self, _fresh_warning_state):
        with pytest.warns(DeprecationWarning,
                          match="repro.kernels.datasets.suite_data"):
            shim.suite_data(SCALE, 0)


class TestBitForBit:
    def test_shim_new_api_and_raw_build_agree(self):
        """Three routes to the default corpus — the deprecated shim, the
        store-backed repro.data.corpus, and a raw build_corpus from the
        spec — produce identical bytes, pinned by a golden fingerprint."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_shim = shim.suite_data(SCALE, 0)
        via_data = corpus("default", SCALE, 0)
        via_build = build_corpus(scenario_spec("default", scale=SCALE))
        assert corpus_fingerprint(via_shim) == GOLDEN_FINGERPRINT
        assert corpus_fingerprint(via_data) == GOLDEN_FINGERPRINT
        assert corpus_fingerprint(via_build) == GOLDEN_FINGERPRINT
