"""The benchmark suite: registry, execution, validation, determinism."""

import pytest

from repro.errors import KernelError
from repro.kernels import (
    CPU_KERNELS,
    SUITE_KERNELS,
    create_kernel,
    kernel_names,
)

SCALE = 0.25


@pytest.fixture(scope="module")
def results():
    """Run every kernel once at test scale."""
    out = {}
    for name in kernel_names():
        kernel = create_kernel(name, scale=SCALE, seed=0)
        out[name] = (kernel, kernel.run())
    return out


class TestRegistry:
    def test_all_suite_kernels_registered(self):
        names = kernel_names()
        for name in SUITE_KERNELS:
            assert name in names
        assert "ssw" in names  # case-study baseline

    def test_eight_suite_kernels(self):
        assert len(SUITE_KERNELS) == 8

    def test_unknown_name_rejected(self):
        with pytest.raises(KernelError):
            create_kernel("nope")

    def test_bad_scale_rejected(self):
        with pytest.raises(KernelError):
            create_kernel("gssw", scale=0)


class TestExecution:
    def test_every_kernel_produces_work(self, results):
        for name, (_kernel, result) in results.items():
            assert result.inputs_processed > 0, name
            assert result.wall_seconds > 0, name
            assert result.work, name

    def test_metadata_present(self, results):
        for name, (kernel, _result) in results.items():
            assert kernel.name == name
            assert kernel.parent_tool
            assert kernel.input_type

    @pytest.mark.parametrize("name", sorted(set(CPU_KERNELS) | {"tsu", "ssw"}))
    def test_validate_passes(self, name, results):
        kernel, _ = results[name]
        kernel.validate()

    def test_work_counters_deterministic(self):
        a = create_kernel("gbwt", scale=SCALE, seed=0).run()
        b = create_kernel("gbwt", scale=SCALE, seed=0).run()
        assert a.work == b.work
        assert a.inputs_processed == b.inputs_processed

    def test_rate(self, results):
        _, result = results["gbwt"]
        assert result.rate() > 0


class TestDatasets:
    def test_suite_data_memoized(self):
        from repro.kernels.datasets import suite_data

        assert suite_data(SCALE, 0) is suite_data(SCALE, 0)

    def test_gbwt_queries_are_real_subpaths(self, small_suite):
        from repro.kernels.datasets import gbwt_queries

        graph = small_suite.graph
        paths = [tuple(graph.path(n).nodes) for n in graph.path_names()]
        for query in gbwt_queries(graph, 20, seed=1):
            assert any(
                path[i : i + len(query)] == query
                for path in paths
                for i in range(len(path) - len(query) + 1)
            )

    def test_tsu_pairs_shape(self):
        from repro.kernels.datasets import tsu_pairs

        pairs = tsu_pairs(3, 200, error_rate=0.01, seed=2)
        assert len(pairs) == 3
        for a, b in pairs:
            assert len(a) == 200
            assert abs(len(b) - 200) < 20

    def test_held_out_differs_from_haplotypes(self, small_suite):
        names = {r.name for r in small_suite.assemblies}
        assert small_suite.held_out.name not in names
