"""Batched GBWT record walk vs the scalar reference execute path.

The gbwt kernel's wavefront walk batches queries into lockstep numpy
chunks; it must replay the exact scalar event stream — whole
:class:`MachineSummary` equality, not just totals — and produce the
same work counters, for any chunk size cut of the same query set.
"""

import pytest

import repro.kernels  # noqa: F401 — populate the registry
from repro.kernels.base import KERNEL_REGISTRY
from repro.uarch.machine import TraceMachine


def _execute(kernel_cls, backend, chunk=None):
    kernel = kernel_cls(scale=0.25, seed=0, backend=backend)
    if chunk is not None:
        kernel.CHUNK = chunk
    kernel.ensure_prepared()
    machine = TraceMachine()
    result = kernel._execute(machine)
    return result, machine.summary()


@pytest.fixture(scope="module")
def gbwt_cls(_isolated_dataset_store):
    return KERNEL_REGISTRY["gbwt"]


class TestGbwtDifferential:
    def test_batched_matches_scalar_exactly(self, gbwt_cls):
        fast, fast_summary = _execute(gbwt_cls, backend="vectorized")
        slow, slow_summary = _execute(gbwt_cls, backend="scalar")
        assert fast.work == slow.work
        assert fast.inputs_processed == slow.inputs_processed
        assert fast_summary == slow_summary

    @pytest.mark.parametrize("chunk", [1, 7, 64, 10_000])
    def test_chunk_size_is_invisible(self, gbwt_cls, chunk):
        """Wavefront width is a throughput knob, not a semantic one."""
        reference, reference_summary = _execute(gbwt_cls, backend="vectorized")
        cut, cut_summary = _execute(gbwt_cls, backend="vectorized", chunk=chunk)
        assert cut.work == reference.work
        assert cut_summary == reference_summary
