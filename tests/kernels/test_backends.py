"""The backend plane: vocabulary, declarations, validation, fallback.

Every kernel names its execution backends (``scalar`` reference,
``vectorized`` batched, ``gpu`` device model) instead of carrying an
ad-hoc ``vectorize`` bool; this file pins the shared vocabulary in
:mod:`repro.backends`, each kernel's declared capability set, the
registry-level validation errors, and the fallback-reporting metric.
"""

import pytest

from repro.backends import (
    BACKENDS,
    GPU,
    SCALAR,
    VECTORIZED,
    check_backend,
    report_backend_fallback,
)
from repro.errors import AlignmentError, KernelError
from repro.kernels import (
    CPU_KERNELS,
    create_kernel,
    kernel_backends,
    kernel_names,
    resolve_backend,
)
from repro.obs import metrics


class TestVocabulary:
    def test_three_backends(self):
        assert BACKENDS == (SCALAR, VECTORIZED, GPU)
        assert BACKENDS == ("scalar", "vectorized", "gpu")

    def test_check_backend_returns_supported_unchanged(self):
        assert check_backend(SCALAR, (SCALAR, VECTORIZED), "X") == SCALAR

    def test_check_backend_raises_the_domain_error(self):
        with pytest.raises(AlignmentError,
                           match="supported: scalar, vectorized"):
            check_backend(GPU, (SCALAR, VECTORIZED), "PoaGraph",
                          AlignmentError)


class TestDeclarations:
    def test_every_kernel_declares_valid_backends(self):
        for name in kernel_names():
            supported = kernel_backends(name)
            assert supported, name
            assert set(supported) <= set(BACKENDS), name
            assert resolve_backend(name) in supported, name

    def test_cpu_kernels_membership(self):
        """Pin the doc's claim: six distinct kernels over seven entries,
        GWFA contributing two (long-read and chromosome input classes
        are profiled separately)."""
        assert sorted(CPU_KERNELS) == [
            "gbv", "gbwt", "gssw", "gwfa-cr", "gwfa-lr", "pgsgd", "tc",
        ]
        gwfa_entries = [n for n in CPU_KERNELS if n.startswith("gwfa-")]
        assert len(gwfa_entries) == 2
        assert len({n.split("-")[0] for n in CPU_KERNELS}) == 6

    def test_tsu_is_gpu_native(self):
        assert kernel_backends("tsu") == (GPU,)
        assert resolve_backend("tsu") == GPU
        assert create_kernel("tsu").backend == GPU

    def test_pgsgd_spans_all_three(self):
        assert set(kernel_backends("pgsgd")) == {SCALAR, VECTORIZED, GPU}

    def test_dual_backend_cpu_kernels(self):
        for name in ("gssw", "ssw", "tc", "gbwt"):
            assert set(kernel_backends(name)) == {SCALAR, VECTORIZED}, name


class TestValidation:
    def test_unknown_backend_lists_known(self):
        with pytest.raises(KernelError,
                           match="known: scalar, vectorized, gpu"):
            create_kernel("tc", backend="avx512")

    def test_unsupported_backend_lists_supported(self):
        with pytest.raises(
            KernelError,
            match="'gbv' does not support backend 'gpu'; "
                  "supported: vectorized",
        ):
            create_kernel("gbv", backend="gpu")

    def test_resolve_unknown_kernel_raises(self):
        with pytest.raises(KernelError, match="unknown kernel"):
            resolve_backend("no-such-kernel")

    def test_resolution_defaults_and_passthrough(self):
        assert resolve_backend("tc") == VECTORIZED
        assert resolve_backend("tc", None) == VECTORIZED
        assert resolve_backend("tc", "") == VECTORIZED
        assert resolve_backend("tc", SCALAR) == SCALAR
        assert resolve_backend("tsu", "") == GPU


class TestFallbackMetric:
    def test_report_backend_fallback_counts_labeled(self):
        registry = metrics.MetricsRegistry()
        with metrics.use(registry):
            report_backend_fallback("gssw", requested=VECTORIZED,
                                    actual=SCALAR,
                                    reason="scoring-incompatible")
        counters = registry.as_dict()["counters"]
        key = ("kernel.backend_fallback{actual=scalar,component=gssw,"
               "reason=scoring-incompatible,requested=vectorized}")
        assert counters[key] == 1.0
