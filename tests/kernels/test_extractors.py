"""Kernel dataset extraction helpers (the tool-boundary dumps)."""

from repro.kernels.gbv_kernel import extract_gbv_inputs
from repro.kernels.gssw_kernel import extract_gssw_inputs
from repro.kernels.gwfa_kernel import extract_gwfa_inputs
from repro.kernels.ssw_kernel import extract_ssw_inputs
from repro.graph.ops import is_acyclic


class TestGsswExtraction:
    def test_subgraphs_are_acyclic(self, small_suite):
        items = extract_gssw_inputs(
            small_suite.graph, list(small_suite.short_reads)[:8]
        )
        assert items
        for query, subgraph in items:
            assert is_acyclic(subgraph)
            assert len(query) >= 20
            assert subgraph.node_count >= 1

    def test_subgraph_size_tracks_radius(self, small_suite):
        reads = list(small_suite.short_reads)[:5]
        small = extract_gssw_inputs(small_suite.graph, reads, context_radius=30)
        large = extract_gssw_inputs(small_suite.graph, reads, context_radius=400)
        mean_small = sum(s.total_sequence_length for _q, s in small) / len(small)
        mean_large = sum(s.total_sequence_length for _q, s in large) / len(large)
        assert mean_large > mean_small


class TestGbvExtraction:
    def test_long_read_clusters(self, small_suite):
        items = extract_gbv_inputs(small_suite.graph, list(small_suite.long_reads)[:3])
        assert items
        for query, subgraph in items:
            assert subgraph.total_sequence_length > 100


class TestGwfaExtraction:
    def test_gaps_are_bounded(self, small_suite):
        items = extract_gwfa_inputs(
            small_suite.graph, list(small_suite.long_reads)[:3], max_gap=200
        )
        assert items
        for gap, start_node in items:
            assert 0 < len(gap) <= 200
            assert start_node in small_suite.graph


class TestSswExtraction:
    def test_windows_come_from_reference(self, small_suite):
        items = extract_ssw_inputs(
            small_suite.reference, list(small_suite.short_reads)[:8]
        )
        assert items
        for _query, window in items:
            assert window in small_suite.reference.sequence
