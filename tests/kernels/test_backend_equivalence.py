"""Registry-wide backend equivalence: scalar is the differential oracle.

Every kernel that advertises both the ``scalar`` and ``vectorized``
backends must produce the same result *and* the same machine-event
stream on both — the property the per-kernel differential suites
(tests/align, tests/build, tests/layout) check in depth, asserted here
registry-wide so a kernel can't grow a second backend without entering
the contract.

The one documented exception is GSSW: its striped path flushes
per-column event buffers in a different interleave, which can move an
individual access between cache levels.  The op counts, branch stats
and event-stream totals still match exactly — only the per-level split
differs (see tests/align/test_gssw_differential.py).
"""

import pytest

from repro.backends import SCALAR, VECTORIZED
from repro.kernels import create_kernel, kernel_backends, kernel_names
from repro.uarch.machine import TraceMachine

SCALE = 0.25

DUAL_BACKEND_KERNELS = tuple(
    name for name in kernel_names()
    if {SCALAR, VECTORIZED} <= set(kernel_backends(name))
)

#: Kernels whose vectorized path reorders event flushes (totals match,
#: the per-cache-level split may not).
CACHE_INTERLEAVE_EXCEPTIONS = ("gssw",)


def _run(name, backend):
    kernel = create_kernel(name, scale=SCALE, seed=0, backend=backend)
    kernel.ensure_prepared()
    machine = TraceMachine()
    result = kernel._execute(machine)
    return result, machine.summary()


class TestBackendEquivalence:
    def test_expected_dual_backend_set(self):
        assert DUAL_BACKEND_KERNELS == ("gbwt", "gssw", "pgsgd", "ssw",
                                        "tc")

    @pytest.mark.parametrize("name", DUAL_BACKEND_KERNELS)
    def test_scalar_matches_vectorized(self, name,
                                       _isolated_dataset_store):
        fast, fast_summary = _run(name, VECTORIZED)
        slow, slow_summary = _run(name, SCALAR)
        assert fast.work == slow.work, name
        assert fast.inputs_processed == slow.inputs_processed, name
        if name in CACHE_INTERLEAVE_EXCEPTIONS:
            assert fast_summary.op_counts == slow_summary.op_counts
            assert fast_summary.branch_stats == slow_summary.branch_stats
            assert (sum(fast_summary.load_level_counts.values())
                    == sum(slow_summary.load_level_counts.values()))
            assert (sum(fast_summary.store_level_counts.values())
                    == sum(slow_summary.store_level_counts.values()))
        else:
            assert fast_summary == slow_summary, name
