"""End-to-end mapping tools: accuracy and stage structure."""

import pytest

from repro.errors import ReproError
from repro.sequence.simulate import ILLUMINA, ReadProfile, ReadSimulator
from repro.tools import BwaMem, Giraffe, GraphAligner, Minigraph, MinigraphConfig, VgMap


@pytest.fixture(scope="module")
def corpus(small_suite_module):
    return small_suite_module


@pytest.fixture(scope="module")
def small_suite_module():
    from repro.kernels.datasets import suite_data

    return suite_data(0.25, 0)


@pytest.fixture(scope="module")
def short_reads(small_suite_module):
    return list(small_suite_module.short_reads)[:15]


@pytest.fixture(scope="module")
def long_reads(small_suite_module):
    return list(small_suite_module.long_reads)[:4]


class TestVgMap:
    def test_maps_most_reads(self, small_suite_module, short_reads):
        run = VgMap(small_suite_module.graph).map_reads(short_reads)
        assert run.mapped_fraction >= 0.8
        assert set(run.timer.seconds) >= {"seed", "cluster", "align"}

    def test_counters(self, small_suite_module, short_reads):
        run = VgMap(small_suite_module.graph).map_reads(short_reads)
        assert run.counters["seeds"] > 0
        assert run.counters["dp_cells"] > 0


class TestGiraffe:
    def test_maps_most_reads(self, small_suite_module, short_reads):
        run = Giraffe(small_suite_module.graph).map_reads(short_reads)
        assert run.mapped_fraction >= 0.8

    def test_most_reads_resolved_by_extension(self, small_suite_module, short_reads):
        run = Giraffe(small_suite_module.graph).map_reads(short_reads)
        resolved = run.counters.get("resolved_by_extension", 0)
        assert resolved >= 0.6 * len(short_reads)
        assert run.counters["gbwt_extends"] > 0

    def test_faster_than_vg_map(self, small_suite_module, short_reads):
        giraffe = Giraffe(small_suite_module.graph).map_reads(short_reads)
        vg = VgMap(small_suite_module.graph).map_reads(short_reads)
        assert giraffe.timer.total < vg.timer.total


class TestGraphAligner:
    def test_maps_long_reads(self, small_suite_module, long_reads):
        run = GraphAligner(small_suite_module.graph).map_reads(long_reads)
        assert run.mapped_fraction >= 0.75

    def test_alignment_dominates(self, small_suite_module, long_reads):
        run = GraphAligner(small_suite_module.graph).map_reads(long_reads)
        fractions = run.timer.fractions()
        assert fractions["align"] > 0.7
        assert fractions.get("cluster", 0.0) < 0.2


class TestMinigraph:
    def test_maps_long_reads(self, small_suite_module, long_reads):
        run = Minigraph(small_suite_module.graph).map_reads(long_reads)
        assert run.mapped_fraction >= 0.75

    def test_chaining_heavy(self, small_suite_module, long_reads):
        run = Minigraph(small_suite_module.graph).map_reads(long_reads)
        fractions = run.timer.fractions()
        assert fractions["cluster"] > fractions.get("align", 0.0)

    def test_gwfa_bridges_counted(self, small_suite_module, long_reads):
        run = Minigraph(small_suite_module.graph).map_reads(long_reads)
        assert run.counters.get("gwfa_states", 0) > 0

    def test_cr_mode_skips_base_level(self, small_suite_module):
        config = MinigraphConfig(mode="cr")
        assert config.base_level is False
        assert config.max_gwfa_gap == 4000

    def test_bad_mode_rejected(self):
        from repro.errors import AlignmentError

        with pytest.raises(AlignmentError):
            MinigraphConfig(mode="xx")


class TestBwa:
    def test_maps_most_reads(self, small_suite_module, short_reads):
        run = BwaMem(small_suite_module.reference).map_reads(short_reads)
        assert run.mapped_fraction >= 0.8

    def test_faster_than_any_graph_mapper(self, small_suite_module, short_reads):
        bwa = BwaMem(small_suite_module.reference).map_reads(short_reads)
        vg = VgMap(small_suite_module.graph).map_reads(short_reads)
        assert bwa.timer.total < vg.timer.total


class TestToolRun:
    def test_empty_reads_rejected(self, small_suite_module):
        with pytest.raises(ReproError):
            BwaMem(small_suite_module.reference).map_reads([])

    def test_summary_shape(self, small_suite_module, short_reads):
        run = BwaMem(small_suite_module.reference).map_reads(short_reads[:3])
        summary = run.summary()
        assert summary["tool"] == "bwa_mem"
        assert summary["reads"] == 3
