"""Paper phase orderings (Figures 2 and 3) held from real span data.

The Figure 2/3 artifacts are regenerated from the span-backed
:class:`~repro.tools.base.StageTimer`; these tests pin the orderings the
paper reports — derived here from the ``stage/<name>`` span records a
real tracer collects, not from the timer's own bookkeeping — so a
regression in either the instrumentation or the tool models shows up as
a broken ordering, not just a changed chart.
"""

import pytest

from repro.kernels.datasets import suite_data
from repro.layout.pgsgd import PGSGDParams
from repro.obs import trace
from repro.obs.spans import Tracer
from repro.sequence.simulate import simulate_pangenome
from repro.tools import GraphAligner, Minigraph
from repro.tools.pipelines import run_minigraph_cactus, run_pggb

TEST_SCALE = 0.25


def _span_stage_seconds(tracer):
    """Aggregate ``stage/<name>`` span durations by stage name."""
    seconds: dict[str, float] = {}
    for record in tracer.records():
        if record["name"].startswith("stage/"):
            stage = record["name"][len("stage/"):]
            seconds[stage] = seconds.get(stage, 0.0) + record["dur"]
    return seconds


@pytest.fixture(scope="module")
def long_reads():
    data = suite_data(TEST_SCALE, 0)
    return data.graph, list(data.long_reads)[:5]


@pytest.fixture(scope="module")
def assemblies():
    return simulate_pangenome(
        genome_length=3000, n_haplotypes=4, seed=3
    ).records


FAST_LAYOUT = PGSGDParams(iterations=3, updates_per_iteration=300)


class TestMappingPhaseOrdering:
    def test_graphaligner_is_alignment_dominant(self, long_reads):
        graph, reads = long_reads
        tracer = Tracer()
        with trace.use(tracer):
            GraphAligner(graph).map_reads(reads)
        seconds = _span_stage_seconds(tracer)
        total = sum(seconds.values())
        # Paper Figure 2: ~90% alignment, clustering tiny.
        assert seconds["align"] > 0.7 * total
        assert seconds.get("cluster", 0.0) < 0.15 * total

    def test_minigraph_chains_more_than_it_aligns(self, long_reads):
        graph, reads = long_reads
        tracer = Tracer()
        with trace.use(tracer):
            Minigraph(graph).map_reads(reads)
        seconds = _span_stage_seconds(tracer)
        # Paper Figure 2: chaining (the cluster stage, GWFA inside)
        # outweighs base-level alignment.
        assert seconds["cluster"] > seconds.get("align", 0.0)

    def test_span_seconds_match_stage_timer(self, long_reads):
        graph, reads = long_reads
        tracer = Tracer()
        with trace.use(tracer):
            run = GraphAligner(graph).map_reads(reads)
        seconds = _span_stage_seconds(tracer)
        for stage, timed in run.timer.seconds.items():
            assert seconds[stage] == pytest.approx(timed, rel=1e-6)


class TestBuildPhaseOrdering:
    def test_pggb_alignment_is_major(self, assemblies):
        tracer = Tracer()
        with trace.use(tracer):
            run_pggb(assemblies, layout_params=FAST_LAYOUT)
        seconds = _span_stage_seconds(tracer)
        # Paper Figure 3: all-to-all alignment is a major PGGB cost.
        assert seconds["alignment"] > 0.15 * sum(seconds.values())

    def test_minigraph_cactus_alignment_is_major(self, assemblies):
        tracer = Tracer()
        with trace.use(tracer):
            run_minigraph_cactus(assemblies, layout_params=FAST_LAYOUT)
        seconds = _span_stage_seconds(tracer)
        assert seconds["alignment"] > 0.15 * sum(seconds.values())

    def test_build_stage_spans_nest_pipeline_spans(self, assemblies):
        tracer = Tracer()
        with trace.use(tracer):
            run_pggb(assemblies, layout_params=FAST_LAYOUT)
        names = {record["name"] for record in tracer.records()}
        # PGGB's stages carry the wfmash/seqwish/smoothxg instrumentation.
        assert {"wfmash/sketch", "wfmash/map"} <= names
        assert "seqwish/closure" in names
        assert {"smoothxg/bucket", "smoothxg/cut", "smoothxg/poa"} <= names

    def test_cactus_spans_cover_seed_thread_polish(self, assemblies):
        tracer = Tracer()
        with trace.use(tracer):
            run_minigraph_cactus(assemblies, layout_params=FAST_LAYOUT)
        names = {record["name"] for record in tracer.records()}
        assert {"cactus/seed", "cactus/thread"} <= names
        # MC polishes with GFAffix, whose two rules are spanned.
        assert {"gfaffix/siblings", "gfaffix/prefixes"} <= names
