"""Graph-building pipelines: MC and PGGB."""

import pytest

from repro.layout.pgsgd import PGSGDParams
from repro.sequence.simulate import simulate_pangenome
from repro.tools.pipelines import BUILD_STAGES, run_minigraph_cactus, run_pggb


@pytest.fixture(scope="module")
def assemblies():
    return simulate_pangenome(genome_length=2000, n_haplotypes=3, seed=12).records


FAST_LAYOUT = PGSGDParams(iterations=3, updates_per_iteration=300)


class TestMinigraphCactus:
    def test_stages_timed(self, assemblies):
        run = run_minigraph_cactus(assemblies, layout_params=FAST_LAYOUT)
        assert set(run.timer.seconds) == set(BUILD_STAGES)
        assert run.graph is not None

    def test_reference_spelled_exactly(self, assemblies):
        run = run_minigraph_cactus(assemblies, layout_params=FAST_LAYOUT)
        assert run.graph.path_sequence(assemblies[0].name) == assemblies[0].sequence

    def test_counters(self, assemblies):
        run = run_minigraph_cactus(assemblies, layout_params=FAST_LAYOUT)
        assert run.counters["anchors"] > 0
        assert run.counters["layout_updates"] > 0


class TestPggb:
    def test_stages_timed(self, assemblies):
        run = run_pggb(assemblies, layout_params=FAST_LAYOUT)
        assert set(run.timer.seconds) == set(BUILD_STAGES)

    def test_all_inputs_spelled_exactly(self, assemblies):
        run = run_pggb(assemblies, layout_params=FAST_LAYOUT)
        for record in assemblies:
            assert run.graph.path_sequence(record.name) == record.sequence

    def test_pggb_unbiased_vs_mc_biased(self, assemblies):
        """PGGB spells every input exactly; MC only guarantees the
        reference (the paper's reference-bias contrast)."""
        pggb = run_pggb(assemblies, layout_params=FAST_LAYOUT)
        mc = run_minigraph_cactus(assemblies, layout_params=FAST_LAYOUT)
        pggb_exact = sum(
            pggb.graph.path_sequence(r.name) == r.sequence for r in assemblies
        )
        mc_exact = sum(
            mc.graph.path_sequence(r.name) == r.sequence for r in assemblies
        )
        assert pggb_exact == len(assemblies)
        assert mc_exact >= 1  # at least the reference

    def test_summary(self, assemblies):
        run = run_pggb(assemblies, layout_params=FAST_LAYOUT)
        summary = run.summary()
        assert summary["pipeline"] == "pggb"
        assert summary["graph"].node_count > 0
