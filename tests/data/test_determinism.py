"""Determinism and build-once guarantees of the data subsystem.

The old per-process ``lru_cache`` made two classes of bug unobservable:
corpus construction could diverge across processes (no two builds ever
happened in one process), and parallel workers could race to build the
same dataset.  These tests pin both down: corpus content is a pure
function of the spec across process boundaries, concurrent fetches
build exactly once, and the derived-input generators are prefix-stable
in their count parameter.
"""

import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.data import (
    ArtifactStore,
    DatasetSpec,
    build_corpus,
    corpus_fingerprint,
    gbwt_queries,
    tsu_pairs,
    use_store,
)
from repro.data.store import BUILT, DISK
from repro.kernels.base import create_kernel
from repro.obs import metrics

SMALL_KWARGS = dict(genome_length=1500, n_haplotypes=3, short_reads=20,
                    long_reads=4, long_read_length=400)
SMALL = DatasetSpec(**SMALL_KWARGS)

#: Source tree for subprocess imports (tests run without installation).
SRC = Path(__file__).resolve().parents[2] / "src"


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run_script(script, *argv):
    return subprocess.run(
        [sys.executable, "-c", textwrap.dedent(script), *argv],
        capture_output=True, text=True, env=_subprocess_env(), timeout=120,
    )


class TestCrossProcessDeterminism:
    def test_fingerprint_identical_across_processes(self):
        """Two unrelated processes building the same spec produce
        bit-identical corpora (the determinism contract the
        content-addressed store rests on)."""
        script = f"""
            from repro.data import DatasetSpec, build_corpus, corpus_fingerprint
            spec = DatasetSpec(**{SMALL_KWARGS!r})
            print(corpus_fingerprint(build_corpus(spec)))
        """
        first = _run_script(script)
        second = _run_script(script)
        assert first.returncode == 0, first.stderr
        assert second.returncode == 0, second.stderr
        assert first.stdout.strip() == second.stdout.strip()
        # ...and both match this process's build.
        assert first.stdout.strip() == corpus_fingerprint(build_corpus(SMALL))

    def test_disk_roundtrip_preserves_content(self, tmp_path):
        store = ArtifactStore(tmp_path)
        built, origin = store.fetch(SMALL)
        assert origin == BUILT
        store.evict_memory()
        loaded, origin = store.fetch(SMALL)
        assert origin == DISK
        assert corpus_fingerprint(loaded) == corpus_fingerprint(built)


class TestConcurrentBuildOnce:
    N_WORKERS = 4

    def test_exactly_one_build_under_contention(self, tmp_path):
        """N processes fetching a missing corpus against the same store
        root: the flock serializes them, exactly one builds, the rest
        are served the built artifact from disk."""
        script = f"""
            import sys
            from repro.data import ArtifactStore, DatasetSpec, corpus_fingerprint
            store = ArtifactStore(sys.argv[1])
            data, origin = store.fetch(DatasetSpec(**{SMALL_KWARGS!r}))
            print(origin, corpus_fingerprint(data))
        """
        workers = [
            subprocess.Popen(
                [sys.executable, "-c", textwrap.dedent(script), str(tmp_path)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
                env=_subprocess_env(),
            )
            for _ in range(self.N_WORKERS)
        ]
        outputs = []
        for worker in workers:
            out, err = worker.communicate(timeout=120)
            assert worker.returncode == 0, err
            outputs.append(out.split())
        origins = [origin for origin, _ in outputs]
        fingerprints = {fingerprint for _, fingerprint in outputs}
        assert origins.count("built") == 1, origins
        assert set(origins) <= {"built", "disk"}
        assert len(fingerprints) == 1  # everyone saw the same corpus


class TestPrefixStability:
    """Growing a derived dataset's count extends it, never reshuffles it
    (per-index RNG substreams; see repro.data.corpus)."""

    def test_tsu_pairs_prefix_stable(self):
        assert tsu_pairs(10, 120, seed=3) == tsu_pairs(20, 120, seed=3)[:10]

    def test_tsu_pairs_axes_still_matter(self):
        base = tsu_pairs(4, 120, seed=3)
        assert tsu_pairs(4, 120, seed=4) != base
        assert tsu_pairs(4, 150, seed=3) != base
        assert tsu_pairs(4, 120, error_rate=0.2, seed=3) != base

    def test_gbwt_queries_prefix_stable(self, tmp_path):
        graph = ArtifactStore(tmp_path).corpus(SMALL).graph
        short = gbwt_queries(graph, 50, seed=1)
        long = gbwt_queries(graph, 100, seed=1)
        assert short == long[:50]


class TestRePrepare:
    def test_kernel_reprepares_when_spec_changes(self, tmp_path):
        """Regression: the prepared flag is keyed by the spec digest.
        Mutating a run axis after a prepare used to be silently ignored
        and the kernel kept serving the stale dataset."""
        with use_store(ArtifactStore(tmp_path)):
            kernel = create_kernel("tsu", scale=0.25)
            kernel.ensure_prepared()
            first = kernel.pairs
            assert len(first) == 4  # max(4, int(12 * 0.25))
            kernel.ensure_prepared()
            assert kernel.pairs is first  # unchanged spec: no re-prepare
            kernel.scale = 1.0
            kernel.ensure_prepared()
            assert len(kernel.pairs) == 12  # re-prepared at the new scale

    def test_kernel_reprepares_on_scenario_change(self, tmp_path):
        with use_store(ArtifactStore(tmp_path)):
            kernel = create_kernel("tsu", scale=0.25)
            kernel.ensure_prepared()
            default_pairs = kernel.pairs
            kernel.scenario = "divergent"  # doubles tsu_error_rate
            kernel.ensure_prepared()
            assert kernel.pairs != default_pairs


class TestWarmSuite:
    def test_second_run_suite_rebuilds_nothing(self, tmp_path):
        """Acceptance: a warm second ``run_suite`` over the full suite
        performs zero corpus (or derived-input) rebuilds — every build
        counter is flat and the warm pass is served from memory."""
        from repro.harness.runner import run_suite

        registry = metrics.MetricsRegistry()
        with use_store(ArtifactStore(tmp_path)), metrics.use(registry):
            reports = run_suite(scale=0.05, studies=("timing",))
            assert all(report.ok for report in reports.values())
            cold = dict(registry.as_dict()["counters"])
            run_suite(scale=0.05, studies=("timing",))
            warm = registry.as_dict()["counters"]

        builds = {key: value for key, value in cold.items()
                  if key.startswith("data.store.builds")}
        assert builds, "cold pass must have built artifacts"
        for key, value in builds.items():
            assert warm[key] == value, f"warm pass rebuilt {key}"

        def memory_hits(counters):
            return sum(value for key, value in counters.items()
                       if key.startswith("data.store.hits")
                       and "level=memory" in key)

        assert memory_hits(warm) > memory_hits(cold)
