"""The dataset artifact store: resolution levels, eviction, derivations,
maintenance, and the compat shim."""

import gc
import pickle

import pytest

from repro.data import (
    ArtifactStore,
    DatasetSpec,
    derivation,
    ensure_corpus,
    scenario_spec,
    use_store,
)
from repro.data.store import BUILT, DISK, MEMORY
from repro.errors import DatasetError
from repro.obs import metrics

#: A deliberately tiny corpus so store tests stay fast.
SMALL = DatasetSpec(genome_length=1200, n_haplotypes=3, short_reads=20,
                    long_reads=4, long_read_length=400)


def small(**overrides):
    import dataclasses

    return dataclasses.replace(SMALL, **overrides)


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path)


class TestResolution:
    def test_cold_builds_then_memory_then_disk(self, store):
        data, origin = store.fetch(SMALL)
        assert origin == BUILT
        again, origin = store.fetch(SMALL)
        assert origin == MEMORY
        assert again is data  # identity preserved while in memory
        store.evict_memory()
        loaded, origin = store.fetch(SMALL)
        assert origin == DISK
        assert loaded.graph.node_count == data.graph.node_count

    def test_distinct_specs_distinct_artifacts(self, store):
        a, _ = store.fetch(SMALL)
        b, _ = store.fetch(small(seed=1))
        assert a.graph.node_count != 0 and b.graph.node_count != 0
        assert store.corpus_dir(SMALL) != store.corpus_dir(small(seed=1))

    def test_meta_sidecar_written(self, store):
        import json

        store.fetch(SMALL)
        meta = json.loads((store.corpus_dir(SMALL) / "meta.json").read_text())
        assert meta["digest"] == SMALL.digest()
        assert meta["spec"]["genome_length"] == SMALL.genome_length
        assert meta["corpus_bytes"] > 0

    def test_corrupt_pickle_is_a_miss_and_rebuilds(self, store):
        store.fetch(SMALL)
        store.evict_memory()
        store.corpus_path(SMALL).write_bytes(b"garbage")
        _, origin = store.fetch(SMALL)
        assert origin == BUILT

    def test_resolution_metrics_emitted(self, store):
        registry = metrics.MetricsRegistry()
        with metrics.use(registry):
            store.fetch(SMALL)
            store.fetch(SMALL)
        counters = registry.as_dict()["counters"]
        assert counters["data.store.builds{kind=corpus,scenario=default}"] == 1
        assert counters[
            "data.store.hits{kind=corpus,level=memory,scenario=default}"
        ] == 1


class TestMemoryLayer:
    def test_ring_keeps_identity_for_recent_entries(self, store):
        assert store.corpus(SMALL) is store.corpus(SMALL)

    def test_old_entries_become_collectable(self, tmp_path):
        """Unlike the old ``lru_cache``, corpora that leave the recency
        ring are reclaimed by the garbage collector."""
        store = ArtifactStore(tmp_path, memory_slots=1)
        store.fetch(SMALL)
        assert len(store._memory) == 1
        store.fetch(small(seed=1))  # evicts SMALL from the strong ring
        gc.collect()
        assert f"corpus/{SMALL.digest()}" not in store._memory
        # ...but the disk artifact still serves it without a rebuild.
        _, origin = store.fetch(SMALL)
        assert origin == DISK

    def test_evict_memory_keeps_disk(self, store):
        store.fetch(SMALL)
        store.evict_memory()
        _, origin = store.fetch(SMALL)
        assert origin == DISK


class TestDerived:
    def test_derivation_cached_on_disk(self, store):
        value, origin = store.fetch_derived(SMALL, "tsu_pairs", pair_length=50)
        assert origin == BUILT
        assert len(value) == 12  # max(4, 12 * scale) at scale 1.0
        again, origin = store.fetch_derived(SMALL, "tsu_pairs", pair_length=50)
        assert origin == MEMORY and again is value
        store.evict_memory()
        loaded, origin = store.fetch_derived(SMALL, "tsu_pairs", pair_length=50)
        assert origin == DISK and loaded == value

    def test_params_key_the_artifact(self, store):
        a = store.derived(SMALL, "tsu_pairs", pair_length=50)
        b = store.derived(SMALL, "tsu_pairs", pair_length=60)
        assert a != b

    def test_unknown_derivation_rejected(self, store):
        with pytest.raises(DatasetError):
            store.derived(SMALL, "nope")

    def test_version_bump_rebuilds(self, store):
        calls = []

        @derivation("_test_versioned")
        def _derive(data, spec):
            calls.append(1)
            return len(data.assemblies)

        try:
            store.derived(SMALL, "_test_versioned")
            store.evict_memory()
            store.derived(SMALL, "_test_versioned")
            assert len(calls) == 1  # disk hit, not a rebuild
            from repro.data.derive import DERIVATIONS
            import dataclasses

            DERIVATIONS["_test_versioned"] = dataclasses.replace(
                DERIVATIONS["_test_versioned"], version=2
            )
            store.derived(SMALL, "_test_versioned")
            assert len(calls) == 2  # new version, new digest
        finally:
            from repro.data.derive import DERIVATIONS

            DERIVATIONS.pop("_test_versioned", None)

    def test_corpus_free_derivation_builds_no_corpus(self, store):
        store.derived(SMALL, "tsu_pairs", pair_length=30)
        assert not store.corpus_path(SMALL).exists()


class TestMaintenance:
    def test_entries_lists_scenarios(self, store):
        store.fetch(SMALL)
        store.fetch(scenario_spec("divergent").with_run_axes(0.05, 0))
        entries = store.entries()
        assert {e["spec"]["scenario"] for e in entries} == \
            {"default", "divergent"}
        assert all(e["disk_bytes"] > 0 for e in entries)

    def test_gc_keeps_current_generation(self, store):
        store.fetch(SMALL)
        removed, _freed = store.gc()
        assert removed == 0
        assert store.corpus_path(SMALL).exists()

    def test_gc_removes_stale_generation(self, store, monkeypatch):
        import json

        store.fetch(SMALL)
        meta_path = store.corpus_dir(SMALL) / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["generator_version"] = -1
        meta_path.write_text(json.dumps(meta))
        removed, freed = store.gc()
        assert removed == 1 and freed > 0
        assert not store.corpus_dir(SMALL).exists()

    def test_gc_everything(self, store):
        store.fetch(SMALL)
        removed, _ = store.gc(everything=True)
        assert removed == 1
        _, origin = store.fetch(SMALL)
        assert origin == BUILT


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestCompatShim:
    def test_suite_data_resolves_through_store(self, tmp_path):
        from repro.kernels.datasets import suite_data

        with use_store(ArtifactStore(tmp_path)) as store:
            data = suite_data(0.05, 0)
            assert data is suite_data(0.05, 0)
            assert store.corpus_path(
                scenario_spec("default", scale=0.05, seed=0)
            ).exists()

    def test_shim_cache_is_bounded(self, tmp_path):
        """A scale sweep must not pin every corpus for process lifetime
        (the old ``lru_cache(maxsize=4)`` regression)."""
        from repro.kernels.datasets import suite_data

        store = ArtifactStore(tmp_path, memory_slots=2)
        with use_store(store):
            for scale in (0.05, 0.06, 0.07, 0.08):
                suite_data(scale, 0)
        gc.collect()
        alive = sum(1 for _ in store._memory.values())
        assert alive <= 2

    def test_ensure_corpus_prebuilds(self, tmp_path):
        with use_store(ArtifactStore(tmp_path)) as store:
            _, origin = ensure_corpus(SMALL)
            assert origin == BUILT
            assert store.corpus_path(SMALL).exists()


class TestAtomicity:
    def test_artifacts_readable_by_plain_pickle(self, store):
        data, _ = store.fetch(SMALL)
        raw = pickle.loads(store.corpus_path(SMALL).read_bytes())
        assert raw.graph.node_count == data.graph.node_count
