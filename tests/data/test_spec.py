"""DatasetSpec content hashing and the scenario registry."""

import dataclasses

import pytest

from repro.data import (
    SCENARIO_REGISTRY,
    DatasetSpec,
    Scenario,
    get_scenario,
    register_scenario,
    scenario_names,
    scenario_spec,
)
from repro.errors import DatasetError


class TestSpec:
    def test_digest_stable(self):
        assert DatasetSpec().digest() == DatasetSpec().digest()

    def test_every_corpus_parameter_changes_the_digest(self):
        base = DatasetSpec()
        for change in (
            {"scale": 0.5},
            {"seed": 1},
            {"scenario": "other"},
            {"genome_length": 10_000},
            {"n_haplotypes": 4},
            {"rates": dataclasses.replace(base.rates, snp=0.01)},
            {"short_reads": 10},
            {"long_reads": 4},
            {"long_read_length": 900},
            {"held_out_divergence": 3.0},
            {"tsu_error_rate": 0.05},
        ):
            changed = dataclasses.replace(base, **change)
            assert changed.digest() != base.digest(), change

    def test_generator_version_in_key(self):
        from repro.data import GENERATOR_VERSION

        assert DatasetSpec().key()["generator_version"] == GENERATOR_VERSION

    def test_with_run_axes(self):
        spec = scenario_spec("divergent").with_run_axes(0.5, 3)
        assert spec.scale == 0.5 and spec.seed == 3
        assert spec.scenario == "divergent"
        assert spec.tsu_error_rate == 0.02  # overrides survive re-axing

    def test_validation(self):
        with pytest.raises(DatasetError):
            DatasetSpec(scale=0)
        with pytest.raises(DatasetError):
            DatasetSpec(genome_length=-1)
        with pytest.raises(DatasetError):
            DatasetSpec(n_haplotypes=0)


class TestScenarios:
    def test_five_scenarios_registered(self):
        names = scenario_names()
        assert len(names) >= 5
        assert {"default", "dense-pop", "divergent", "long-read-heavy",
                "sv-rich"} <= set(names)

    def test_each_scenario_yields_a_distinct_corpus(self):
        digests = {name: scenario_spec(name).digest()
                   for name in scenario_names()}
        assert len(set(digests.values())) == len(digests)

    def test_scenario_axes_match_papers(self):
        assert scenario_spec("dense-pop").n_haplotypes > \
            scenario_spec("default").n_haplotypes
        assert scenario_spec("divergent").rates.snp == \
            pytest.approx(2 * scenario_spec("default").rates.snp)
        assert scenario_spec("long-read-heavy").long_read_length > \
            scenario_spec("default").long_read_length
        assert scenario_spec("sv-rich").rates.inversion > \
            scenario_spec("default").rates.inversion

    def test_unknown_scenario_rejected(self):
        with pytest.raises(DatasetError):
            get_scenario("nope")

    def test_unknown_scenario_message_lists_sorted_names(self):
        with pytest.raises(DatasetError, match="unknown scenario") as info:
            scenario_spec("nope")
        message = str(info.value)
        listed = message.split("known: ", 1)[1].split(", ")
        assert listed == sorted(listed)
        assert "default" in listed

    @pytest.mark.parametrize("scale", [0, -1, -0.5])
    def test_non_positive_scale_rejected_naming_scenario(self, scale):
        with pytest.raises(DatasetError, match="'default' scale must be"):
            scenario_spec("default", scale=scale)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(DatasetError):
            register_scenario(Scenario("default", "again"))

    def test_bad_overrides_rejected_at_registration(self):
        with pytest.raises(DatasetError):
            register_scenario(Scenario("broken", "bad", {"n_haplotypes": 0}))
        assert "broken" not in SCENARIO_REGISTRY
