"""Scenario manifests: parsing, grid expansion, and registry install."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    SCENARIO_REGISTRY,
    DatasetSpec,
    available_manifests,
    install_manifest,
    loads_manifest,
    parse_manifest,
    resolve_manifest,
    scenario_spec,
)
from repro.data.manifest import SUITE_MANIFEST
from repro.errors import ManifestError

#: Golden spec digests captured from the hand-written registry this
#: manifest replaced — the bit-for-bit compatibility contract.
LEGACY_DIGESTS = {
    "default": "33190fcb6023c929",
    "dense-pop": "edae65e934e6c2e3",
    "divergent": "1f1e0ddd5c969d6a",
    "long-read-heavy": "48ceabb9196b7276",
    "sv-rich": "7994289f619b72d0",
}


@pytest.fixture(autouse=True)
def _registry_snapshot():
    """Installing manifests mutates the global scenario registry;
    restore it so these tests can't leak cells into others."""
    saved = dict(SCENARIO_REGISTRY)
    yield
    SCENARIO_REGISTRY.clear()
    SCENARIO_REGISTRY.update(saved)


class TestSuiteManifest:
    def test_committed(self):
        assert SUITE_MANIFEST in available_manifests()

    def test_expands_to_exactly_the_five_legacy_scenarios(self):
        manifest = resolve_manifest(SUITE_MANIFEST)
        assert manifest.cell_names() == tuple(LEGACY_DIGESTS)

    def test_legacy_corpora_bit_for_bit(self):
        """Each cell's spec digest equals the digest the hand-written
        registration produced — same content hash, same corpus bytes,
        same artifact-store and result-cache keys."""
        manifest = resolve_manifest(SUITE_MANIFEST)
        for name, digest in LEGACY_DIGESTS.items():
            assert manifest.cell(name).digest() == digest, name

    def test_registry_is_a_view_over_the_manifest(self):
        """The import-time registry resolves identically to the
        manifest it expanded from."""
        manifest = resolve_manifest(SUITE_MANIFEST)
        for name in LEGACY_DIGESTS:
            assert scenario_spec(name).digest() == \
                manifest.cell(name).digest()

    def test_default_cell_is_paper_fidelity(self):
        manifest = resolve_manifest(SUITE_MANIFEST)
        assert manifest.cell("default").fidelity == "paper"
        assert [c.name for c in manifest.paper_cells()] == ["default"]


class TestMatrixManifest:
    def test_committed_grid_shape(self):
        """The acceptance floor: >= 48 cells across >= 4 axes."""
        manifest = resolve_manifest("matrix")
        assert len(manifest.axes) >= 4
        assert len(manifest) >= 48
        expected = 1
        for _axis, levels in manifest.axes:
            expected *= len(levels)
        assert len(manifest) == expected

    def test_axis_order_names_cells(self):
        manifest = resolve_manifest("matrix")
        order = [axis for axis, _ in manifest.axes]
        assert order == ["population", "divergence", "sv", "reads"]
        first = manifest.cells[0]
        assert first.name == "-".join(level for _, level in first.axes)
        assert [axis for axis, _ in first.axes] == order

    def test_all_digests_distinct(self):
        manifest = resolve_manifest("matrix")
        assert len(manifest.digest_set()) == len(manifest)

    def test_paper_cell_reproduces_default_parameters(self):
        """The all-paper-levels grid cell is the default corpus under a
        different scenario name."""
        manifest = resolve_manifest("matrix")
        (paper,) = manifest.paper_cells()
        assert paper.name == "pop8-div1x-sv1x-short"
        renamed = dataclasses.replace(paper.spec(), scenario="default")
        assert renamed.digest() == LEGACY_DIGESTS["default"]

    def test_rate_scale_composes_across_axes(self):
        manifest = resolve_manifest("matrix")
        base = DatasetSpec().rates
        cell = manifest.cell("pop16-div2x-sv8x-long")
        spec = cell.spec()
        assert spec.n_haplotypes == 16
        assert spec.rates.snp == pytest.approx(2 * base.snp)
        assert spec.rates.inversion == pytest.approx(8 * base.inversion)
        assert spec.rates.sv_mean_length == 240.0
        assert spec.long_reads == 30


MINIMAL = """
[manifest]
name = "mini"
axis_order = ["pop", "div"]

[axes.pop.p4]
n_haplotypes = 4
[axes.pop.p8]
fidelity = "paper"

[axes.div.d1]
fidelity = "paper"
[axes.div.d2]
rate_scale = {snp = 2.0}
"""


class TestParsing:
    def test_grid_expansion(self):
        manifest = loads_manifest(MINIMAL)
        assert manifest.cell_names() == ("p4-d1", "p4-d2", "p8-d1", "p8-d2")
        assert manifest.cell("p4-d2").spec().n_haplotypes == 4
        base = DatasetSpec().rates.snp
        assert manifest.cell("p4-d2").spec().rates.snp == \
            pytest.approx(2 * base)

    def test_grid_fidelity_needs_every_level_paper(self):
        manifest = loads_manifest(MINIMAL)
        assert manifest.cell("p8-d1").fidelity == "paper"
        for name in ("p4-d1", "p4-d2", "p8-d2"):
            assert manifest.cell(name).fidelity == "bench"

    def test_explicit_cells_alongside_axes(self):
        manifest = loads_manifest(MINIMAL + """
[cells.special]
n_haplotypes = 24
""")
        assert "special" in manifest.cell_names()
        assert manifest.cell("special").spec().n_haplotypes == 24
        assert manifest.cell("special").axes == ()

    def test_duplicate_cell_name_raises(self):
        with pytest.raises(ManifestError, match="duplicate cell"):
            loads_manifest(MINIMAL + """
[cells.p4-d1]
n_haplotypes = 24
""")

    def test_cross_axis_field_conflict_raises(self):
        with pytest.raises(ManifestError, match="both set"):
            loads_manifest("""
[manifest]
name = "conflict"
[axes.a.x]
n_haplotypes = 4
[axes.b.y]
n_haplotypes = 8
""")

    def test_absolute_and_scaled_rate_conflict_raises(self):
        with pytest.raises(ManifestError, match="absolutely and"):
            loads_manifest("""
[manifest]
name = "conflict"
[axes.a.x]
rates = {snp = 0.01}
[axes.b.y]
rate_scale = {snp = 2.0}
""")

    @pytest.mark.parametrize("text, match", [
        ("[axes.pop.p4]\nn_haplotypes = 4", "needs a string 'name'"),
        ("[manifest]\nname = 'x'", "neither axes nor cells"),
        ("[manifest]\nname = 'x'\n[axes.pop]", "has no levels"),
        ("[manifest]\nname = 'x'\n[cells.c]\nbogus_key = 1", "unknown key"),
        ("[manifest]\nname = 'x'\n[cells.c]\nfidelity = 'gold'",
         "fidelity must be"),
        ("[manifest]\nname = 'x'\n[cells.c]\nrates = {bogus = 1.0}",
         "unknown rate field"),
        ("[manifest]\nname = 'x'\n[cells.c]\nrate_scale = {snp = 'big'}",
         "must be a number"),
        ("[manifest]\nname = 'x'\n[cells.c]\nn_haplotypes = 0",
         "invalid spec"),
        ("[manifest]\nname = 'x'\naxis_order = ['a']\n[axes.a.x]\n"
         "[axes.b.y]\nn_haplotypes = 4", "axis_order"),
        ("[manifest]\nname = 'x'\n[wat]\nkey = 1", "unknown section"),
    ])
    def test_malformed_manifests_raise(self, text, match):
        with pytest.raises(ManifestError, match=match):
            loads_manifest(text)

    def test_invalid_toml_raises_manifest_error(self):
        with pytest.raises(ManifestError, match="invalid TOML"):
            loads_manifest("[broken")

    def test_resolve_unknown_name(self):
        with pytest.raises(ManifestError, match="unknown manifest"):
            resolve_manifest("no-such-manifest")


class TestInstall:
    def test_install_is_idempotent(self):
        before = dict(SCENARIO_REGISTRY)
        install_manifest(SUITE_MANIFEST)
        assert dict(SCENARIO_REGISTRY) == before

    def test_install_adds_cells(self):
        install_manifest(loads_manifest(MINIMAL))
        assert scenario_spec("p4-d2").n_haplotypes == 4
        assert SCENARIO_REGISTRY["p8-d1"].fidelity == "paper"
        assert SCENARIO_REGISTRY["p8-d1"].axes == {"pop": "p8", "div": "d1"}

    def test_name_collision_with_different_content_raises(self):
        with pytest.raises(ManifestError, match="collides"):
            install_manifest(loads_manifest("""
[manifest]
name = "evil"
[cells.default]
n_haplotypes = 24
"""))


# -- property tests: expansion is deterministic and order-independent --

#: Each axis overrides a distinct DatasetSpec field and scales a
#: distinct rate, so any cross-product composes without conflicts.
AXIS_FIELDS = (
    ("n_haplotypes", st.integers(2, 24), "snp"),
    ("short_reads", st.integers(1, 90), "inversion"),
    ("long_reads", st.integers(1, 40), "deletion"),
)

_level_names = st.lists(
    st.text(alphabet="abcdefghij", min_size=1, max_size=4),
    min_size=1, max_size=3, unique=True,
)


@st.composite
def manifest_payloads(draw):
    n_axes = draw(st.integers(1, 3))
    axes = {}
    for index in range(n_axes):
        field, values, rate = AXIS_FIELDS[index]
        levels = {}
        for level_name in draw(_level_names):
            body = {field: draw(values)}
            if draw(st.booleans()):
                body["rate_scale"] = {
                    rate: draw(st.floats(0.5, 4.0, allow_nan=False))
                }
            levels[f"{field[0]}{index}{level_name}"] = body
        axes[f"axis{index}"] = levels
    return {"manifest": {"name": "prop"}, "axes": axes}


def _reordered(payload):
    """The same payload with every table's key insertion order reversed
    (dicts preserve insertion order, so this simulates a reordered TOML
    file)."""
    if isinstance(payload, dict):
        return {key: _reordered(payload[key]) for key in reversed(payload)}
    return payload


@settings(max_examples=25, deadline=None)
@given(payload=manifest_payloads())
def test_expansion_deterministic_and_order_independent(payload):
    first = parse_manifest(payload)
    again = parse_manifest(payload)
    reordered = parse_manifest(_reordered(payload))
    expected = 1
    for levels in payload["axes"].values():
        expected *= len(levels)
    assert len(first) == expected
    # Determinism: same payload, same cells and digests, in order.
    assert again.cell_names() == first.cell_names()
    assert [c.digest() for c in again.cells] == \
        [c.digest() for c in first.cells]
    # Order-independence: table order changes neither the name set nor
    # the content identity (canonical axis order names the cells).
    assert set(reordered.cell_names()) == set(first.cell_names())
    assert reordered.digest_set() == first.digest_set()
    for cell in first.cells:
        assert reordered.cell(cell.name).digest() == cell.digest()


@settings(max_examples=25, deadline=None)
@given(payload=manifest_payloads())
def test_expanded_digests_are_distinct_per_cell(payload):
    manifest = parse_manifest(payload)
    assert len(manifest.digest_set()) == len(manifest)
