"""Streaming execution mode: chunked views must be invisible.

The contract of ``repro run --stream`` is *bounded memory, identical
results*: chunk generators are range-parameterized over the same
per-item RNG substreams as their monolithic counterparts, so a
:class:`ChunkedSeries` enumerates exactly the monolithic derivation,
and a streaming kernel run produces a bit-identical
:class:`~repro.harness.runner.KernelReport` (modulo wall time, spans,
and the store-traffic observability metrics streaming legitimately
adds).
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    DatasetSpec,
    default_store,
    gbwt_queries,
    gbwt_queries_range,
    tsu_pairs,
    tsu_pairs_range,
)
from repro.data.streaming import ChunkedSeries, streaming, streaming_config
from repro.harness.executor import Job, compile_plan
from repro.harness.runner import run_kernel_studies
from repro.harness.store import job_key


class TestRangeGenerators:
    @given(
        n=st.integers(min_value=0, max_value=24),
        start=st.integers(min_value=0, max_value=24),
        stop=st.integers(min_value=0, max_value=24),
        seed=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=20, deadline=None)
    def test_tsu_range_is_a_slice_of_the_full_set(self, n, start, stop, seed):
        full = tsu_pairs(n, 60, seed=seed)
        lo, hi = min(start, n), min(max(start, stop), n)
        assert tsu_pairs_range(lo, hi, 60, seed=seed) == full[lo:hi]

    def test_gbwt_range_is_a_slice_of_the_full_set(self,
                                                   small_graph_pangenome):
        graph = small_graph_pangenome.graph
        full = gbwt_queries(graph, 30, seed=1)
        for lo, hi in ((0, 30), (0, 7), (7, 19), (29, 30), (12, 12)):
            assert gbwt_queries_range(graph, lo, hi, seed=1) == full[lo:hi]


class TestStreamingContext:
    def test_inactive_by_default(self):
        assert streaming_config() is None

    def test_scoped_and_nested(self):
        with streaming(chunk_items=5) as outer:
            assert streaming_config() is outer
            assert outer.chunk_items == 5
            with streaming(chunk_items=2):
                assert streaming_config().chunk_items == 2
            assert streaming_config() is outer
        assert streaming_config() is None

    def test_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with streaming():
                raise RuntimeError("boom")
        assert streaming_config() is None


class TestChunkedSeries:
    @pytest.fixture()
    def series(self):
        spec = DatasetSpec(scale=0.25, seed=0)
        full = default_store().derived(spec, "tsu_pairs", pair_length=80)
        chunked = ChunkedSeries(spec, "tsu_pairs_chunk", len(full), 3,
                                params={"pair_length": 80})
        return full, chunked

    def test_enumerates_the_monolithic_derivation(self, series):
        full, chunked = series
        assert list(chunked) == full
        assert list(chunked) == full  # re-iterable, not a generator
        assert len(chunked) == len(full)
        assert bool(chunked) is bool(full)

    def test_random_access(self, series):
        full, chunked = series
        for index in range(len(full)):
            assert chunked[index] == full[index]
        assert chunked[-1] == full[-1]
        with pytest.raises(IndexError):
            chunked[len(full)]

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            ChunkedSeries(DatasetSpec(), "tsu_pairs_chunk", 4, 0)


def _report_fingerprint(report):
    """Everything deterministic in a report: drop wall times, spans, and
    the store-traffic metrics that streaming legitimately changes."""
    payload = dataclasses.asdict(report)
    for volatile in ("wall_seconds", "spans", "metrics"):
        payload.pop(volatile, None)
    return payload


class TestStreamingReports:
    @pytest.mark.parametrize("kernel", ["tsu", "gbwt", "gssw"])
    def test_streaming_report_identical_to_in_memory(self, kernel):
        studies = ("timing", "topdown", "cache")
        baseline = run_kernel_studies(kernel, studies=studies, scale=0.25)
        with streaming(chunk_items=7):
            streamed = run_kernel_studies(kernel, studies=studies, scale=0.25)
        assert _report_fingerprint(streamed) == _report_fingerprint(baseline)

    def test_non_streaming_kernels_unaffected(self):
        baseline = run_kernel_studies("tc", studies=("timing",), scale=0.25)
        with streaming():
            streamed = run_kernel_studies("tc", studies=("timing",),
                                          scale=0.25)
        assert _report_fingerprint(streamed) == _report_fingerprint(baseline)


class TestExecutorWiring:
    def test_compile_plan_threads_stream_flag(self):
        plan = compile_plan(("tsu",), studies=("timing",), stream=True)
        assert all(job.stream for job in plan.jobs)
        assert not any(job.stream
                       for job in compile_plan(("tsu",),
                                               studies=("timing",)).jobs)

    def test_stream_flag_shares_the_result_cache(self):
        """Streaming reports are result-identical, so both modes must
        map to the same result-store key (like ``trace``, ``stream`` is
        how-to-run, not what-to-run)."""
        job = Job(kernel="tsu", studies=("timing",), scale=0.25)
        streamed = Job(kernel="tsu", studies=("timing",), scale=0.25,
                       stream=True)
        assert job_key(job) == job_key(streamed)
