"""Probe interface: null behaviour and helpers."""

from repro.uarch.events import NULL_PROBE, AddressSpace, MachineProbe, OpClass


class TestNullProbe:
    def test_all_methods_are_noops(self):
        NULL_PROBE.alu(OpClass.SCALAR_ALU, 5, dependent=True)
        NULL_PROBE.load(0)
        NULL_PROBE.store(0)
        NULL_PROBE.branch(1, True)
        NULL_PROBE.branch_run(1, 100)
        NULL_PROBE.touch_region(0, 1000)

    def test_shared_instance(self):
        assert isinstance(NULL_PROBE, MachineProbe)


class TestBranchRunDefault:
    def test_default_delegates_to_branch(self):
        calls = []

        class Recorder(MachineProbe):
            def branch(self, site, taken):
                calls.append((site, taken))

        Recorder().branch_run(9, taken_count=10)
        assert calls == [(9, True)] * 3 + [(9, False)]


class TestAddressSpacePages:
    def test_page_alignment(self):
        space = AddressSpace(base=0)
        first = space.alloc(1)
        second = space.alloc(1)
        assert second - first == AddressSpace.PAGE

    def test_large_allocation_spans_pages(self):
        space = AddressSpace(base=0)
        space.alloc(3 * AddressSpace.PAGE + 1)
        next_base = space.alloc(1)
        assert next_base == 4 * AddressSpace.PAGE
