"""Probe interface: null behaviour and helpers."""

from repro.uarch.events import NULL_PROBE, AddressSpace, MachineProbe, OpClass


class TestNullProbe:
    def test_all_methods_are_noops(self):
        NULL_PROBE.alu(OpClass.SCALAR_ALU, 5, dependent=True)
        NULL_PROBE.load(0)
        NULL_PROBE.store(0)
        NULL_PROBE.branch(1, True)
        NULL_PROBE.branch_run(1, 100)
        NULL_PROBE.touch_region(0, 1000)

    def test_shared_instance(self):
        assert isinstance(NULL_PROBE, MachineProbe)


class TestBranchRunDefault:
    def test_boundary_outcomes_delegate_to_branch(self):
        calls = []

        class Recorder(MachineProbe):
            def branch(self, site, taken):
                calls.append((site, taken))

        Recorder().branch_run(9, taken_count=10)
        assert calls == [(9, True)] * 3 + [(9, False)]

    def test_bulk_credits_full_taken_count(self):
        """Counting probes overriding branch_bulk see every iteration of
        a long loop, not just the simulated boundary outcomes."""

        class Counter(MachineProbe):
            branches = 0

            def branch(self, site, taken):
                self.branches += 1

            def branch_bulk(self, site, taken_count):
                self.branches += taken_count

        probe = Counter()
        probe.branch_run(9, taken_count=1000)
        assert probe.branches == 1001

    def test_short_runs_emit_no_bulk(self):
        bulk = []

        class Recorder(MachineProbe):
            def branch_bulk(self, site, taken_count):
                bulk.append(taken_count)

        Recorder().branch_run(9, taken_count=2)
        assert bulk == []


class TestAddressSpacePages:
    def test_page_alignment(self):
        space = AddressSpace(base=0)
        first = space.alloc(1)
        second = space.alloc(1)
        assert second - first == AddressSpace.PAGE

    def test_large_allocation_spans_pages(self):
        space = AddressSpace(base=0)
        space.alloc(3 * AddressSpace.PAGE + 1)
        next_base = space.alloc(1)
        assert next_base == 4 * AddressSpace.PAGE
