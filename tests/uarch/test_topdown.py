"""Top-down attribution model."""

import pytest

from repro.errors import SimulationError
from repro.uarch.events import OpClass
from repro.uarch.machine import TraceMachine
from repro.uarch.topdown import analyze


def run(events):
    machine = TraceMachine()
    events(machine)
    return analyze(machine.summary())


class TestTopDown:
    def test_fractions_sum_to_one(self):
        result = run(lambda m: (m.alu(OpClass.SCALAR_ALU, 100), m.load(0)))
        total = sum(result.as_dict().values())
        assert abs(total - 1.0) < 1e-9

    def test_pure_compute_high_ipc(self):
        result = run(lambda m: m.alu(OpClass.SCALAR_ALU, 10_000))
        assert result.ipc > 3.5
        assert result.retiring > 0.9

    def test_dependent_chain_core_bound(self):
        def events(machine):
            machine.alu(OpClass.SCALAR_MUL_DIV, 1000, dependent=True)

        result = run(events)
        assert result.core_bound > 0.5
        assert result.ipc < 0.5

    def test_random_memory_is_memory_bound(self):
        def events(machine):
            for i in range(2000):
                machine.load(i * 1 << 14)  # all cold misses
            machine.alu(OpClass.SCALAR_ALU, 2000)

        result = run(events)
        assert result.memory_bound > 0.5

    def test_mispredicted_branches_bad_speculation(self):
        import random

        def events(machine):
            rng = random.Random(0)
            for _ in range(3000):
                machine.branch(1, rng.random() < 0.5)
            machine.alu(OpClass.SCALAR_ALU, 3000)

        result = run(events)
        assert result.bad_speculation > 0.4

    def test_empty_run_rejected(self):
        machine = TraceMachine()
        with pytest.raises(SimulationError):
            analyze(machine.summary())
