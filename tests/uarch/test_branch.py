"""Branch predictors."""

import random

from repro.uarch.branch import BimodalPredictor, GsharePredictor


class TestGshare:
    def test_learns_constant_direction(self):
        predictor = GsharePredictor()
        for _ in range(100):
            predictor.predict_and_update(1, True)
        assert predictor.stats.misprediction_rate < 0.1

    def test_random_stream_mispredicts(self):
        predictor = GsharePredictor()
        rng = random.Random(0)
        for _ in range(2000):
            predictor.predict_and_update(1, rng.random() < 0.5)
        assert predictor.stats.misprediction_rate > 0.3

    def test_learns_alternating_pattern_via_history(self):
        predictor = GsharePredictor()
        for i in range(2000):
            predictor.predict_and_update(1, i % 2 == 0)
        assert predictor.stats.misprediction_rate < 0.2

    def test_counts(self):
        predictor = GsharePredictor()
        predictor.predict_and_update(1, True)
        predictor.predict_and_update(1, False)
        assert predictor.stats.branches == 2
        assert predictor.stats.taken == 1


class TestBimodal:
    def test_biased_stream_predicted(self):
        predictor = BimodalPredictor()
        rng = random.Random(1)
        for _ in range(2000):
            predictor.predict_and_update(7, rng.random() < 0.9)
        assert predictor.stats.misprediction_rate < 0.25

    def test_cannot_learn_alternation(self):
        predictor = BimodalPredictor()
        for i in range(2000):
            predictor.predict_and_update(1, i % 2 == 0)
        assert predictor.stats.misprediction_rate > 0.4
