"""Cache hierarchy simulator."""

import pytest

from repro.errors import SimulationError
from repro.uarch.cache import (
    LINE_SIZE,
    MACHINE_A,
    MACHINE_B,
    CacheHierarchy,
    CacheLevel,
)


class TestCacheLevel:
    def test_lru_eviction(self):
        # 2 sets x 2 ways: lines 0,2,4 map to set 0 (even line numbers).
        level = CacheLevel("t", size_bytes=4 * LINE_SIZE, ways=2)
        assert not level.access(0)
        assert not level.access(2)
        assert level.access(0)        # refresh 0: now 2 is LRU
        assert not level.access(4)    # evicts 2
        assert level.access(0)
        assert not level.access(2)    # 2 was evicted

    def test_hit_after_fill(self):
        level = CacheLevel("t", size_bytes=4 * LINE_SIZE, ways=2)
        level.access(7)
        assert level.access(7)
        assert level.hits == 1
        assert level.misses == 1

    def test_bad_config_rejected(self):
        with pytest.raises(SimulationError):
            CacheLevel("t", size_bytes=0, ways=2)

    def test_set_allocation_matches_index_mask(self):
        # 1.25 MB 20-way gives 1024 raw sets... but e.g. 6 raw sets
        # floors to 4: only the floored count is ever indexed by the
        # mask, so only that many dicts may be allocated.
        level = CacheLevel("t", size_bytes=6 * 2 * LINE_SIZE, ways=2)
        assert level.n_sets == 4
        assert len(level._sets) == level.n_sets

    def test_access_block_matches_scalar_access(self):
        import numpy as np

        lines = np.array([0, 2, 0, 4, 0, 2, 7, 7, 2], dtype=np.int64)
        batched = CacheLevel("t", size_bytes=4 * LINE_SIZE, ways=2)
        hits = batched.access_block(lines)
        scalar = CacheLevel("t", size_bytes=4 * LINE_SIZE, ways=2)
        expected = [scalar.access(int(line)) for line in lines]
        assert hits.tolist() == expected
        assert batched.hits == scalar.hits
        assert batched.misses == scalar.misses


class TestHierarchy:
    def test_first_touch_misses_everywhere(self):
        hierarchy = CacheHierarchy(MACHINE_B)
        assert hierarchy.access(0x1000) == 4
        assert hierarchy.access(0x1000) == 1

    def test_capacity_spill_to_l2(self):
        hierarchy = CacheHierarchy(MACHINE_B)
        lines = (MACHINE_B.l1_size // LINE_SIZE) * 4
        for i in range(lines):
            hierarchy.access(i * LINE_SIZE)
        # revisit: L1 cannot hold all; most should hit L2.
        levels = [hierarchy.access(i * LINE_SIZE) for i in range(lines)]
        assert levels.count(2) > lines // 2

    def test_multi_line_access_worst_level(self):
        hierarchy = CacheHierarchy(MACHINE_B)
        hierarchy.access(0)
        # spans line 0 (hit) and line 1 (miss) -> worst = memory
        assert hierarchy.access(LINE_SIZE - 4, size=8) == 4

    def test_mpki_exclusive(self):
        hierarchy = CacheHierarchy(MACHINE_B)
        for i in range(100):
            hierarchy.access(i * LINE_SIZE)
        mpki = hierarchy.mpki(instructions=1000)
        # first-touch: all 100 go to memory; exclusive counting puts them in l3
        assert mpki["l1"] == 0.0
        assert mpki["l2"] == 0.0
        assert mpki["l3"] == 100.0

    def test_machine_a_config_loads(self):
        CacheHierarchy(MACHINE_A).access(0)

    def test_access_block_matches_scalar_hierarchy(self):
        import numpy as np

        addresses = np.array(
            [0x1000, 0x1000, 0x1004, 0x2000, 0x1000, 0x103C, 0x5000],
            dtype=np.int64,
        )
        batched = CacheHierarchy(MACHINE_B)
        levels = batched.access_block(addresses, size=8)
        scalar = CacheHierarchy(MACHINE_B)
        expected = [scalar.access(int(a), size=8) for a in addresses]
        assert levels.tolist() == expected
        assert batched.memory_accesses == scalar.memory_accesses

    def test_access_block_multi_line_worst_level(self):
        import numpy as np

        hierarchy = CacheHierarchy(MACHINE_B)
        hierarchy.access(0)
        # spans line 0 (hit) and line 1 (miss) -> worst = memory,
        # through the block path's line-expansion scatter.
        levels = hierarchy.access_block(
            np.array([LINE_SIZE - 4], dtype=np.int64), size=8
        )
        assert levels.tolist() == [4]
