"""TraceMachine event accounting."""

from repro.uarch.events import AddressSpace, OpClass
from repro.uarch.machine import TraceMachine


class TestTraceMachine:
    def test_op_counting(self):
        machine = TraceMachine()
        machine.alu(OpClass.SCALAR_ALU, 10)
        machine.alu(OpClass.VECTOR_ALU, 5)
        machine.load(0x1000)
        machine.store(0x2000)
        machine.branch(1, True)
        summary = machine.summary()
        assert summary.instructions == 18
        assert summary.loads == 1
        assert summary.stores == 1

    def test_dependent_latency_accumulates(self):
        machine = TraceMachine()
        machine.alu(OpClass.SCALAR_MUL_DIV, 2, dependent=True)
        assert machine.summary().dependent_latency_cycles == 36.0

    def test_instruction_mix_sums_to_one(self):
        machine = TraceMachine()
        machine.alu(OpClass.SCALAR_ALU, 3)
        machine.alu(OpClass.VECTOR_FP, 2)
        machine.load(0)
        machine.branch(1, False)
        mix = machine.summary().instruction_mix()
        assert abs(sum(mix.values()) - 1.0) < 1e-9

    def test_mpki_from_cache(self):
        machine = TraceMachine()
        for i in range(100):
            machine.load(i * 4096)
        machine.alu(OpClass.SCALAR_ALU, 900)
        mpki = machine.summary().mpki()
        assert mpki["l3"] == 100.0

    def test_branch_run_counts_all(self):
        machine = TraceMachine()
        machine.branch_run(5, taken_count=50)
        summary = machine.summary()
        assert summary.branch_stats.branches == 51
        assert summary.branch_stats.taken == 50

    def test_touch_region_walks_lines(self):
        machine = TraceMachine()
        machine.touch_region(0, 256)
        assert machine.summary().loads == 4


class TestAddressSpace:
    def test_disjoint_regions(self):
        space = AddressSpace()
        a = space.alloc(100)
        b = space.alloc(100)
        assert b >= a + 4096

    def test_zero_size(self):
        space = AddressSpace()
        assert space.alloc(0) < space.alloc(0)
