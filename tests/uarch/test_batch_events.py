"""Batched event ingestion is bit-identical to scalar ingestion.

The batched probe API (`load_block` / `store_block` / `branch_trace` /
`alu_bulk`) exists purely for speed: `TraceMachine`'s vectorized fast
paths must produce exactly the same `MachineSummary` — op counts,
per-level hit counts, branch statistics, dependent latency — as feeding
the same event stream through the scalar methods, and leave the cache
and predictor in exactly the same state.  These differential tests
enforce that over random streams.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch.cache import MACHINE_B, CacheConfig
from repro.uarch.events import NULL_PROBE, MachineProbe, NullProbe, OpClass
from repro.uarch.machine import TraceMachine

#: Tiny hierarchy so random streams actually evict and spill levels.
TINY = CacheConfig(
    name="tiny",
    l1_size=4 * 1024, l1_ways=2,
    l2_size=16 * 1024, l2_ways=4,
    l3_size=64 * 1024, l3_ways=4,
)


def _assert_machines_identical(scalar: TraceMachine, batched: TraceMachine):
    assert scalar.summary() == batched.summary()
    assert scalar.predictor.history == batched.predictor.history
    assert scalar.predictor.table == batched.predictor.table
    for name in ("l1", "l2", "l3"):
        lhs = getattr(scalar.cache, name)
        rhs = getattr(batched.cache, name)
        assert lhs.hits == rhs.hits and lhs.misses == rhs.misses
        # Absolute LRU timestamps may differ (the batch path keeps its
        # own clock) but resident lines and their recency *order* — all
        # future behavior depends on — must match.  materialize() folds
        # the batch path's array overlay back into the dicts first.
        lhs.materialize()
        rhs.materialize()
        for lset, rset in zip(lhs._sets, rhs._sets):
            assert sorted(lset, key=lset.get) == sorted(rset, key=rset.get)
    assert scalar.cache.memory_accesses == batched.cache.memory_accesses


addresses_st = st.lists(
    st.integers(min_value=0, max_value=(1 << 20) - 1), min_size=0, max_size=300
)
outcomes_st = st.lists(st.booleans(), min_size=0, max_size=300)


class TestLoadStoreBlocks:
    @given(addrs=addresses_st, size=st.sampled_from([1, 4, 8, 16, 64, 100]))
    @settings(max_examples=60, deadline=None)
    def test_load_block_matches_scalar(self, addrs, size):
        scalar = TraceMachine(TINY)
        for address in addrs:
            scalar.load(address, size)
        batched = TraceMachine(TINY)
        batched.load_block(np.asarray(addrs, dtype=np.int64), size)
        _assert_machines_identical(scalar, batched)

    @given(addrs=addresses_st, size=st.sampled_from([1, 8, 48, 200]))
    @settings(max_examples=40, deadline=None)
    def test_store_block_matches_scalar(self, addrs, size):
        scalar = TraceMachine(TINY)
        for address in addrs:
            scalar.store(address, size)
        batched = TraceMachine(TINY)
        batched.store_block(addrs, size)  # plain list must work too
        _assert_machines_identical(scalar, batched)

    @given(
        base=st.integers(min_value=0, max_value=1 << 18),
        repeats=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=25, deadline=None)
    def test_consecutive_duplicates_dedup_exactly(self, base, repeats):
        """The dedup fast path credits repeats as L1 hits, like scalar."""
        addrs = [base] * repeats + [base + 64] + [base] * repeats
        scalar = TraceMachine(TINY)
        for address in addrs:
            scalar.load(address)
        batched = TraceMachine(TINY)
        batched.load_block(addrs)
        _assert_machines_identical(scalar, batched)

    def test_empty_block_is_noop(self):
        machine = TraceMachine(TINY)
        machine.load_block([])
        machine.store_block(np.zeros(0, dtype=np.int64))
        machine.branch_trace(1, [])
        assert machine.summary().instructions == 0

    def test_interleaved_blocks_and_scalars(self):
        """Batch boundaries are invisible: any split of the same stream
        between scalar and block calls gives the same result."""
        rng = np.random.default_rng(7)
        addrs = rng.integers(0, 1 << 19, size=500).tolist()
        scalar = TraceMachine(TINY)
        for address in addrs:
            scalar.load(address)
        batched = TraceMachine(TINY)
        batched.load_block(addrs[:100])
        for address in addrs[100:137]:
            batched.load(address)
        batched.load_block(addrs[137:499])
        batched.load(addrs[499])
        _assert_machines_identical(scalar, batched)


class TestBranchTrace:
    @given(outcomes=outcomes_st, site=st.integers(min_value=0, max_value=9999))
    @settings(max_examples=60, deadline=None)
    def test_branch_trace_matches_scalar(self, outcomes, site):
        scalar = TraceMachine(TINY)
        for taken in outcomes:
            scalar.branch(site, taken)
        batched = TraceMachine(TINY)
        batched.branch_trace(site, np.asarray(outcomes, dtype=bool))
        _assert_machines_identical(scalar, batched)

    @given(
        bias=st.floats(min_value=0.0, max_value=1.0),
        n=st.integers(min_value=1, max_value=2000),
        seed=st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=30, deadline=None)
    def test_long_biased_streams(self, bias, n, seed):
        """Long same-direction runs exercise the saturating-counter
        shortcut; heavily biased streams must still replay exactly."""
        rng = np.random.default_rng(seed)
        outcomes = rng.random(n) < bias
        scalar = TraceMachine(TINY)
        for taken in outcomes:
            scalar.branch(42, bool(taken))
        batched = TraceMachine(TINY)
        batched.branch_trace(42, outcomes)
        _assert_machines_identical(scalar, batched)

    def test_history_carries_across_batches(self):
        outcomes = [True, False, True, True, False, True, False, False] * 40
        scalar = TraceMachine(TINY)
        for taken in outcomes:
            scalar.branch(3, taken)
        batched = TraceMachine(TINY)
        batched.branch_trace(3, outcomes[:5])
        batched.branch(3, outcomes[5])
        batched.branch_trace(3, outcomes[6:])
        _assert_machines_identical(scalar, batched)

    def test_multiple_sites_interleaved_with_blocks(self):
        """Per-site batches between scalar branches of other sites."""
        scalar = TraceMachine(TINY)
        batched = TraceMachine(TINY)
        program = [(1, [True] * 10), (2, [False, True]), (1, [False] * 3)]
        for site, outcomes in program:
            for taken in outcomes:
                scalar.branch(site, taken)
            batched.branch_trace(site, outcomes)
        _assert_machines_identical(scalar, batched)


class TestAluBulkAndRegions:
    @given(
        count=st.integers(min_value=0, max_value=10_000),
        dependent=st.integers(min_value=0, max_value=10_000),
        op=st.sampled_from(list(OpClass)),
    )
    @settings(max_examples=40, deadline=None)
    def test_alu_bulk_matches_scalar(self, count, dependent, op):
        dependent = min(dependent, count)
        scalar = TraceMachine(TINY)
        if dependent:
            scalar.alu(op, dependent, dependent=True)
        if count - dependent:
            scalar.alu(op, count - dependent)
        batched = TraceMachine(TINY)
        batched.alu_bulk(op, count, dependent_count=dependent)
        _assert_machines_identical(scalar, batched)

    @given(
        size=st.integers(min_value=0, max_value=5000),
        stride=st.sampled_from([8, 64, 128]),
        base=st.integers(min_value=0, max_value=1 << 18),
    )
    @settings(max_examples=40, deadline=None)
    def test_touch_region_override_matches_base(self, size, stride, base):
        scalar = TraceMachine(TINY)
        MachineProbe.touch_region(scalar, base, size, stride)
        batched = TraceMachine(TINY)
        batched.touch_region(base, size, stride)
        _assert_machines_identical(scalar, batched)


class TestMixedPrograms:
    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_random_event_programs(self, seed):
        """Whole random programs mixing every event kind."""
        rng = np.random.default_rng(seed)
        scalar = TraceMachine(TINY)
        batched = TraceMachine(TINY)
        for _ in range(rng.integers(1, 12)):
            kind = rng.integers(0, 5)
            if kind == 0:
                addrs = rng.integers(0, 1 << 19, size=rng.integers(1, 120))
                size = int(rng.choice([4, 8, 64]))
                for address in addrs:
                    scalar.load(int(address), size)
                batched.load_block(addrs, size)
            elif kind == 1:
                addrs = rng.integers(0, 1 << 19, size=rng.integers(1, 120))
                for address in addrs:
                    scalar.store(int(address))
                batched.store_block(addrs)
            elif kind == 2:
                site = int(rng.integers(0, 100))
                outcomes = rng.random(rng.integers(1, 200)) < 0.8
                for taken in outcomes:
                    scalar.branch(site, bool(taken))
                batched.branch_trace(site, outcomes)
            elif kind == 3:
                op = list(OpClass)[int(rng.integers(0, len(OpClass)))]
                count = int(rng.integers(0, 50))
                dependent = int(rng.integers(0, count + 1))
                if dependent:
                    scalar.alu(op, dependent, dependent=True)
                if count - dependent:
                    scalar.alu(op, count - dependent)
                batched.alu_bulk(op, count, dependent_count=dependent)
            else:
                taken_count = int(rng.integers(0, 40))
                scalar.branch_run(9, taken_count)
                batched.branch_run(9, taken_count)
        _assert_machines_identical(scalar, batched)


class TestProbeFallbacks:
    def test_base_class_batches_replay_through_scalar_methods(self):
        """A probe overriding only the scalar interface sees the exact
        per-event stream whichever granularity the kernel emits."""

        class Recorder(MachineProbe):
            def __init__(self):
                self.events = []

            def load(self, address, size=8):
                self.events.append(("load", address, size))

            def store(self, address, size=8):
                self.events.append(("store", address, size))

            def branch(self, site, taken):
                self.events.append(("branch", site, taken))

            def alu(self, op_class, count=1, dependent=False):
                self.events.append(("alu", op_class, count, dependent))

        probe = Recorder()
        probe.load_block(np.array([1, 2]), 16)
        probe.store_block([3], 4)
        probe.branch_trace(7, np.array([True, False]))
        probe.alu_bulk(OpClass.SCALAR_ALU, 5, dependent_count=2)
        assert probe.events == [
            ("load", 1, 16),
            ("load", 2, 16),
            ("store", 3, 4),
            ("branch", 7, True),
            ("branch", 7, False),
            ("alu", OpClass.SCALAR_ALU, 2, True),
            ("alu", OpClass.SCALAR_ALU, 3, False),
        ]

    def test_null_probe_swallows_batches(self):
        assert isinstance(NULL_PROBE, NullProbe)
        NULL_PROBE.load_block([1, 2, 3])
        NULL_PROBE.store_block([4])
        NULL_PROBE.branch_trace(1, [True])
        NULL_PROBE.alu_bulk(OpClass.VECTOR_ALU, 10, 5)
        NULL_PROBE.branch_run(1, 100)
        NULL_PROBE.touch_region(0, 4096)

    def test_null_probe_batches_skip_iteration(self):
        """NullProbe must not even iterate the payload: emitters may pass
        generators-shaped junk on the untraced path without cost."""

        class Explosive:
            def __iter__(self):
                raise AssertionError("NullProbe iterated a batch payload")

        NULL_PROBE.load_block(Explosive())
        NULL_PROBE.store_block(Explosive())
        NULL_PROBE.branch_trace(1, Explosive())
