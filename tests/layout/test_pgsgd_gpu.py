"""PGSGD-GPU: Table 7 occupancy shape and convergence parity."""

import pytest

from repro.errors import SimulationError
from repro.layout.pgsgd import PGSGDParams
from repro.layout.pgsgd_gpu import pgsgd_layout_gpu


PARAMS = PGSGDParams(iterations=8, updates_per_iteration=3000, seed=5,
                     initialization="random")


class TestOccupancy:
    def test_block_1024_theoretical_two_thirds(self, small_graph_pangenome):
        result = pgsgd_layout_gpu(small_graph_pangenome.graph, PARAMS, block_size=1024)
        assert abs(result.report.theoretical_occupancy - 2 / 3) < 0.01

    def test_block_256_improves_occupancy(self, small_graph_pangenome):
        big = pgsgd_layout_gpu(small_graph_pangenome.graph, PARAMS, block_size=1024)
        small = pgsgd_layout_gpu(small_graph_pangenome.graph, PARAMS, block_size=256)
        assert abs(small.report.theoretical_occupancy - 5 / 6) < 0.01
        assert small.report.achieved_occupancy > big.report.achieved_occupancy

    def test_achieved_below_theoretical(self, small_graph_pangenome):
        report = pgsgd_layout_gpu(small_graph_pangenome.graph, PARAMS).report
        assert report.achieved_occupancy < report.theoretical_occupancy

    def test_warp_utilization_high(self, small_graph_pangenome):
        report = pgsgd_layout_gpu(small_graph_pangenome.graph, PARAMS).report
        assert 0.8 < report.warp_utilization < 0.95


class TestBehaviour:
    def test_layout_converges_like_cpu(self, small_graph_pangenome):
        result = pgsgd_layout_gpu(small_graph_pangenome.graph, PARAMS)
        history = result.layout.stress_history
        assert history[-1] < 0.2 * history[0]

    def test_bad_block_size_rejected(self, small_graph_pangenome):
        with pytest.raises(SimulationError):
            pgsgd_layout_gpu(small_graph_pangenome.graph, PARAMS, block_size=100)
