"""PGSGD-GPU: Table 7 occupancy shape and convergence parity."""

import pytest

from repro.errors import SimulationError
from repro.layout.pgsgd import PGSGDParams
from repro.layout.pgsgd_gpu import pgsgd_layout_gpu


PARAMS = PGSGDParams(iterations=8, updates_per_iteration=3000, seed=5,
                     initialization="random")


class TestOccupancy:
    def test_block_1024_theoretical_two_thirds(self, small_graph_pangenome):
        result = pgsgd_layout_gpu(small_graph_pangenome.graph, PARAMS, block_size=1024)
        assert abs(result.report.theoretical_occupancy - 2 / 3) < 0.01

    def test_block_256_improves_occupancy(self, small_graph_pangenome):
        big = pgsgd_layout_gpu(small_graph_pangenome.graph, PARAMS, block_size=1024)
        small = pgsgd_layout_gpu(small_graph_pangenome.graph, PARAMS, block_size=256)
        assert abs(small.report.theoretical_occupancy - 5 / 6) < 0.01
        assert small.report.achieved_occupancy > big.report.achieved_occupancy

    def test_achieved_below_theoretical(self, small_graph_pangenome):
        report = pgsgd_layout_gpu(small_graph_pangenome.graph, PARAMS).report
        assert report.achieved_occupancy < report.theoretical_occupancy

    def test_warp_utilization_high(self, small_graph_pangenome):
        report = pgsgd_layout_gpu(small_graph_pangenome.graph, PARAMS).report
        assert 0.8 < report.warp_utilization < 0.95


class TestBehaviour:
    def test_layout_converges_like_cpu(self, small_graph_pangenome):
        result = pgsgd_layout_gpu(small_graph_pangenome.graph, PARAMS)
        history = result.layout.stress_history
        assert history[-1] < 0.2 * history[0]

    def test_bad_block_size_rejected(self, small_graph_pangenome):
        with pytest.raises(SimulationError):
            pgsgd_layout_gpu(small_graph_pangenome.graph, PARAMS, block_size=100)


class TestRegisteredGpuBackend:
    """The simulator is the registered ``gpu`` backend of the ``pgsgd``
    kernel: a normal harness run on that backend must come back with
    the Table 7 SIMT counters and pass the per-backend paper gate."""

    def test_kernel_report_carries_gpu_counters(
            self, _isolated_dataset_store):
        from repro.harness.runner import run_kernel_studies
        from repro.sweep.gates import check_paper_gates

        report = run_kernel_studies("pgsgd", studies=("timing", "gpu"),
                                    scale=0.25, backend="gpu")
        assert report.error is None
        assert report.backend == "gpu"
        assert abs(report.gpu["theoretical_occupancy"] - 2 / 3) < 0.01
        assert 0 < report.gpu["achieved_occupancy"] \
            <= report.gpu["theoretical_occupancy"]
        assert report.gpu["gpu_time_ms"] > 0
        assert report.gpu["warp_utilization"] > 0.8
        assert check_paper_gates(report) == ()

    def test_gpu_layout_work_matches_vectorized_convergence(
            self, _isolated_dataset_store):
        from repro.kernels import create_kernel

        gpu = create_kernel("pgsgd", scale=0.25, backend="gpu")
        cpu = create_kernel("pgsgd", scale=0.25, backend="vectorized")
        gpu_result = gpu.run()
        cpu_result = cpu.run()
        # Same update schedule; both anneal to a much lower stress.
        assert gpu_result.work["updates"] == cpu_result.work["updates"]
        for result in (gpu_result, cpu_result):
            assert (result.work["final_stress"]
                    < result.work["initial_stress"])


class TestCrossoverModels:
    """The calibrated wall models behind bench_layout_crossover."""

    def test_cpu_model_is_size_dependent(self):
        from repro.layout.pgsgd_gpu import cpu_pgsgd_time_model

        small = cpu_pgsgd_time_model(1_000, updates=100_000)
        large = cpu_pgsgd_time_model(10_000_000, updates=100_000)
        assert large > 3 * small  # cache ladder -> DRAM latency

    def test_gpu_model_charges_fixed_overheads(self):
        from repro.layout.pgsgd_gpu import (
            GPU_LAUNCH_SECONDS,
            gpu_pgsgd_wall_model,
        )

        zero_work = gpu_pgsgd_wall_model(0.0, n_anchors=0, updates=0,
                                         iterations=30)
        assert zero_work == pytest.approx(30 * GPU_LAUNCH_SECONDS)
        with_transfer = gpu_pgsgd_wall_model(0.0, n_anchors=1 << 20,
                                             updates=0, iterations=30)
        assert with_transfer > zero_work

    def test_models_cross_over(self):
        from repro.layout.pgsgd_gpu import (
            cpu_pgsgd_time_model,
            gpu_pgsgd_wall_model,
        )

        per_update = 2e-10  # a measured device rate's order of magnitude
        small, large = 500, 1_000_000
        for nodes, gpu_wins in ((small, False), (large, True)):
            cpu = cpu_pgsgd_time_model(2 * nodes, updates=100 * nodes)
            gpu = gpu_pgsgd_wall_model(per_update, 2 * nodes,
                                       updates=100 * nodes, iterations=30)
            assert (cpu > gpu) == gpu_wins, nodes
