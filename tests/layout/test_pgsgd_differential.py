"""Vectorized PGSGD update step vs the sequential scalar reference.

The batched-update reformulation (after "Rapid GPU-Based Pangenome
Graph Layout", arXiv 2409.00876) processes conflict-free runs of
sampled terms as one snapshot-read/scatter-write — runs are cut at the
first anchor repetition, so the vector math is *exactly* the sequential
semantics, not an approximation.  These tests enforce that end to end:
identical positions, identical stress trajectory, and an identical
probe event stream (whole :class:`MachineSummary` equality — the
address stream includes the virtual-anchor slot rotation, so the
vectorized visit bookkeeping is covered too).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import simulate_graph_pangenome
from repro.layout.pgsgd import PGSGDLayout, PGSGDParams
from repro.uarch.machine import TraceMachine


def _run(graph, params, backend):
    machine = TraceMachine()
    result = PGSGDLayout(graph, params, probe=machine,
                         backend=backend).run()
    return result, machine


class TestPgsgdDifferential:
    @given(
        seed=st.integers(min_value=0, max_value=50),
        iterations=st.integers(min_value=1, max_value=4),
        updates=st.sampled_from([50, 600]),
        scale=st.sampled_from([1, 512]),
        init=st.sampled_from(["linear", "random"]),
    )
    @settings(max_examples=10, deadline=None)
    def test_layout_and_events_bit_identical(self, seed, iterations,
                                             updates, scale, init,
                                             small_graph_pangenome):
        params = PGSGDParams(
            iterations=iterations, updates_per_iteration=updates,
            seed=seed, initialization=init, virtual_anchor_scale=scale,
        )
        graph = small_graph_pangenome.graph
        fast, fast_machine = _run(graph, params, backend="vectorized")
        slow, slow_machine = _run(graph, params, backend="scalar")
        assert fast.positions == slow.positions
        assert fast.stress_history == slow.stress_history
        assert fast.updates == slow.updates
        assert fast.path_index_work == slow.path_index_work
        assert fast_machine.summary() == slow_machine.summary()

    def test_matches_pre_vectorization_behavior(self):
        """The kernel-sized configuration (virtual_anchor_scale=512) on a
        fresh graph: positions must be deterministic across repeats and
        across the vectorize toggle — the invariant that keeps committed
        layout-dependent results valid."""
        gp = simulate_graph_pangenome(genome_length=2000, n_haplotypes=4,
                                      seed=3)
        params = PGSGDParams(iterations=8, updates_per_iteration=2000,
                             seed=0, virtual_anchor_scale=512)
        first, _ = _run(gp.graph, params, backend="vectorized")
        second, _ = _run(gp.graph, params, backend="vectorized")
        scalar, _ = _run(gp.graph, params, backend="scalar")
        assert first.positions == second.positions == scalar.positions
