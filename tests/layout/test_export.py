"""Layout TSV and SVG export."""

import io

import pytest

from repro.errors import SimulationError
from repro.graph.builder import simulate_graph_pangenome
from repro.layout.export import layout_to_svg, write_layout_tsv
from repro.layout.pgsgd import PGSGDParams, pgsgd_layout


class TestExport:
    def test_tsv_format(self):
        buffer = io.StringIO()
        write_layout_tsv([(0.0, 1.0), (2.5, 3.5)], buffer)
        lines = buffer.getvalue().splitlines()
        assert lines[0] == "#idx\tX\tY"
        assert lines[1] == "0\t0.000\t1.000"
        assert len(lines) == 3

    def test_tsv_file(self, tmp_path):
        path = tmp_path / "layout.tsv"
        write_layout_tsv([(1.0, 2.0)], path)
        assert path.read_text().startswith("#idx")

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            write_layout_tsv([], io.StringIO())

    def test_svg_from_real_layout(self):
        world = simulate_graph_pangenome(genome_length=800, n_haplotypes=2, seed=5)
        params = PGSGDParams(iterations=2, updates_per_iteration=200)
        result = pgsgd_layout(world.graph, params)
        svg = layout_to_svg(world.graph, result.positions)
        assert svg.startswith("<svg")
        assert svg.count("<line") == world.graph.node_count
        assert svg.rstrip().endswith("</svg>")

    def test_svg_anchor_count_checked(self):
        world = simulate_graph_pangenome(genome_length=500, n_haplotypes=2, seed=5)
        with pytest.raises(SimulationError):
            layout_to_svg(world.graph, [(0.0, 0.0)])
