"""PGSGD layout convergence and determinism."""

import dataclasses

import pytest

from repro.errors import SimulationError
from repro.layout.pgsgd import PGSGDLayout, PGSGDParams, pgsgd_layout


PARAMS = PGSGDParams(iterations=10, updates_per_iteration=4000, seed=3,
                     initialization="random")


class TestConvergence:
    def test_stress_drops_from_random_start(self, small_graph_pangenome):
        result = pgsgd_layout(small_graph_pangenome.graph, PARAMS)
        assert result.final_stress < 0.1 * result.stress_history[0]

    def test_updates_counted(self, small_graph_pangenome):
        result = pgsgd_layout(small_graph_pangenome.graph, PARAMS)
        assert result.updates == PARAMS.iterations * PARAMS.updates_per_iteration

    def test_deterministic(self, small_graph_pangenome):
        a = pgsgd_layout(small_graph_pangenome.graph, PARAMS)
        b = pgsgd_layout(small_graph_pangenome.graph, PARAMS)
        assert a.positions == b.positions


class TestParams:
    def test_schedule_decays(self):
        params = PGSGDParams(iterations=5, eta_min=0.1)
        schedule = params.schedule(eta_max=1000.0)
        assert schedule[0] == 1000.0
        assert abs(schedule[-1] - 0.1) < 1e-9
        assert all(a > b for a, b in zip(schedule, schedule[1:]))

    def test_schedule_needs_eta(self):
        with pytest.raises(SimulationError):
            PGSGDParams().schedule()

    def test_bad_initialization_rejected(self, small_graph_pangenome):
        params = dataclasses.replace(PARAMS, initialization="spiral")
        with pytest.raises(SimulationError):
            PGSGDLayout(small_graph_pangenome.graph, params)


class TestVirtualSpread:
    def test_virtual_addresses_rotate(self, small_graph_pangenome):
        params = dataclasses.replace(PARAMS, virtual_anchor_scale=64)
        layout = PGSGDLayout(small_graph_pangenome.graph, params)
        addresses = {layout._anchor_address(5) for _ in range(20)}
        assert len(addresses) > 10  # successive visits land on fresh slots

    def test_scale_one_is_stable(self, small_graph_pangenome):
        layout = PGSGDLayout(small_graph_pangenome.graph, PARAMS)
        assert layout._anchor_address(5) == layout._anchor_address(5)
