"""Path step index and sampling."""

import random

import pytest

from repro.errors import GraphError
from repro.graph.model import SequenceGraph
from repro.layout.path_index import PathIndex


def two_path_graph():
    graph = SequenceGraph()
    graph.add_node(0, "AAAA")
    graph.add_node(1, "CC")
    graph.add_node(2, "GGG")
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_path("p1", [0, 1, 2])
    graph.add_path("p2", [0, 1])
    return graph


class TestPathIndex:
    def test_positions_cumulative(self):
        index = PathIndex(two_path_graph())
        steps = index.steps_of(0)
        assert [s.position for s in steps] == [0, 4, 6]
        assert index.path_length(0) == 9

    def test_distance(self):
        index = PathIndex(two_path_graph())
        steps = index.steps_of(0)
        assert index.distance(steps[0], steps[2]) == 6

    def test_distance_cross_path_rejected(self):
        index = PathIndex(two_path_graph())
        with pytest.raises(GraphError):
            index.distance(index.steps_of(0)[0], index.steps_of(1)[0])

    def test_requires_paths(self):
        with pytest.raises(GraphError):
            PathIndex(SequenceGraph())

    def test_sampling_in_range(self):
        index = PathIndex(two_path_graph())
        rng = random.Random(0)
        for _ in range(100):
            a, b = index.sample_step_pair(rng)
            assert a.path_index == b.path_index
            assert a.step_index != b.step_index or len(index.steps_of(a.path_index)) == 1

    def test_build_work_counted(self):
        index = PathIndex(two_path_graph())
        assert index.build_work == 5  # 3 + 2 steps
