#!/usr/bin/env python3
"""Run the full characterization pipeline on any suite kernel — timing,
top-down, cache MPKI, instruction mix, oracle validation — like the
paper's mainRun.py with every study enabled.

Kernels run in parallel worker processes (one traced execution each,
shared by all five studies); a crashing kernel would report its error
here without taking down the rest.

Run:  python examples/characterize_kernel.py [kernel ...]
      (default: gssw pgsgd tc)
"""

import sys

from repro.analysis.report import render_table
from repro.harness import run_suite
from repro.kernels import kernel_names


def main() -> None:
    requested = sys.argv[1:] or ["gssw", "pgsgd", "tc"]
    known = kernel_names()
    for name in requested:
        if name not in known:
            raise SystemExit(f"unknown kernel {name!r}; choose from {known}")

    reports = run_suite(
        tuple(requested),
        studies=("timing", "topdown", "cache", "instmix", "validate"),
        scale=0.3,
        jobs=min(4, len(requested)),
    )
    rows = []
    for name in requested:
        report = reports[name]
        if report.error:
            rows.append([name, "-", "-", "-", report.error, "-", "-", "-"])
            continue
        bound = max(
            (k for k in report.topdown if k != "retiring"),
            key=report.topdown.get,
        )
        rows.append([
            name,
            report.inputs_processed,
            f"{report.wall_seconds:.2f}s",
            f"{report.ipc:.2f}",
            f"{bound} ({report.topdown[bound]:.0%})",
            f"{report.mpki['l1']:.1f}/{report.mpki['l2']:.1f}/{report.mpki['l3']:.1f}",
            f"{report.branch_misprediction_rate:.1%}",
            "ok" if report.validated else "-",
        ])
    print(render_table(
        ["kernel", "#inputs", "time", "IPC", "primary bottleneck",
         "mpki l1/l2/l3", "br-miss", "oracle"],
        rows,
        title="PangenomicsBench kernel characterization (simulated Machine B)",
    ))


if __name__ == "__main__":
    main()
