#!/usr/bin/env python3
"""Quickstart: simulate a pangenome, index it, map a read, run a kernel.

Run:  python examples/quickstart.py
"""

from repro.graph import GraphStats, simulate_graph_pangenome
from repro.harness import run_kernel_studies
from repro.kernels import create_kernel
from repro.sequence import ILLUMINA, ReadSimulator
from repro.tools import Giraffe

def main() -> None:
    # 1. A synthetic pangenome: an ancestor plus 6 diverged haplotypes,
    #    with the ground-truth variation graph built alongside.
    world = simulate_graph_pangenome(genome_length=8_000, n_haplotypes=6, seed=7)
    graph = world.graph
    print("pangenome graph:", graph)
    print("stats:", GraphStats.of(graph))

    # 2. Sequence some short reads from one haplotype and map them back
    #    with the haplotype-aware giraffe model.
    donor = world.haplotypes[0]
    reads = list(ReadSimulator(ILLUMINA, seed=1).simulate(donor, n_reads=15))
    mapper = Giraffe(graph)
    run = mapper.map_reads(reads)
    print(f"\nmapped {run.mapped_fraction:.0%} of reads; "
          f"{run.counters.get('resolved_by_extension', 0)} resolved by "
          f"GBWT haplotype extension alone")
    print("stage seconds:", {k: round(v, 3) for k, v in run.timer.seconds.items()})

    # 3. Run one benchmark-suite kernel with its oracle self-check.
    kernel = create_kernel("gbwt", scale=0.3)
    result = kernel.run()
    kernel.validate()
    print(f"\nGBWT kernel: {result.inputs_processed} queries in "
          f"{result.wall_seconds:.2f}s ({result.rate():.0f}/s), validated")

    # 4. Characterize it on the simulated Machine B.
    report = run_kernel_studies("gbwt", studies=("topdown", "cache"), scale=0.3)
    print(f"model IPC {report.ipc:.2f}; top-down "
          f"{ {k: round(v, 2) for k, v in report.topdown.items()} }")


if __name__ == "__main__":
    main()
