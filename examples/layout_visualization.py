#!/usr/bin/env python3
"""Lay out a pangenome graph with PGSGD, on CPU and on the simulated GPU
(the Figure 4g visualization step), and render a coarse ASCII picture.

Run:  python examples/layout_visualization.py
"""

from repro.graph import simulate_graph_pangenome
from repro.layout import PGSGDParams, pgsgd_layout, pgsgd_layout_gpu


def ascii_plot(positions, width=72, height=16) -> str:
    xs = [p[0] for p in positions]
    ys = [p[1] for p in positions]
    span_x = max(xs) - min(xs) or 1.0
    span_y = max(ys) - min(ys) or 1.0
    cells = [[" "] * width for _ in range(height)]
    for x, y in positions:
        column = int((x - min(xs)) / span_x * (width - 1))
        row = int((y - min(ys)) / span_y * (height - 1))
        cells[row][column] = "o"
    return "\n".join("".join(row) for row in cells)


def main() -> None:
    world = simulate_graph_pangenome(genome_length=4_000, n_haplotypes=4, seed=9)
    params = PGSGDParams(
        iterations=15, updates_per_iteration=8_000, initialization="random", seed=1
    )

    result = pgsgd_layout(world.graph, params)
    print(f"CPU PGSGD: {result.updates} updates, stress "
          f"{result.stress_history[0]:.0f} -> {result.final_stress:.1f}")
    print("\nfinal layout (each 'o' is a node anchor):")
    print(ascii_plot(result.positions))

    gpu = pgsgd_layout_gpu(world.graph, params)
    report = gpu.report
    print(f"\nGPU PGSGD (simulated RTX A6000):")
    print(f"  theoretical occupancy {report.theoretical_occupancy:.1%} "
          f"(paper: 66.7%), achieved {report.achieved_occupancy:.1%} "
          f"(paper: 53.85%)")
    print(f"  warp utilization {report.warp_utilization:.1%} (paper: 88.31%), "
          f"memory BW {report.memory_bw_utilization:.1%} (paper: 41.91%)")


if __name__ == "__main__":
    main()
