#!/usr/bin/env python3
"""Compare all four Seq2Graph mappers (and the Seq2Seq baseline) on one
synthetic dataset — the Figure 1 pipeline end to end.

Run:  python examples/map_reads_to_pangenome.py
"""

from repro.analysis.report import render_table
from repro.data import corpus
from repro.tools import BwaMem, Giraffe, GraphAligner, Minigraph, VgMap


def main() -> None:
    data = corpus(scale=0.4, seed=0)
    short = list(data.short_reads)[:20]
    long = list(data.long_reads)[:5]
    print(f"graph: {data.graph}")
    print(f"short reads: {len(short)} x ~150 bp; long reads: {len(long)} "
          f"x ~{int(sum(len(r) for r in long) / len(long))} bp\n")

    jobs = [
        ("vg map (GSSW)", VgMap(data.graph), short),
        ("giraffe (GBWT filter)", Giraffe(data.graph), short),
        ("GraphAligner (GBV)", GraphAligner(data.graph), long),
        ("minigraph (GWFA chain)", Minigraph(data.graph), long),
        ("bwa-mem (linear SSW)", BwaMem(data.reference), short),
    ]
    rows = []
    for name, tool, reads in jobs:
        run = tool.map_reads(list(reads))
        fractions = run.timer.fractions()
        dominant = max(fractions, key=fractions.get)
        rows.append([
            name,
            f"{run.mapped_fraction:.0%}",
            f"{run.timer.total:.2f}s",
            f"{dominant} ({fractions[dominant]:.0%})",
        ])
    print(render_table(
        ["tool", "mapped", "time", "dominant stage"], rows,
        title="Seq2Graph mapping pipeline comparison",
    ))


if __name__ == "__main__":
    main()
