#!/usr/bin/env python3
"""Build a pangenome graph from raw assemblies two ways — the reference-
biased Minigraph-Cactus pipeline and the unbiased PGGB pipeline — and
compare what they recover (the Figure 3 workflow).

Run:  python examples/build_pangenome_graph.py
"""

from repro.analysis.report import render_table
from repro.graph import GraphStats, gfa_string
from repro.layout.pgsgd import PGSGDParams
from repro.sequence import simulate_pangenome
from repro.tools.pipelines import BUILD_STAGES, run_minigraph_cactus, run_pggb


def main() -> None:
    pangenome = simulate_pangenome(genome_length=3_000, n_haplotypes=4, seed=3)
    records = pangenome.records
    total = sum(len(r) for r in records)
    print(f"input: {len(records)} assemblies, {total} bp total\n")

    layout = PGSGDParams(iterations=4, updates_per_iteration=1000)
    mc = run_minigraph_cactus(records, layout_params=layout)
    pggb = run_pggb(records, layout_params=layout)

    rows = []
    for name, run in (("minigraph-cactus", mc), ("pggb", pggb)):
        stats = GraphStats.of(run.graph)
        exact = sum(
            run.graph.path_sequence(r.name) == r.sequence for r in records
        )
        rows.append([
            name, stats.node_count, stats.total_bases,
            f"{total / stats.total_bases:.2f}x",
            f"{exact}/{len(records)}",
            " ".join(f"{s}={run.timer.seconds[s]:.1f}s" for s in BUILD_STAGES),
        ])
    print(render_table(
        ["pipeline", "nodes", "bases", "compression", "paths exact", "stages"],
        rows,
        title="Graph construction: progressive (biased) vs all-to-all (unbiased)",
    ))
    print("\nPGGB spells every input exactly; MC guarantees only the reference")
    print("(its starting-sequence bias — the trade-off Section 2.2 describes).")

    gfa = gfa_string(pggb.graph)
    print(f"\nPGGB graph as GFA1 ({len(gfa.splitlines())} records), first lines:")
    for line in gfa.splitlines()[:5]:
        print(" ", line)


if __name__ == "__main__":
    main()
