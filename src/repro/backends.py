"""Execution-backend vocabulary shared by every layer of the suite.

The backend plane names execution variants instead of threading ad-hoc
``vectorize`` booleans through each component: ``"scalar"`` is the
sequential reference (the differential oracle), ``"vectorized"`` the
batched/SIMD default, and ``"gpu"`` the SIMT device model where a
kernel implements one.  Substrate components (aligners, transitive
closure, layout) accept a backend name and validate it here; the kernel
registry layers per-kernel ``SUPPORTED_BACKENDS`` declarations on top
(see :mod:`repro.kernels.base`).

A component that *cannot* honour a requested backend for capability
reasons (GSSW's lazy-F prefix scan needs ``open >= extend``) must not
downgrade silently: :func:`report_backend_fallback` records the
downgrade on the ``kernel.backend_fallback`` counter so harness
surfaces (``repro run``) can warn the user.
"""

from __future__ import annotations

from repro.obs import metrics

#: The sequential reference implementation (the differential oracle).
SCALAR = "scalar"
#: The batched/SIMD implementation (the suite default).
VECTORIZED = "vectorized"
#: The SIMT device model (where a kernel implements one).
GPU = "gpu"
#: Every backend name the plane knows, oracle-first.
BACKENDS = (SCALAR, VECTORIZED, GPU)


def check_backend(
    backend: str,
    supported: tuple[str, ...],
    component: str,
    error: type[Exception] = ValueError,
) -> str:
    """Validate *backend* against a component's *supported* tuple.

    Raises *error* (the component's domain exception) with a message
    listing the supported backends; returns the backend unchanged so
    call sites can validate-and-assign in one expression.
    """
    if backend not in supported:
        raise error(
            f"{component} does not support backend {backend!r}; "
            f"supported: {', '.join(supported)}")
    return backend


def report_backend_fallback(
    component: str, requested: str, actual: str, reason: str
) -> None:
    """Record a capability downgrade on ``kernel.backend_fallback``.

    Labels carry what was asked for, what actually ran, and a short
    kebab-case reason; ``repro run`` scans report metrics for this
    counter and prints a one-line warning per degraded component.
    """
    metrics.counter(
        "kernel.backend_fallback",
        component=component, requested=requested, actual=actual,
        reason=reason,
    ).inc()
