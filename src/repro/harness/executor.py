"""The execution layer: plan compilation and a failure-isolated pool.

``compile_plan`` turns a suite request into an :class:`ExecutionPlan` of
per-kernel :class:`Job`\\ s (validated up front, so configuration errors
raise before anything runs).  ``execute_plan`` dispatches the plan:

* serving cache hits from the :class:`~repro.harness.store.ResultStore`
  when ``reuse`` is on;
* in-process when ``jobs == 1`` (deterministic, no pickling);
* over a pool of worker processes when ``jobs > 1``, with per-job
  timeout and failure isolation — a kernel that raises, hangs past its
  deadline, or kills its worker yields a report whose ``error`` field is
  set, and the rest of the suite keeps going.

The pool is managed directly over :mod:`multiprocessing` rather than
``concurrent.futures.ProcessPoolExecutor``: a hung worker must be
*terminated* on timeout (the executor API can cancel only jobs that have
not started, and its atexit hook would block interpreter shutdown on the
stuck process).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from collections import deque
from dataclasses import dataclass

from repro.errors import KernelError
from repro.harness.runner import KernelReport, run_kernel_studies
from repro.harness.studies import create_study
from repro.harness.store import ResultStore
from repro.kernels.base import KERNEL_REGISTRY
from repro.uarch.cache import MACHINE_B, CacheConfig


@dataclass(frozen=True)
class Job:
    """One schedulable unit: a kernel under a set of studies."""

    kernel: str
    studies: tuple[str, ...]
    scale: float = 1.0
    seed: int = 0
    cache_config: CacheConfig = MACHINE_B


@dataclass(frozen=True)
class ExecutionPlan:
    """A validated, ordered set of jobs."""

    jobs: tuple[Job, ...]

    def __len__(self) -> int:
        return len(self.jobs)


def compile_plan(
    kernels: tuple[str, ...],
    studies: tuple[str, ...] = ("timing",),
    scale: float = 1.0,
    seed: int = 0,
    cache_config: CacheConfig = MACHINE_B,
) -> ExecutionPlan:
    """Compile one job per kernel, validating names before any runs."""
    for study in studies:
        create_study(study)  # raises KernelError on unknown studies
    for name in kernels:
        if name not in KERNEL_REGISTRY:
            known = ", ".join(sorted(KERNEL_REGISTRY))
            raise KernelError(f"unknown kernel {name!r}; known: {known}")
    return ExecutionPlan(
        jobs=tuple(
            Job(
                kernel=name,
                studies=tuple(studies),
                scale=scale,
                seed=seed,
                cache_config=cache_config,
            )
            for name in kernels
        )
    )


def _failure_report(job: Job, error: str) -> KernelReport:
    return KernelReport(
        kernel=job.kernel,
        error=error,
        scale=job.scale,
        seed=job.seed,
        machine=job.cache_config.name,
    )


def _execute_job(job: Job) -> KernelReport:
    """Run one job, catching kernel failures into the report."""
    try:
        return run_kernel_studies(
            job.kernel,
            studies=job.studies,
            scale=job.scale,
            seed=job.seed,
            cache_config=job.cache_config,
        )
    except Exception as error:  # noqa: BLE001 — isolate per-kernel failures
        return _failure_report(job, f"{type(error).__name__}: {error}")


def _job_worker(job: Job, conn) -> None:
    """Process entry point: run the job and ship the report back."""
    try:
        conn.send(_execute_job(job))
    finally:
        conn.close()


def _mp_context():
    """Prefer fork (kernels registered at runtime stay visible in the
    children); fall back to the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


@dataclass
class _Running:
    index: int
    job: Job
    process: multiprocessing.Process
    deadline: float | None


def _execute_pool(
    jobs: list[Job], workers: int, timeout: float | None
) -> list[KernelReport]:
    """Run *jobs* over *workers* processes with per-job deadlines."""
    ctx = _mp_context()
    queue: deque[tuple[int, Job]] = deque(enumerate(jobs))
    running: dict[multiprocessing.connection.Connection, _Running] = {}
    results: list[KernelReport | None] = [None] * len(jobs)

    def finish(conn, report: KernelReport, terminate: bool = False) -> None:
        entry = running.pop(conn)
        if terminate:
            entry.process.terminate()
        entry.process.join(timeout=5)
        conn.close()
        results[entry.index] = report

    try:
        while queue or running:
            while queue and len(running) < workers:
                index, job = queue.popleft()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_job_worker, args=(job, child_conn), daemon=True
                )
                process.start()
                child_conn.close()
                running[parent_conn] = _Running(
                    index=index,
                    job=job,
                    process=process,
                    deadline=time.monotonic() + timeout if timeout else None,
                )
            ready = multiprocessing.connection.wait(list(running), timeout=0.05)
            for conn in ready:
                entry = running[conn]
                try:
                    report = conn.recv()
                except EOFError:
                    # The worker died without reporting (hard crash).
                    code = entry.process.exitcode
                    report = _failure_report(
                        entry.job, f"WorkerDied: exit code {code}"
                    )
                finish(conn, report)
            now = time.monotonic()
            for conn, entry in list(running.items()):
                if entry.deadline is not None and now > entry.deadline:
                    finish(
                        conn,
                        _failure_report(
                            entry.job, f"Timeout: exceeded {timeout:g}s"
                        ),
                        terminate=True,
                    )
    finally:
        for conn, entry in list(running.items()):
            entry.process.terminate()
            entry.process.join(timeout=5)
            conn.close()
    return [report for report in results if report is not None]


def execute_plan(
    plan: ExecutionPlan,
    jobs: int = 1,
    timeout: float | None = None,
    reuse: bool = False,
    store: ResultStore | None = None,
) -> dict[str, KernelReport]:
    """Execute *plan* and return reports keyed by kernel, in plan order.

    With ``reuse=True`` cached reports are served without executing the
    kernel and fresh (successful) reports are written back to *store*
    (default: the shared ``benchmarks/results/cache/`` store).  Timeouts
    require process isolation and are enforced only when ``jobs > 1``.
    """
    if jobs < 1:
        raise KernelError("jobs must be >= 1")
    if reuse and store is None:
        store = ResultStore()

    reports: dict[str, KernelReport] = {}
    pending: list[Job] = []
    for job in plan.jobs:
        cached = store.load(job) if reuse and store is not None else None
        if cached is not None:
            reports[job.kernel] = cached
        else:
            pending.append(job)

    if jobs == 1:
        executed = [_execute_job(job) for job in pending]
    else:
        executed = _execute_pool(pending, workers=jobs, timeout=timeout)

    for job, report in zip(pending, executed):
        if reuse and store is not None:
            store.save(job, report)
        reports[job.kernel] = report
    return {job.kernel: reports[job.kernel] for job in plan.jobs}
