"""The execution layer: plan compilation and a failure-isolated pool.

``compile_plan`` turns a suite request into an :class:`ExecutionPlan` of
per-kernel :class:`Job`\\ s (validated up front, so configuration errors
raise before anything runs).  ``execute_plan`` dispatches the plan:

* serving cache hits from the :class:`~repro.harness.store.ResultStore`
  when ``reuse`` is on;
* in-process when ``jobs == 1`` (deterministic, no pickling);
* over a pool of worker processes when ``jobs > 1``, with per-job
  timeout and failure isolation — a kernel that raises, hangs past its
  deadline, or kills its worker yields a report whose ``error`` field is
  set, and the rest of the suite keeps going.

The pool is observable end to end: every worker runs under its own span
tracer and ships its spans back inside the report; each span is *also*
spooled to disk as it finishes, so a job that times out or crashes its
worker still yields the spans it completed.  The parent records job
lifecycle (queue-wait and run intervals) into the current tracer and
metrics registry, and every report — including failures, which now carry
their elapsed wall time — gets the executor's queue-wait/wall series
merged into ``report.metrics``.

The pool is managed directly over :mod:`multiprocessing` rather than
``concurrent.futures.ProcessPoolExecutor``: a hung worker must be
*terminated* on timeout (the executor API can cancel only jobs that have
not started, and its atexit hook would block interpreter shutdown on the
stuck process).
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.connection
import os
import tempfile
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

from repro.data import ensure_corpus, scenario_spec
from repro.data.streaming import streaming_mode
from repro.errors import KernelError
from repro.harness.runner import KernelReport, run_kernel_studies
from repro.harness.studies import create_study
from repro.harness.store import ResultStore, default_result_store
from repro.kernels.base import KERNEL_REGISTRY, resolve_backend
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.obs.context import TraceContext, annotate_records
from repro.obs.spans import NULL_TRACER, Tracer
from repro.uarch.cache import MACHINE_B, CacheConfig


@dataclass(frozen=True)
class Job:
    """One schedulable unit: a kernel under a set of studies.

    ``trace`` is request identity, not configuration: it rides into the
    worker so child-process spans stitch into the submitting request's
    trace, and it is deliberately excluded from
    :func:`~repro.harness.store.job_key` — the same work submitted by
    two requests still coalesces and cache-hits.
    """

    kernel: str
    studies: tuple[str, ...]
    scale: float = 1.0
    seed: int = 0
    cache_config: CacheConfig = MACHINE_B
    scenario: str = "default"
    #: Execution backend.  ``""`` means the kernel's default;
    #: ``compile_plan`` always stores the *resolved* name, and
    #: :func:`~repro.harness.store.job_key` resolves before hashing, so
    #: an explicit default and an implicit one share a cache entry.
    backend: str = ""
    trace: "TraceContext | None" = None
    #: Streaming mode holds derived inputs as bounded chunked views
    #: instead of monolithic in-memory lists.  Reports are bit-identical
    #: either way (chunk generators share the monolithic RNG
    #: substreams), so — like ``trace`` — it is excluded from
    #: :func:`~repro.harness.store.job_key` and both modes share cache
    #: entries.
    stream: bool = False


@dataclass(frozen=True)
class ExecutionPlan:
    """A validated, ordered set of jobs."""

    jobs: tuple[Job, ...]

    def __len__(self) -> int:
        return len(self.jobs)


def validate_names(kernels: tuple[str, ...],
                   studies: tuple[str, ...]) -> None:
    """Raise :class:`KernelError` on unknown kernel or study names."""
    for study in studies:
        create_study(study)  # raises KernelError on unknown studies
    for name in kernels:
        if name not in KERNEL_REGISTRY:
            known = ", ".join(sorted(KERNEL_REGISTRY))
            raise KernelError(f"unknown kernel {name!r}; known: {known}")


def compile_plan(
    kernels: tuple[str, ...],
    studies: tuple[str, ...] = ("timing",),
    scale: float = 1.0,
    seed: int = 0,
    cache_config: CacheConfig = MACHINE_B,
    scenario: str = "default",
    stream: bool = False,
    backend: str | None = None,
) -> ExecutionPlan:
    """Compile one job per kernel, validating names before any runs.

    *backend* of ``None`` resolves to each kernel's default; an explicit
    backend must be supported by every requested kernel (a clear
    :class:`KernelError` otherwise), so a mixed-capability suite request
    fails at compile time, not mid-run.
    """
    validate_names(tuple(kernels), tuple(studies))
    scenario_spec(scenario, scale=scale, seed=seed)  # unknown scenario raises
    return ExecutionPlan(
        jobs=tuple(
            Job(
                kernel=name,
                studies=tuple(studies),
                scale=scale,
                seed=seed,
                cache_config=cache_config,
                scenario=scenario,
                backend=resolve_backend(name, backend),
                stream=stream,
            )
            for name in kernels
        )
    )


def _failure_report(job: Job, error: str) -> KernelReport:
    return KernelReport(
        kernel=job.kernel,
        error=error,
        scale=job.scale,
        seed=job.seed,
        machine=job.cache_config.name,
        scenario=job.scenario,
        backend=job.backend,
    )


def _execute_job(job: Job) -> KernelReport:
    """Run one job, catching kernel failures into the report (which
    still carries the elapsed wall time up to the failure)."""
    started = time.monotonic()
    try:
        with streaming_mode(job.stream):
            report = run_kernel_studies(
                job.kernel,
                studies=job.studies,
                scale=job.scale,
                seed=job.seed,
                cache_config=job.cache_config,
                scenario=job.scenario,
                backend=job.backend or None,
            )
    except Exception as error:  # noqa: BLE001 — isolate per-kernel failures
        report = _failure_report(job, f"{type(error).__name__}: {error}")
        report.wall_seconds = time.monotonic() - started
        return report
    if job.trace is not None and report.spans:
        annotate_records(report.spans, job.trace)
    return report


#: Per-worker span spool cap (bytes); REPRO_SPAN_SPOOL_MAX_BYTES overrides.
DEFAULT_SPOOL_MAX_BYTES = 16 * 1024 * 1024


def _spool_max_bytes() -> int:
    raw = os.environ.get("REPRO_SPAN_SPOOL_MAX_BYTES", "")
    try:
        return int(raw) if raw else DEFAULT_SPOOL_MAX_BYTES
    except ValueError:
        return DEFAULT_SPOOL_MAX_BYTES


def _spool_writer(path: Path, max_bytes: "int | None" = None):
    """An ``on_finish`` hook appending each record as one JSON line.

    Opened per record on purpose: the worker may be terminated at any
    moment, and a line-buffered append is the crash-safe spool the
    parent reads partial spans back from.

    The spool is bounded (*max_bytes*, default
    :data:`DEFAULT_SPOOL_MAX_BYTES` or ``REPRO_SPAN_SPOOL_MAX_BYTES``):
    a pathological run emitting millions of spans cannot fill the disk.
    Records past the cap are dropped from the spool only — they stay in
    the tracer's in-memory list and still ship back with a successful
    report — and counted in the worker's registry as
    ``executor.spool_dropped_spans``.
    """
    limit = _spool_max_bytes() if max_bytes is None else max_bytes
    written = 0

    def on_finish(record: dict) -> None:
        nonlocal written
        line = json.dumps(record) + "\n"
        if written + len(line) > limit:
            obs_metrics.counter("executor.spool_dropped_spans").inc()
            return
        written += len(line)
        with path.open("a") as spool:
            spool.write(line)

    return on_finish


def _read_spool(path: Path) -> list[dict]:
    """Recover span records from a worker's spool file (tolerating a
    torn final line from a terminated worker)."""
    try:
        text = path.read_text()
    except OSError:
        return []
    records = []
    for line in text.splitlines():
        try:
            records.append(json.loads(line))
        except ValueError:
            continue  # torn write at termination
    return records


def _job_worker(job: Job, conn, spool_path: str) -> None:
    """Process entry point: run the job under its own tracer and
    metrics registry and ship the report back.

    Every finished span is also spooled to *spool_path* so the parent
    can recover partial spans when this process is terminated (timeout)
    or dies before reporting.
    """
    tracer = Tracer(on_finish=_spool_writer(Path(spool_path)),
                    context=job.trace)
    registry = obs_metrics.MetricsRegistry()
    try:
        with trace.use(tracer), obs_metrics.use(registry):
            report = _execute_job(job)
        # Failure reports from _execute_job bypass run_kernel_studies'
        # span/metric capture; attach what the worker did record.
        if not report.spans:
            report.spans = tracer.records()
        if not report.metrics:
            report.metrics = registry.as_dict()
        conn.send(report)
    finally:
        conn.close()


def _mp_context():
    """Prefer fork (kernels registered at runtime stay visible in the
    children); fall back to the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


@dataclass
class _Running:
    index: int
    job: Job
    process: multiprocessing.Process
    deadline: float | None
    started: float  # monotonic launch time (elapsed-wall accounting)
    started_pc: float  # perf_counter launch time (tracer timebase)
    queue_wait: float  # seconds the job sat queued before launch
    spool_path: Path


def _record_job(entry: _Running, report: KernelReport, elapsed: float) -> None:
    """Fold job-lifecycle observability into *report* and the parent's
    ambient tracer/metrics: queue-wait and wall gauges, an outcome
    counter, and executor spans when a real tracer is installed."""
    outcome = "ok" if report.error is None else "error"
    lifecycle = obs_metrics.MetricsRegistry()
    lifecycle.counter(
        "executor.jobs", kernel=entry.job.kernel, outcome=outcome
    ).inc()
    lifecycle.gauge(
        "executor.queue_wait_seconds", kernel=entry.job.kernel
    ).set(entry.queue_wait)
    lifecycle.gauge(
        "executor.wall_seconds", kernel=entry.job.kernel
    ).set(elapsed)
    lifecycle.histogram("executor.queue_wait_seconds").observe(entry.queue_wait)
    exported = lifecycle.as_dict()
    report.metrics = (
        obs_metrics.merge(report.metrics, exported)
        if report.metrics else exported
    )
    obs_metrics.current_registry().merge_dict(exported)

    tracer = trace.current_tracer()
    if tracer is not NULL_TRACER:
        trace_id = entry.job.trace.trace_id if entry.job.trace else None
        if entry.queue_wait > 0:
            tracer.add_record(
                f"executor/queue-wait/{entry.job.kernel}",
                entry.started_pc - entry.queue_wait,
                entry.queue_wait,
                trace=trace_id,
            )
        tracer.add_record(
            f"executor/job/{entry.job.kernel}",
            entry.started_pc,
            elapsed,
            {"outcome": outcome},
            trace=trace_id,
        )


def _prebuild_datasets(pending: list[Job]) -> None:
    """Build (or load) each distinct corpus once in the parent before
    the pool forks: workers inherit the in-memory corpus (and find the
    disk artifact), so N workers never race one cold build — the store's
    lock makes such races correct, but serial-build-then-fork is faster
    and keeps worker wall times comparable."""
    specs = {}
    for job in pending:
        spec = scenario_spec(job.scenario, scale=job.scale, seed=job.seed)
        specs.setdefault(spec.digest(), spec)
    for spec in specs.values():
        ensure_corpus(spec)


def _execute_pool(
    jobs: list[Job], workers: int, timeout: float | None,
    spool_dir: "str | Path | None" = None,
) -> list[KernelReport]:
    """Run *jobs* over *workers* processes with per-job deadlines.

    *spool_dir* overrides the per-pool temporary span-spool directory
    (tests point it somewhere inspectable).  Spool files are unlinked
    as each job finishes — once the spans are shipped back (or
    recovered for a failed job) the spool has served its purpose.
    """
    ctx = _mp_context()
    queue: deque[tuple[int, Job]] = deque(enumerate(jobs))
    running: dict[multiprocessing.connection.Connection, _Running] = {}
    results: list[KernelReport | None] = [None] * len(jobs)
    pool_start = time.monotonic()

    def finish(conn, report: KernelReport, terminate: bool = False) -> None:
        entry = running.pop(conn)
        if terminate:
            entry.process.terminate()
        entry.process.join(timeout=5)
        conn.close()
        elapsed = time.monotonic() - entry.started
        if report.error is not None:
            # A timed-out / crashed / raising job still spent real wall
            # time; report it, plus whatever spans hit the spool before
            # the worker went away.
            if report.wall_seconds == 0.0:
                report.wall_seconds = elapsed
            if not report.spans:
                report.spans = _read_spool(entry.spool_path)
        _record_job(entry, report, elapsed)
        entry.spool_path.unlink(missing_ok=True)
        results[entry.index] = report

    owned_dir = None
    if spool_dir is None:
        owned_dir = tempfile.TemporaryDirectory(prefix="repro-spans-")
        spool_root = Path(owned_dir.name)
    else:
        spool_root = Path(spool_dir)
        spool_root.mkdir(parents=True, exist_ok=True)
    try:
        try:
            while queue or running:
                while queue and len(running) < workers:
                    index, job = queue.popleft()
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    spool_path = spool_root / f"job-{index}.jsonl"
                    process = ctx.Process(
                        target=_job_worker,
                        args=(job, child_conn, str(spool_path)),
                        daemon=True,
                    )
                    process.start()
                    child_conn.close()
                    launched = time.monotonic()
                    running[parent_conn] = _Running(
                        index=index,
                        job=job,
                        process=process,
                        deadline=launched + timeout if timeout else None,
                        started=launched,
                        started_pc=time.perf_counter(),
                        queue_wait=launched - pool_start,
                        spool_path=spool_path,
                    )
                ready = multiprocessing.connection.wait(
                    list(running), timeout=0.05
                )
                for conn in ready:
                    entry = running[conn]
                    try:
                        report = conn.recv()
                    except EOFError:
                        # The worker died without reporting (hard crash).
                        code = entry.process.exitcode
                        report = _failure_report(
                            entry.job, f"WorkerDied: exit code {code}"
                        )
                    finish(conn, report)
                now = time.monotonic()
                for conn, entry in list(running.items()):
                    if entry.deadline is not None and now > entry.deadline:
                        finish(
                            conn,
                            _failure_report(
                                entry.job, f"Timeout: exceeded {timeout:g}s"
                            ),
                            terminate=True,
                        )
        finally:
            for conn, entry in list(running.items()):
                entry.process.terminate()
                entry.process.join(timeout=5)
                conn.close()
    finally:
        if owned_dir is not None:
            owned_dir.cleanup()
    return [report for report in results if report is not None]


#: How a :class:`JobOutcome`'s report was produced.
EXECUTED, CACHED = "executed", "cached"


@dataclass(frozen=True)
class JobOutcome:
    """One job's result plus where it came from (fresh run or cache).

    ``execute_jobs`` returns these in submission order, so grids that
    run the same kernel many times (one per scenario cell — the sweep
    driver's shape) keep every report; ``execute_plan``'s kernel-keyed
    dict view is derived from them.
    """

    job: Job
    report: KernelReport
    origin: str = EXECUTED


def execute_jobs(
    jobs: "list[Job] | tuple[Job, ...]",
    workers: int = 1,
    timeout: float | None = None,
    reuse: bool = False,
    store: ResultStore | None = None,
) -> list[JobOutcome]:
    """Execute *jobs* and return one :class:`JobOutcome` per job, in
    order.

    With ``reuse=True`` cached reports are served without executing the
    kernel (``origin == "cached"``) and fresh successful reports are
    written back to *store* (default: the shared
    ``benchmarks/results/cache/`` store).  Timeouts require process
    isolation and are enforced only when ``workers > 1``.
    """
    if workers < 1:
        raise KernelError("workers must be >= 1")
    if reuse and store is None:
        store = default_result_store()

    outcomes: list[JobOutcome | None] = [None] * len(jobs)
    pending: list[tuple[int, Job]] = []
    for index, job in enumerate(jobs):
        cached = store.load(job) if reuse and store is not None else None
        if cached is not None:
            outcomes[index] = JobOutcome(job=job, report=cached,
                                         origin=CACHED)
        else:
            pending.append((index, job))

    pending_jobs = [job for _, job in pending]
    if workers == 1:
        executed = [_execute_job(job) for job in pending_jobs]
    else:
        if len(pending_jobs) > 1:
            _prebuild_datasets(pending_jobs)
        executed = _execute_pool(pending_jobs, workers=workers,
                                 timeout=timeout)

    for (index, job), report in zip(pending, executed):
        if reuse and store is not None:
            store.save(job, report)
        outcomes[index] = JobOutcome(job=job, report=report, origin=EXECUTED)
    return [outcome for outcome in outcomes if outcome is not None]


def execute_plan(
    plan: ExecutionPlan,
    jobs: int = 1,
    timeout: float | None = None,
    reuse: bool = False,
    store: ResultStore | None = None,
) -> dict[str, KernelReport]:
    """Execute *plan* and return reports keyed by kernel, in plan order.

    The kernel-keyed view suits single-scenario suites (one job per
    kernel); grids with repeated kernels should call
    :func:`execute_jobs` for the full per-job outcome list.
    """
    outcomes = execute_jobs(plan.jobs, workers=jobs, timeout=timeout,
                            reuse=reuse, store=store)
    reports = {outcome.job.kernel: outcome.report for outcome in outcomes}
    return {job.kernel: reports[job.kernel] for job in plan.jobs}
