"""The suite engine (the ``mainRun.py`` analog): studies, executor, store."""

from repro.harness.executor import (
    ExecutionPlan,
    Job,
    compile_plan,
    execute_plan,
)
from repro.harness.runner import (
    ALL_STUDIES,
    SCHEMA_VERSION,
    KernelReport,
    load_reports,
    run_kernel_studies,
    run_suite,
    save_reports,
)
from repro.harness.store import ResultStore, default_result_store, job_digest
from repro.harness.studies import (
    STUDY_REGISTRY,
    Study,
    create_study,
    register_study,
    study_names,
)

__all__ = [
    "ALL_STUDIES", "SCHEMA_VERSION", "KernelReport", "load_reports",
    "run_kernel_studies", "run_suite", "save_reports",
    "ExecutionPlan", "Job", "compile_plan", "execute_plan",
    "ResultStore", "default_result_store", "job_digest",
    "STUDY_REGISTRY", "Study", "create_study", "register_study",
    "study_names",
]
