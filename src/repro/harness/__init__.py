"""Suite runner (the ``mainRun.py`` analog)."""

from repro.harness.runner import (
    ALL_STUDIES,
    KernelReport,
    load_reports,
    run_kernel_studies,
    run_suite,
    save_reports,
)

__all__ = [
    "ALL_STUDIES", "KernelReport", "load_reports", "run_kernel_studies",
    "run_suite", "save_reports",
]
