"""The study plugin layer of the harness engine.

The paper characterizes every kernel under a fixed set of *studies*
(timing, top-down, cache, instruction mix, validation, GPU utilization).
Here each study is a :class:`Study` subclass in ``STUDY_REGISTRY`` —
mirroring ``KERNEL_REGISTRY`` — so the engine in
:mod:`repro.harness.runner` never switches on study names: it executes
the kernel (traced if any requested study needs the event stream) and
hands each study the shared ``(kernel, result, summary, report)`` to
fill in its slice of the :class:`~repro.harness.runner.KernelReport`.

Adding a study is one registered subclass:

>>> from repro.harness.studies import Study, register_study
>>> @register_study
... class RateStudy(Study):
...     name = "rate"
...     def collect(self, kernel, result, summary, report):
...         report.work["inputs_per_second"] = result.rate()

Studies sharing a traced execution share *one* kernel run: requesting
``("timing", "topdown", "cache")`` executes the kernel once under a
:class:`~repro.uarch.machine.TraceMachine` instead of the old harness's
separate timing and characterization runs.  Wall-clock measured under a
trace therefore includes instrumentation overhead; run ``timing`` alone
when clean wall times matter (the benches do).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import KernelError
from repro.uarch.topdown import analyze

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.harness.runner import KernelReport
    from repro.kernels.base import Kernel, KernelResult
    from repro.uarch.machine import MachineSummary


class Study:
    """One characterization study; subclasses register via
    :func:`register_study`.

    Class attributes declare what the engine must provide:

    * ``requires_run`` — the kernel must be executed (``validate`` is the
      one study that only needs the kernel object);
    * ``requires_trace`` — the execution must run under a
      :class:`~repro.uarch.machine.TraceMachine` so ``summary`` is
      available.
    """

    name: str = ""
    requires_run: bool = True
    requires_trace: bool = False

    def collect(
        self,
        kernel: "Kernel",
        result: "KernelResult | None",
        summary: "MachineSummary | None",
        report: "KernelReport",
    ) -> None:
        """Fill this study's fields of *report*.

        *result* is ``None`` unless some requested study set
        ``requires_run``; *summary* is ``None`` unless some requested
        study set ``requires_trace``.
        """
        raise NotImplementedError


#: name -> factory () -> Study, in registration order (display order).
STUDY_REGISTRY: dict[str, Callable[[], Study]] = {}


def register_study(cls: type[Study]) -> type[Study]:
    """Class decorator adding a study to the registry."""
    if not cls.name:
        raise KernelError(f"{cls.__name__} has no study name")
    if cls.name in STUDY_REGISTRY:
        raise KernelError(f"duplicate study name {cls.name!r}")
    STUDY_REGISTRY[cls.name] = cls
    return cls


def create_study(name: str) -> Study:
    """Instantiate a registered study by name."""
    try:
        factory = STUDY_REGISTRY[name]
    except KeyError:
        known = ", ".join(STUDY_REGISTRY)
        raise KernelError(f"unknown study {name!r}; known: {known}") from None
    return factory()


def study_names() -> tuple[str, ...]:
    """All registered study names, in registration order."""
    return tuple(STUDY_REGISTRY)


@register_study
class TimingStudy(Study):
    """Wall-clock timing (Table 4); work counters come with every run."""

    name = "timing"

    def collect(self, kernel, result, summary, report):
        report.wall_seconds = result.wall_seconds


@register_study
class TopdownStudy(Study):
    """Figure 6 top-down slot attribution + Table 6 IPC."""

    name = "topdown"
    requires_trace = True

    def collect(self, kernel, result, summary, report):
        if summary.instructions:
            topdown = analyze(summary)
            report.topdown = topdown.as_dict()
            report.ipc = topdown.ipc


@register_study
class CacheStudy(Study):
    """Figure 7 exclusive misses per kilo-instruction."""

    name = "cache"
    requires_trace = True

    def collect(self, kernel, result, summary, report):
        if summary.instructions:
            report.mpki = summary.mpki()


@register_study
class InstMixStudy(Study):
    """Figure 8 hierarchical instruction-class fractions."""

    name = "instmix"
    requires_trace = True

    def collect(self, kernel, result, summary, report):
        if summary.instructions:
            report.instruction_mix = summary.instruction_mix()


@register_study
class ValidateStudy(Study):
    """The kernel's oracle self-check; raises on failure."""

    name = "validate"
    requires_run = False

    def collect(self, kernel, result, summary, report):
        kernel.validate()
        report.validated = True


#: Work-counter keys the SIMT simulator emits (Table 7 / Figure 9
#: metrics); kernels running on :mod:`repro.gpu` report these in
#: ``KernelResult.work``.
GPU_METRIC_KEYS = (
    "gpu_time_ms",
    "theoretical_occupancy",
    "achieved_occupancy",
    "warp_utilization",
    "memory_bw_utilization",
    "single_lane_extend_fraction",
)


@register_study
class GpuStudy(Study):
    """Table 7 GPU utilization: surface the SIMT counters the old runner
    ignored (GPU kernels emit no CPU events, so the trace studies skip
    them; their profile lives in the work counters)."""

    name = "gpu"

    def collect(self, kernel, result, summary, report):
        report.gpu = {
            key: result.work[key] for key in GPU_METRIC_KEYS if key in result.work
        }
