"""Command-line entry point — the suite's ``mainRun.py``.

Examples::

    python -m repro list
    python -m repro run gssw gbwt --studies timing topdown
    python -m repro run tc --studies timing,validate
    python -m repro run --kernels gssw gbwt --scale 0.5 --out reports.json
    python -m repro validate
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.report import render_table
from repro.harness.runner import ALL_STUDIES, run_suite, save_reports
from repro.kernels import SUITE_KERNELS, create_kernel, kernel_names


def _study_list(value: str) -> list[str]:
    """One ``--studies`` token: a study name or a comma-joined list."""
    studies = [item for item in value.split(",") if item]
    for study in studies:
        if study not in ALL_STUDIES:
            raise argparse.ArgumentTypeError(
                f"invalid study {study!r} (choose from {', '.join(ALL_STUDIES)})"
            )
    return studies


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PangenomicsBench reproduction: run and characterize kernels",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the registered kernels")

    run = commands.add_parser("run", help="run kernels under selected studies")
    run.add_argument(
        "kernels", nargs="*", metavar="KERNEL",
        help="kernel names (default: the eight suite kernels)",
    )
    run.add_argument(
        "--kernels", dest="kernels_opt", nargs="+", default=None,
        metavar="KERNEL", help="kernel names (same as the positionals)",
    )
    run.add_argument(
        "--studies", nargs="+", default=[["timing"]], type=_study_list,
        metavar="STUDY",
        help="studies to run, space- or comma-separated "
             f"(default: timing; choices: {', '.join(ALL_STUDIES)})",
    )
    run.add_argument("--scale", type=float, default=1.0,
                     help="dataset scale factor (default 1.0)")
    run.add_argument("--seed", type=int, default=0, help="dataset seed")
    run.add_argument("--out", default=None,
                     help="write JSON reports to this path")

    validate = commands.add_parser(
        "validate", help="run every kernel's oracle self-check"
    )
    validate.add_argument("--kernels", nargs="+", default=None)
    validate.add_argument("--scale", type=float, default=0.5)
    validate.add_argument("--seed", type=int, default=0)
    return parser


def _command_list() -> int:
    rows = []
    for name in kernel_names():
        kernel = create_kernel(name)
        rows.append([name, kernel.parent_tool, kernel.input_type])
    print(render_table(["kernel", "parent tool", "input type"], rows,
                       title="Registered kernels"))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    kernels = list(args.kernels) + list(args.kernels_opt or [])
    if not kernels:
        kernels = list(SUITE_KERNELS)
    studies = [study for token in args.studies for study in token]
    reports = run_suite(
        tuple(kernels), studies=tuple(studies),
        scale=args.scale, seed=args.seed,
    )
    rows = []
    for name, report in reports.items():
        rows.append([
            name,
            report.inputs_processed,
            f"{report.wall_seconds:.3f}",
            f"{report.ipc:.2f}" if report.ipc else "-",
            (max(report.topdown, key=report.topdown.get)
             if report.topdown else "-"),
            "ok" if report.validated else "-",
        ])
    print(render_table(
        ["kernel", "#inputs", "seconds", "IPC", "top slot", "validated"],
        rows, title=f"Suite run (scale={args.scale}, studies={studies})",
    ))
    if args.out:
        save_reports(reports, args.out)
        print(f"\nreports written to {args.out}")
    return 0


def _command_validate(args: argparse.Namespace) -> int:
    names = args.kernels or kernel_names()
    failures = 0
    for name in names:
        kernel = create_kernel(name, scale=args.scale, seed=args.seed)
        try:
            kernel.validate()
            print(f"{name:10s} ok")
        except Exception as error:  # noqa: BLE001 — report and continue
            failures += 1
            print(f"{name:10s} FAILED: {error}")
    return 1 if failures else 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "validate":
        return _command_validate(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
