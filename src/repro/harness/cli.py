"""Command-line entry point — the suite's ``mainRun.py``.

Examples::

    python -m repro list
    python -m repro run gssw gbwt --studies timing topdown
    python -m repro run tc --studies timing,validate --jobs 2
    python -m repro run tsu --studies gpu
    python -m repro run --kernels gssw gbwt --scale 0.5 --out reports.json
    python -m repro run --machine A --reuse
    python -m repro validate
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.report import render_table
from repro.harness.runner import run_suite, save_reports
from repro.harness.studies import study_names
from repro.kernels import SUITE_KERNELS, create_kernel, kernel_names
from repro.uarch.cache import MACHINE_A, MACHINE_B

#: ``--machine`` choices (the paper's Table 5 machines).
MACHINES = {"A": MACHINE_A, "B": MACHINE_B}


def _study_list(value: str) -> list[str]:
    """One ``--studies`` token: a study name or a comma-joined list."""
    studies = [item for item in value.split(",") if item]
    known = study_names()
    for study in studies:
        if study not in known:
            raise argparse.ArgumentTypeError(
                f"invalid study {study!r} (choose from {', '.join(known)})"
            )
    return studies


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PangenomicsBench reproduction: run and characterize kernels",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the registered kernels")

    run = commands.add_parser("run", help="run kernels under selected studies")
    run.add_argument(
        "kernels", nargs="*", metavar="KERNEL",
        help="kernel names (default: the eight suite kernels)",
    )
    run.add_argument(
        "--kernels", dest="kernels_opt", nargs="+", default=None,
        metavar="KERNEL", help="kernel names (same as the positionals)",
    )
    run.add_argument(
        "--studies", nargs="+", default=[["timing"]], type=_study_list,
        metavar="STUDY",
        help="studies to run, space- or comma-separated "
             f"(default: timing; choices: {', '.join(study_names())})",
    )
    run.add_argument("--scale", type=float, default=1.0,
                     help="dataset scale factor (default 1.0)")
    run.add_argument("--seed", type=int, default=0, help="dataset seed")
    run.add_argument(
        "--machine", choices=sorted(MACHINES), default="B",
        help="cache-hierarchy configuration for the trace studies "
             "(paper Table 5; default: B, the kernel-analysis machine)",
    )
    run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1: serial, deterministic; N>1 "
             "runs kernels in parallel with per-kernel failure isolation)",
    )
    run.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-kernel time limit (enforced when --jobs > 1)",
    )
    run.add_argument(
        "--reuse", action="store_true",
        help="serve cache hits from benchmarks/results/cache/ and write "
             "fresh reports back",
    )
    run.add_argument("--out", default=None,
                     help="write JSON reports to this path")

    validate = commands.add_parser(
        "validate", help="run every kernel's oracle self-check"
    )
    validate.add_argument("--kernels", nargs="+", default=None)
    validate.add_argument("--scale", type=float, default=0.5)
    validate.add_argument("--seed", type=int, default=0)
    return parser


def _command_list() -> int:
    rows = []
    for name in kernel_names():
        kernel = create_kernel(name)
        rows.append([name, kernel.parent_tool, kernel.input_type])
    print(render_table(["kernel", "parent tool", "input type"], rows,
                       title="Registered kernels"))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    kernels = list(args.kernels) + list(args.kernels_opt or [])
    if not kernels:
        kernels = list(SUITE_KERNELS)
    studies = [study for token in args.studies for study in token]
    reports = run_suite(
        tuple(kernels), studies=tuple(studies),
        scale=args.scale, seed=args.seed,
        cache_config=MACHINES[args.machine],
        jobs=args.jobs, timeout=args.timeout, reuse=args.reuse,
    )
    rows = []
    for name, report in reports.items():
        rows.append([
            name,
            report.inputs_processed,
            f"{report.wall_seconds:.3f}",
            f"{report.ipc:.2f}" if report.ipc else "-",
            (max(report.topdown, key=report.topdown.get)
             if report.topdown else "-"),
            "ok" if report.validated else "-",
            report.error or "-",
        ])
    print(render_table(
        ["kernel", "#inputs", "seconds", "IPC", "top slot", "validated",
         "error"],
        rows,
        title=(f"Suite run (scale={args.scale}, machine={args.machine}, "
               f"studies={studies})"),
    ))
    if args.out:
        save_reports(reports, args.out)
        print(f"\nreports written to {args.out}")
    failures = [name for name, report in reports.items() if report.error]
    if failures:
        print(f"\n{len(failures)} kernel(s) failed: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


def _command_validate(args: argparse.Namespace) -> int:
    names = args.kernels or kernel_names()
    failures = 0
    for name in names:
        kernel = create_kernel(name, scale=args.scale, seed=args.seed)
        try:
            kernel.validate()
            print(f"{name:10s} ok")
        except Exception as error:  # noqa: BLE001 — report and continue
            failures += 1
            print(f"{name:10s} FAILED: {error}")
    return 1 if failures else 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "validate":
        return _command_validate(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
