"""Command-line entry point — the suite's ``mainRun.py``.

Examples::

    python -m repro list
    python -m repro run gssw gbwt --studies timing topdown
    python -m repro run tc --studies timing,validate --jobs 2
    python -m repro run tsu --studies gpu
    python -m repro run --kernels gssw gbwt --scale 0.5 --out reports.json
    python -m repro run --machine A --reuse
    python -m repro run tc gcsa --trace-out suite.trace.json
    python -m repro run gssw gbwt --scenario divergent
    python -m repro trace tc --trace-out tc.trace.json
    python -m repro validate
    python -m repro data build --scenario default divergent
    python -m repro data list
    python -m repro data gc
    python -m repro serve submit tsu tsu gbwt --scale 0.25
    python -m repro serve bench --requests 500
    python -m repro serve up --kernels tsu --telemetry-port 8123
    python -m repro serve status --url http://127.0.0.1:8123
    python -m repro serve trace tsu --scale 0.1 --out tsu.trace.json
    python -m repro obs export --reports reports.json
    python -m repro obs check
    python -m repro cache list
    python -m repro cache gc --max-bytes 50000000
    python -m repro sweep expand --manifest matrix
    python -m repro sweep run --manifest matrix --kernels tsu,gbwt --scale 0.25
    python -m repro sweep report --dir benchmarks/results/sweep
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import nullcontext as _null_context
from pathlib import Path
from typing import Sequence

from repro.analysis.report import render_table
from repro.data import (
    default_store,
    ensure_corpus,
    scenario_names,
    scenario_spec,
)
from repro.errors import ReproError
from repro.harness.runner import run_kernel_studies, run_suite, save_reports
from repro.harness.studies import study_names
from repro.kernels import (
    BACKENDS,
    SUITE_KERNELS,
    create_kernel,
    kernel_names,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.obs.spans import (
    Tracer,
    merge_records,
    render_tree,
    write_chrome_trace,
)
from repro.uarch.cache import MACHINE_A, MACHINE_B

#: ``--machine`` choices (the paper's Table 5 machines).
MACHINES = {"A": MACHINE_A, "B": MACHINE_B}


def _name_list(value: str) -> list[str]:
    """One token that may be a comma-joined list of names."""
    return [item for item in value.split(",") if item]


def _study_list(value: str) -> list[str]:
    """One ``--studies`` token: a study name or a comma-joined list."""
    studies = [item for item in value.split(",") if item]
    known = study_names()
    for study in studies:
        if study not in known:
            raise argparse.ArgumentTypeError(
                f"invalid study {study!r} (choose from {', '.join(known)})"
            )
    return studies


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PangenomicsBench reproduction: run and characterize kernels",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the registered kernels")

    run = commands.add_parser("run", help="run kernels under selected studies")
    run.add_argument(
        "kernels", nargs="*", metavar="KERNEL",
        help="kernel names (default: the eight suite kernels)",
    )
    run.add_argument(
        "--kernels", dest="kernels_opt", nargs="+", default=None,
        metavar="KERNEL", help="kernel names (same as the positionals)",
    )
    run.add_argument(
        "--studies", nargs="+", default=[["timing"]], type=_study_list,
        metavar="STUDY",
        help="studies to run, space- or comma-separated "
             f"(default: timing; choices: {', '.join(study_names())})",
    )
    run.add_argument("--scale", type=float, default=1.0,
                     help="dataset scale factor (default 1.0)")
    run.add_argument("--seed", type=int, default=0, help="dataset seed")
    run.add_argument(
        "--scenario", choices=scenario_names(), default="default",
        help="named dataset scenario every kernel prepares on "
             "(default: default)",
    )
    run.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="execution backend to run the kernels on (default: each "
             "kernel's own default; a kernel that does not implement "
             "the backend fails at compile time)",
    )
    run.add_argument(
        "--machine", choices=sorted(MACHINES), default="B",
        help="cache-hierarchy configuration for the trace studies "
             "(paper Table 5; default: B, the kernel-analysis machine)",
    )
    run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1: serial, deterministic; N>1 "
             "runs kernels in parallel with per-kernel failure isolation)",
    )
    run.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-kernel time limit (enforced when --jobs > 1)",
    )
    run.add_argument(
        "--reuse", action="store_true",
        help="serve cache hits from benchmarks/results/cache/ and write "
             "fresh reports back",
    )
    run.add_argument(
        "--stream", action="store_true",
        help="bounded-memory mode: derive kernel inputs in chunks "
             "through the artifact store instead of materializing them "
             "(identical reports; use at large --scale)",
    )
    run.add_argument("--out", default=None,
                     help="write JSON reports to this path")
    run.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="trace the run and write a Chrome trace-event JSON file "
             "(open in https://ui.perfetto.dev)",
    )

    tracecmd = commands.add_parser(
        "trace",
        help="trace one kernel: span tree, per-phase top-down, Chrome trace",
    )
    tracecmd.add_argument("kernel", metavar="KERNEL", help="kernel to trace")
    tracecmd.add_argument("--scale", type=float, default=1.0,
                          help="dataset scale factor (default 1.0)")
    tracecmd.add_argument("--seed", type=int, default=0, help="dataset seed")
    tracecmd.add_argument(
        "--scenario", choices=scenario_names(), default="default",
        help="named dataset scenario (default: default)",
    )
    tracecmd.add_argument(
        "--machine", choices=sorted(MACHINES), default="B",
        help="cache-hierarchy configuration (default B)",
    )
    tracecmd.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="also write the spans as a Chrome trace-event JSON file",
    )

    validate = commands.add_parser(
        "validate", help="run every kernel's oracle self-check"
    )
    validate.add_argument("--kernels", nargs="+", default=None)
    validate.add_argument("--scale", type=float, default=0.5)
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument(
        "--scenario", choices=scenario_names(), default="default",
        help="named dataset scenario (default: default)",
    )

    data = commands.add_parser(
        "data", help="inspect and manage the shared dataset store"
    )
    data_commands = data.add_subparsers(dest="data_command", required=True)
    data_list = data_commands.add_parser(
        "list", help="list corpora in the artifact store"
    )
    del data_list  # no options yet
    data_build = data_commands.add_parser(
        "build", help="pre-build (or warm-load) scenario corpora"
    )
    data_build.add_argument(
        "--scenario", nargs="+", choices=scenario_names(),
        default=["default"], metavar="SCENARIO",
        help="scenarios to build (default: default)",
    )
    data_build.add_argument("--scale", type=float, default=1.0,
                            help="dataset scale factor (default 1.0)")
    data_build.add_argument("--seed", type=int, default=0,
                            help="dataset seed")
    data_gc = data_commands.add_parser(
        "gc", help="remove stale artifacts (different generator version)"
    )
    data_gc.add_argument(
        "--all", action="store_true",
        help="remove every artifact, current ones included",
    )

    serve = commands.add_parser(
        "serve",
        help="benchmark-as-a-service: submit requests / run a load replay",
    )
    serve_commands = serve.add_subparsers(dest="serve_command", required=True)
    submit = serve_commands.add_parser(
        "submit",
        help="start a service, submit requests (duplicates coalesce), "
             "wait, and print per-request origins",
    )
    submit.add_argument(
        "kernels", nargs="+", metavar="KERNEL",
        help="one request per name; repeat a name to submit duplicates",
    )
    submit.add_argument(
        "--studies", nargs="+", default=[["timing"]], type=_study_list,
        metavar="STUDY", help="studies per request (default: timing)",
    )
    submit.add_argument("--scale", type=float, default=1.0)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument(
        "--scenario", choices=scenario_names(), default="default",
    )
    submit.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="execution backend for every request (default: each "
             "kernel's own default); joins the job digest, so the same "
             "kernel on two backends neither coalesces nor shares a "
             "cache entry",
    )
    submit.add_argument("--machine", choices=sorted(MACHINES), default="B")
    submit.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="service worker threads (default 2)",
    )
    submit.add_argument(
        "--queue-limit", type=int, default=64, metavar="N",
        help="admission-control high-water mark (default 64)",
    )
    submit.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job limit (enforced under process isolation)",
    )
    submit.add_argument(
        "--isolation", choices=("process", "inline"), default="process",
        help="run each execution in an executor worker process "
             "(default) or inline on the service worker thread",
    )
    submit.add_argument(
        "--no-reuse", action="store_true",
        help="skip the shared result cache (still coalesces in-flight "
             "duplicates)",
    )
    submit.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the service metrics dump as JSON",
    )
    submit.add_argument(
        "--telemetry-port", type=int, default=None, metavar="PORT",
        help="expose /metrics,/healthz,/readyz on 127.0.0.1:PORT for "
             "the duration of the run (0 = ephemeral)",
    )

    serve_bench = serve_commands.add_parser(
        "bench",
        help="replay a seeded mixed request trace and report p50/p99 "
             "latency, hit rate and coalesce rate",
    )
    serve_bench.add_argument("--requests", type=int, default=500)
    serve_bench.add_argument("--seed", type=int, default=0)
    serve_bench.add_argument("--scale", type=float, default=0.05)
    serve_bench.add_argument("--workers", type=int, default=4)
    serve_bench.add_argument(
        "--queue-limit", type=int, default=32,
        help="admission-control high-water mark (default 32; small "
             "enough that backpressure is exercised)",
    )
    serve_bench.add_argument(
        "--isolation", choices=("process", "inline"), default="process",
    )
    serve_bench.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-store root for the replay (default: a fresh "
             "temporary directory, so rates are measured from cold)",
    )
    serve_bench.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the service metrics dump as JSON",
    )
    serve_bench.add_argument(
        "--telemetry-port", type=int, default=None, metavar="PORT",
        help="expose /metrics,/healthz,/readyz on 127.0.0.1:PORT during "
             "the replay (0 = ephemeral)",
    )

    serve_up = serve_commands.add_parser(
        "up",
        help="hold a service up (with its telemetry endpoint) for a "
             "fixed duration — the CI smoke / manual scrape target",
    )
    serve_up.add_argument(
        "--kernels", nargs="*", default=[], metavar="KERNEL",
        help="requests to submit (and wait for) once the service is up",
    )
    serve_up.add_argument("--scale", type=float, default=0.05)
    serve_up.add_argument("--seed", type=int, default=0)
    serve_up.add_argument(
        "--scenario", choices=scenario_names(), default="default",
    )
    serve_up.add_argument("--machine", choices=sorted(MACHINES),
                          default="B")
    serve_up.add_argument("--workers", type=int, default=2)
    serve_up.add_argument(
        "--isolation", choices=("process", "inline"), default="process",
    )
    serve_up.add_argument(
        "--telemetry-port", type=int, default=0, metavar="PORT",
        help="telemetry endpoint port (default 0: ephemeral, printed)",
    )
    serve_up.add_argument(
        "--duration", type=float, default=60.0, metavar="SECONDS",
        help="how long to keep serving after submissions complete "
             "(default 60; Ctrl-C exits early)",
    )
    serve_up.add_argument(
        "--no-reuse", action="store_true",
        help="skip the shared result cache",
    )

    serve_status = serve_commands.add_parser(
        "status",
        help="query a running service's telemetry endpoint "
             "(/healthz, /readyz, optionally /metrics)",
    )
    serve_status.add_argument(
        "--url", required=True, metavar="URL",
        help="telemetry base URL, e.g. http://127.0.0.1:8123",
    )
    serve_status.add_argument(
        "--metrics", action="store_true",
        help="also print the /metrics text exposition",
    )

    serve_trace = serve_commands.add_parser(
        "trace",
        help="submit one request through a fresh service and emit its "
             "stitched cross-process Chrome trace",
    )
    serve_trace.add_argument("kernel", metavar="KERNEL")
    serve_trace.add_argument("--scale", type=float, default=0.25)
    serve_trace.add_argument("--seed", type=int, default=0)
    serve_trace.add_argument(
        "--scenario", choices=scenario_names(), default="default",
    )
    serve_trace.add_argument("--machine", choices=sorted(MACHINES),
                             default="B")
    serve_trace.add_argument(
        "--studies", nargs="+", default=[["timing"]], type=_study_list,
        metavar="STUDY", help="studies for the request (default: timing)",
    )
    serve_trace.add_argument(
        "--isolation", choices=("process", "inline"), default="process",
        help="process (default) demonstrates cross-process stitching",
    )
    serve_trace.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
    )
    serve_trace.add_argument(
        "--out", default=None, metavar="PATH",
        help="Chrome trace output path (default: <kernel>.trace.json)",
    )

    obs = commands.add_parser(
        "obs",
        help="telemetry plane: metrics exposition and the "
             "perf-regression sentinel",
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    obs_export = obs_commands.add_parser(
        "export",
        help="render metrics (from saved reports, or the current "
             "process) as Prometheus text or a JSON snapshot",
    )
    obs_export.add_argument(
        "--reports", nargs="+", default=[], metavar="PATH",
        help="saved reports files (repro run --out) whose per-kernel "
             "metrics are merged into the export",
    )
    obs_export.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="Prometheus text exposition (default) or JSON snapshot",
    )
    obs_export.add_argument(
        "--out", default=None, metavar="PATH",
        help="write to this path instead of stdout",
    )
    obs_check = obs_commands.add_parser(
        "check",
        help="the perf-regression sentinel: classify the newest "
             "BENCH_*.json entries against median±MAD baselines "
             "(exit 1 on regression)",
    )
    obs_check.add_argument(
        "--root", default=None, metavar="DIR",
        help="directory holding the BENCH_*.json trajectories "
             "(default: the repo root)",
    )
    obs_check.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="trailing history entries per baseline (default 8)",
    )
    obs_check.add_argument(
        "--candidate", default=None, metavar="REPORTS",
        help="fresh reports file to compare against --baseline "
             "(per-kernel wall seconds and IPC)",
    )
    obs_check.add_argument(
        "--baseline", default=None, metavar="REPORTS",
        help="baseline reports file for --candidate",
    )
    obs_check.add_argument(
        "--out", default="obs_check.json", metavar="PATH",
        help="machine-readable verdict path (default: obs_check.json)",
    )

    cache = commands.add_parser(
        "cache", help="inspect and manage the sharded result store"
    )
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)
    cache_commands.add_parser(
        "list", help="list cached reports (most recent first)"
    )
    cache_gc = cache_commands.add_parser(
        "gc",
        help="drop unservable entries and enforce a byte/entry budget",
    )
    cache_gc.add_argument(
        "--all", action="store_true",
        help="remove every cached report, current ones included",
    )
    cache_gc.add_argument(
        "--max-bytes", type=int, default=None, metavar="BYTES",
        help="evict least-recently-used entries past this byte budget",
    )
    cache_gc.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        help="evict least-recently-used entries past this entry count",
    )

    sweep = commands.add_parser(
        "sweep",
        help="run the scenario matrix: expand a manifest, sweep a "
             "kernel grid over it, aggregate leaderboards",
    )
    sweep_commands = sweep.add_subparsers(dest="sweep_command",
                                          required=True)
    sweep_expand = sweep_commands.add_parser(
        "expand",
        help="expand a manifest and print its cells (no kernels run)",
    )
    sweep_expand.add_argument(
        "--manifest", default="matrix", metavar="NAME_OR_PATH",
        help="manifest name under benchmarks/manifests/ or a TOML path "
             "(default: matrix)",
    )
    sweep_expand.add_argument(
        "--backend", dest="backends", nargs="+", default=None,
        type=_name_list, metavar="BACKEND",
        help="show the grid multiplier a backend axis would add "
             "(space- or comma-separated backend names)",
    )
    sweep_run = sweep_commands.add_parser(
        "run", help="run a kernel × cell × scale grid and save sweep.json"
    )
    sweep_run.add_argument(
        "--manifest", default="matrix", metavar="NAME_OR_PATH",
        help="manifest to sweep (default: matrix)",
    )
    sweep_run.add_argument(
        "--kernels", nargs="+", required=True, type=_name_list,
        metavar="KERNEL",
        help="kernels to grid over, space- or comma-separated",
    )
    sweep_run.add_argument(
        "--cells", nargs="+", default=None, type=_name_list,
        metavar="CELL", help="restrict to these manifest cells",
    )
    sweep_run.add_argument(
        "--studies", nargs="+", default=[["timing"]], type=_study_list,
        metavar="STUDY",
        help="studies per grid point (default: timing; paper-fidelity "
             "cells get their gate studies added automatically)",
    )
    sweep_run.add_argument(
        "--scales", nargs="+", type=float, default=[1.0], metavar="SCALE",
        help="dataset scale factors (default: 1.0)",
    )
    sweep_run.add_argument(
        "--seeds", nargs="+", type=int, default=[0], metavar="SEED",
        help="dataset seeds (default: 0)",
    )
    sweep_run.add_argument(
        "--backend", dest="backends", nargs="+", default=None,
        type=_name_list, metavar="BACKEND",
        help="execution backends to grid over, space- or comma-"
             "separated (default: each kernel's own default backend); "
             "every kernel must support every listed backend",
    )
    sweep_run.add_argument("--machine", choices=sorted(MACHINES),
                           default="B")
    sweep_run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="executor worker processes (default 1)",
    )
    sweep_run.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job time limit (enforced when --jobs > 1)",
    )
    sweep_run.add_argument(
        "--reuse", action="store_true",
        help="serve grid points from the shared result cache and write "
             "fresh reports back",
    )
    sweep_run.add_argument(
        "--dir", default="benchmarks/results/sweep", metavar="DIR",
        help="output directory for sweep.json "
             "(default: benchmarks/results/sweep)",
    )
    sweep_report = sweep_commands.add_parser(
        "report",
        help="aggregate a saved sweep into summary + leaderboard tables",
    )
    sweep_report.add_argument(
        "--dir", default="benchmarks/results/sweep", metavar="DIR",
        help="directory holding sweep.json; tables are written next to "
             "it (default: benchmarks/results/sweep)",
    )
    return parser


def _command_list() -> int:
    rows = []
    for name in kernel_names():
        kernel = create_kernel(name)
        rows.append([name, kernel.parent_tool, kernel.input_type])
    print(render_table(["kernel", "parent tool", "input type"], rows,
                       title="Registered kernels"))
    return 0


#: Series prefix the backend-fallback counter exports under (labels
#: follow in ``{key=value,...}`` form, alphabetical by key).
_FALLBACK_PREFIX = "kernel.backend_fallback{"


def _fallback_warnings(reports: dict) -> list[str]:
    """One warning line per backend downgrade recorded in *reports*.

    A component that cannot honor the requested backend (GSSW's striped
    core rejects scoring with ``gap_open + gap_extend < gap_extend``)
    degrades to a working one and records a ``kernel.backend_fallback``
    counter rather than failing the run; surface that here so the
    degradation is never silent at the CLI.
    """
    lines = []
    for name, report in reports.items():
        for key, count in (report.metrics.get("counters") or {}).items():
            if not key.startswith(_FALLBACK_PREFIX):
                continue
            labels = dict(
                part.split("=", 1)
                for part in key[len(_FALLBACK_PREFIX):-1].split(",")
                if "=" in part
            )
            lines.append(
                f"warning: {name} ({labels.get('component', '?')}): "
                f"backend {labels.get('requested', '?')!r} fell back to "
                f"{labels.get('actual', '?')!r} "
                f"[{labels.get('reason', 'unspecified')}, x{int(count)}]"
            )
    return lines


def _command_run(args: argparse.Namespace) -> int:
    kernels = list(args.kernels) + list(args.kernels_opt or [])
    if not kernels:
        kernels = list(SUITE_KERNELS)
    studies = [study for token in args.studies for study in token]
    tracer = Tracer() if args.trace_out else None
    try:
        with trace.use(tracer) if tracer else _null_context():
            reports = run_suite(
                tuple(kernels), studies=tuple(studies),
                scale=args.scale, seed=args.seed,
                cache_config=MACHINES[args.machine],
                jobs=args.jobs, timeout=args.timeout, reuse=args.reuse,
                scenario=args.scenario, stream=args.stream,
                backend=args.backend,
            )
    except ReproError as error:
        # Compile-time rejections (unknown kernel, unsupported backend)
        # deserve a one-liner, not a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 1
    if tracer is not None:
        # Fold in spans shipped back from worker processes (parallel
        # runs); merge_records drops the parent's own duplicates.
        records = merge_records(
            tracer.records(),
            *(report.spans for report in reports.values()),
        )
        write_chrome_trace(records, args.trace_out)
        print(f"trace written to {args.trace_out}")
    rows = []
    for name, report in reports.items():
        rows.append([
            name,
            report.backend or "-",
            report.inputs_processed,
            f"{report.wall_seconds:.3f}",
            f"{report.ipc:.2f}" if report.ipc else "-",
            (max(report.topdown, key=report.topdown.get)
             if report.topdown else "-"),
            "ok" if report.validated else "-",
            report.error or "-",
        ])
    print(render_table(
        ["kernel", "backend", "#inputs", "seconds", "IPC", "top slot",
         "validated", "error"],
        rows,
        title=(f"Suite run (scale={args.scale}, machine={args.machine}, "
               f"scenario={args.scenario}, studies={studies})"),
    ))
    for warning in _fallback_warnings(reports):
        print(warning, file=sys.stderr)
    if args.out:
        save_reports(reports, args.out)
        print(f"\nreports written to {args.out}")
    failures = [name for name, report in reports.items() if report.error]
    if failures:
        print(f"\n{len(failures)} kernel(s) failed: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


#: Studies the ``trace`` command always runs: timing for wall clock and
#: the three trace studies so the PhaseAttributor has counters to split.
TRACE_STUDIES = ("timing", "topdown", "cache", "instmix")


def _command_trace(args: argparse.Namespace) -> int:
    tracer = Tracer()
    registry = obs_metrics.MetricsRegistry()
    with trace.use(tracer), obs_metrics.use(registry):
        report = run_kernel_studies(
            args.kernel,
            studies=TRACE_STUDIES,
            scale=args.scale,
            seed=args.seed,
            cache_config=MACHINES[args.machine],
            scenario=args.scenario,
        )
    records = tracer.records()
    print(render_tree(
        records,
        title=(f"Span tree: {args.kernel} (scale={args.scale}, "
               f"machine={args.machine})"),
    ))
    if report.phases:
        rows = []
        for name, phase in report.phases.items():
            topdown = phase["topdown"]
            rows.append([
                name,
                phase["instructions"],
                f"{phase['ipc']:.2f}",
                f"{topdown['retiring']:.3f}",
                f"{topdown['frontend_bound']:.3f}",
                f"{topdown['bad_speculation']:.3f}",
                f"{topdown['core_bound']:.3f}",
                f"{topdown['memory_bound']:.3f}",
            ])
        print()
        print(render_table(
            ["phase", "instructions", "IPC", "retiring", "frontend",
             "bad spec", "core", "memory"],
            rows,
            title="Per-phase top-down (exclusive attribution)",
        ))
    if args.trace_out:
        write_chrome_trace(records, args.trace_out)
        print(f"\ntrace written to {args.trace_out} "
              "(open in https://ui.perfetto.dev)")
    return 1 if report.error else 0


def _command_validate(args: argparse.Namespace) -> int:
    names = args.kernels or kernel_names()
    failures = 0
    for name in names:
        kernel = create_kernel(name, scale=args.scale, seed=args.seed,
                               scenario=args.scenario)
        try:
            kernel.validate()
            print(f"{name:10s} ok")
        except Exception as error:  # noqa: BLE001 — report and continue
            failures += 1
            print(f"{name:10s} FAILED: {error}")
    return 1 if failures else 0


def _command_data(args: argparse.Namespace) -> int:
    store = default_store()
    if args.data_command == "list":
        entries = store.entries()
        if not entries:
            print(f"no datasets under {store.root}")
            return 0
        rows = []
        for meta in entries:
            spec = meta.get("spec", {})
            rows.append([
                spec.get("scenario", "?"),
                spec.get("scale", "?"),
                spec.get("seed", "?"),
                meta.get("digest", "?"),
                meta.get("derived_count", 0),
                f"{meta.get('disk_bytes', 0) / 1024:.0f} KiB",
            ])
        print(render_table(
            ["scenario", "scale", "seed", "digest", "derived", "size"],
            rows,
            title=f"Dataset store: {store.root}",
        ))
        return 0
    if args.data_command == "build":
        for name in args.scenario:
            spec = scenario_spec(name, scale=args.scale, seed=args.seed)
            _data, origin = ensure_corpus(spec, store)
            print(f"{name:16s} {spec.digest()}  ({origin})")
        return 0
    if args.data_command == "gc":
        removed, freed = store.gc(everything=args.all)
        print(f"removed {removed} dataset(s), freed {freed / 1024:.0f} KiB")
        return 0
    raise AssertionError(f"unhandled data command {args.data_command!r}")


def _service_summary(service) -> list[str]:
    """Human-readable one-liners from a service's metrics registry."""
    from repro.obs.exposition import parse_series
    from repro.obs.metrics import quantile_estimate
    from repro.serve.service import counter_total

    exported = service.metrics.as_dict()
    lines = [
        "submitted={:.0f} executed={:.0f} coalesced={:.0f} "
        "cache_hits={:.0f} rejected={:.0f}".format(
            counter_total(exported, "serve.submitted"),
            counter_total(exported, "serve.executed"),
            counter_total(exported, "serve.coalesced"),
            counter_total(exported, "serve.cache_hits"),
            counter_total(exported, "serve.rejected"),
        )
    ]
    for key, payload in sorted(exported.get("histograms", {}).items()):
        if key.startswith("serve.latency_seconds") and payload["count"]:
            _, labels = parse_series(key)
            origin = labels.get("origin", "all")
            p50, p95, p99 = (quantile_estimate(payload, q)
                             for q in (0.50, 0.95, 0.99))
            lines.append(
                f"latency[{origin}]: n={payload['count']} "
                f"p50={p50 * 1e3:.2f}ms p95={p95 * 1e3:.2f}ms "
                f"p99={p99 * 1e3:.2f}ms"
            )
    return lines


def _command_serve_submit(args: argparse.Namespace) -> int:
    from repro.serve import BenchService

    studies = tuple(study for token in args.studies for study in token)
    service = BenchService(
        workers=args.workers, max_queue=args.queue_limit,
        timeout=args.timeout, isolation=args.isolation,
        reuse=not args.no_reuse,
        telemetry_port=args.telemetry_port,
    )
    with service:
        if service.telemetry is not None:
            print(f"telemetry at {service.telemetry.url}")
        try:
            handles = [
                service.submit(
                    kernel, studies=studies, scale=args.scale,
                    seed=args.seed, scenario=args.scenario,
                    cache_config=MACHINES[args.machine],
                    backend=args.backend,
                )
                for kernel in args.kernels
            ]
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        rows = []
        failures = 0
        for handle in handles:
            report = handle.wait(timeout=args.timeout or 600.0)
            failures += report.error is not None
            rows.append([
                handle.job.kernel,
                handle.job.backend or "-",
                handle.origin,
                f"{handle.latency_seconds:.3f}",
                f"{report.wall_seconds:.3f}",
                report.error or "-",
            ])
    print(render_table(
        ["kernel", "backend", "origin", "latency s", "kernel s", "error"],
        rows,
        title=(f"serve submit (workers={args.workers}, "
               f"isolation={args.isolation}, scale={args.scale})"),
    ))
    for line in _service_summary(service):
        print(line)
    if args.metrics_out:
        Path(args.metrics_out).write_text(
            json.dumps(service.metrics.as_dict(), indent=2, sort_keys=True)
        )
        print(f"metrics written to {args.metrics_out}")
    return 1 if failures else 0


def _command_serve_bench(args: argparse.Namespace) -> int:
    import tempfile

    from repro.serve import (
        BenchService,
        ShardedResultStore,
        TraceSpec,
        duplicate_fraction,
        generate_requests,
        replay,
    )

    spec = TraceSpec(requests=args.requests, seed=args.seed,
                     scale=args.scale)
    trace_jobs = generate_requests(spec)
    dup = duplicate_fraction(trace_jobs)
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as scratch:
        store = ShardedResultStore(args.cache_dir or scratch)
        with BenchService(workers=args.workers, max_queue=args.queue_limit,
                          isolation=args.isolation, store=store,
                          telemetry_port=args.telemetry_port) as service:
            if service.telemetry is not None:
                print(f"telemetry at {service.telemetry.url}")
            result = replay(service, trace_jobs)
    served = result.cache_hits + result.coalesced
    print(render_table(
        ["requests", "unique", "dup frac", "p50 ms", "p99 ms",
         "hit rate", "coalesce rate", "rejected", "errors"],
        [[
            result.completed,
            result.executed,
            f"{dup:.3f}",
            f"{result.percentile(50) * 1e3:.2f}",
            f"{result.percentile(99) * 1e3:.2f}",
            f"{result.rate('cached'):.3f}",
            f"{result.rate('coalesced'):.3f}",
            result.rejected,
            result.errors,
        ]],
        title=(f"serve bench (seed={args.seed}, workers={args.workers}, "
               f"wall={result.wall_seconds:.1f}s)"),
    ))
    print(f"served without execution: {served}/{result.completed} "
          f"(theoretical duplicate fraction {dup:.3f})")
    for line in _service_summary(service):
        print(line)
    if args.metrics_out:
        Path(args.metrics_out).write_text(
            json.dumps(service.metrics.as_dict(), indent=2, sort_keys=True)
        )
        print(f"metrics written to {args.metrics_out}")
    return 1 if result.errors else 0


def _command_serve_up(args: argparse.Namespace) -> int:
    import time as _time

    from repro.serve import BenchService

    service = BenchService(
        workers=args.workers, isolation=args.isolation,
        reuse=not args.no_reuse, telemetry_port=args.telemetry_port,
    )
    with service:
        print(f"telemetry at {service.telemetry.url}", flush=True)
        handles = [
            service.submit(kernel, scale=args.scale, seed=args.seed,
                           scenario=args.scenario,
                           cache_config=MACHINES[args.machine])
            for kernel in args.kernels
        ]
        failures = 0
        for handle in handles:
            report = handle.wait(timeout=600.0)
            failures += report.error is not None
            print(f"{handle.job.kernel}: {handle.origin} "
                  f"({handle.latency_seconds:.3f}s)"
                  + (f" ERROR {report.error}" if report.error else ""),
                  flush=True)
        deadline = _time.monotonic() + args.duration
        try:
            while _time.monotonic() < deadline:
                _time.sleep(0.2)
        except KeyboardInterrupt:
            pass
    return 1 if failures else 0


def _command_serve_status(args: argparse.Namespace) -> int:
    import urllib.error
    import urllib.request

    base = args.url.rstrip("/")
    routes = ["/healthz", "/readyz"] + (["/metrics"] if args.metrics else [])
    healthy = True
    for route in routes:
        try:
            with urllib.request.urlopen(base + route, timeout=5) as response:
                body = response.read().decode("utf-8", "replace")
                code = response.status
        except urllib.error.HTTPError as error:
            body = error.read().decode("utf-8", "replace")
            code = error.code
            healthy = False
        except OSError as error:
            print(f"{route}: unreachable ({error})", file=sys.stderr)
            return 2
        print(f"{route} [{code}]")
        print(body.rstrip())
    return 0 if healthy else 1


def _command_serve_trace(args: argparse.Namespace) -> int:
    from repro.obs.context import stitch_trace
    from repro.serve import BenchService

    studies = tuple(study for token in args.studies for study in token)
    tracer = Tracer()
    with trace.use(tracer):
        with BenchService(workers=1, isolation=args.isolation,
                          store=None, reuse=False) as service:
            handle = service.submit(
                args.kernel, studies=studies, scale=args.scale,
                seed=args.seed, scenario=args.scenario,
                cache_config=MACHINES[args.machine],
            )
            report = handle.wait(timeout=args.timeout)
    stitched = stitch_trace(handle.trace_id, tracer.records(), report.spans)
    print(render_tree(
        stitched,
        title=(f"Stitched trace {handle.trace_id}: {args.kernel} "
               f"(isolation={args.isolation}, scale={args.scale})"),
    ))
    pids = {record.get("pid", 0) for record in stitched}
    print(f"\n{len(stitched)} spans across {len(pids)} process(es), "
          f"one trace id: {handle.trace_id}")
    out = args.out or f"{args.kernel}.trace.json"
    write_chrome_trace(stitched, out)
    print(f"trace written to {out} (open in https://ui.perfetto.dev)")
    return 1 if report.error else 0


def _command_serve(args: argparse.Namespace) -> int:
    if args.serve_command == "submit":
        return _command_serve_submit(args)
    if args.serve_command == "bench":
        return _command_serve_bench(args)
    if args.serve_command == "up":
        return _command_serve_up(args)
    if args.serve_command == "status":
        return _command_serve_status(args)
    if args.serve_command == "trace":
        return _command_serve_trace(args)
    raise AssertionError(f"unhandled serve command {args.serve_command!r}")


def _command_obs_export(args: argparse.Namespace) -> int:
    from repro.harness.runner import load_reports
    from repro.obs.exposition import exposition, snapshot

    registry = obs_metrics.MetricsRegistry()
    if args.reports:
        for path in args.reports:
            for report in load_reports(path).values():
                if report.metrics:
                    registry.merge_dict(report.metrics)
    else:
        registry = obs_metrics.current_registry()
    exported = registry.as_dict()
    if args.format == "json":
        rendered = json.dumps(snapshot(exported), indent=2, sort_keys=True)
    else:
        rendered = exposition(exported)
    if args.out:
        Path(args.out).write_text(rendered)
        print(f"metrics written to {args.out}")
    else:
        print(rendered, end="" if rendered.endswith("\n") else "\n")
    return 0


def _command_obs_check(args: argparse.Namespace) -> int:
    from repro.harness.runner import load_reports
    from repro.obs import baseline as obs_baseline

    window = args.window if args.window is not None \
        else obs_baseline.DEFAULT_WINDOW
    checks = obs_baseline.check_trajectories(root=args.root, window=window)
    if (args.candidate is None) != (args.baseline is None):
        print("error: --candidate and --baseline go together",
              file=sys.stderr)
        return 2
    if args.candidate is not None:
        checks.extend(obs_baseline.check_reports(
            load_reports(args.candidate), load_reports(args.baseline)))
    print(obs_baseline.render_checks(checks))
    if args.out:
        path = obs_baseline.write_check(checks, args.out)
        print(f"verdict written to {path}")
    return 1 if obs_baseline.overall_status(checks) == "regress" else 0


def _command_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "export":
        return _command_obs_export(args)
    if args.obs_command == "check":
        return _command_obs_check(args)
    raise AssertionError(f"unhandled obs command {args.obs_command!r}")


def _command_cache(args: argparse.Namespace) -> int:
    from repro.harness.store import default_result_store

    store = default_result_store()
    if args.cache_command == "list":
        entries = store.entries()
        if not entries:
            print(f"no cached reports under {store.root}")
            return 0
        rows = [[
            meta["digest"],
            meta.get("kernel", "?"),
            meta.get("scenario", "?"),
            meta.get("scale", "?"),
            ",".join(meta.get("studies", [])),
            f"{meta.get('bytes', 0) / 1024:.0f} KiB",
        ] for meta in entries]
        print(render_table(
            ["digest", "kernel", "scenario", "scale", "studies", "size"],
            rows,
            title=(f"Result cache: {store.root} "
                   f"({store.total_bytes() / 1024:.0f} KiB)"),
        ))
        return 0
    if args.cache_command == "gc":
        if args.max_bytes is not None:
            store.max_bytes = args.max_bytes
        if args.max_entries is not None:
            store.max_entries = args.max_entries
        removed, freed = store.gc(everything=args.all)
        print(f"removed {removed} report(s), freed {freed / 1024:.0f} KiB")
        return 0
    raise AssertionError(f"unhandled cache command {args.cache_command!r}")


def _command_sweep_expand(args: argparse.Namespace) -> int:
    from repro.data.manifest import resolve_manifest

    manifest = resolve_manifest(args.manifest)
    rows = []
    for cell in manifest.cells:
        axes = ", ".join(f"{axis}={level}" for axis, level in cell.axes)
        rows.append([
            cell.name,
            cell.fidelity,
            axes or "-",
            cell.spec().digest(),
            cell.description or "-",
        ])
    print(render_table(
        ["cell", "fidelity", "axes", "spec digest", "description"], rows,
        title=f"Manifest {manifest.name!r}: {len(manifest.cells)} cells",
    ))
    paper = manifest.paper_cells()
    print(f"\n{len(paper)} paper-fidelity cell(s): "
          f"{', '.join(cell.name for cell in paper) or '-'}")
    backends = (tuple(b for token in args.backends for b in token)
                if args.backends else ())
    if backends:
        print(f"backend axis: {', '.join(backends)} — a sweep over this "
              f"manifest grids {len(manifest.cells)} cells x "
              f"{len(backends)} backends per kernel/scale/seed")
    return 0


def _command_sweep_run(args: argparse.Namespace) -> int:
    from repro.sweep import compile_sweep, run_sweep, save_sweep

    kernels = tuple(k for token in args.kernels for k in token)
    cells = (tuple(c for token in args.cells for c in token)
             if args.cells else None)
    studies = tuple(study for token in args.studies for study in token)
    backends = (tuple(b for token in args.backends for b in token)
                if args.backends else None)
    plan = compile_sweep(
        args.manifest, kernels=kernels, studies=studies,
        scales=tuple(args.scales), seeds=tuple(args.seeds), cells=cells,
        cache_config=MACHINES[args.machine], backends=backends,
    )
    print(f"sweep: {len(plan)} grid points "
          f"({len(set(plan.cells))} cells x {len(plan.kernels)} kernels "
          f"x {len(plan.scales)} scales x {len(plan.seeds)} seeds x "
          f"{len(plan.backends)} backends)")
    result = run_sweep(plan, workers=args.jobs, timeout=args.timeout,
                       reuse=args.reuse)
    path = save_sweep(result, args.dir)
    origins = result.origin_counts()
    print(f"completed in {result.wall_seconds:.1f}s "
          f"(executed={origins.get('executed', 0)} "
          f"cached={origins.get('cached', 0)}); saved to {path}")
    for failure in result.errors:
        print(f"ERROR {failure.kernel} @ {failure.scenario}: "
              f"{failure.report.error}", file=sys.stderr)
    for gated in result.gate_failures:
        for violation in gated.gate_violations:
            print(f"GATE {gated.kernel} @ {gated.scenario}: {violation}",
                  file=sys.stderr)
    return 1 if result.errors or result.gate_failures else 0


def _command_sweep_report(args: argparse.Namespace) -> int:
    from repro.analysis.aggregate import (
        aggregate_sweep,
        leaderboard,
        render_leaderboard,
        topdown_drift,
    )
    from repro.sweep import load_sweep

    sweep = load_sweep(args.dir)
    paths = aggregate_sweep(sweep, args.dir)
    print(render_leaderboard(
        leaderboard(sweep),
        title=(f"Leaderboard: {sweep.manifest_name} "
               f"({len(sweep)} grid points)"),
    ))
    drift = topdown_drift(sweep)
    if drift:
        print("\ntop-down shape drift across scenarios:")
        for kernel, per_scenario in sorted(drift.items()):
            shifts = ", ".join(f"{scenario}={slot}" for scenario, slot
                               in sorted(per_scenario.items()))
            print(f"  {kernel}: {shifts}")
    else:
        print("\nno top-down shape drift across scenarios")
    print()
    for name, path in sorted(paths.items()):
        print(f"{name} written to {path}")
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    if args.sweep_command == "expand":
        return _command_sweep_expand(args)
    if args.sweep_command == "run":
        return _command_sweep_run(args)
    if args.sweep_command == "report":
        return _command_sweep_report(args)
    raise AssertionError(f"unhandled sweep command {args.sweep_command!r}")


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "validate":
        return _command_validate(args)
    if args.command == "data":
        return _command_data(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "obs":
        return _command_obs(args)
    if args.command == "cache":
        return _command_cache(args)
    if args.command == "sweep":
        return _command_sweep(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
