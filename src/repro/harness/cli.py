"""Command-line entry point — the suite's ``mainRun.py``.

Examples::

    python -m repro list
    python -m repro run gssw gbwt --studies timing topdown
    python -m repro run tc --studies timing,validate --jobs 2
    python -m repro run tsu --studies gpu
    python -m repro run --kernels gssw gbwt --scale 0.5 --out reports.json
    python -m repro run --machine A --reuse
    python -m repro run tc gcsa --trace-out suite.trace.json
    python -m repro run gssw gbwt --scenario divergent
    python -m repro trace tc --trace-out tc.trace.json
    python -m repro validate
    python -m repro data build --scenario default divergent
    python -m repro data list
    python -m repro data gc
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext as _null_context
from typing import Sequence

from repro.analysis.report import render_table
from repro.data import (
    default_store,
    ensure_corpus,
    scenario_names,
    scenario_spec,
)
from repro.harness.runner import run_kernel_studies, run_suite, save_reports
from repro.harness.studies import study_names
from repro.kernels import SUITE_KERNELS, create_kernel, kernel_names
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.obs.spans import (
    Tracer,
    merge_records,
    render_tree,
    write_chrome_trace,
)
from repro.uarch.cache import MACHINE_A, MACHINE_B

#: ``--machine`` choices (the paper's Table 5 machines).
MACHINES = {"A": MACHINE_A, "B": MACHINE_B}


def _study_list(value: str) -> list[str]:
    """One ``--studies`` token: a study name or a comma-joined list."""
    studies = [item for item in value.split(",") if item]
    known = study_names()
    for study in studies:
        if study not in known:
            raise argparse.ArgumentTypeError(
                f"invalid study {study!r} (choose from {', '.join(known)})"
            )
    return studies


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PangenomicsBench reproduction: run and characterize kernels",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the registered kernels")

    run = commands.add_parser("run", help="run kernels under selected studies")
    run.add_argument(
        "kernels", nargs="*", metavar="KERNEL",
        help="kernel names (default: the eight suite kernels)",
    )
    run.add_argument(
        "--kernels", dest="kernels_opt", nargs="+", default=None,
        metavar="KERNEL", help="kernel names (same as the positionals)",
    )
    run.add_argument(
        "--studies", nargs="+", default=[["timing"]], type=_study_list,
        metavar="STUDY",
        help="studies to run, space- or comma-separated "
             f"(default: timing; choices: {', '.join(study_names())})",
    )
    run.add_argument("--scale", type=float, default=1.0,
                     help="dataset scale factor (default 1.0)")
    run.add_argument("--seed", type=int, default=0, help="dataset seed")
    run.add_argument(
        "--scenario", choices=scenario_names(), default="default",
        help="named dataset scenario every kernel prepares on "
             "(default: default)",
    )
    run.add_argument(
        "--machine", choices=sorted(MACHINES), default="B",
        help="cache-hierarchy configuration for the trace studies "
             "(paper Table 5; default: B, the kernel-analysis machine)",
    )
    run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1: serial, deterministic; N>1 "
             "runs kernels in parallel with per-kernel failure isolation)",
    )
    run.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-kernel time limit (enforced when --jobs > 1)",
    )
    run.add_argument(
        "--reuse", action="store_true",
        help="serve cache hits from benchmarks/results/cache/ and write "
             "fresh reports back",
    )
    run.add_argument("--out", default=None,
                     help="write JSON reports to this path")
    run.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="trace the run and write a Chrome trace-event JSON file "
             "(open in https://ui.perfetto.dev)",
    )

    tracecmd = commands.add_parser(
        "trace",
        help="trace one kernel: span tree, per-phase top-down, Chrome trace",
    )
    tracecmd.add_argument("kernel", metavar="KERNEL", help="kernel to trace")
    tracecmd.add_argument("--scale", type=float, default=1.0,
                          help="dataset scale factor (default 1.0)")
    tracecmd.add_argument("--seed", type=int, default=0, help="dataset seed")
    tracecmd.add_argument(
        "--scenario", choices=scenario_names(), default="default",
        help="named dataset scenario (default: default)",
    )
    tracecmd.add_argument(
        "--machine", choices=sorted(MACHINES), default="B",
        help="cache-hierarchy configuration (default B)",
    )
    tracecmd.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="also write the spans as a Chrome trace-event JSON file",
    )

    validate = commands.add_parser(
        "validate", help="run every kernel's oracle self-check"
    )
    validate.add_argument("--kernels", nargs="+", default=None)
    validate.add_argument("--scale", type=float, default=0.5)
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument(
        "--scenario", choices=scenario_names(), default="default",
        help="named dataset scenario (default: default)",
    )

    data = commands.add_parser(
        "data", help="inspect and manage the shared dataset store"
    )
    data_commands = data.add_subparsers(dest="data_command", required=True)
    data_list = data_commands.add_parser(
        "list", help="list corpora in the artifact store"
    )
    del data_list  # no options yet
    data_build = data_commands.add_parser(
        "build", help="pre-build (or warm-load) scenario corpora"
    )
    data_build.add_argument(
        "--scenario", nargs="+", choices=scenario_names(),
        default=["default"], metavar="SCENARIO",
        help="scenarios to build (default: default)",
    )
    data_build.add_argument("--scale", type=float, default=1.0,
                            help="dataset scale factor (default 1.0)")
    data_build.add_argument("--seed", type=int, default=0,
                            help="dataset seed")
    data_gc = data_commands.add_parser(
        "gc", help="remove stale artifacts (different generator version)"
    )
    data_gc.add_argument(
        "--all", action="store_true",
        help="remove every artifact, current ones included",
    )
    return parser


def _command_list() -> int:
    rows = []
    for name in kernel_names():
        kernel = create_kernel(name)
        rows.append([name, kernel.parent_tool, kernel.input_type])
    print(render_table(["kernel", "parent tool", "input type"], rows,
                       title="Registered kernels"))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    kernels = list(args.kernels) + list(args.kernels_opt or [])
    if not kernels:
        kernels = list(SUITE_KERNELS)
    studies = [study for token in args.studies for study in token]
    tracer = Tracer() if args.trace_out else None
    with trace.use(tracer) if tracer else _null_context():
        reports = run_suite(
            tuple(kernels), studies=tuple(studies),
            scale=args.scale, seed=args.seed,
            cache_config=MACHINES[args.machine],
            jobs=args.jobs, timeout=args.timeout, reuse=args.reuse,
            scenario=args.scenario,
        )
    if tracer is not None:
        # Fold in spans shipped back from worker processes (parallel
        # runs); merge_records drops the parent's own duplicates.
        records = merge_records(
            tracer.records(),
            *(report.spans for report in reports.values()),
        )
        write_chrome_trace(records, args.trace_out)
        print(f"trace written to {args.trace_out}")
    rows = []
    for name, report in reports.items():
        rows.append([
            name,
            report.inputs_processed,
            f"{report.wall_seconds:.3f}",
            f"{report.ipc:.2f}" if report.ipc else "-",
            (max(report.topdown, key=report.topdown.get)
             if report.topdown else "-"),
            "ok" if report.validated else "-",
            report.error or "-",
        ])
    print(render_table(
        ["kernel", "#inputs", "seconds", "IPC", "top slot", "validated",
         "error"],
        rows,
        title=(f"Suite run (scale={args.scale}, machine={args.machine}, "
               f"scenario={args.scenario}, studies={studies})"),
    ))
    if args.out:
        save_reports(reports, args.out)
        print(f"\nreports written to {args.out}")
    failures = [name for name, report in reports.items() if report.error]
    if failures:
        print(f"\n{len(failures)} kernel(s) failed: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


#: Studies the ``trace`` command always runs: timing for wall clock and
#: the three trace studies so the PhaseAttributor has counters to split.
TRACE_STUDIES = ("timing", "topdown", "cache", "instmix")


def _command_trace(args: argparse.Namespace) -> int:
    tracer = Tracer()
    registry = obs_metrics.MetricsRegistry()
    with trace.use(tracer), obs_metrics.use(registry):
        report = run_kernel_studies(
            args.kernel,
            studies=TRACE_STUDIES,
            scale=args.scale,
            seed=args.seed,
            cache_config=MACHINES[args.machine],
            scenario=args.scenario,
        )
    records = tracer.records()
    print(render_tree(
        records,
        title=(f"Span tree: {args.kernel} (scale={args.scale}, "
               f"machine={args.machine})"),
    ))
    if report.phases:
        rows = []
        for name, phase in report.phases.items():
            topdown = phase["topdown"]
            rows.append([
                name,
                phase["instructions"],
                f"{phase['ipc']:.2f}",
                f"{topdown['retiring']:.3f}",
                f"{topdown['frontend_bound']:.3f}",
                f"{topdown['bad_speculation']:.3f}",
                f"{topdown['core_bound']:.3f}",
                f"{topdown['memory_bound']:.3f}",
            ])
        print()
        print(render_table(
            ["phase", "instructions", "IPC", "retiring", "frontend",
             "bad spec", "core", "memory"],
            rows,
            title="Per-phase top-down (exclusive attribution)",
        ))
    if args.trace_out:
        write_chrome_trace(records, args.trace_out)
        print(f"\ntrace written to {args.trace_out} "
              "(open in https://ui.perfetto.dev)")
    return 1 if report.error else 0


def _command_validate(args: argparse.Namespace) -> int:
    names = args.kernels or kernel_names()
    failures = 0
    for name in names:
        kernel = create_kernel(name, scale=args.scale, seed=args.seed,
                               scenario=args.scenario)
        try:
            kernel.validate()
            print(f"{name:10s} ok")
        except Exception as error:  # noqa: BLE001 — report and continue
            failures += 1
            print(f"{name:10s} FAILED: {error}")
    return 1 if failures else 0


def _command_data(args: argparse.Namespace) -> int:
    store = default_store()
    if args.data_command == "list":
        entries = store.entries()
        if not entries:
            print(f"no datasets under {store.root}")
            return 0
        rows = []
        for meta in entries:
            spec = meta.get("spec", {})
            rows.append([
                spec.get("scenario", "?"),
                spec.get("scale", "?"),
                spec.get("seed", "?"),
                meta.get("digest", "?"),
                meta.get("derived_count", 0),
                f"{meta.get('disk_bytes', 0) / 1024:.0f} KiB",
            ])
        print(render_table(
            ["scenario", "scale", "seed", "digest", "derived", "size"],
            rows,
            title=f"Dataset store: {store.root}",
        ))
        return 0
    if args.data_command == "build":
        for name in args.scenario:
            spec = scenario_spec(name, scale=args.scale, seed=args.seed)
            _data, origin = ensure_corpus(spec, store)
            print(f"{name:16s} {spec.digest()}  ({origin})")
        return 0
    if args.data_command == "gc":
        removed, freed = store.gc(everything=args.all)
        print(f"removed {removed} dataset(s), freed {freed / 1024:.0f} KiB")
        return 0
    raise AssertionError(f"unhandled data command {args.data_command!r}")


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "validate":
        return _command_validate(args)
    if args.command == "data":
        return _command_data(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
