"""The cached result store — the harness engine's third layer.

Reports are cached on disk keyed by a content digest of everything that
determines a job's outcome: kernel name, the (order-normalized) study
set, scale, seed, dataset scenario, the cache-hierarchy configuration,
and the package version.  ``run_suite(..., reuse=True)`` serves cache hits, so the 14
benchmark figures stop re-characterizing the same kernels once per
figure, and a repeated run at identical parameters executes nothing.

Layout (under ``benchmarks/results/cache/`` by default, overridable via
the ``REPRO_CACHE_DIR`` environment variable or the ``root`` argument)::

    benchmarks/results/cache/
        <16-hex-digest>.json    # {"schema_version", "job", "report"}

Failed reports (``report.error`` set) are never cached: a crash or
timeout should re-execute on the next run, not stick.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING

import repro
from repro.harness.runner import SCHEMA_VERSION, KernelReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.executor import Job


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``<repo>/benchmarks/results/cache``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    # store.py -> harness -> repro -> src -> repository root
    return Path(__file__).parents[3] / "benchmarks" / "results" / "cache"


def job_key(job: "Job") -> dict:
    """The canonical key payload a job is cached under.

    ``dataset`` is the :class:`~repro.data.DatasetSpec` content digest
    the scenario resolves to *now*: scenarios are manifest-defined, so
    a name alone would go stale the moment a manifest edit (or a
    same-named cell from a different manifest) changed the corpus
    behind it.  Keying on the content digest makes such edits cache
    misses instead of silently-served stale reports.

    ``backend`` is resolved through the kernel registry before hashing,
    so a job carrying ``""`` (kernel default) and one carrying the
    explicit default name share an entry, while distinct backends of
    the same kernel never collide.
    """
    from repro.data import scenario_spec
    from repro.errors import KernelError
    from repro.kernels.base import resolve_backend

    requested = getattr(job, "backend", "")
    try:
        backend = resolve_backend(job.kernel, requested or None)
    except KernelError:
        # Unregistered kernel (test doubles, foreign job records): key
        # on the raw request — there is no default to resolve to.
        backend = requested
    return {
        "kernel": job.kernel,
        "studies": sorted(set(job.studies)),
        "scale": job.scale,
        "seed": job.seed,
        "scenario": job.scenario,
        "backend": backend,
        "dataset": scenario_spec(
            job.scenario, scale=job.scale, seed=job.seed
        ).digest(),
        "cache_config": asdict(job.cache_config),
        "package_version": repro.__version__,
    }


def job_digest(job: "Job") -> str:
    """Content digest (hex) identifying a job's cached report."""
    canonical = json.dumps(job_key(job), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


class ResultStore:
    """Content-addressed on-disk cache of :class:`KernelReport`\\ s."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path(self, job: "Job") -> Path:
        return self.root / f"{job_digest(job)}.json"

    def load(self, job: "Job") -> KernelReport | None:
        """The cached report for *job*, or ``None`` on any miss
        (absent, unreadable, or written by an incompatible schema)."""
        path = self.path(job)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema_version") != SCHEMA_VERSION:
            return None
        record = payload.get("report")
        if not isinstance(record, dict) or "kernel" not in record:
            return None
        report = KernelReport.from_dict(record)
        if report.error is not None:
            return None
        return report

    def save(self, job: "Job", report: KernelReport) -> Path | None:
        """Cache *report* under *job*'s digest (no-op for failures)."""
        if report.error is not None:
            return None
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(job)
        payload = {
            "schema_version": SCHEMA_VERSION,
            "job": job_key(job),
            "report": asdict(report),
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        return path

    def clear(self) -> int:
        """Delete every cached report; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.json"):
                entry.unlink()
                removed += 1
        return removed


def default_result_store() -> ResultStore:
    """The store ``execute_plan(reuse=True)`` and the CLI default to: the
    digest-prefix-sharded, LRU-bounded store from :mod:`repro.serve`
    over :func:`default_cache_dir` (lazy import — the serve layer builds
    on the harness, not the other way around)."""
    from repro.serve.shards import ShardedResultStore

    return ShardedResultStore()
