"""The suite runner — our analog of the paper's ``mainRun.py``.

Runs any subset of kernels under any subset of studies:

* ``timing`` — wall-clock and kernel work counters (the default);
* ``topdown`` — the Figure 6 top-down slot attribution + Table 6 IPC;
* ``cache`` — Figure 7 MPKI;
* ``instmix`` — Figure 8 instruction-class fractions;
* ``validate`` — each kernel's oracle self-check.

Results serialize to JSON for the benches and EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.errors import KernelError
from repro.kernels.base import create_kernel, kernel_names
from repro.uarch.cache import MACHINE_B, CacheConfig
from repro.uarch.machine import TraceMachine
from repro.uarch.topdown import analyze

ALL_STUDIES = ("timing", "topdown", "cache", "instmix", "validate")


@dataclass
class KernelReport:
    """Everything one kernel produced across the requested studies."""

    kernel: str
    wall_seconds: float = 0.0
    inputs_processed: int = 0
    work: dict[str, float] = field(default_factory=dict)
    topdown: dict[str, float] = field(default_factory=dict)
    ipc: float = 0.0
    mpki: dict[str, float] = field(default_factory=dict)
    instruction_mix: dict[str, float] = field(default_factory=dict)
    branch_misprediction_rate: float = 0.0
    instructions: int = 0
    validated: bool = False


def run_kernel_studies(
    name: str,
    studies: tuple[str, ...] = ("timing",),
    scale: float = 1.0,
    seed: int = 0,
    cache_config: CacheConfig = MACHINE_B,
) -> KernelReport:
    """Run one kernel under the requested studies."""
    for study in studies:
        if study not in ALL_STUDIES:
            raise KernelError(f"unknown study {study!r}; known: {ALL_STUDIES}")
    report = KernelReport(kernel=name)
    kernel = create_kernel(name, scale=scale, seed=seed)

    if "timing" in studies:
        result = kernel.run()
        report.wall_seconds = result.wall_seconds
        report.inputs_processed = result.inputs_processed
        report.work = dict(result.work)

    needs_trace = any(s in studies for s in ("topdown", "cache", "instmix"))
    if needs_trace:
        machine = TraceMachine(cache_config)
        result = kernel.run(probe=machine)
        if not report.inputs_processed:
            report.inputs_processed = result.inputs_processed
            report.work = dict(result.work)
        summary = machine.summary()
        report.instructions = summary.instructions
        report.branch_misprediction_rate = summary.branch_stats.misprediction_rate
        if summary.instructions:
            if "topdown" in studies:
                topdown = analyze(summary)
                report.topdown = topdown.as_dict()
                report.ipc = topdown.ipc
            if "cache" in studies:
                report.mpki = summary.mpki()
            if "instmix" in studies:
                report.instruction_mix = summary.instruction_mix()
        # GPU kernels (tsu) run on the SIMT simulator and emit no CPU
        # events; their profiling metrics live in the work counters.

    if "validate" in studies:
        kernel.validate()
        report.validated = True
    return report


def run_suite(
    kernels: tuple[str, ...] | None = None,
    studies: tuple[str, ...] = ("timing",),
    scale: float = 1.0,
    seed: int = 0,
    cache_config: CacheConfig = MACHINE_B,
) -> dict[str, KernelReport]:
    """Run the whole suite (or a subset) under the requested studies."""
    names = kernels if kernels is not None else tuple(kernel_names())
    return {
        name: run_kernel_studies(
            name, studies=studies, scale=scale, seed=seed, cache_config=cache_config
        )
        for name in names
    }


def save_reports(reports: dict[str, KernelReport], path: str | Path) -> None:
    """Serialize suite reports to JSON."""
    payload = {name: asdict(report) for name, report in reports.items()}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_reports(path: str | Path) -> dict[str, KernelReport]:
    """Load reports saved by :func:`save_reports`."""
    payload = json.loads(Path(path).read_text())
    return {name: KernelReport(**fields) for name, fields in payload.items()}
