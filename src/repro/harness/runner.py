"""The suite engine — our analog of the paper's ``mainRun.py``.

Three layers (see README "Harness architecture"):

* **studies** (:mod:`repro.harness.studies`) — pluggable characterization
  passes (``timing``/``topdown``/``cache``/``instmix``/``validate``/
  ``gpu``) in ``STUDY_REGISTRY``;
* **executor** (:mod:`repro.harness.executor`) — compiles an
  :class:`~repro.harness.executor.ExecutionPlan` and dispatches it over a
  process pool with per-job timeout and failure isolation;
* **store** (:mod:`repro.harness.store`) — a content-addressed report
  cache, so repeated runs at identical parameters execute nothing.

This module holds the data model (:class:`KernelReport`), the single-job
engine (:func:`run_kernel_studies`) and the versioned JSON serialization;
:func:`run_suite` is the high-level entry the CLI, benches and tests use.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path

import repro
from repro.errors import KernelError
from repro.harness.studies import create_study, study_names
from repro.kernels.base import create_kernel, kernel_names
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.obs.attribution import PhaseAttributor
from repro.obs.spans import NULL_TRACER
from repro.uarch.cache import MACHINE_B, CacheConfig
from repro.uarch.events import NULL_PROBE
from repro.uarch.machine import TraceMachine

#: JSON schema version written by :func:`save_reports` and the result
#: store; bump when :class:`KernelReport` changes incompatibly.
#: v3: observability — ``spans``, ``metrics`` and ``phases`` fields.
#: v4: the backend plane — reports carry the execution ``backend`` and
#: it joins the cache key, so pre-backend cached reports invalidate.
SCHEMA_VERSION = 4


#: The built-in study names (the old harness's hard-coded tuple, now a
#: snapshot of ``STUDY_REGISTRY``; use ``study_names()`` for a live view
#: that includes studies registered after import).
ALL_STUDIES = study_names()


@dataclass
class KernelReport:
    """Everything one kernel produced across the requested studies.

    Picklable (it crosses process boundaries in the parallel executor)
    and JSON-round-trippable via :func:`save_reports`/:func:`load_reports`.
    """

    kernel: str
    wall_seconds: float = 0.0
    inputs_processed: int = 0
    work: dict[str, float] = field(default_factory=dict)
    topdown: dict[str, float] = field(default_factory=dict)
    ipc: float = 0.0
    mpki: dict[str, float] = field(default_factory=dict)
    instruction_mix: dict[str, float] = field(default_factory=dict)
    branch_misprediction_rate: float = 0.0
    instructions: int = 0
    validated: bool = False
    #: Table 7 SIMT counters collected by the ``gpu`` study.
    gpu: dict[str, float] = field(default_factory=dict)
    #: Structured failure record ("ExcType: message") when the kernel
    #: raised, timed out, or its worker died; ``None`` on success.
    error: str | None = None
    # Run metadata (reproducibility of cached/serialized reports).
    scale: float = 1.0
    seed: int = 0
    machine: str = ""
    #: Named dataset scenario the kernel ran on (``repro data`` /
    #: ``repro run --scenario``); reports predating scenarios read back
    #: as "default", which is what they ran on.
    scenario: str = "default"
    #: Execution backend the kernel ran on (``scalar`` / ``vectorized``
    #: / ``gpu``); ``""`` only in reports predating the backend plane.
    backend: str = ""
    #: Span records collected during the run (see repro.obs.spans for
    #: the record schema); populated whenever a real tracer is
    #: installed, including spans shipped back from worker processes.
    spans: list = field(default_factory=list)
    #: Metrics registry export for the run (repro.obs.metrics schema);
    #: the executor folds its queue-wait / job-lifecycle series in here.
    metrics: dict = field(default_factory=dict)
    #: Per-phase μarch attribution keyed by span name (the VTune-regions
    #: analog): instructions / ipc / topdown / mpki / instruction_mix
    #: per phase, exclusive, summing to the whole-run counters.
    phases: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None

    @classmethod
    def from_dict(cls, payload: dict) -> "KernelReport":
        """Build a report from a JSON mapping, ignoring unknown fields
        (forward compatibility with reports written by newer code)."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


def run_kernel_studies(
    name: str,
    studies: tuple[str, ...] = ("timing",),
    scale: float = 1.0,
    seed: int = 0,
    cache_config: CacheConfig = MACHINE_B,
    scenario: str = "default",
    backend: str | None = None,
) -> KernelReport:
    """Run one kernel under the requested studies (one execution).

    The engine is study-agnostic: it instantiates each study from
    ``STUDY_REGISTRY``, executes the kernel at most once (traced iff any
    study requires the event stream), records the generic run metadata,
    and lets each study's ``collect`` hook fill its report fields.

    Observability rides along for free when enabled: with a real span
    tracer installed (``repro trace`` / ``--trace-out`` / the executor's
    workers), the kernel's spans land in ``report.spans``; with a
    :class:`TraceMachine` additionally in play, a
    :class:`~repro.obs.attribution.PhaseAttributor` splits its counters
    across span boundaries into ``report.phases``.  Metrics emitted
    during the run are captured into ``report.metrics`` and folded into
    the ambient registry.
    """
    plugins = [create_study(study) for study in studies]
    kernel = create_kernel(name, scale=scale, seed=seed, scenario=scenario,
                           backend=backend)
    report = KernelReport(
        kernel=name, scale=scale, seed=seed, machine=cache_config.name,
        scenario=scenario, backend=kernel.backend,
    )

    machine = (
        TraceMachine(cache_config)
        if any(plugin.requires_trace for plugin in plugins)
        else None
    )
    tracer = trace.current_tracer()
    traced = tracer is not NULL_TRACER
    mark = tracer.mark() if traced else 0
    attributor = None
    if traced and machine is not None:
        attributor = PhaseAttributor(machine)
        tracer.listeners.append(attributor)

    run_registry = obs_metrics.MetricsRegistry()
    try:
        with obs_metrics.use(run_registry):
            result = summary = None
            if machine is not None or any(
                plugin.requires_run for plugin in plugins
            ):
                result = kernel.run(
                    probe=machine if machine is not None else NULL_PROBE
                )
                report.inputs_processed = result.inputs_processed
                report.work = dict(result.work)
    finally:
        if attributor is not None:
            attributor.finish()
            tracer.listeners.remove(attributor)
    if machine is not None:
        summary = machine.summary()
        report.instructions = summary.instructions
        report.branch_misprediction_rate = summary.branch_stats.misprediction_rate
    if attributor is not None:
        report.phases = attributor.report(cache_config)
    if traced:
        report.spans = tracer.records_since(mark)
    report.metrics = run_registry.as_dict()
    obs_metrics.current_registry().merge_dict(report.metrics)

    for plugin in plugins:
        plugin.collect(kernel, result, summary, report)
    return report


def run_suite(
    kernels: tuple[str, ...] | None = None,
    studies: tuple[str, ...] = ("timing",),
    scale: float = 1.0,
    seed: int = 0,
    cache_config: CacheConfig = MACHINE_B,
    jobs: int = 1,
    timeout: float | None = None,
    reuse: bool = False,
    store: "object | None" = None,
    scenario: str = "default",
    stream: bool = False,
    backend: str | None = None,
) -> dict[str, KernelReport]:
    """Run the whole suite (or a subset) under the requested studies.

    * ``jobs`` — worker processes; 1 (the default) runs in-process for
      determinism, >1 dispatches over the parallel executor with
      per-kernel failure isolation.
    * ``timeout`` — per-kernel wall-clock limit in seconds (enforced when
      ``jobs > 1``; a timed-out kernel's report carries an ``error``).
    * ``reuse`` — serve cache hits from (and write misses to) the result
      ``store`` (default: :class:`repro.harness.store.ResultStore` under
      ``benchmarks/results/cache/``).
    * ``scenario`` — named dataset scenario from
      :data:`repro.data.SCENARIO_REGISTRY` every kernel prepares on.
    * ``stream`` — bounded-memory mode: derived kernel inputs arrive as
      chunked :class:`~repro.data.streaming.ChunkedSeries` views instead
      of monolithic lists; reports are bit-identical either way.
    * ``backend`` — execution backend for every kernel (``None``: each
      kernel's default); must be supported by all requested kernels.
    """
    from repro.harness.executor import compile_plan, execute_plan

    names = kernels if kernels is not None else tuple(kernel_names())
    plan = compile_plan(
        names, studies=studies, scale=scale, seed=seed,
        cache_config=cache_config, scenario=scenario, stream=stream,
        backend=backend,
    )
    return execute_plan(plan, jobs=jobs, timeout=timeout, reuse=reuse, store=store)


def _git_sha() -> str:
    """Short git revision of the working tree, or "unknown"."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() or "unknown"


def run_metadata() -> dict[str, str]:
    """Provenance recorded alongside serialized reports."""
    return {"package_version": repro.__version__, "git_sha": _git_sha()}


def save_reports(
    reports: dict[str, KernelReport],
    path: str | Path,
    metadata: dict | None = None,
) -> None:
    """Serialize suite reports to versioned JSON."""
    payload = {
        "schema_version": SCHEMA_VERSION,
        "metadata": {**run_metadata(), **(metadata or {})},
        "reports": {name: asdict(report) for name, report in reports.items()},
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_reports(path: str | Path) -> dict[str, KernelReport]:
    """Load reports saved by :func:`save_reports`.

    Checks ``schema_version`` (rejecting files from a newer schema),
    ignores unknown per-report fields, and still reads the legacy
    unversioned ``{kernel: fields}`` layout.
    """
    payload = json.loads(Path(path).read_text())
    if "schema_version" in payload:
        version = payload["schema_version"]
        if not isinstance(version, int) or version > SCHEMA_VERSION:
            raise KernelError(
                f"unsupported report schema {version!r} (this build reads "
                f"<= {SCHEMA_VERSION})"
            )
        records = payload.get("reports", {})
    else:  # legacy schema 1: a bare name -> fields mapping
        records = payload
    return {
        name: KernelReport.from_dict(record) for name, record in records.items()
    }
