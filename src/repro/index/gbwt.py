"""GBWT: the haplotype-aware graph FM-index (Sirén et al. 2020).

Vg Giraffe's filtering stage extends clustered seed hits along graph
paths, but only along walks that are subpaths of some *haplotype*
(Section 3, Figure 4c).  The GBWT supports this with ``find``: given a
node sequence S it returns a search state from which the haplotype-
consistent next nodes can be enumerated.

Structure.  The GBWT is a multi-string BWT over haplotype paths viewed as
strings of node identifiers.  We implement the record-per-node layout of
the real index: every node ``v`` owns a *record* holding its visits in
prefix-sorted order (sorted by the reverse prefix of the path up to the
visit), and for each visit the successor node.  Extension is last-first
mapping between records:

    extend((v, [s, e)), w) = (w, [o + r_s, o + r_e))

where ``o`` is the offset of v's block inside w's record and ``r_i`` is
the rank of successor-w visits among v's first ``i`` visits.  The
prefix-sorted visit order is computed exactly, with a suffix array over
the reversed concatenation of all paths.

The paper's key observation (Section 5.2) — haplotype node sequences
rarely repeat, so a state usually has only a handful of possible
extensions and lookups stay local — emerges naturally from this
structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import IndexError_
from repro.graph.model import SequenceGraph
from repro.index.suffix import suffix_array

#: Virtual node id marking "path ends here" (cannot collide: real ids >= 0
#: are shifted by +2 internally; 0 pads the concatenation sentinel).
ENDMARKER = -1


@dataclass(frozen=True)
class GBWTState:
    """A search state: a node and a half-open visit range in its record."""

    node_id: int
    start: int
    end: int

    @property
    def size(self) -> int:
        """Number of haplotype positions matching the searched sequence."""
        return max(0, self.end - self.start)

    @property
    def is_empty(self) -> bool:
        return self.size == 0


@dataclass
class _Record:
    """Per-node record: visits in prefix-sorted order."""

    # successor node id of each visit (ENDMARKER at path ends).
    successors: list[int]
    # (path_index, step_index) provenance of each visit, for locate().
    positions: list[tuple[int, int]]
    # Offset of each predecessor's block inside this record.
    block_offset: dict[int, int]
    # Checkpointed successor-rank counts every `sample` visits:
    # checkpoints[c][w] = number of visits with successor w among the
    # first c*sample visits.
    checkpoints: list[dict[int, int]]
    sample: int

    def rank(self, successor: int, position: int) -> int:
        """Visits in [0, position) whose successor is *successor*."""
        checkpoint = min(position // self.sample, len(self.checkpoints) - 1)
        count = self.checkpoints[checkpoint].get(successor, 0)
        for index in range(checkpoint * self.sample, position):
            if self.successors[index] == successor:
                count += 1
        return count


class GBWT:
    """Multi-string BWT over haplotype node paths.

    Args:
        paths: Haplotype walks as sequences of node ids.
        names: Optional path names (defaults to ``path0 .. pathN``).
        rank_sample: Checkpoint spacing inside records.
    """

    #: Virtual predecessor id for visits that begin a path.
    _PATH_START = -2

    def __init__(
        self,
        paths: Sequence[Sequence[int]],
        names: Sequence[str] | None = None,
        rank_sample: int = 16,
    ) -> None:
        if not paths:
            raise IndexError_("GBWT needs at least one path")
        if any(len(path) == 0 for path in paths):
            raise IndexError_("GBWT paths must be non-empty")
        if rank_sample < 1:
            raise IndexError_("rank_sample must be positive")
        self._paths: list[tuple[int, ...]] = [tuple(path) for path in paths]
        if names is None:
            names = [f"path{i}" for i in range(len(paths))]
        if len(names) != len(paths):
            raise IndexError_("names/paths length mismatch")
        self._names = list(names)
        self._rank_sample = rank_sample
        self._records: dict[int, _Record] = {}
        self._build()

    @classmethod
    def from_graph(cls, graph: SequenceGraph, rank_sample: int = 16) -> "GBWT":
        """Build from the haplotype paths stored in *graph*."""
        names = graph.path_names()
        if not names:
            raise IndexError_("graph has no paths to index")
        return cls(
            paths=[graph.path(name).nodes for name in names],
            names=names,
            rank_sample=rank_sample,
        )

    # ------------------------------------------------------------------
    # construction

    def _build(self) -> None:
        # Global prefix-sorted order: the reverse prefix of a visit
        # (p, i) is the suffix of reversed(p) starting at len(p)-i.
        # Build one text of all reversed paths separated by sentinels and
        # rank every suffix once.
        min_id = min(min(path) for path in self._paths)
        if min_id < 0:
            raise IndexError_("node ids must be non-negative")
        shift = 2  # reserve 0 for the global terminator, 1 for separators
        text: list[int] = []
        visit_suffix: dict[tuple[int, int], int] = {}
        for path_index, path in enumerate(self._paths):
            for reverse_offset, node_id in enumerate(reversed(path)):
                step_index = len(path) - 1 - reverse_offset
                # Suffix starting at this reversed position spells the
                # reverse prefix *including* the visited node; we want the
                # prefix strictly before the visit, so record the position
                # one past it (suffix of the predecessor chain).
                visit_suffix[(path_index, step_index)] = len(text) + 1
                text.append(node_id + shift)
            text.append(1)  # separator (compares below all real ids)
        text.append(0)  # global terminator
        sa = suffix_array(text)
        suffix_rank = [0] * len(text)
        for rank, position in enumerate(sa):
            suffix_rank[position] = rank

        # Collect visits per node, ordered by (reverse-prefix rank).
        visits: dict[int, list[tuple[int, int, int]]] = {}
        for path_index, path in enumerate(self._paths):
            for step_index, node_id in enumerate(path):
                key = visit_suffix[(path_index, step_index)]
                rank = suffix_rank[key] if key < len(text) else -1
                visits.setdefault(node_id, []).append((rank, path_index, step_index))

        for node_id, node_visits in visits.items():
            node_visits.sort()
            successors: list[int] = []
            positions: list[tuple[int, int]] = []
            predecessor_counts: dict[int, int] = {}
            for _, path_index, step_index in node_visits:
                path = self._paths[path_index]
                successor = path[step_index + 1] if step_index + 1 < len(path) else ENDMARKER
                successors.append(successor)
                positions.append((path_index, step_index))
                predecessor = path[step_index - 1] if step_index > 0 else self._PATH_START
                predecessor_counts[predecessor] = predecessor_counts.get(predecessor, 0) + 1
            block_offset: dict[int, int] = {}
            total = 0
            for predecessor in sorted(predecessor_counts):
                block_offset[predecessor] = total
                total += predecessor_counts[predecessor]
            checkpoints = self._build_checkpoints(successors)
            self._records[node_id] = _Record(
                successors=successors,
                positions=positions,
                block_offset=block_offset,
                checkpoints=checkpoints,
                sample=self._rank_sample,
            )

    def _build_checkpoints(self, successors: list[int]) -> list[dict[int, int]]:
        checkpoints: list[dict[int, int]] = []
        running: dict[int, int] = {}
        for index, successor in enumerate(successors):
            if index % self._rank_sample == 0:
                checkpoints.append(dict(running))
            running[successor] = running.get(successor, 0) + 1
        return checkpoints

    # ------------------------------------------------------------------
    # queries

    @property
    def path_count(self) -> int:
        return len(self._paths)

    @property
    def node_count(self) -> int:
        return len(self._records)

    @property
    def total_visits(self) -> int:
        return sum(len(record.successors) for record in self._records.values())

    def path_name(self, path_index: int) -> str:
        return self._names[path_index]

    def contains_node(self, node_id: int) -> bool:
        return node_id in self._records

    def full_state(self, node_id: int) -> GBWTState:
        """State covering every visit of *node_id* (empty if absent)."""
        record = self._records.get(node_id)
        if record is None:
            return GBWTState(node_id, 0, 0)
        return GBWTState(node_id, 0, len(record.successors))

    def extend(self, state: GBWTState, node_id: int) -> GBWTState:
        """Extend *state* by one node via last-first mapping."""
        if state.is_empty:
            return GBWTState(node_id, 0, 0)
        record = self._records[state.node_id]
        target = self._records.get(node_id)
        if target is None:
            return GBWTState(node_id, 0, 0)
        offset = target.block_offset.get(state.node_id)
        if offset is None:
            return GBWTState(node_id, 0, 0)
        start = offset + record.rank(node_id, state.start)
        end = offset + record.rank(node_id, state.end)
        return GBWTState(node_id, start, end)

    def find(self, node_sequence: Iterable[int]) -> GBWTState:
        """Search state of haplotype positions matching *node_sequence*.

        This is the extracted GBWT kernel operation (Section 3): the
        returned state's size is the number of haplotype occurrences, and
        :meth:`successors` enumerates the haplotype-consistent next nodes.
        """
        iterator = iter(node_sequence)
        try:
            first = next(iterator)
        except StopIteration:
            raise IndexError_("find() needs a non-empty node sequence") from None
        state = self.full_state(first)
        for node_id in iterator:
            if state.is_empty:
                return GBWTState(node_id, 0, 0)
            state = self.extend(state, node_id)
        return state

    def successors(self, state: GBWTState) -> dict[int, int]:
        """Haplotype-consistent next nodes of *state*, with visit counts.

        ``ENDMARKER`` counts haplotypes that end at the state.
        """
        if state.is_empty:
            return {}
        record = self._records[state.node_id]
        counts: dict[int, int] = {}
        for index in range(state.start, state.end):
            successor = record.successors[index]
            counts[successor] = counts.get(successor, 0) + 1
        return counts

    def locate(self, state: GBWTState) -> list[tuple[str, int]]:
        """(path name, step index) of each visit in *state*.

        The step index refers to the *last* node of the searched sequence.
        """
        if state.is_empty:
            return []
        record = self._records[state.node_id]
        out = []
        for index in range(state.start, state.end):
            path_index, step_index = record.positions[index]
            out.append((self._names[path_index], step_index))
        return sorted(out)

    def count_occurrences(self, node_sequence: Sequence[int]) -> int:
        """Occurrences of *node_sequence* across all haplotype paths."""
        return self.find(node_sequence).size
