"""Minimizer seeding for sequences and pangenome graphs.

Most Seq2Graph tools reviewed in the paper use minimizer seeding
(Section 2.1): the same computation as Seq2Seq minimizers, but the index
maps k-mer hashes to *graph positions* rather than linear coordinates.
Like vg Giraffe, the graph index is built from the haplotype paths so
every indexed k-mer is one that actually occurs in a haplotype.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IndexError_
from repro.graph.model import SequenceGraph
from repro.sequence.alphabet import BASE_TO_CODE, reverse_complement

_MASK64 = (1 << 64) - 1


def hash64(value: int) -> int:
    """Invertible 64-bit integer mix (minimap2's hash64 without mask)."""
    value &= _MASK64
    value = (~value + (value << 21)) & _MASK64
    value ^= value >> 24
    value = (value + (value << 3) + (value << 8)) & _MASK64
    value ^= value >> 14
    value = (value + (value << 2) + (value << 4)) & _MASK64
    value ^= value >> 28
    value = (value + (value << 31)) & _MASK64
    return value


def encode_kmer(kmer: str) -> int:
    """2-bit packed integer code of *kmer* (A=0 C=1 G=2 T=3, left base high)."""
    code = 0
    for base in kmer:
        if base not in BASE_TO_CODE:
            raise IndexError_(f"cannot encode k-mer containing {base!r}")
        code = (code << 2) | BASE_TO_CODE[base]
    return code


@dataclass(frozen=True)
class Minimizer:
    """One window minimizer.

    Attributes:
        hash_value: Hash of the canonical k-mer.
        position: 0-based start of the k-mer on the source sequence.
        is_reverse: True if the canonical strand is the reverse complement.
    """

    hash_value: int
    position: int
    is_reverse: bool


def canonical_hash(kmer: str) -> tuple[int, bool]:
    """Hash of the canonical (strand-independent) form of *kmer*.

    Returns (hash, is_reverse): is_reverse is True when the reverse
    complement is the canonical strand.
    """
    forward = hash64(encode_kmer(kmer))
    backward = hash64(encode_kmer(reverse_complement(kmer)))
    if backward < forward:
        return backward, True
    return forward, False


def minimizers(sequence: str, k: int = 15, w: int = 10) -> list[Minimizer]:
    """Window minimizers of *sequence*.

    For every window of *w* consecutive k-mers the smallest canonical hash
    is selected; consecutive duplicates collapse.  K-mers containing ``N``
    are skipped (their window contributes nothing).
    """
    if k < 2 or w < 1:
        raise IndexError_("require k >= 2 and w >= 1")
    n_kmers = len(sequence) - k + 1
    if n_kmers <= 0:
        return []
    hashes: list[tuple[int, bool] | None] = []
    for offset in range(n_kmers):
        kmer = sequence[offset : offset + k]
        if "N" in kmer:
            hashes.append(None)
        else:
            hashes.append(canonical_hash(kmer))
    selected: list[Minimizer] = []
    last: tuple[int, int] | None = None
    for window_start in range(max(1, n_kmers - w + 1)):
        best: tuple[int, int, bool] | None = None
        for offset in range(window_start, min(window_start + w, n_kmers)):
            entry = hashes[offset]
            if entry is None:
                continue
            hash_value, is_reverse = entry
            if best is None or hash_value < best[0]:
                best = (hash_value, offset, is_reverse)
        if best is None:
            continue
        key = (best[0], best[1])
        if key != last:
            selected.append(Minimizer(best[0], best[1], best[2]))
            last = key
    return selected


@dataclass(frozen=True)
class GraphHit:
    """A minimizer occurrence in the graph: node id + offset + strand."""

    node_id: int
    offset: int
    is_reverse: bool


@dataclass(frozen=True)
class Seed:
    """A seed: a read minimizer matched to a graph position."""

    read_position: int
    node_id: int
    node_offset: int
    is_reverse: bool


class SequenceMinimizerIndex:
    """Minimizer index over linear sequences (the Seq2Seq baseline)."""

    def __init__(self, k: int = 15, w: int = 10) -> None:
        self.k = k
        self.w = w
        self._table: dict[int, list[tuple[str, int, bool]]] = {}

    def add(self, name: str, sequence: str) -> None:
        """Index *sequence* under *name*."""
        for minimizer in minimizers(sequence, self.k, self.w):
            self._table.setdefault(minimizer.hash_value, []).append(
                (name, minimizer.position, minimizer.is_reverse)
            )

    def lookup(self, hash_value: int) -> list[tuple[str, int, bool]]:
        return self._table.get(hash_value, [])

    def seeds_for(self, read_sequence: str) -> list[tuple[int, str, int, bool]]:
        """(read_pos, ref_name, ref_pos, opposite_strands) seed tuples."""
        seeds = []
        for minimizer in minimizers(read_sequence, self.k, self.w):
            for name, position, ref_reverse in self.lookup(minimizer.hash_value):
                seeds.append(
                    (minimizer.position, name, position, minimizer.is_reverse != ref_reverse)
                )
        return seeds

    @property
    def distinct_minimizers(self) -> int:
        return len(self._table)


class GraphMinimizerIndex:
    """Minimizer index over a pangenome graph, built from haplotype paths.

    Every minimizer of every path is indexed at its graph position
    (node id + offset).  Shared path regions dedupe to the same position,
    so graph size — not path count — bounds the index.
    """

    def __init__(self, graph: SequenceGraph, k: int = 15, w: int = 10) -> None:
        if graph.path_count == 0:
            raise IndexError_("graph minimizer index needs at least one path")
        self.k = k
        self.w = w
        self.graph = graph
        self._table: dict[int, list[GraphHit]] = {}
        self._build()

    def _build(self) -> None:
        seen: set[tuple[int, int, int]] = set()
        for path in self.graph.paths():
            sequence = self.graph.path_sequence(path.name)
            # Cumulative node starts for mapping linear offsets back.
            starts: list[int] = []
            total = 0
            for node_id in path.nodes:
                starts.append(total)
                total += len(self.graph.node(node_id))
            for minimizer in minimizers(sequence, self.k, self.w):
                node_index = _find_step(starts, minimizer.position)
                node_id = path.nodes[node_index]
                node_offset = minimizer.position - starts[node_index]
                key = (minimizer.hash_value, node_id, node_offset)
                if key in seen:
                    continue
                seen.add(key)
                self._table.setdefault(minimizer.hash_value, []).append(
                    GraphHit(node_id, node_offset, minimizer.is_reverse)
                )

    def lookup(self, hash_value: int) -> list[GraphHit]:
        return self._table.get(hash_value, [])

    def seeds_for(self, read_sequence: str, max_hits_per_minimizer: int = 64) -> list[Seed]:
        """Seeds for a read: all graph hits of its minimizers.

        Overly repetitive minimizers (more than *max_hits_per_minimizer*
        graph hits) are dropped, mirroring the hard hit caps every real
        tool applies.
        """
        seeds: list[Seed] = []
        for minimizer in minimizers(read_sequence, self.k, self.w):
            hits = self.lookup(minimizer.hash_value)
            if not hits or len(hits) > max_hits_per_minimizer:
                continue
            for hit in hits:
                seeds.append(
                    Seed(
                        read_position=minimizer.position,
                        node_id=hit.node_id,
                        node_offset=hit.offset,
                        is_reverse=minimizer.is_reverse != hit.is_reverse,
                    )
                )
        return seeds

    def oriented_seeds(
        self, read_sequence: str, max_hits_per_minimizer: int = 64
    ) -> tuple[list[Seed], bool]:
        """Seeds for the better-matching orientation of the read.

        Real mappers try both strands; here the majority strand of the
        forward seeding decides, and reverse-majority reads are re-seeded
        as their reverse complement.  Returns (seeds, flipped).
        """
        from repro.sequence.alphabet import reverse_complement

        seeds = self.seeds_for(read_sequence, max_hits_per_minimizer)
        reverse_hits = sum(1 for seed in seeds if seed.is_reverse)
        if reverse_hits * 2 <= len(seeds):
            return [s for s in seeds if not s.is_reverse], False
        flipped = self.seeds_for(
            reverse_complement(read_sequence), max_hits_per_minimizer
        )
        return [s for s in flipped if not s.is_reverse], True

    @property
    def distinct_minimizers(self) -> int:
        return len(self._table)

    @property
    def total_hits(self) -> int:
        return sum(len(hits) for hits in self._table.values())


def _find_step(starts: list[int], position: int) -> int:
    """Index of the path step containing linear *position* (binary search)."""
    low, high = 0, len(starts) - 1
    while low < high:
        mid = (low + high + 1) // 2
        if starts[mid] <= position:
            low = mid
        else:
            high = mid - 1
    return low
