"""Index substrate: minimizers, suffix structures, FM-index, GBWT."""

from repro.index.fmindex import FMIndex, FMRange
from repro.index.gbwt import ENDMARKER, GBWT, GBWTState
from repro.index.minimizer import (
    GraphHit,
    GraphMinimizerIndex,
    Minimizer,
    Seed,
    SequenceMinimizerIndex,
    canonical_hash,
    encode_kmer,
    hash64,
    minimizers,
)
from repro.index.suffix import (
    bwt,
    bwt_from_suffix_array,
    inverse_bwt,
    longest_common_prefix_array,
    suffix_array,
    suffix_array_of_string,
)

__all__ = [
    "FMIndex", "FMRange",
    "ENDMARKER", "GBWT", "GBWTState",
    "GraphHit", "GraphMinimizerIndex", "Minimizer", "Seed",
    "SequenceMinimizerIndex", "canonical_hash", "encode_kmer", "hash64",
    "minimizers",
    "bwt", "bwt_from_suffix_array", "inverse_bwt",
    "longest_common_prefix_array", "suffix_array", "suffix_array_of_string",
]
