"""Suffix arrays and the Burrows–Wheeler transform.

Foundation for the FM-index (Seq2Seq seeding baseline) and the GBWT
(haplotype-aware graph index).  The suffix array is built with the
prefix-doubling algorithm (O(n log^2 n)) over arbitrary integer alphabets,
which the GBWT needs because its "characters" are graph node identifiers.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import IndexError_


def suffix_array(text: Sequence[int]) -> list[int]:
    """Suffix array of an integer sequence via prefix doubling.

    Returns the permutation ``sa`` with ``sa[i]`` = start of the i-th
    smallest suffix.  The caller is responsible for appending a unique
    smallest sentinel if total ordering of rotations is required.
    """
    n = len(text)
    if n == 0:
        return []
    # Initial ranks: dense-rank the characters.
    order = sorted(range(n), key=lambda i: text[i])
    rank = [0] * n
    rank[order[0]] = 0
    for previous, current in zip(order, order[1:]):
        rank[current] = rank[previous] + (1 if text[current] != text[previous] else 0)

    k = 1
    sa = order
    while k < n:
        def sort_key(i: int) -> tuple[int, int]:
            return (rank[i], rank[i + k] if i + k < n else -1)

        sa = sorted(range(n), key=sort_key)
        new_rank = [0] * n
        new_rank[sa[0]] = 0
        for previous, current in zip(sa, sa[1:]):
            new_rank[current] = new_rank[previous] + (1 if sort_key(current) != sort_key(previous) else 0)
        rank = new_rank
        if rank[sa[-1]] == n - 1:
            break
        k *= 2
    return sa


def suffix_array_of_string(text: str) -> list[int]:
    """Suffix array of a string (by code point)."""
    return suffix_array([ord(ch) for ch in text])


def bwt_from_suffix_array(text: Sequence[int], sa: Sequence[int]) -> list[int]:
    """Burrows–Wheeler transform given a suffix array.

    ``bwt[i] = text[sa[i] - 1]`` (wrapping to the last character for the
    suffix starting at 0).  The text must end with a unique sentinel for
    the transform to be invertible.
    """
    n = len(text)
    if len(sa) != n:
        raise IndexError_("suffix array length does not match text length")
    return [text[(position - 1) % n] for position in sa]


def bwt(text: Sequence[int]) -> list[int]:
    """Burrows–Wheeler transform of an integer sequence."""
    return bwt_from_suffix_array(text, suffix_array(text))


def inverse_bwt(transformed: Sequence[int], sentinel: int) -> list[int]:
    """Invert a BWT whose text ended with a unique smallest *sentinel*.

    Returns the original text (sentinel included, at the end).
    """
    n = len(transformed)
    if n == 0:
        return []
    if list(transformed).count(sentinel) != 1:
        raise IndexError_("BWT must contain the sentinel exactly once")
    # LF mapping: stable order of each character's occurrences.
    counts: dict[int, int] = {}
    for symbol in transformed:
        counts[symbol] = counts.get(symbol, 0) + 1
    starts: dict[int, int] = {}
    total = 0
    for symbol in sorted(counts):
        starts[symbol] = total
        total += counts[symbol]
    occ_rank = [0] * n
    seen: dict[int, int] = {}
    for index, symbol in enumerate(transformed):
        occ_rank[index] = seen.get(symbol, 0)
        seen[symbol] = occ_rank[index] + 1
    lf = [starts[symbol] + occ_rank[index] for index, symbol in enumerate(transformed)]
    # Walk backwards from the sentinel row (row 0 holds the sentinel-first
    # rotation, whose BWT character is the last real character).  The walk
    # recovers the text as a rotation with the sentinel first; rotate it
    # back to sentinel-last.
    out: list[int] = []
    row = 0
    for _ in range(n):
        out.append(transformed[row])
        row = lf[row]
    out.reverse()
    return out[1:] + out[:1]


def longest_common_prefix_array(text: Sequence[int], sa: Sequence[int]) -> list[int]:
    """LCP array via Kasai's algorithm (useful for repeat statistics)."""
    n = len(text)
    if n == 0:
        return []
    rank = [0] * n
    for i, position in enumerate(sa):
        rank[position] = i
    lcp = [0] * n
    h = 0
    for position in range(n):
        if rank[position] > 0:
            other = sa[rank[position] - 1]
            while (
                position + h < n
                and other + h < n
                and text[position + h] == text[other + h]
            ):
                h += 1
            lcp[rank[position]] = h
            if h > 0:
                h -= 1
        else:
            h = 0
    return lcp
