"""FM-index over DNA text (the Seq2Seq seeding/filtering baseline).

The paper contrasts the GBWT against the classic base-pair FM-index used
in Seq2Seq mapping (Section 5.2): the four-letter alphabet makes occ-table
accesses unpredictable and memory-bandwidth-bound.  This implementation
keeps the classic structure — C array, checkpointed occurrence counts,
sampled suffix array — so characterization probes see the same access
pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IndexError_
from repro.sequence.alphabet import validate_dna
from repro.index.suffix import bwt_from_suffix_array, suffix_array

_SENTINEL = 0
_BASE_CODE = {"A": 1, "C": 2, "G": 3, "T": 4}
_CODE_BASE = {code: base for base, code in _BASE_CODE.items()}


@dataclass(frozen=True)
class FMRange:
    """A half-open row range [start, end) in the BWT matrix."""

    start: int
    end: int

    @property
    def size(self) -> int:
        return max(0, self.end - self.start)

    @property
    def is_empty(self) -> bool:
        return self.size == 0


class FMIndex:
    """FM-index with checkpointed occ counts and a sampled suffix array.

    Args:
        text: The DNA string to index (sentinel is appended internally).
        occ_sample: Occurrence-table checkpoint spacing.
        sa_sample: Suffix-array sampling rate for :meth:`locate`.
    """

    def __init__(self, text: str, occ_sample: int = 64, sa_sample: int = 8) -> None:
        validate_dna(text, name="FM-index text")
        if occ_sample < 1 or sa_sample < 1:
            raise IndexError_("sampling rates must be positive")
        self._text = text
        encoded = [_BASE_CODE[base] for base in text] + [_SENTINEL]
        self._sa = suffix_array(encoded)
        self._bwt = bwt_from_suffix_array(encoded, self._sa)
        self._occ_sample = occ_sample
        self._sa_sample = sa_sample
        self._counts = self._build_counts()
        self._checkpoints = self._build_checkpoints()
        self._sa_samples = {
            row: position
            for row, position in enumerate(self._sa)
            if position % sa_sample == 0
        }

    def __len__(self) -> int:
        return len(self._text)

    @property
    def text(self) -> str:
        return self._text

    def _build_counts(self) -> dict[int, int]:
        """C array: for each symbol, number of smaller symbols in the text."""
        histogram: dict[int, int] = {}
        for symbol in self._bwt:
            histogram[symbol] = histogram.get(symbol, 0) + 1
        counts: dict[int, int] = {}
        total = 0
        for symbol in sorted(histogram):
            counts[symbol] = total
            total += histogram[symbol]
        return counts

    def _build_checkpoints(self) -> list[dict[int, int]]:
        """Occurrence counts of every symbol at each checkpoint row."""
        checkpoints: list[dict[int, int]] = []
        running = {symbol: 0 for symbol in (_SENTINEL, *_BASE_CODE.values())}
        for row, symbol in enumerate(self._bwt):
            if row % self._occ_sample == 0:
                checkpoints.append(dict(running))
            running[symbol] += 1
        return checkpoints

    def _occ(self, symbol: int, row: int) -> int:
        """Occurrences of *symbol* in bwt[0:row], via checkpoint + scan."""
        checkpoint_index = min(row // self._occ_sample, len(self._checkpoints) - 1)
        count = self._checkpoints[checkpoint_index][symbol]
        for position in range(checkpoint_index * self._occ_sample, row):
            if self._bwt[position] == symbol:
                count += 1
        return count

    def backward_search(self, pattern: str) -> FMRange:
        """Row range of suffixes prefixed by *pattern* (empty if absent)."""
        validate_dna(pattern, name="pattern")
        start, end = 0, len(self._bwt)
        for base in reversed(pattern):
            symbol = _BASE_CODE[base]
            if symbol not in self._counts:
                return FMRange(0, 0)
            start = self._counts[symbol] + self._occ(symbol, start)
            end = self._counts[symbol] + self._occ(symbol, end)
            if start >= end:
                return FMRange(0, 0)
        return FMRange(start, end)

    def count(self, pattern: str) -> int:
        """Number of occurrences of *pattern* in the text."""
        return self.backward_search(pattern).size

    def locate(self, pattern: str, limit: int | None = None) -> list[int]:
        """Sorted text positions where *pattern* occurs.

        Walks LF-mappings from each matching row to the nearest sampled
        suffix-array entry, exactly like a production FM-index.
        """
        found = self.backward_search(pattern)
        rows = range(found.start, found.end)
        positions = sorted(self._resolve_row(row) for row in rows)
        if limit is not None:
            positions = positions[:limit]
        return positions

    def _resolve_row(self, row: int) -> int:
        steps = 0
        while row not in self._sa_samples:
            symbol = self._bwt[row]
            row = self._counts[symbol] + self._occ(symbol, row)
            steps += 1
        return (self._sa_samples[row] + steps) % (len(self._text) + 1)

    def extract(self, start: int, length: int) -> str:
        """Extract text[start:start+length] (convenience, from stored text)."""
        if start < 0 or start + length > len(self._text):
            raise IndexError_("extract range out of bounds")
        return self._text[start : start + length]
