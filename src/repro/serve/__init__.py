"""Benchmark-as-a-service: the always-on layer over the harness engine.

* :class:`~repro.serve.service.BenchService` — async submit/poll/wait/
  subscribe job API with request coalescing and admission control;
* :class:`~repro.serve.shards.ShardedResultStore` — digest-prefix
  sharded, LRU-bounded report cache (the flat
  ``benchmarks/results/cache/`` layout's replacement);
* :mod:`repro.serve.loadgen` — seeded request distributions and the
  replay driver behind ``benchmarks/bench_serve_load.py`` and
  ``repro serve bench``.
"""

from repro.errors import ServeError, ServeTimeout, ServiceOverloaded
from repro.serve.loadgen import (
    DEFAULT_KERNELS,
    ReplayResult,
    TraceSpec,
    duplicate_fraction,
    generate_requests,
    replay,
    working_set,
)
from repro.serve.service import (
    CACHED,
    COALESCED,
    DONE,
    EXECUTED,
    QUEUED,
    RUNNING,
    BenchService,
    JobHandle,
    JobStatus,
    counter_total,
    plan_handles,
)
from repro.serve.shards import ShardedResultStore

__all__ = [
    "BenchService", "JobHandle", "JobStatus", "ShardedResultStore",
    "TraceSpec", "ReplayResult", "generate_requests", "working_set",
    "duplicate_fraction", "replay", "counter_total", "plan_handles",
    "ServeError", "ServeTimeout", "ServiceOverloaded",
    "QUEUED", "RUNNING", "DONE", "EXECUTED", "COALESCED", "CACHED",
    "DEFAULT_KERNELS",
]
