"""Seeded request distributions and a replay driver for the service.

The "millions of users" axis made measurable: :func:`generate_requests`
expands a small working set of distinct jobs into a long, seeded request
trace with a skewed popularity distribution (rank-weighted, so a few
jobs are hot and the tail is cold — the shape a shared benchmarking
service actually sees) plus injected duplicate bursts (back-to-back
identical requests, the pattern that exercises in-flight coalescing
rather than the result cache).  :func:`replay` pushes a trace through a
:class:`~repro.serve.service.BenchService`, honouring admission-control
backpressure (rejected submissions retry after the advertised
``retry_after``), and reduces the handles to the numbers the load bench
reports: p50/p99 latency, cache-hit rate, coalesce rate.

Everything is a pure function of its seed — two replays of the same
spec submit byte-identical job sequences.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ServiceOverloaded
from repro.harness.executor import Job, compile_plan
from repro.harness.store import job_digest
from repro.serve.service import CACHED, COALESCED, EXECUTED, BenchService

#: Default kernel pool for generated traces — the cheaper suite kernels,
#: so a thousand-request replay stays interactive.
DEFAULT_KERNELS = ("tsu", "gbwt", "gssw", "ssw")


@dataclass(frozen=True)
class TraceSpec:
    """Parameters of a seeded request trace."""

    requests: int = 1000
    seed: int = 0
    kernels: tuple[str, ...] = DEFAULT_KERNELS
    #: Dataset seeds to cross with the kernels; the working set is
    #: ``len(kernels) * len(dataset_seeds)`` distinct jobs.
    dataset_seeds: tuple[int, ...] = (0, 1, 2)
    scale: float = 0.05
    scenario: str = "default"
    studies: tuple[str, ...] = ("timing",)
    #: Length of each injected duplicate burst (0 disables injection).
    burst: int = 8
    #: Approximate fraction of the trace occupied by bursts.
    burst_fraction: float = 0.2


@dataclass
class ReplayResult:
    """What one replay measured."""

    submitted: int = 0
    completed: int = 0
    errors: int = 0
    rejected: int = 0
    retries: int = 0
    latencies: list[float] = field(default_factory=list)
    origins: dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def executed(self) -> int:
        return self.origins.get(EXECUTED, 0)

    @property
    def coalesced(self) -> int:
        return self.origins.get(COALESCED, 0)

    @property
    def cache_hits(self) -> int:
        return self.origins.get(CACHED, 0)

    def rate(self, origin: str) -> float:
        return self.origins.get(origin, 0) / max(1, self.completed)

    def percentile(self, q: float) -> float:
        """Exact latency percentile (seconds) over completed requests."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q))


def working_set(spec: TraceSpec) -> list[Job]:
    """The distinct jobs a trace draws from (kernels × dataset seeds)."""
    jobs = []
    for seed in spec.dataset_seeds:
        plan = compile_plan(
            spec.kernels, studies=spec.studies, scale=spec.scale,
            seed=seed, scenario=spec.scenario,
        )
        jobs.extend(plan.jobs)
    return jobs


def generate_requests(spec: TraceSpec) -> list[Job]:
    """A seeded request trace of ``spec.requests`` jobs.

    Skewed popularity (weight ``1/(rank+1)`` over a seed-shuffled
    working set) with duplicate bursts spliced in at seeded offsets.
    """
    jobs = working_set(spec)
    rng = np.random.default_rng(spec.seed)
    order = rng.permutation(len(jobs))
    weights = 1.0 / (1.0 + np.arange(len(jobs)))
    popularity = np.empty(len(jobs))
    popularity[order] = weights / weights.sum()

    picks = rng.choice(len(jobs), size=spec.requests, p=popularity)
    trace = [jobs[index] for index in picks]
    if spec.burst > 1 and spec.burst_fraction > 0:
        n_bursts = max(1, int(spec.requests * spec.burst_fraction
                              / spec.burst))
        starts = rng.integers(0, max(1, spec.requests - spec.burst),
                              size=n_bursts)
        for start in starts:
            victim = trace[start]
            trace[start:start + spec.burst] = [victim] * min(
                spec.burst, spec.requests - start
            )
    return trace


def duplicate_fraction(trace: list[Job]) -> float:
    """The trace's theoretical duplicate fraction: the share of requests
    whose digest already appeared earlier — exactly the share a perfect
    dedup layer (result cache + in-flight coalescing) serves without a
    new execution."""
    if not trace:
        return 0.0
    unique = len({job_digest(job) for job in trace})
    return 1.0 - unique / len(trace)


def replay(service: BenchService, trace: list[Job],
           wait_timeout: float = 300.0,
           max_retries: int = 100) -> ReplayResult:
    """Submit *trace* as fast as admission control allows; wait for
    every report; reduce to a :class:`ReplayResult`.

    A rejected submission sleeps the advertised ``retry_after`` and
    retries (bounded by *max_retries*); its latency clock starts at the
    first attempt, so backpressure shows up in the tail.
    """
    result = ReplayResult()
    handles = []
    started = time.perf_counter()
    for job in trace:
        first_attempt = time.perf_counter()
        for _ in range(max_retries):
            try:
                handle = service.submit_job(job)
            except ServiceOverloaded as overload:
                result.rejected += 1
                result.retries += 1
                time.sleep(min(overload.retry_after, 0.5))
                continue
            handle.submitted = first_attempt
            break
        else:
            raise ServiceOverloaded(
                f"submission for {job.kernel} rejected {max_retries} times",
                retry_after=1.0,
            )
        handles.append(handle)
        result.submitted += 1
    for handle in handles:
        report = handle.wait(timeout=wait_timeout)
        result.completed += 1
        if report.error is not None:
            result.errors += 1
        origin = handle.origin or "unknown"
        result.origins[origin] = result.origins.get(origin, 0) + 1
        latency = handle.latency_seconds
        if latency is not None:
            result.latencies.append(latency)
    result.wall_seconds = time.perf_counter() - started
    return result
