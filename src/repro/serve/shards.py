"""The sharded result store — the service's bounded report cache.

:class:`~repro.harness.store.ResultStore` kept every cached report as a
flat ``<digest>.json`` directly under ``benchmarks/results/cache/``.
That layout has two production problems: a thousand-scenario sweep puts
thousands of files in one directory, and nothing ever bounds on-disk
growth.  :class:`ShardedResultStore` keeps the same ``load``/``save``
interface (it *is* a ``ResultStore``, so ``execute_plan`` and the benches
use it unchanged) but stores reports in digest-prefix shards with an
on-disk LRU index and a configurable byte/entry budget::

    benchmarks/results/cache/
        index.json            # {"clock", "entries": {digest: {...}}}
        index.lock            # flock target for cross-process updates
        3f/
            3fa1b2c3d4e5f607.json
        a9/
            a9....json

* **Sharding** — ``<digest[:2]>/<digest>.json`` caps per-directory fanout
  at 256 shards regardless of sweep size.
* **LRU index** — every hit bumps a logical clock in ``index.json``;
  eviction removes the least-recently-used entries first.  The index is
  advisory: if it is missing or corrupt it is rebuilt by scanning the
  shards, and entry files remain plain per-report JSON.
* **Budget + background eviction** — ``max_bytes`` / ``max_entries``
  (or ``$REPRO_CACHE_MAX_BYTES`` / ``$REPRO_CACHE_MAX_ENTRIES``) form a
  high-water mark; a save that crosses it schedules eviction on a daemon
  thread (``background_eviction=False`` makes it synchronous for
  deterministic tests).  ``serve.cache.evictions`` counts removals and
  ``serve.cache.bytes`` tracks the footprint.
* **Migration** — on first use, flat entries from the old layout are
  transparently moved into their shards (valid ones) or cleanly removed
  (unreadable / incompatible-schema ones), so existing caches survive
  the upgrade with no stale-path crashes.

Cross-process safety mirrors the dataset ``ArtifactStore``: index
read-modify-writes happen under an advisory ``flock`` (plus an
in-process mutex), and both index and entries are written atomically
(temp file + rename).
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

try:  # pragma: no cover - platform guard
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.harness.runner import SCHEMA_VERSION, KernelReport
from repro.harness.store import ResultStore, job_digest, job_key
from repro.obs import metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.executor import Job

#: ``<digest>.json`` filenames eligible for shard migration / rebuild.
_DIGEST_NAME = re.compile(r"^[0-9a-f]{16}\.json$")

#: Index filename (lives next to the shards, never inside one).
INDEX_NAME = "index.json"


def _env_int(name: str) -> int | None:
    value = os.environ.get(name)
    if not value:
        return None
    try:
        return int(value)
    except ValueError:
        return None


@contextmanager
def _flocked(path: Path) -> Iterator[None]:
    """Hold an exclusive advisory lock on *path* (created if absent)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = os.open(path, os.O_CREAT | os.O_RDWR)
    try:
        if fcntl is not None:
            fcntl.flock(handle, fcntl.LOCK_EX)
        yield
    finally:
        if fcntl is not None:
            fcntl.flock(handle, fcntl.LOCK_UN)
        os.close(handle)


def _atomic_write_text(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        prefix=path.name + ".tmp")
    try:
        with os.fdopen(handle, "w") as tmp:
            tmp.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class ShardedResultStore(ResultStore):
    """Digest-prefix-sharded, LRU-bounded :class:`ResultStore`.

    ``max_bytes`` / ``max_entries`` of ``None`` fall back to the
    ``$REPRO_CACHE_MAX_BYTES`` / ``$REPRO_CACHE_MAX_ENTRIES``
    environment knobs; both unset means unbounded (shards and the LRU
    index still apply, eviction never triggers).
    """

    def __init__(self, root: str | Path | None = None,
                 max_bytes: int | None = None,
                 max_entries: int | None = None,
                 background_eviction: bool = True) -> None:
        super().__init__(root)
        self.max_bytes = (max_bytes if max_bytes is not None
                          else _env_int("REPRO_CACHE_MAX_BYTES"))
        self.max_entries = (max_entries if max_entries is not None
                            else _env_int("REPRO_CACHE_MAX_ENTRIES"))
        self.background_eviction = background_eviction
        self._mutex = threading.Lock()
        self._bg_lock = threading.Lock()
        self._evictor: threading.Thread | None = None
        self._opened = False

    # -- paths ---------------------------------------------------------

    def shard_path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def path(self, job: "Job") -> Path:
        return self.shard_path(job_digest(job))

    @property
    def _index_path(self) -> Path:
        return self.root / INDEX_NAME

    @property
    def _lock_path(self) -> Path:
        return self.root / "index.lock"

    # -- index plumbing ------------------------------------------------

    def _read_index(self) -> dict:
        try:
            payload = json.loads(self._index_path.read_text())
        except (OSError, ValueError):
            payload = None
        if (not isinstance(payload, dict)
                or not isinstance(payload.get("entries"), dict)):
            return self._rebuild_index()
        payload.setdefault("clock", 0)
        return payload

    def _write_index(self, index: dict) -> None:
        _atomic_write_text(self._index_path,
                           json.dumps(index, sort_keys=True))

    def _rebuild_index(self) -> dict:
        """Reconstruct the LRU index by scanning the shards (used when
        ``index.json`` is missing or corrupt — the entries themselves
        are the source of truth)."""
        index: dict = {"clock": 0, "entries": {}}
        if not self.root.is_dir():
            return index
        for entry in sorted(self.root.glob("??/*.json")):
            if not _DIGEST_NAME.match(entry.name):
                continue
            meta = self._entry_meta(entry)
            if meta is None:
                continue
            index["clock"] += 1
            meta["used"] = index["clock"]
            index["entries"][entry.stem] = meta
        return index

    @staticmethod
    def _entry_meta(path: Path) -> dict | None:
        """Index metadata for an entry file, or ``None`` if the file is
        not a compatible cached report."""
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if (not isinstance(payload, dict)
                or payload.get("schema_version") != SCHEMA_VERSION):
            return None
        job = payload.get("job") or {}
        return {
            "bytes": path.stat().st_size,
            "kernel": job.get("kernel", "?"),
            "scenario": job.get("scenario", "?"),
            "scale": job.get("scale", "?"),
            "studies": job.get("studies", []),
        }

    @contextmanager
    def _index(self) -> Iterator[dict]:
        """Exclusive read-modify-write access to the on-disk index."""
        with self._mutex, _flocked(self._lock_path):
            index = self._read_index()
            yield index
            self._write_index(index)
            metrics.gauge("serve.cache.bytes").set(float(sum(
                meta.get("bytes", 0) for meta in index["entries"].values()
            )))

    # -- flat-layout migration -----------------------------------------

    def _ensure_open(self) -> None:
        """One-time (per instance) migration of flat-layout entries.

        Valid flat ``<digest>.json`` reports move into their shard and
        join the index; unreadable or schema-incompatible ones are
        removed (cleanly invalidated) so no stale path is ever served.
        """
        if self._opened:
            return
        self._opened = True
        if not self.root.is_dir():
            return
        flat = [entry for entry in self.root.glob("*.json")
                if entry.name != INDEX_NAME]
        if not flat:
            return
        with self._index() as index:
            for entry in flat:
                meta = (self._entry_meta(entry)
                        if _DIGEST_NAME.match(entry.name) else None)
                if meta is None:
                    entry.unlink(missing_ok=True)
                    metrics.counter("serve.cache.migrated",
                                    outcome="invalidated").inc()
                    continue
                target = self.shard_path(entry.stem)
                target.parent.mkdir(parents=True, exist_ok=True)
                os.replace(entry, target)
                index["clock"] += 1
                meta["used"] = index["clock"]
                index["entries"][entry.stem] = meta
                metrics.counter("serve.cache.migrated",
                                outcome="moved").inc()

    # -- load / save ----------------------------------------------------

    def load(self, job: "Job") -> KernelReport | None:
        self._ensure_open()
        report = super().load(job)
        if report is not None:
            self._touch(job_digest(job))
        return report

    def _touch(self, digest: str) -> None:
        with self._index() as index:
            meta = index["entries"].get(digest)
            if meta is None:  # saved by an older layout scan; re-scan
                meta = self._entry_meta(self.shard_path(digest))
                if meta is None:
                    return
                index["entries"][digest] = meta
            index["clock"] += 1
            meta["used"] = index["clock"]

    def save(self, job: "Job", report: KernelReport) -> Path | None:
        if report.error is not None:
            return None
        self._ensure_open()
        digest = job_digest(job)
        path = self.shard_path(digest)
        payload = {
            "schema_version": SCHEMA_VERSION,
            "job": job_key(job),
            "report": self._report_payload(report),
        }
        _atomic_write_text(path, json.dumps(payload, indent=2,
                                            sort_keys=True))
        key = job_key(job)
        with self._index() as index:
            index["clock"] += 1
            index["entries"][digest] = {
                "bytes": path.stat().st_size,
                "kernel": key["kernel"],
                "scenario": key["scenario"],
                "scale": key["scale"],
                "studies": key["studies"],
                "used": index["clock"],
            }
        self._maybe_evict()
        return path

    @staticmethod
    def _report_payload(report: KernelReport) -> dict:
        from dataclasses import asdict

        return asdict(report)

    # -- budget / eviction ---------------------------------------------

    def _over_budget(self, index: dict) -> bool:
        entries = index["entries"]
        if self.max_entries is not None and len(entries) > self.max_entries:
            return True
        if self.max_bytes is not None:
            total = sum(meta.get("bytes", 0) for meta in entries.values())
            if total > self.max_bytes:
                return True
        return False

    def _maybe_evict(self) -> None:
        if self.max_bytes is None and self.max_entries is None:
            return
        if not self.background_eviction:
            self.evict()
            return
        with self._bg_lock:
            if self._evictor is not None and self._evictor.is_alive():
                return  # an evictor is already draining the overage
            self._evictor = threading.Thread(
                target=self.evict, name="repro-serve-evictor", daemon=True
            )
            self._evictor.start()

    def join_eviction(self, timeout: float | None = 5.0) -> None:
        """Wait for an in-flight background eviction (tests, shutdown)."""
        with self._bg_lock:
            evictor = self._evictor
        if evictor is not None:
            evictor.join(timeout=timeout)

    def evict(self) -> tuple[int, int]:
        """Drop least-recently-used entries until within budget; returns
        ``(entries, bytes)`` removed."""
        removed = freed = 0
        with self._index() as index:
            entries = index["entries"]
            by_age = sorted(entries, key=lambda d: entries[d].get("used", 0))
            for digest in by_age:
                if not self._over_budget(index):
                    break
                meta = entries.pop(digest)
                self.shard_path(digest).unlink(missing_ok=True)
                removed += 1
                freed += meta.get("bytes", 0)
        if removed:
            metrics.counter("serve.cache.evictions").inc(removed)
        return removed, freed

    # -- maintenance (repro cache {list,gc}) ----------------------------

    def total_bytes(self) -> int:
        self._ensure_open()
        with self._index() as index:
            return sum(meta.get("bytes", 0)
                       for meta in index["entries"].values())

    def entries(self) -> list[dict]:
        """Index metadata for every cached report, most recent first."""
        self._ensure_open()
        with self._index() as index:
            found = [{"digest": digest, **meta}
                     for digest, meta in index["entries"].items()]
        found.sort(key=lambda meta: -meta.get("used", 0))
        return found

    def gc(self, everything: bool = False) -> tuple[int, int]:
        """Remove unservable entries and enforce the budget; returns
        ``(entries, bytes)`` removed.

        Unservable means unreadable or written by a different report
        schema.  Orphan files (on disk but unindexed) are adopted into
        the index; orphan index rows (no file) are dropped.
        ``everything=True`` clears the store.
        """
        self._ensure_open()
        if everything:
            freed = self.total_bytes()
            return self.clear(), freed
        removed = freed = 0
        with self._index() as index:
            entries = index["entries"]
            on_disk = {path.stem: path for path in self.root.glob("??/*.json")
                       if _DIGEST_NAME.match(path.name)}
            for digest in list(entries):
                if digest not in on_disk:
                    del entries[digest]
            for digest, path in on_disk.items():
                meta = self._entry_meta(path)
                if meta is None:  # stale schema / corrupt: unservable
                    freed += path.stat().st_size
                    path.unlink(missing_ok=True)
                    entries.pop(digest, None)
                    removed += 1
                elif digest not in entries:
                    index["clock"] += 1
                    meta["used"] = index["clock"]
                    entries[digest] = meta
        evicted, evicted_bytes = self.evict()
        return removed + evicted, freed + evicted_bytes

    def clear(self) -> int:
        """Delete every cached report (and the index); returns the
        number of entries removed."""
        import shutil

        removed = 0
        if not self.root.is_dir():
            return removed
        with self._mutex, _flocked(self._lock_path):
            for entry in list(self.root.iterdir()):
                if entry.is_dir():
                    removed += sum(1 for p in entry.glob("*.json")
                                   if _DIGEST_NAME.match(p.name))
                    shutil.rmtree(entry, ignore_errors=True)
                elif entry.suffix == ".json" and entry.name != INDEX_NAME:
                    removed += 1
                    entry.unlink(missing_ok=True)
            self._index_path.unlink(missing_ok=True)
        return removed
