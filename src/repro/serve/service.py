"""The benchmark-as-a-service layer: an async job API over the engine.

:class:`BenchService` turns the batch-shaped harness (compile a plan,
execute it, collect reports) into a long-running service::

    with BenchService(workers=4) as service:
        handle = service.submit("gbwt", studies=("timing",), scale=0.25)
        handle.poll()            # JobStatus(state="queued"/"running"/...)
        report = handle.wait()   # the KernelReport, when it lands

Four mechanisms stack on top of the existing executor:

* **Async job API** — ``submit`` returns a :class:`JobHandle`
  immediately; ``poll``/``wait``/``subscribe`` observe completion.  A
  pool of worker threads drains the queue; each execution runs through
  the same engine path as ``repro run`` (process isolation by default,
  so per-job timeouts and failure isolation are inherited from the
  executor).
* **Request coalescing** — submissions are single-flighted by
  ``job_digest``: while a job is in flight, identical submissions attach
  to it and share the one execution (the dataset store's build-once
  double-check pattern, lifted to runs).  ``serve.coalesced`` vs
  ``serve.executed`` proves the dedup.
* **Result caching** — completed reports land in a
  :class:`~repro.serve.shards.ShardedResultStore`; a submission whose
  digest is already cached resolves immediately (``serve.cache_hits``).
* **Admission control** — the queue has a high-water mark; a submission
  past it raises :class:`~repro.errors.ServiceOverloaded` carrying a
  ``retry_after`` estimate derived from the moving-average execution
  time, instead of letting the backlog grow without bound.

Every lifecycle stage is observable: ``serve/queue-wait/<kernel>``,
``serve/coalesce/<kernel>`` and ``serve/execute/<kernel>`` spans land in
the ambient tracer when one is installed, and the service's own
:class:`~repro.obs.metrics.MetricsRegistry` (``service.metrics``) holds
the counters plus ``serve.latency_seconds`` histograms; ``shutdown``
folds it into the process-current registry.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace

from repro.errors import ServeError, ServeTimeout, ServiceOverloaded
from repro.harness.executor import (
    ExecutionPlan,
    Job,
    _execute_job,
    _execute_pool,
    _prebuild_datasets,
    compile_plan,
)
from repro.harness.runner import KernelReport
from repro.harness.store import ResultStore, default_result_store, job_digest
from repro.serve.shards import ShardedResultStore
from repro.obs import metrics as obs_metrics
from repro.obs import trace as _trace
from repro.obs.context import TraceContext
from repro.obs.spans import NULL_TRACER
from repro.uarch.cache import MACHINE_B, CacheConfig

#: Handle lifecycle states.
QUEUED, RUNNING, DONE = "queued", "running", "done"

#: How a handle's report was produced.
EXECUTED, COALESCED, CACHED = "executed", "coalesced", "cached"

#: Latency histogram bounds — the executor's seconds-flavoured defaults
#: are too coarse for cache-hit latencies, which sit well under 1 ms.
LATENCY_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)


@dataclass
class JobStatus:
    """A point-in-time snapshot of one submission."""

    digest: str
    state: str
    origin: str | None = None
    report: KernelReport | None = None
    error: str | None = None
    latency_seconds: float | None = None


class JobHandle:
    """The caller's view of one submission (possibly coalesced)."""

    def __init__(self, service: "BenchService", job: Job,
                 digest: str) -> None:
        self.job = job
        self.digest = digest
        self.origin: str | None = None
        self.trace: TraceContext | None = None
        self.submitted = time.perf_counter()
        self.resolved_at: float | None = None
        self._service = service
        self._done = threading.Event()
        self._report: KernelReport | None = None
        self._callbacks: list = []
        self._cb_lock = threading.Lock()

    # -- resolution (service-side) ------------------------------------

    def _resolve(self, report: KernelReport, origin: str) -> None:
        with self._cb_lock:
            self.origin = origin
            self.resolved_at = time.perf_counter()
            self._report = report
            self._done.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            try:
                callback(report)
            except Exception:  # noqa: BLE001 — a subscriber must not
                pass           # take down the resolving worker

    # -- observation (caller-side) ------------------------------------

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def latency_seconds(self) -> float | None:
        """Submit-to-resolve wall time (``None`` while unresolved)."""
        if self.resolved_at is None:
            return None
        return self.resolved_at - self.submitted

    @property
    def trace_id(self) -> str | None:
        """This request's trace id (minted at submit)."""
        return self.trace.trace_id if self.trace is not None else None

    def poll(self) -> JobStatus:
        if self._done.is_set():
            report = self._report
            return JobStatus(
                digest=self.digest, state=DONE, origin=self.origin,
                report=report, error=report.error if report else None,
                latency_seconds=self.latency_seconds,
            )
        state = RUNNING if self._service._is_running(self.digest) else QUEUED
        return JobStatus(digest=self.digest, state=state)

    def wait(self, timeout: float | None = None) -> KernelReport:
        """Block until the report lands (raises :class:`ServeTimeout`
        after *timeout* seconds)."""
        if not self._done.wait(timeout):
            raise ServeTimeout(
                f"job {self.job.kernel}/{self.digest} still "
                f"{self.poll().state} after {timeout:g}s"
            )
        assert self._report is not None
        return self._report

    def subscribe(self, callback) -> None:
        """Invoke ``callback(report)`` when the job resolves (immediately
        if it already has)."""
        with self._cb_lock:
            if not self._done.is_set():
                self._callbacks.append(callback)
                return
        callback(self._report)


@dataclass
class _Ticket:
    """One in-flight execution and everyone waiting on it."""

    job: Job
    digest: str
    handles: list[JobHandle] = field(default_factory=list)
    enqueued: float = field(default_factory=time.perf_counter)
    running: bool = False


class BenchService:
    """A long-running benchmark service over the harness engine.

    * ``workers`` — concurrent executions (worker threads; with
      ``isolation="process"`` each drives its own executor worker
      process, so executions genuinely run in parallel).
    * ``max_queue`` — admission-control high-water mark: distinct
      (non-coalesced, non-cached) submissions past this many pending
      tickets are rejected with :class:`ServiceOverloaded`.
    * ``timeout`` — per-job wall-clock limit, enforced by the executor's
      process pool (requires ``isolation="process"``, the default).
    * ``isolation`` — ``"process"`` routes executions through the
      executor's failure-isolated pool; ``"inline"`` runs them on the
      worker thread (fast and deterministic; no timeout enforcement,
      best with ``workers=1`` or an injected ``runner``).
    * ``store`` — the report cache; ``None`` means the shared
      :func:`~repro.harness.store.default_result_store` (sharded).
      ``reuse=False`` disables caching entirely (every submission
      executes or coalesces).
    * ``runner`` — test hook: a ``Job -> KernelReport`` callable
      replacing the engine execution path.
    * ``telemetry_port`` — when set, :meth:`start` binds a
      :class:`~repro.obs.telemetry.TelemetryServer` on
      ``127.0.0.1:<port>`` (0 = ephemeral) exposing ``/metrics``,
      ``/healthz`` and ``/readyz`` for this service; ``shutdown`` stops
      it.  ``None`` (default) serves no HTTP — zero overhead.
    """

    def __init__(self, workers: int = 2, max_queue: int = 64,
                 timeout: float | None = None,
                 isolation: str = "process",
                 store: ResultStore | None = None,
                 reuse: bool = True,
                 runner=None,
                 autostart: bool = True,
                 telemetry_port: "int | None" = None) -> None:
        if workers < 1:
            raise ServeError("workers must be >= 1")
        if isolation not in ("process", "inline"):
            raise ServeError("isolation must be 'process' or 'inline'")
        self.workers = workers
        self.max_queue = max_queue
        self.timeout = timeout
        self.isolation = isolation
        self.store = (store if store is not None
                      else default_result_store() if reuse else None)
        self.runner = runner
        self.telemetry_port = telemetry_port
        self.telemetry = None
        self.metrics = obs_metrics.MetricsRegistry()
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._queue: deque[_Ticket] = deque()
        self._inflight: dict[str, _Ticket] = {}
        self._threads: list[threading.Thread] = []
        self._started = False
        self._stopping = False
        self._started_at = time.monotonic()
        self._avg_execute: float | None = None
        if autostart:
            self.start()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "BenchService":
        """Launch the worker pool (idempotent).  Corpora for already-
        queued jobs are prebuilt first, so workers never race a cold
        dataset build."""
        with self._lock:
            if self._started:
                return self
            self._started = True
            queued = [ticket.job for ticket in self._queue]
        if queued:
            _prebuild_datasets(queued)
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        self._started_at = time.monotonic()
        if self.telemetry_port is not None and self.telemetry is None:
            from repro.obs.telemetry import TelemetryServer
            self.telemetry = TelemetryServer(
                service=self, port=self.telemetry_port).start()
        return self

    def shutdown(self, wait: bool = True, timeout: float | None = 30.0) -> None:
        """Stop accepting work, drain the pool, and fold the service
        metrics into the process-current registry."""
        with self._work:
            self._stopping = True
            self._work.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=timeout)
        self._threads = []
        if self.telemetry is not None:
            self.telemetry.stop()
            self.telemetry = None
        if isinstance(self.store, ShardedResultStore):
            self.store.join_eviction()
        obs_metrics.current_registry().merge_dict(self.metrics.as_dict())

    def __enter__(self) -> "BenchService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- submission ----------------------------------------------------

    def submit(self, kernel: str, studies: tuple[str, ...] = ("timing",),
               scale: float = 1.0, seed: int = 0,
               scenario: str = "default",
               cache_config: CacheConfig = MACHINE_B,
               backend: str | None = None) -> JobHandle:
        """Validate and enqueue one request; returns immediately.

        Raises :class:`~repro.errors.KernelError` on unknown
        kernel/study/scenario/backend names and
        :class:`ServiceOverloaded` when the queue is past its high-water
        mark.  *backend* joins the job digest, so requests for distinct
        backends of one kernel neither coalesce nor share cache entries.
        """
        plan = compile_plan(
            (kernel,), studies=tuple(studies), scale=scale, seed=seed,
            cache_config=cache_config, scenario=scenario, backend=backend,
        )
        return self.submit_job(plan.jobs[0])

    def submit_job(self, job: Job,
                   context: "TraceContext | None" = None) -> JobHandle:
        """Enqueue a pre-compiled :class:`Job` (no re-validation).

        Every submission gets a :class:`TraceContext` (*context* >
        ``job.trace`` > freshly minted): a ``serve/submit/<kernel>``
        record is emitted into the ambient tracer when one is
        installed, and the context — trace id plus that record's span
        id — rides on the job into the executor so child-process spans
        stitch into this request's trace.  Coalesced and cache-hit
        submissions keep their own trace id and get an annotated link
        span pointing at the execution that serves them.
        """
        context = context or job.trace or TraceContext.mint()
        submit_record = self._record_span(
            f"serve/submit/{job.kernel}", time.perf_counter(), 0.0,
            trace=context.trace_id,
        )
        if submit_record is not None:
            context = context.child(submit_record["id"])
        if job.trace is not context:
            job = replace(job, trace=context)
        digest = job_digest(job)
        handle = JobHandle(self, job, digest)
        handle.trace = context
        with self._work:
            if self._stopping:
                raise ServeError("service is shutting down")
            self.metrics.counter("serve.submitted", kernel=job.kernel).inc()
            # Single-flight: identical in-flight submission → attach.
            ticket = self._inflight.get(digest)
            if ticket is not None:
                ticket.handles.append(handle)
                handle.origin = COALESCED
                self.metrics.counter("serve.coalesced",
                                     kernel=job.kernel).inc()
                link_attrs = {"digest": digest}
                if ticket.job.trace is not None:
                    link_attrs["link"] = ticket.job.trace.trace_id
                self._record_span(f"serve/coalesce/{job.kernel}",
                                  time.perf_counter(), 0.0,
                                  link_attrs, trace=context.trace_id)
                return handle
            # Double-check the result store under the same lock: a run
            # that completed between the caller's decision to submit and
            # now is a hit, never a second execution.
            hit = self.store.load(job) if self.store is not None else None
            if hit is not None:
                self.metrics.counter("serve.cache_hits",
                                     kernel=job.kernel).inc()
                link_attrs = {"digest": digest}
                original = next((r.get("trace") for r in hit.spans
                                 if r.get("trace")), None)
                if original is not None:
                    link_attrs["link"] = original
                self._record_span(f"serve/cache-hit/{job.kernel}",
                                  time.perf_counter(), 0.0,
                                  link_attrs, trace=context.trace_id)
            else:
                # Admission control: the queue has a high-water mark.
                if len(self._queue) >= self.max_queue:
                    retry_after = self._retry_after_locked()
                    self.metrics.counter("serve.rejected",
                                         kernel=job.kernel).inc()
                    raise ServiceOverloaded(
                        f"queue at high-water mark ({self.max_queue} "
                        f"pending); retry in {retry_after:.2f}s",
                        retry_after=retry_after,
                    )
                ticket = _Ticket(job=job, digest=digest, handles=[handle])
                self._inflight[digest] = ticket
                self._queue.append(ticket)
                self._work.notify()
        if hit is not None:
            self._resolve_handle(handle, hit, CACHED)
        return handle

    def _retry_after_locked(self) -> float:
        average = self._avg_execute if self._avg_execute else 0.5
        backlog = len(self._queue) + 1
        return max(0.05, backlog * average / self.workers)

    # -- handle support ------------------------------------------------

    def _is_running(self, digest: str) -> bool:
        with self._lock:
            ticket = self._inflight.get(digest)
            return ticket is not None and ticket.running

    def _resolve_handle(self, handle: JobHandle, report: KernelReport,
                        origin: str) -> None:
        handle._resolve(report, origin)
        with self._lock:
            self.metrics.histogram(
                "serve.latency_seconds", bounds=LATENCY_BUCKETS,
                origin=origin,
            ).observe(handle.latency_seconds or 0.0)

    @staticmethod
    def _record_span(name: str, start: float, duration: float,
                     attrs: dict | None = None,
                     trace: "str | None" = None) -> "dict | None":
        tracer = _trace.current_tracer()
        if tracer is not NULL_TRACER:
            return tracer.add_record(name, start, duration, attrs,
                                     trace=trace)
        return None

    # -- execution -----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._work:
                while not self._queue and not self._stopping:
                    self._work.wait(timeout=0.5)
                if self._stopping and not self._queue:
                    return
                ticket = self._queue.popleft()
                ticket.running = True
                queue_wait = time.perf_counter() - ticket.enqueued
                self.metrics.histogram(
                    "serve.queue_wait_seconds", bounds=LATENCY_BUCKETS,
                ).observe(queue_wait)
            if queue_wait > 0:
                self._record_span(
                    f"serve/queue-wait/{ticket.job.kernel}",
                    ticket.enqueued, queue_wait,
                    trace=ticket.job.trace.trace_id
                    if ticket.job.trace else None,
                )
            self._execute_ticket(ticket, queue_wait)

    def _execute_ticket(self, ticket: _Ticket, queue_wait: float) -> None:
        job = ticket.job
        started = time.perf_counter()
        try:
            report = self._run(job)
        except Exception as error:  # noqa: BLE001 — a worker must survive
            report = KernelReport(
                kernel=job.kernel, error=f"{type(error).__name__}: {error}",
                scale=job.scale, seed=job.seed,
                machine=job.cache_config.name, scenario=job.scenario,
            )
        elapsed = time.perf_counter() - started
        self._record_span(
            f"serve/execute/{job.kernel}", started, elapsed,
            {"digest": ticket.digest,
             "outcome": "ok" if report.error is None else "error"},
            trace=job.trace.trace_id if job.trace else None,
        )
        # Cache before unregistering the flight: a concurrent submit
        # sees either the in-flight ticket (coalesce) or the cached
        # report (hit) — never a gap that re-executes.
        if self.store is not None:
            self.store.save(job, report)
        with self._lock:
            self._inflight.pop(ticket.digest, None)
            handles = list(ticket.handles)
            outcome = "ok" if report.error is None else "error"
            self.metrics.counter("serve.executed", kernel=job.kernel,
                                 outcome=outcome).inc()
            self.metrics.histogram(
                "serve.execute_seconds", kernel=job.kernel,
            ).observe(elapsed)
            self._avg_execute = (
                elapsed if self._avg_execute is None
                else 0.8 * self._avg_execute + 0.2 * elapsed
            )
        for index, handle in enumerate(handles):
            self._resolve_handle(
                handle, report, EXECUTED if index == 0 else COALESCED
            )

    def _run(self, job: Job) -> KernelReport:
        if self.runner is not None:
            return self.runner(job)
        # Build (or warm-load) the corpus in this process first: with
        # process isolation the forked executor worker inherits it, and
        # concurrent service workers share one flock-guarded build.
        _prebuild_datasets([job])
        if self.isolation == "inline":
            return _execute_job(job)
        reports = _execute_pool([job], workers=1, timeout=self.timeout)
        if not reports:  # pragma: no cover - defensive; pool always reports
            raise ServeError(f"executor returned no report for {job.kernel}")
        return reports[0]

    # -- introspection -------------------------------------------------

    def stats(self) -> dict:
        """Point-in-time queue/flight depths plus the metrics export."""
        with self._lock:
            return {
                "queued": len(self._queue),
                "inflight": len(self._inflight),
                "workers": self.workers,
                "metrics": self.metrics.as_dict(),
            }

    def _workers_alive_locked(self) -> int:
        return sum(1 for thread in self._threads if thread.is_alive())

    def health(self) -> dict:
        """Liveness snapshot (the ``/healthz`` payload): ``ok`` while
        the service accepts work and its worker threads are up."""
        with self._lock:
            alive = self._workers_alive_locked()
            healthy = (not self._stopping
                       and (not self._started or alive > 0))
            return {
                "status": "ok" if healthy else "stopping"
                if self._stopping else "degraded",
                "started": self._started,
                "uptime_seconds": round(
                    time.monotonic() - self._started_at, 3),
                "workers": {"configured": self.workers, "alive": alive},
                "isolation": self.isolation,
            }

    def readiness(self) -> dict:
        """Readiness snapshot (the ``/readyz`` payload): queue depth,
        inflight count, worker liveness and cache occupancy; ``ready``
        is False while the queue sits at its admission high-water mark
        or the pool is not running."""
        with self._lock:
            queued = len(self._queue)
            inflight = len(self._inflight)
            alive = self._workers_alive_locked()
            ready = (self._started and not self._stopping
                     and alive > 0 and queued < self.max_queue)
        cache: dict = {}
        store = self.store
        if store is not None:
            try:
                if hasattr(store, "entries"):
                    cache["entries"] = len(store.entries())
                if hasattr(store, "total_bytes"):
                    cache["bytes"] = store.total_bytes()
            except OSError:  # a scrape must not fail on store races
                cache = {}
        return {
            "ready": ready,
            "queue_depth": queued,
            "max_queue": self.max_queue,
            "inflight": inflight,
            "workers_alive": alive,
            "cache": cache,
        }


def counter_total(exported: dict, name: str) -> float:
    """Sum every series of counter *name* in a metrics export."""
    prefix = name + "{"
    return sum(value for key, value in exported.get("counters", {}).items()
               if key == name or key.startswith(prefix))


def plan_handles(service: BenchService, plan: ExecutionPlan) -> list[JobHandle]:
    """Submit every job of a compiled plan; returns the handles."""
    return [service.submit_job(job) for job in plan.jobs]
