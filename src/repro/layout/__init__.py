"""Graph layout: path index, PGSGD (CPU) and PGSGD-GPU."""

from repro.layout.export import layout_to_svg, write_layout_tsv
from repro.layout.path_index import PathIndex, PathStep
from repro.layout.pgsgd import PGSGDLayout, PGSGDParams, PGSGDResult, pgsgd_layout
from repro.layout.pgsgd_gpu import (
    PGSGD_GPU_REGISTERS_PER_THREAD,
    PGSGDGPUResult,
    pgsgd_layout_gpu,
)

__all__ = [
    "layout_to_svg", "write_layout_tsv",
    "PathIndex", "PathStep",
    "PGSGDLayout", "PGSGDParams", "PGSGDResult", "pgsgd_layout",
    "PGSGD_GPU_REGISTERS_PER_THREAD", "PGSGDGPUResult", "pgsgd_layout_gpu",
]
