"""PGSGD: path-guided stochastic gradient descent graph layout.

odgi's layout step (Heumos et al. 2024) poses 2D graph drawing as an
optimization problem: sample two anchors from a path, compare their
Euclidean distance in the current layout with their nucleotide distance
along the path, and nudge both toward agreement (Figure 4g).  Millions of
updates run lock-free across threads (Hogwild!); rare races are corrected
by later updates.

Computational signature (Section 5.2): uniform-random reads/writes into a
layout array that fits in no cache level, plus divisions and square roots
(the Pythagorean step) on the critical path — memory- and core-bound with
the suite's lowest IPC.

Every node contributes two anchors (its ends).  The layout array is laid
out like odgi's (x, y interleaved per anchor), and the probe sees the
random accesses at their true addresses.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.graph.model import SequenceGraph
from repro.layout.path_index import PathIndex, PathStep
from repro.uarch.events import NULL_PROBE, AddressSpace, MachineProbe, OpClass


@dataclass(frozen=True)
class PGSGDParams:
    """Annealing schedule and sampling parameters (odgi defaults scaled).

    ``eta_max=None`` (the default, like odgi) sets the initial learning
    rate to the squared maximum path distance, so even the longest-range
    terms move with step factor ~1 in the first iteration.
    """

    iterations: int = 30          # outer iterations (paper: 30, w/ barriers)
    updates_per_iteration: int = 2000
    eta_max: float | None = None
    eta_min: float = 0.1
    zipf_theta: float = 0.9
    seed: int = 42
    #: 'linear' seeds from the graph's linearized order (odgi's default);
    #: 'random' scatters anchors uniformly (the twisted Layout-1 case).
    initialization: str = "linear"
    #: Memory-model spread: the paper's layout array is ~1.7 GB and fits
    #: in no cache; a downscaled graph would fit in L1.  Each anchor's
    #: probe address is replicated over this many virtual slots so the
    #: simulated footprint matches a full-size pangenome (1 = off).
    virtual_anchor_scale: int = 1

    def schedule(self, eta_max: float | None = None) -> list[float]:
        """Exponentially decaying learning rate across iterations."""
        if self.iterations < 1:
            raise SimulationError("need at least one iteration")
        top = self.eta_max if self.eta_max is not None else eta_max
        if top is None or top <= 0:
            raise SimulationError("schedule needs a positive eta_max")
        if self.iterations == 1:
            return [top]
        decay = math.log(self.eta_min / top) / (self.iterations - 1)
        return [top * math.exp(decay * t) for t in range(self.iterations)]


@dataclass
class PGSGDResult:
    """Final layout and work counters."""

    positions: list[tuple[float, float]]  # one (x, y) per anchor
    updates: int
    stress_history: list[float]
    path_index_work: int

    @property
    def final_stress(self) -> float:
        return self.stress_history[-1] if self.stress_history else float("nan")


class _UpdateBatch:
    """One iteration's probe events, flushed as blocks at the barrier."""

    __slots__ = ("terms", "struct_loads", "layout_loads", "layout_stores", "moved")

    def __init__(self) -> None:
        self.terms = 0
        self.struct_loads: list[int] = []
        self.layout_loads: list[int] = []
        self.layout_stores: list[int] = []
        self.moved: list[bool] = []


class PGSGDLayout:
    """CPU PGSGD with the Hogwild!-style update loop.

    Thread-interleaving is modelled, not real (CPython): the update
    stream is what T racing threads would produce, which is equivalent
    for layout quality since Hogwild tolerates stale reads by design.
    """

    BYTES_PER_ANCHOR = 16  # two float64 coordinates

    def __init__(
        self,
        graph: SequenceGraph,
        params: PGSGDParams | None = None,
        probe: MachineProbe = NULL_PROBE,
    ) -> None:
        self.graph = graph
        self.params = params or PGSGDParams()
        self.probe = probe
        self.index = PathIndex(graph)
        self._node_anchor: dict[int, int] = {}
        for anchor_index, node_id in enumerate(sorted(graph.node_ids())):
            self._node_anchor[node_id] = 2 * anchor_index
        self.n_anchors = 2 * graph.node_count
        space = AddressSpace()
        self._virtual_scale = max(1, self.params.virtual_anchor_scale)
        self._virtual_slots = self.n_anchors * self._virtual_scale
        self._layout_base = space.alloc(self._virtual_slots * self.BYTES_PER_ANCHOR)
        self._visit_count: dict[int, int] = {}
        self._rng = random.Random(self.params.seed)
        self.positions: list[list[float]] = []
        if self.params.initialization == "random":
            # Twisted start: anchors scattered uniformly in a box sized
            # to the total sequence length.
            box = float(max(1, graph.total_sequence_length))
            for _node_id in sorted(graph.node_ids()):
                for _ in range(2):
                    self.positions.append(
                        [self._rng.uniform(0, box), self._rng.uniform(0, box)]
                    )
        elif self.params.initialization == "linear":
            # Initial layout: nodes along a line by id with jitter (odgi
            # seeds from the graph's linearized order).
            position = 0.0
            for node_id in sorted(graph.node_ids()):
                jitter = self._rng.uniform(-1.0, 1.0)
                length = len(graph.node(node_id))
                self.positions.append([position, jitter])
                self.positions.append([position + length, jitter])
                position += length
        else:
            raise SimulationError(
                f"unknown initialization {self.params.initialization!r}"
            )

    def anchor_of(self, step: PathStep, end: bool) -> int:
        """Anchor index for a path step (False = node start, True = end)."""
        return self._node_anchor[step.node_id] + (1 if end else 0)

    def run(self) -> PGSGDResult:
        """Run the full annealing schedule; returns the final layout."""
        params = self.params
        max_distance = max(
            self.index.path_length(i) for i in range(self.index.path_count)
        )
        schedule = params.schedule(eta_max=float(max_distance) ** 2)
        stress_history = [self._sample_stress()]
        updates = 0
        probe = self.probe
        for eta in schedule:
            # One iteration's updates flush as blocks at its barrier: the
            # uniform-random layout reads/writes batch into address
            # arrays while the update math itself stays per-sample.
            batch = _UpdateBatch()
            for _ in range(params.updates_per_iteration):
                self._update(eta, batch)
                updates += 1
            n = batch.terms
            probe.alu_bulk(OpClass.SCALAR_ALU, 8 * n)
            probe.alu_bulk(OpClass.VECTOR_FP, 11 * n)
            probe.alu_bulk(OpClass.SCALAR_MUL_DIV, 3 * n, dependent_count=3 * n)
            probe.load_block(batch.struct_loads, 8)
            probe.load_block(batch.layout_loads, 16)
            probe.store_block(batch.layout_stores, 16)
            probe.branch_trace(70, batch.moved)
            # Synchronization barrier between iterations (Section 5.1).
            stress_history.append(self._sample_stress())
        return PGSGDResult(
            positions=[(p[0], p[1]) for p in self.positions],
            updates=updates,
            stress_history=stress_history,
            path_index_work=self.index.build_work,
        )

    # ------------------------------------------------------------------

    def anchor_position(self, step: PathStep, end: bool) -> int:
        """Nucleotide path position of a step's chosen node end."""
        if end:
            return step.position + len(self.graph.node(step.node_id))
        return step.position

    def _update(self, eta: float, batch: "_UpdateBatch") -> None:
        step_a, step_b = self.index.sample_step_pair(
            self._rng, zipf_theta=self.params.zipf_theta
        )
        # Random ends of the two visited nodes; the target distance is
        # measured between the chosen ends (odgi's term definition).
        end_a = self._rng.random() < 0.5
        end_b = self._rng.random() < 0.5
        anchor_a = self.anchor_of(step_a, end_a)
        anchor_b = self.anchor_of(step_b, end_b)
        if anchor_a == anchor_b:
            return
        target = float(abs(
            self.anchor_position(step_b, end_b) - self.anchor_position(step_a, end_a)
        ))
        if target == 0.0:
            target = 1.0
        # Per term: 8 scalar sampling ops (RNG state update, zipf inverse
        # transform, path-index lookups), 11 scalar-SSE FP ops, and the
        # sqrt + two divides on the critical path — credited in bulk at
        # the iteration barrier by :meth:`run`.
        batch.terms += 1
        batch.struct_loads.append(self._layout_base + (anchor_a % 64) * 8)
        batch.struct_loads.append(self._layout_base + (anchor_b % 64) * 8)
        # The two random layout reads: the memory bottleneck.
        address_a = self._anchor_address(anchor_a)
        address_b = self._anchor_address(anchor_b)
        batch.layout_loads.append(address_a)
        batch.layout_loads.append(address_b)
        ax, ay = self.positions[anchor_a]
        bx, by = self.positions[anchor_b]
        dx = ax - bx
        dy = ay - by
        distance = math.sqrt(dx * dx + dy * dy)
        if distance < 1e-9:
            dx, dy = 1.0, 0.0
            distance = 1.0
        mu = min(1.0, eta / (target * target))  # w_ij = 1/d^2 weighting
        magnitude = mu * (distance - target) / 2.0
        ux = dx / distance * magnitude
        uy = dy / distance * magnitude
        self.positions[anchor_a][0] = ax - ux
        self.positions[anchor_a][1] = ay - uy
        self.positions[anchor_b][0] = bx + ux
        self.positions[anchor_b][1] = by + uy
        batch.layout_stores.append(address_a)
        batch.layout_stores.append(address_b)
        batch.moved.append(magnitude > 0)

    def _anchor_address(self, anchor: int) -> int:
        """Probe address of an anchor's coordinates.

        With ``virtual_anchor_scale > 1``, successive samples of the same
        anchor rotate through distinct virtual slots: on a full-size
        pangenome two samples virtually never touch the same cache line,
        and this reproduces that cold-access behaviour on a small graph.
        """
        if self._virtual_scale == 1:
            slot = anchor
        else:
            visit = self._visit_count.get(anchor, 0)
            self._visit_count[anchor] = visit + 1
            slot = (
                anchor * self._virtual_scale
                + (visit * 2654435761 + anchor) % self._virtual_scale
            )
        return self._layout_base + slot * self.BYTES_PER_ANCHOR

    def _sample_stress(self, samples: int = 200) -> float:
        """Normalized stress over a fixed random sample of anchor pairs."""
        rng = random.Random(1234)  # fixed: comparable across iterations
        total = 0.0
        count = 0
        for _ in range(samples):
            step_a, step_b = self.index.sample_step_pair(rng)
            anchor_a = self.anchor_of(step_a, False)
            anchor_b = self.anchor_of(step_b, False)
            if anchor_a == anchor_b:
                continue
            target = float(abs(
                self.anchor_position(step_b, False)
                - self.anchor_position(step_a, False)
            )) or 1.0
            ax, ay = self.positions[anchor_a]
            bx, by = self.positions[anchor_b]
            actual = math.hypot(ax - bx, ay - by)
            total += ((actual - target) / target) ** 2
            count += 1
        return total / count if count else 0.0


def pgsgd_layout(
    graph: SequenceGraph,
    params: PGSGDParams | None = None,
    probe: MachineProbe = NULL_PROBE,
) -> PGSGDResult:
    """One-shot CPU PGSGD layout."""
    return PGSGDLayout(graph, params=params, probe=probe).run()
