"""PGSGD: path-guided stochastic gradient descent graph layout.

odgi's layout step (Heumos et al. 2024) poses 2D graph drawing as an
optimization problem: sample two anchors from a path, compare their
Euclidean distance in the current layout with their nucleotide distance
along the path, and nudge both toward agreement (Figure 4g).  Millions of
updates run lock-free across threads (Hogwild!); rare races are corrected
by later updates.

Computational signature (Section 5.2): uniform-random reads/writes into a
layout array that fits in no cache level, plus divisions and square roots
(the Pythagorean step) on the critical path — memory- and core-bound with
the suite's lowest IPC.

Every node contributes two anchors (its ends).  The layout array is laid
out like odgi's (x, y interleaved per anchor), and the probe sees the
random accesses at their true addresses.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

import numpy as np

from repro.backends import SCALAR, VECTORIZED, check_backend
from repro.errors import SimulationError
from repro.graph.model import SequenceGraph
from repro.layout.path_index import PathIndex, PathStep
from repro.uarch.events import NULL_PROBE, AddressSpace, MachineProbe, OpClass


@dataclass(frozen=True)
class PGSGDParams:
    """Annealing schedule and sampling parameters (odgi defaults scaled).

    ``eta_max=None`` (the default, like odgi) sets the initial learning
    rate to the squared maximum path distance, so even the longest-range
    terms move with step factor ~1 in the first iteration.
    """

    iterations: int = 30          # outer iterations (paper: 30, w/ barriers)
    updates_per_iteration: int = 2000
    eta_max: float | None = None
    eta_min: float = 0.1
    zipf_theta: float = 0.9
    seed: int = 42
    #: 'linear' seeds from the graph's linearized order (odgi's default);
    #: 'random' scatters anchors uniformly (the twisted Layout-1 case).
    initialization: str = "linear"
    #: Memory-model spread: the paper's layout array is ~1.7 GB and fits
    #: in no cache; a downscaled graph would fit in L1.  Each anchor's
    #: probe address is replicated over this many virtual slots so the
    #: simulated footprint matches a full-size pangenome (1 = off).
    virtual_anchor_scale: int = 1

    def schedule(self, eta_max: float | None = None) -> list[float]:
        """Exponentially decaying learning rate across iterations."""
        if self.iterations < 1:
            raise SimulationError("need at least one iteration")
        top = self.eta_max if self.eta_max is not None else eta_max
        if top is None or top <= 0:
            raise SimulationError("schedule needs a positive eta_max")
        if self.iterations == 1:
            return [top]
        decay = math.log(self.eta_min / top) / (self.iterations - 1)
        return [top * math.exp(decay * t) for t in range(self.iterations)]


@dataclass
class PGSGDResult:
    """Final layout and work counters."""

    positions: list[tuple[float, float]]  # one (x, y) per anchor
    updates: int
    stress_history: list[float]
    path_index_work: int

    @property
    def final_stress(self) -> float:
        return self.stress_history[-1] if self.stress_history else float("nan")


def _conflict_bounds(a: np.ndarray, b: np.ndarray) -> list[int]:
    """Per-term earliest endpoint index whose anchor the term reuses.

    Over the interleaved endpoint sequence ``a0 b0 a1 b1 ...``, entry
    *t* is the largest index of a previous occurrence of either of term
    *t*'s anchors (−1 if both are fresh).  A run starting at term *s*
    can include term *t* iff ``bounds[t] < 2 s`` — no anchor then
    repeats inside the run, so snapshot reads equal sequential reads.
    """
    total = int(a.shape[0])
    seq = np.empty(2 * total, dtype=np.int64)
    seq[0::2] = a
    seq[1::2] = b
    order = np.argsort(seq, kind="stable")
    sorted_seq = seq[order]
    prev = np.full(2 * total, -1, dtype=np.int64)
    dup = sorted_seq[1:] == sorted_seq[:-1]
    prev[order[1:][dup]] = order[:-1][dup]
    return np.maximum(prev[0::2], prev[1::2]).tolist()


class PGSGDLayout:
    """CPU PGSGD with batched Hogwild!-style updates.

    Updates run as batched conflict-free runs (arXiv 2409.00876's
    batched-update reformulation): consecutive terms touching disjoint
    anchors read one layout snapshot and scatter their deltas in a
    single vector step — bit-identical to the sequential walk, with run
    length growing as anchor collisions get rarer on larger graphs.
    Sampling stays on the scalar :meth:`PathIndex.sample_step_pair`
    stream, so the term sequence — and with it every coordinate and
    probe event — is independent of the batching.

    ``backend="scalar"`` runs the same sampled terms through the
    sequential per-term scalar loop — the differential-test reference.
    """

    BYTES_PER_ANCHOR = 16  # two float64 coordinates

    #: Cap on a conflict-free run, bounding the snapshot scan width.
    MINI_BATCH = 256

    #: Runs shorter than this apply through the scalar loop — numpy
    #: dispatch costs more than it saves on a handful of terms.
    VECTOR_MIN_RUN = 16

    def __init__(
        self,
        graph: SequenceGraph,
        params: PGSGDParams | None = None,
        probe: MachineProbe = NULL_PROBE,
        backend: str = VECTORIZED,
    ) -> None:
        check_backend(backend, (SCALAR, VECTORIZED), "PGSGDLayout",
                      SimulationError)
        self.graph = graph
        self.params = params or PGSGDParams()
        self.probe = probe
        self.backend = backend
        self.vectorize = backend == VECTORIZED
        self.index = PathIndex(graph)
        self._node_anchor: dict[int, int] = {}
        for anchor_index, node_id in enumerate(sorted(graph.node_ids())):
            self._node_anchor[node_id] = 2 * anchor_index
        self.n_anchors = 2 * graph.node_count
        space = AddressSpace()
        self._virtual_scale = max(1, self.params.virtual_anchor_scale)
        self._virtual_slots = self.n_anchors * self._virtual_scale
        self._layout_base = space.alloc(self._virtual_slots * self.BYTES_PER_ANCHOR)
        self._visit_count: dict[int, int] = {}
        self._rng = random.Random(self.params.seed)
        positions: list[list[float]] = []
        if self.params.initialization == "random":
            # Twisted start: anchors scattered uniformly in a box sized
            # to the total sequence length.
            box = float(max(1, graph.total_sequence_length))
            for _node_id in sorted(graph.node_ids()):
                for _ in range(2):
                    positions.append(
                        [self._rng.uniform(0, box), self._rng.uniform(0, box)]
                    )
        elif self.params.initialization == "linear":
            # Initial layout: nodes along a line by id with jitter (odgi
            # seeds from the graph's linearized order).
            position = 0.0
            for node_id in sorted(graph.node_ids()):
                jitter = self._rng.uniform(-1.0, 1.0)
                length = len(graph.node(node_id))
                positions.append([position, jitter])
                positions.append([position + length, jitter])
                position += length
        else:
            raise SimulationError(
                f"unknown initialization {self.params.initialization!r}"
            )
        self.positions = np.asarray(positions, dtype=np.float64)
        # Per-anchor visit counters for the vectorized slot rotation
        # (the scalar :meth:`_anchor_address` keeps its own dict).
        self._visit_np = np.zeros(self.n_anchors, dtype=np.int64)

    def anchor_of(self, step: PathStep, end: bool) -> int:
        """Anchor index for a path step (False = node start, True = end)."""
        return self._node_anchor[step.node_id] + (1 if end else 0)

    def run(self) -> PGSGDResult:
        """Run the full annealing schedule; returns the final layout."""
        params = self.params
        max_distance = max(
            self.index.path_length(i) for i in range(self.index.path_count)
        )
        schedule = params.schedule(eta_max=float(max_distance) ** 2)
        stress_history = [self._sample_stress()]
        updates = 0
        probe = self.probe
        for eta in schedule:
            # One iteration's updates flush as blocks at its barrier: the
            # uniform-random layout reads/writes batch into address
            # arrays, the update math runs as conflict-free vector runs.
            a, b, target = self._sample_terms(params.updates_per_iteration)
            updates += params.updates_per_iteration
            moved = self._apply_terms(a, b, target, eta)
            n = int(a.shape[0])
            interleaved = np.empty(2 * n, dtype=np.int64)
            interleaved[0::2] = a
            interleaved[1::2] = b
            probe.alu_bulk(OpClass.SCALAR_ALU, 8 * n)
            probe.alu_bulk(OpClass.VECTOR_FP, 11 * n)
            probe.alu_bulk(OpClass.SCALAR_MUL_DIV, 3 * n, dependent_count=3 * n)
            probe.load_block(self._layout_base + (interleaved % 64) * 8, 8)
            # The two random layout reads per term: the memory bottleneck.
            addresses = self._anchor_addresses(interleaved)
            probe.load_block(addresses, 16)
            probe.store_block(addresses, 16)
            probe.branch_trace(70, moved)
            # Synchronization barrier between iterations (Section 5.1).
            stress_history.append(self._sample_stress())
        return PGSGDResult(
            positions=[(float(p[0]), float(p[1])) for p in self.positions],
            updates=updates,
            stress_history=stress_history,
            path_index_work=self.index.build_work,
        )

    # ------------------------------------------------------------------

    def anchor_position(self, step: PathStep, end: bool) -> int:
        """Nucleotide path position of a step's chosen node end."""
        if end:
            return step.position + len(self.graph.node(step.node_id))
        return step.position

    def _sample_terms(
        self, count: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample *count* terms; returns (anchor_a, anchor_b, target)
        with same-anchor terms dropped.

        Sampling walks :meth:`PathIndex.sample_step_pair` on the layout's
        own RNG stream — term for term the sequence the per-update loop
        drew — so batching the update step leaves the trajectory
        untouched.
        """
        rng = self._rng
        anchors_a: list[int] = []
        anchors_b: list[int] = []
        targets: list[float] = []
        for _ in range(count):
            step_a, step_b = self.index.sample_step_pair(
                rng, zipf_theta=self.params.zipf_theta
            )
            # Random ends of the two visited nodes; the target distance
            # is measured between the chosen ends (odgi's term
            # definition).
            end_a = rng.random() < 0.5
            end_b = rng.random() < 0.5
            anchor_a = self.anchor_of(step_a, end_a)
            anchor_b = self.anchor_of(step_b, end_b)
            if anchor_a == anchor_b:
                continue
            target = float(abs(
                self.anchor_position(step_b, end_b)
                - self.anchor_position(step_a, end_a)
            ))
            anchors_a.append(anchor_a)
            anchors_b.append(anchor_b)
            targets.append(target or 1.0)
        a = np.asarray(anchors_a, dtype=np.int64)
        b = np.asarray(anchors_b, dtype=np.int64)
        t = np.asarray(targets, dtype=np.float64)
        return a, b, t

    def _apply_terms(
        self, a: np.ndarray, b: np.ndarray, target: np.ndarray, eta: float
    ) -> np.ndarray:
        """Apply sampled terms; returns the per-term moved flags.

        The vectorized path processes conflict-free runs of terms in one
        shot: a run ends just before the first term whose anchor already
        appears earlier in it, so the run-start snapshot reads equal the
        sequential reads exactly and the result is bit-identical to the
        scalar per-term loop.  Run length adapts to the graph: on a
        full-size pangenome conflicts are rare and runs reach the
        :data:`MINI_BATCH` cap, mirroring how Hogwild! races vanish at
        scale.
        """
        moved = np.empty(a.shape[0], dtype=bool)
        positions = self.positions
        if not self.vectorize:
            # Scalar reference: strictly sequential per-term updates.
            for t in range(int(a.shape[0])):
                ax, ay = positions[a[t]]
                bx, by = positions[b[t]]
                dx = ax - bx
                dy = ay - by
                distance = math.sqrt(dx * dx + dy * dy)
                if distance < 1e-9:
                    dx, dy = 1.0, 0.0
                    distance = 1.0
                mu = min(1.0, eta / (target[t] * target[t]))
                magnitude = mu * (distance - target[t]) / 2.0
                ux = dx / distance * magnitude
                uy = dy / distance * magnitude
                positions[a[t], 0] -= ux
                positions[a[t], 1] -= uy
                positions[b[t], 0] += ux
                positions[b[t], 1] += uy
                moved[t] = magnitude > 0
            return moved
        total = int(a.shape[0])
        if total == 0:
            return moved
        bounds = _conflict_bounds(a, b)
        a_list = a.tolist()
        b_list = b.tolist()
        t_list = target.tolist()
        flat = positions.reshape(-1)
        start = 0
        while start < total:
            # Extend the run until a term reuses one of its anchors.  A
            # term never conflicts with itself (endpoints differ), so
            # every run has at least one term.
            floor = 2 * start
            end = start
            limit = min(total, start + self.MINI_BATCH)
            while end < limit and bounds[end] < floor:
                end += 1
            if end - start < self.VECTOR_MIN_RUN:
                sqrt = math.sqrt
                for t in range(start, end):
                    ia = 2 * a_list[t]
                    ib = 2 * b_list[t]
                    ax = flat[ia]
                    ay = flat[ia + 1]
                    bx = flat[ib]
                    by = flat[ib + 1]
                    dx = ax - bx
                    dy = ay - by
                    distance = sqrt(dx * dx + dy * dy)
                    if distance < 1e-9:
                        dx, dy = 1.0, 0.0
                        distance = 1.0
                    tt = t_list[t]
                    mu = min(1.0, eta / (tt * tt))
                    magnitude = mu * (distance - tt) / 2.0
                    ux = dx / distance * magnitude
                    uy = dy / distance * magnitude
                    flat[ia] = ax - ux
                    flat[ia + 1] = ay - uy
                    flat[ib] = bx + ux
                    flat[ib + 1] = by + uy
                    moved[t] = magnitude > 0
                start = end
                continue
            run = slice(start, end)
            aa = a[run]
            bb = b[run]
            tt = target[run]
            ax = positions[aa, 0]
            ay = positions[aa, 1]
            bx = positions[bb, 0]
            by = positions[bb, 1]
            dx = ax - bx
            dy = ay - by
            distance = np.sqrt(dx * dx + dy * dy)
            degenerate = distance < 1e-9
            dx = np.where(degenerate, 1.0, dx)
            dy = np.where(degenerate, 0.0, dy)
            distance = np.where(degenerate, 1.0, distance)
            mu = np.minimum(1.0, eta / (tt * tt))  # w_ij = 1/d^2 weighting
            magnitude = mu * (distance - tt) / 2.0
            ux = dx / distance * magnitude
            uy = dy / distance * magnitude
            # No anchor repeats within the run, so plain fancy-index
            # updates are exact scatters.
            positions[aa, 0] = ax - ux
            positions[aa, 1] = ay - uy
            positions[bb, 0] = bx + ux
            positions[bb, 1] = by + uy
            moved[run] = magnitude > 0
            start = end
        return moved

    def _anchor_addresses(self, anchors: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_anchor_address` over a visit sequence.

        Per-anchor visit numbers continue from previous iterations; ties
        within the sequence rank in sequence order (stable grouping), so
        the rotation matches a call-by-call scalar walk.
        """
        if self._virtual_scale == 1:
            return self._layout_base + anchors * self.BYTES_PER_ANCHOR
        order = np.argsort(anchors, kind="stable")
        sorted_anchors = anchors[order]
        new_group = np.empty(sorted_anchors.shape[0], dtype=bool)
        if sorted_anchors.shape[0]:
            new_group[0] = True
            new_group[1:] = sorted_anchors[1:] != sorted_anchors[:-1]
        group_start = np.flatnonzero(new_group)
        group_id = np.cumsum(new_group) - 1
        within = np.arange(sorted_anchors.shape[0], dtype=np.int64)
        within -= group_start[group_id]
        visits = np.empty_like(within)
        visits[order] = within
        visits += self._visit_np[anchors]
        np.add.at(self._visit_np, anchors, 1)
        slot = anchors * self._virtual_scale + (
            visits * 2654435761 + anchors
        ) % self._virtual_scale
        return self._layout_base + slot * self.BYTES_PER_ANCHOR

    def _anchor_address(self, anchor: int) -> int:
        """Probe address of an anchor's coordinates.

        With ``virtual_anchor_scale > 1``, successive samples of the same
        anchor rotate through distinct virtual slots: on a full-size
        pangenome two samples virtually never touch the same cache line,
        and this reproduces that cold-access behaviour on a small graph.
        """
        if self._virtual_scale == 1:
            slot = anchor
        else:
            visit = self._visit_count.get(anchor, 0)
            self._visit_count[anchor] = visit + 1
            slot = (
                anchor * self._virtual_scale
                + (visit * 2654435761 + anchor) % self._virtual_scale
            )
        return self._layout_base + slot * self.BYTES_PER_ANCHOR

    def _sample_stress(self, samples: int = 200) -> float:
        """Normalized stress over a fixed random sample of anchor pairs."""
        rng = random.Random(1234)  # fixed: comparable across iterations
        total = 0.0
        count = 0
        for _ in range(samples):
            step_a, step_b = self.index.sample_step_pair(rng)
            anchor_a = self.anchor_of(step_a, False)
            anchor_b = self.anchor_of(step_b, False)
            if anchor_a == anchor_b:
                continue
            target = float(abs(
                self.anchor_position(step_b, False)
                - self.anchor_position(step_a, False)
            )) or 1.0
            ax, ay = self.positions[anchor_a]
            bx, by = self.positions[anchor_b]
            actual = math.hypot(ax - bx, ay - by)
            total += ((actual - target) / target) ** 2
            count += 1
        return total / count if count else 0.0


def pgsgd_layout(
    graph: SequenceGraph,
    params: PGSGDParams | None = None,
    probe: MachineProbe = NULL_PROBE,
) -> PGSGDResult:
    """One-shot CPU PGSGD layout."""
    return PGSGDLayout(graph, params=params, probe=probe).run()
