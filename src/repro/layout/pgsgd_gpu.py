"""PGSGD-GPU: the CUDA pangenome layout kernel (Li et al., SC'24).

Each thread picks an independent random anchor pair and applies the same
Hogwild update as the CPU kernel; a warp therefore issues with high lane
utilization (the warp-merging technique keeps ~88% of lanes busy) but
every lane loads/stores a *different* random layout address, so nothing
coalesces: a 32-lane load becomes up to 32 memory transactions, and
occupancy (limited to 66.7% by the kernel's 44 registers/thread at block
size 1024) cannot hide the resulting latency (Table 7).

The simulator runs real updates on the same layout array as the CPU
kernel and replays the access pattern onto the SIMT accounting model;
the block-size study (1024 vs 256) from Section 5.3 is exposed via the
``block_size`` parameter.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.gpu.simt import A6000, WARP_SIZE, GPUConfig, GPUKernelReport, GPUKernelRun
from repro.graph.model import SequenceGraph
from repro.layout.pgsgd import PGSGDLayout, PGSGDParams, PGSGDResult

#: Registers per thread reported for the kernel (paper Section 5.3).
PGSGD_GPU_REGISTERS_PER_THREAD = 44


@dataclass(frozen=True)
class PGSGDGPUResult:
    """Layout result plus the GPU profiling report."""

    layout: PGSGDResult
    report: GPUKernelReport


def pgsgd_layout_gpu(
    graph: SequenceGraph,
    params: PGSGDParams | None = None,
    config: GPUConfig = A6000,
    block_size: int = 1024,
    warp_divergence_loss: float = 0.117,
) -> PGSGDGPUResult:
    """Run PGSGD on the simulated GPU.

    The layout math reuses :class:`PGSGDLayout` (same updates, same
    convergence); the GPU accounting maps every 32 consecutive updates to
    one warp's lockstep execution with uncoalesced layout accesses.
    ``warp_divergence_loss`` is the fraction of lanes idled by data-
    dependent branches inside an update (the warp-merging technique keeps
    this small; 1 - 0.117 = 88.3% utilization in the paper).
    """
    if block_size % WARP_SIZE:
        raise SimulationError("block size must be a multiple of 32")
    params = params or PGSGDParams()
    cpu = PGSGDLayout(graph, params=params)
    rng = random.Random(params.seed + 1)

    total_updates = params.iterations * params.updates_per_iteration
    threads = block_size * max(
        1, config.sm_count
    )  # grid sized to fill the device once
    n_blocks = max(config.sm_count, total_updates // max(1, block_size * 4))
    run = GPUKernelRun(
        name="pgsgd_gpu",
        config=config,
        block_size=block_size,
        registers_per_thread=PGSGD_GPU_REGISTERS_PER_THREAD,
        n_blocks=n_blocks,
        dependent_fraction=0.5,
        # The full-size pangenome misses L1/L2 at the rates NCU reports
        # (31.5% / 49.3% hits) -> ~35% of sectors reach DRAM.
        dram_fraction=0.35,
    )
    layout_base = 1 << 20
    bytes_per_anchor = PGSGDLayout.BYTES_PER_ANCHOR

    active_lanes = max(1, round(WARP_SIZE * (1.0 - warp_divergence_loss)))
    max_distance = max(cpu.index.path_length(i) for i in range(cpu.index.path_count))
    schedule = params.schedule(eta_max=float(max_distance) ** 2)
    stress_history = [cpu._sample_stress()]
    updates = 0
    pending_addresses: list[int] = []
    for eta in schedule:
        for _ in range(params.updates_per_iteration):
            anchors = _one_update(cpu, eta, rng)
            updates += 1
            pending_addresses.extend(
                layout_base + anchor * bytes_per_anchor for anchor in anchors
            )
            if len(pending_addresses) >= 2 * WARP_SIZE:
                # One warp's worth of updates: ~20 arithmetic warp
                # instructions (incl. RNG), 2 uncoalesced loads + 2
                # uncoalesced stores.
                run.issue(active_lanes, count=20)
                for _ in range(2):
                    run.memory(pending_addresses[:WARP_SIZE], bytes_per_lane=16)
                for _ in range(2):
                    run.memory(pending_addresses[WARP_SIZE:], bytes_per_lane=16)
                pending_addresses.clear()
        stress_history.append(cpu._sample_stress())

    layout = PGSGDResult(
        positions=[(p[0], p[1]) for p in cpu.positions],
        updates=updates,
        stress_history=stress_history,
        path_index_work=cpu.index.build_work,
    )
    return PGSGDGPUResult(layout=layout, report=run.report())


#: Random-access latency ladder for the CPU Hogwild loop on the paper's
#: Xeon Gold 6326: (capacity bytes, loaded-use latency seconds) per
#: level, DRAM beyond.  A uniform-random anchor access hits each level
#: in proportion to the fraction of the layout array it holds.
CPU_CACHE_LADDER: tuple[tuple[float, float], ...] = (
    (48 * 1024, 1.5e-9),          # L1d
    (1.25 * 2**20, 7e-9),         # L2
    (24 * 2**20, 20e-9),          # shared LLC
)
CPU_DRAM_LATENCY = 90e-9
#: ~30 scalar ops (incl. sqrt and divide) per update at ~3 GHz.
CPU_ARITHMETIC_SECONDS = 10e-9
CPU_THREADS = 8
#: Hogwild scales near-linearly until the memory system saturates.
CPU_PARALLEL_EFFICIENCY = 0.85

#: Fixed device-side costs the CPU loop never pays: one kernel launch
#: per annealing iteration (the schedule's barriers force a relaunch)
#: and the layout array's PCIe round trip.
GPU_LAUNCH_SECONDS = 20e-6
PCIE_BYTES_PER_SECOND = 12e9


def cpu_pgsgd_time_model(
    n_anchors: int,
    updates: int,
    threads: int = CPU_THREADS,
) -> float:
    """Run-time model for the multithreaded CPU Hogwild loop (seconds).

    Each update reads and writes two uniform-random anchors, so its
    memory cost is four accesses at the blended latency of wherever the
    ``n_anchors * 16 B`` layout array lives — the model that makes the
    CPU side *size-dependent* (an L1-resident toy graph updates at
    arithmetic speed; a pangenome-sized array is DRAM-latency-bound,
    the paper's Section 5.3 regime).
    """
    footprint = max(1, n_anchors) * PGSGDLayout.BYTES_PER_ANCHOR
    latency = 0.0
    covered = 0.0
    for capacity, level_latency in CPU_CACHE_LADDER:
        fraction = min(1.0, capacity / footprint) - covered
        if fraction > 0.0:
            latency += fraction * level_latency
            covered += fraction
    latency += (1.0 - covered) * CPU_DRAM_LATENCY
    per_update = CPU_ARITHMETIC_SECONDS + 4.0 * latency
    return updates * per_update / (threads * CPU_PARALLEL_EFFICIENCY)


def gpu_pgsgd_wall_model(
    seconds_per_update: float,
    n_anchors: int,
    updates: int,
    iterations: int,
) -> float:
    """End-to-end GPU wall model (seconds): device update time plus the
    launch-per-iteration and PCIe-round-trip overheads.

    ``seconds_per_update`` comes from a measured
    :func:`pgsgd_layout_gpu` run (``report.time_ms / layout.updates``);
    the device rate is size-independent because the simulator already
    charges full-pangenome DRAM rates, so graph size enters only
    through the update count and the transfer volume.
    """
    transfer = (2 * n_anchors * PGSGDLayout.BYTES_PER_ANCHOR
                / PCIE_BYTES_PER_SECOND)
    return (updates * seconds_per_update
            + iterations * GPU_LAUNCH_SECONDS
            + transfer)


def _one_update(cpu: PGSGDLayout, eta: float, rng: random.Random) -> tuple[int, int]:
    """Apply one update via the CPU kernel's math; returns touched anchors."""
    step_a, step_b = cpu.index.sample_step_pair(rng, zipf_theta=cpu.params.zipf_theta)
    end_a = rng.random() < 0.5
    end_b = rng.random() < 0.5
    anchor_a = cpu.anchor_of(step_a, end_a)
    anchor_b = cpu.anchor_of(step_b, end_b)
    if anchor_a == anchor_b:
        return (anchor_a, anchor_b)
    target = float(abs(
        cpu.anchor_position(step_b, end_b) - cpu.anchor_position(step_a, end_a)
    )) or 1.0
    ax, ay = cpu.positions[anchor_a]
    bx, by = cpu.positions[anchor_b]
    dx, dy = ax - bx, ay - by
    distance = math.sqrt(dx * dx + dy * dy)
    if distance < 1e-9:
        dx, dy, distance = 1.0, 0.0, 1.0
    mu = min(1.0, eta / (target * target))
    magnitude = mu * (distance - target) / 2.0
    ux = dx / distance * magnitude
    uy = dy / distance * magnitude
    cpu.positions[anchor_a][0] = ax - ux
    cpu.positions[anchor_a][1] = ay - uy
    cpu.positions[anchor_b][0] = bx + ux
    cpu.positions[anchor_b][1] = by + uy
    return (anchor_a, anchor_b)
