"""Layout serialization: odgi-style TSV and a standalone SVG rendering.

The visualization step's output (Section 2.2): scientists inspect the 2D
layout to judge graph quality, then iterate on build parameters.  These
writers turn a :class:`~repro.layout.pgsgd.PGSGDResult` into artifacts a
human can open.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Sequence, TextIO

from repro.errors import SimulationError
from repro.graph.model import SequenceGraph


def write_layout_tsv(
    positions: Sequence[tuple[float, float]],
    destination: str | Path | TextIO,
) -> None:
    """Write anchor coordinates as ``idx  X  Y`` (odgi layout's .lay TSV)."""
    if not positions:
        raise SimulationError("no positions to write")
    if isinstance(destination, (str, Path)):
        handle: TextIO = open(destination, "w", encoding="ascii")
        should_close = True
    else:
        handle = destination
        should_close = False
    try:
        handle.write("#idx\tX\tY\n")
        for index, (x, y) in enumerate(positions):
            handle.write(f"{index}\t{x:.3f}\t{y:.3f}\n")
    finally:
        if should_close:
            handle.close()


def layout_to_svg(
    graph: SequenceGraph,
    positions: Sequence[tuple[float, float]],
    width: int = 800,
    height: int = 600,
    stroke: str = "#1f6f8b",
) -> str:
    """Render a layout as SVG: one line segment per node (its two anchors).

    ``positions`` must hold two anchors per node in sorted node-id order,
    exactly as :class:`~repro.layout.pgsgd.PGSGDLayout` produces them.
    """
    if len(positions) != 2 * graph.node_count:
        raise SimulationError(
            f"expected {2 * graph.node_count} anchors, got {len(positions)}"
        )
    xs = [p[0] for p in positions]
    ys = [p[1] for p in positions]
    span_x = (max(xs) - min(xs)) or 1.0
    span_y = (max(ys) - min(ys)) or 1.0
    margin = 10.0

    def tx(x: float) -> float:
        return margin + (x - min(xs)) / span_x * (width - 2 * margin)

    def ty(y: float) -> float:
        return margin + (y - min(ys)) / span_y * (height - 2 * margin)

    buffer = io.StringIO()
    buffer.write(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">\n'
    )
    buffer.write('<rect width="100%" height="100%" fill="white"/>\n')
    for anchor_index in range(0, len(positions), 2):
        x1, y1 = positions[anchor_index]
        x2, y2 = positions[anchor_index + 1]
        buffer.write(
            f'<line x1="{tx(x1):.1f}" y1="{ty(y1):.1f}" '
            f'x2="{tx(x2):.1f}" y2="{ty(y2):.1f}" '
            f'stroke="{stroke}" stroke-width="1.2" stroke-linecap="round"/>\n'
        )
    buffer.write("</svg>\n")
    return buffer.getvalue()
