"""Path step index for PGSGD sampling.

PGSGD samples pairs of anchors from *paths* and needs, for any two steps
of a path, their nucleotide distance along it.  odgi builds this index in
a sequential preprocessing pass — the serial fraction that bends odgi's
otherwise near-linear thread scaling in the paper's Figure 5.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import GraphError
from repro.graph.model import SequenceGraph


@dataclass(frozen=True)
class PathStep:
    """One step of a path: the node visited and its cumulative offset."""

    path_index: int
    step_index: int
    node_id: int
    position: int  # nucleotide offset of the node start along the path


class PathIndex:
    """Cumulative-position index over all paths of a graph.

    Build cost is O(total path steps), inherently sequential (prefix
    sums), and is reported via :attr:`build_work` so the thread-scaling
    model can account for it.
    """

    def __init__(self, graph: SequenceGraph) -> None:
        if graph.path_count == 0:
            raise GraphError("path index needs at least one path")
        self.graph = graph
        self.path_names: list[str] = graph.path_names()
        self._steps: list[list[PathStep]] = []
        self._lengths: list[int] = []
        self.build_work = 0
        for path_number, name in enumerate(self.path_names):
            path = graph.path(name)
            steps: list[PathStep] = []
            position = 0
            for step_index, node_id in enumerate(path.nodes):
                steps.append(PathStep(path_number, step_index, node_id, position))
                position += len(graph.node(node_id))
                self.build_work += 1
            self._steps.append(steps)
            self._lengths.append(position)

    @property
    def path_count(self) -> int:
        return len(self._steps)

    @property
    def total_steps(self) -> int:
        return sum(len(steps) for steps in self._steps)

    def path_length(self, path_index: int) -> int:
        return self._lengths[path_index]

    def steps_of(self, path_index: int) -> list[PathStep]:
        return self._steps[path_index]

    def step(self, path_index: int, step_index: int) -> PathStep:
        return self._steps[path_index][step_index]

    def distance(self, a: PathStep, b: PathStep) -> int:
        """Nucleotide distance between two steps of the same path."""
        if a.path_index != b.path_index:
            raise GraphError("steps belong to different paths")
        return abs(b.position - a.position)

    def sample_step_pair(
        self, rng: random.Random, window: int | None = None, zipf_theta: float = 0.9
    ) -> tuple[PathStep, PathStep]:
        """Sample an anchor pair like odgi's PGSGD.

        A random path, a random first step, and a second step at a
        Zipf-distributed step distance (mostly local pairs with a heavy
        tail of long-range ones), optionally capped by *window*.
        """
        path_index = rng.randrange(len(self._steps))
        steps = self._steps[path_index]
        if len(steps) == 1:
            step = steps[0]
            return step, step
        first = rng.randrange(len(steps))
        max_jump = len(steps) - 1 if window is None else min(window, len(steps) - 1)
        jump = _zipf_sample(rng, max_jump, zipf_theta)
        if rng.random() < 0.5:
            second = max(0, first - jump)
        else:
            second = min(len(steps) - 1, first + jump)
        if second == first:
            second = (first + 1) % len(steps)
        return steps[first], steps[second]


def _zipf_sample(rng: random.Random, max_value: int, theta: float) -> int:
    """Approximate Zipf sample in [1, max_value] via inverse transform."""
    if max_value <= 1:
        return 1
    u = rng.random()
    # Power-law inverse CDF: heavier head for larger theta.
    value = int((max_value ** (1.0 - theta) * u + 1.0) ** (1.0 / (1.0 - theta)))
    return max(1, min(max_value, value))
