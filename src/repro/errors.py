"""Exception hierarchy for the PangenomicsBench reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SequenceError(ReproError):
    """Invalid sequence data (bad characters, empty input, bad FASTA)."""


class GraphError(ReproError):
    """Structurally invalid graph or unsupported graph operation."""


class CyclicGraphError(GraphError):
    """An operation requiring a DAG was applied to a cyclic graph."""

    def __init__(self, message: str = "graph contains a cycle") -> None:
        super().__init__(message)


class GFAError(GraphError):
    """Malformed GFA input."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class IndexError_(ReproError):
    """Invalid index construction or query (named to avoid the builtin)."""


class AlignmentError(ReproError):
    """Alignment could not be computed for the given inputs."""


class DatasetError(ReproError):
    """Dataset generation or loading failed."""


class ManifestError(DatasetError):
    """A scenario manifest is malformed or expands inconsistently."""


class SweepError(ReproError):
    """A sweep over the scenario matrix was misconfigured or failed."""


class KernelError(ReproError):
    """A benchmark kernel was misconfigured or failed to run."""


class SimulationError(ReproError):
    """The microarchitecture or GPU simulator was misconfigured."""


class ServeError(ReproError):
    """The benchmark service was misused or is shutting down."""


class ServiceOverloaded(ServeError):
    """Admission control rejected a submission (queue past its
    high-water mark); retry after ``retry_after`` seconds."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServeTimeout(ServeError):
    """Waiting on a job handle exceeded the caller's deadline."""
