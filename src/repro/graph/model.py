"""Sequence graph data model.

A pangenome is represented as a directed *sequence graph*: each node holds
a subsequence of bases, each directed edge allows walks to continue from
the end of one node into the start of another, and each named *path* spells
a sequence (a haplotype, an assembly contig, a reference) as a walk through
nodes.  This mirrors the GFA segment/link/path model used by vg, minigraph
and the PGGB toolchain, restricted to the forward strand: inversions are
modelled as distinct reverse-complement nodes by the graph builders, which
keeps every aligner in the suite single-stranded without losing the
topological properties (bubbles, cycles, branching) the paper studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import GraphError
from repro.sequence.alphabet import validate_dna


@dataclass(frozen=True)
class Node:
    """A graph node: an integer identifier and a non-empty DNA label."""

    node_id: int
    sequence: str

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise GraphError("node ids must be non-negative")
        validate_dna(self.sequence, allow_n=True, name=f"node {self.node_id}")

    def __len__(self) -> int:
        return len(self.sequence)


@dataclass(frozen=True)
class Path:
    """A named walk through the graph.

    Attributes:
        name: Path identifier (e.g. a haplotype name).
        nodes: The node ids visited, in order.
    """

    name: str
    nodes: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("path needs a non-empty name")
        if not self.nodes:
            raise GraphError(f"path {self.name!r} is empty")

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[int]:
        return iter(self.nodes)


class SequenceGraph:
    """A mutable directed sequence graph with named paths.

    Node ids are arbitrary non-negative integers.  Edges are ordered pairs
    of node ids.  Paths must traverse existing edges; this is validated at
    insertion time so that a constructed graph is always internally
    consistent.
    """

    def __init__(self) -> None:
        self._nodes: dict[int, Node] = {}
        self._out: dict[int, set[int]] = {}
        self._in: dict[int, set[int]] = {}
        self._paths: dict[str, Path] = {}

    # ------------------------------------------------------------------
    # construction

    def add_node(self, node_id: int, sequence: str) -> Node:
        """Add a node; raises :class:`GraphError` if the id is taken."""
        if node_id in self._nodes:
            raise GraphError(f"node {node_id} already exists")
        node = Node(node_id, sequence)
        self._nodes[node_id] = node
        self._out[node_id] = set()
        self._in[node_id] = set()
        return node

    def add_edge(self, source: int, target: int) -> None:
        """Add the directed edge source -> target (idempotent)."""
        if source not in self._nodes:
            raise GraphError(f"edge source {source} is not a node")
        if target not in self._nodes:
            raise GraphError(f"edge target {target} is not a node")
        self._out[source].add(target)
        self._in[target].add(source)

    def add_path(self, name: str, nodes: Iterable[int]) -> Path:
        """Add a named path; every consecutive pair must be an edge."""
        path = Path(name, tuple(nodes))
        if name in self._paths:
            raise GraphError(f"path {name!r} already exists")
        for node_id in path.nodes:
            if node_id not in self._nodes:
                raise GraphError(f"path {name!r} visits unknown node {node_id}")
        for source, target in zip(path.nodes, path.nodes[1:]):
            if target not in self._out[source]:
                raise GraphError(
                    f"path {name!r} uses missing edge {source} -> {target}"
                )
        self._paths[name] = path
        return path

    def remove_path(self, name: str) -> None:
        if name not in self._paths:
            raise GraphError(f"no path named {name!r}")
        del self._paths[name]

    # ------------------------------------------------------------------
    # accessors

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return sum(len(targets) for targets in self._out.values())

    @property
    def path_count(self) -> int:
        return len(self._paths)

    def node(self, node_id: int) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"no node {node_id}") from None

    def node_ids(self) -> list[int]:
        """All node ids in insertion order."""
        return list(self._nodes)

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def edges(self) -> Iterator[tuple[int, int]]:
        for source in self._nodes:
            for target in sorted(self._out[source]):
                yield source, target

    def has_edge(self, source: int, target: int) -> bool:
        return source in self._out and target in self._out[source]

    def successors(self, node_id: int) -> list[int]:
        try:
            return sorted(self._out[node_id])
        except KeyError:
            raise GraphError(f"no node {node_id}") from None

    def predecessors(self, node_id: int) -> list[int]:
        try:
            return sorted(self._in[node_id])
        except KeyError:
            raise GraphError(f"no node {node_id}") from None

    def out_degree(self, node_id: int) -> int:
        return len(self._out[node_id])

    def in_degree(self, node_id: int) -> int:
        return len(self._in[node_id])

    def paths(self) -> Iterator[Path]:
        return iter(self._paths.values())

    def path(self, name: str) -> Path:
        try:
            return self._paths[name]
        except KeyError:
            raise GraphError(f"no path named {name!r}") from None

    def path_names(self) -> list[str]:
        return list(self._paths)

    def path_sequence(self, name: str) -> str:
        """The sequence spelled by walking the named path."""
        return "".join(self._nodes[node_id].sequence for node_id in self.path(name))

    def path_length(self, name: str) -> int:
        return sum(len(self._nodes[node_id]) for node_id in self.path(name))

    @property
    def total_sequence_length(self) -> int:
        """Total bases stored across all nodes."""
        return sum(len(node) for node in self._nodes.values())

    # ------------------------------------------------------------------
    # derived views

    def copy(self) -> "SequenceGraph":
        """A deep, independent copy of this graph."""
        clone = SequenceGraph()
        for node in self._nodes.values():
            clone.add_node(node.node_id, node.sequence)
        for source, target in self.edges():
            clone.add_edge(source, target)
        for path in self._paths.values():
            clone.add_path(path.name, path.nodes)
        return clone

    def sources(self) -> list[int]:
        """Nodes with no incoming edges."""
        return [node_id for node_id in self._nodes if not self._in[node_id]]

    def sinks(self) -> list[int]:
        """Nodes with no outgoing edges."""
        return [node_id for node_id in self._nodes if not self._out[node_id]]

    def validate(self) -> None:
        """Check internal consistency; raises :class:`GraphError` on failure."""
        for source, targets in self._out.items():
            for target in targets:
                if source not in self._in[target]:
                    raise GraphError(f"edge {source}->{target} missing reverse index")
        for path in self._paths.values():
            for source, target in zip(path.nodes, path.nodes[1:]):
                if target not in self._out[source]:
                    raise GraphError(
                        f"path {path.name!r} uses missing edge {source}->{target}"
                    )

    def __repr__(self) -> str:
        return (
            f"SequenceGraph(nodes={self.node_count}, edges={self.edge_count}, "
            f"paths={self.path_count}, bases={self.total_sequence_length})"
        )


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a sequence graph (Section 6.2 compares these)."""

    node_count: int
    edge_count: int
    path_count: int
    total_bases: int
    mean_node_length: float
    max_node_length: int
    mean_out_degree: float
    max_out_degree: int
    source_count: int
    sink_count: int

    @staticmethod
    def of(graph: SequenceGraph) -> "GraphStats":
        lengths = [len(node) for node in graph.nodes()]
        degrees = [graph.out_degree(node_id) for node_id in graph.node_ids()]
        return GraphStats(
            node_count=graph.node_count,
            edge_count=graph.edge_count,
            path_count=graph.path_count,
            total_bases=graph.total_sequence_length,
            mean_node_length=(sum(lengths) / len(lengths)) if lengths else 0.0,
            max_node_length=max(lengths, default=0),
            mean_out_degree=(sum(degrees) / len(degrees)) if degrees else 0.0,
            max_out_degree=max(degrees, default=0),
            source_count=len(graph.sources()),
            sink_count=len(graph.sinks()),
        )
