"""Graph distances between base positions.

Seq2Seq clustering estimates seed distance as a coordinate difference;
Seq2Graph mapping must instead compute shortest-path distances through the
graph (Section 2.1).  This module provides that primitive: a bounded
Dijkstra over node lengths, used by the clustering/chaining stages of the
mapping tools.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import GraphError
from repro.graph.model import SequenceGraph

#: Returned when two positions are farther apart than the search limit.
UNREACHABLE = -1


@dataclass(frozen=True)
class GraphPosition:
    """A base position inside a graph: node id + 0-based offset."""

    node_id: int
    offset: int

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise GraphError("offset must be non-negative")


def min_distance(
    graph: SequenceGraph,
    start: GraphPosition,
    end: GraphPosition,
    limit: int = 10_000,
) -> int:
    """Shortest walk distance in bases from *start* to *end*.

    The distance counts bases strictly between the two positions along the
    best walk (0 when positions coincide).  Searches give up past *limit*
    and return :data:`UNREACHABLE`.  Handles cycles (Dijkstra with
    non-negative node-length weights).
    """
    for position in (start, end):
        node = graph.node(position.node_id)
        if position.offset >= len(node):
            raise GraphError(
                f"offset {position.offset} out of range for node "
                f"{position.node_id} (length {len(node)})"
            )
    if start.node_id == end.node_id and end.offset >= start.offset:
        return end.offset - start.offset

    start_node_len = len(graph.node(start.node_id))
    # Distance from start position to the *start* of each frontier node.
    initial = start_node_len - start.offset
    if initial > limit:
        return UNREACHABLE

    best: dict[int, int] = {}
    heap: list[tuple[int, int]] = []
    for successor in graph.successors(start.node_id):
        heapq.heappush(heap, (initial, successor))
    while heap:
        distance, node_id = heapq.heappop(heap)
        if node_id in best and best[node_id] <= distance:
            continue
        best[node_id] = distance
        if node_id == end.node_id:
            return distance + end.offset
        next_distance = distance + len(graph.node(node_id))
        if next_distance > limit:
            continue
        for successor in graph.successors(node_id):
            if successor not in best or best[successor] > next_distance:
                heapq.heappush(heap, (next_distance, successor))
    return UNREACHABLE


def reachable_within(
    graph: SequenceGraph, start_node: int, limit_bp: int
) -> dict[int, int]:
    """Map of node id -> distance (bp to node start) reachable downstream.

    Starts *after* ``start_node`` (distance measured from its end).
    Used by clustering to group seeds by graph locality.
    """
    if start_node not in graph:
        raise GraphError(f"unknown node {start_node}")
    best: dict[int, int] = {}
    heap: list[tuple[int, int]] = [(0, successor) for successor in graph.successors(start_node)]
    heapq.heapify(heap)
    while heap:
        distance, node_id = heapq.heappop(heap)
        if node_id in best and best[node_id] <= distance:
            continue
        best[node_id] = distance
        next_distance = distance + len(graph.node(node_id))
        if next_distance > limit_bp:
            continue
        for successor in graph.successors(node_id):
            if successor not in best or best[successor] > next_distance:
                heapq.heappush(heap, (next_distance, successor))
    return best
