"""Graph algorithms: topological sort, subgraph extraction, node splitting.

These are the structural operations the mapping kernels depend on: GSSW
aligns to topologically sorted acyclic subgraphs extracted around seed
hits; the Split-M-Graph case study (Section 6.2) splits long nodes into
chains of short ones; seqwish/GFAffix compact non-branching chains.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.errors import CyclicGraphError, GraphError
from repro.graph.model import SequenceGraph


def is_acyclic(graph: SequenceGraph) -> bool:
    """True if the graph contains no directed cycle."""
    try:
        topological_sort(graph)
        return True
    except CyclicGraphError:
        return False


def topological_sort(graph: SequenceGraph) -> list[int]:
    """Kahn's algorithm; raises :class:`CyclicGraphError` on cycles.

    Ties are broken by node id so the order is deterministic.
    """
    in_degree = {node_id: graph.in_degree(node_id) for node_id in graph.node_ids()}
    ready = sorted(node_id for node_id, degree in in_degree.items() if degree == 0)
    queue = deque(ready)
    order: list[int] = []
    while queue:
        node_id = queue.popleft()
        order.append(node_id)
        for successor in graph.successors(node_id):
            in_degree[successor] -= 1
            if in_degree[successor] == 0:
                queue.append(successor)
    if len(order) != graph.node_count:
        raise CyclicGraphError()
    return order


def induced_subgraph(graph: SequenceGraph, node_ids: Iterable[int]) -> SequenceGraph:
    """The subgraph induced by *node_ids* (edges with both ends kept).

    Paths are dropped: extracted subgraphs are alignment targets, not
    haplotype carriers.
    """
    keep = set(node_ids)
    for node_id in keep:
        if node_id not in graph:
            raise GraphError(f"cannot induce subgraph: unknown node {node_id}")
    sub = SequenceGraph()
    for node_id in sorted(keep):
        sub.add_node(node_id, graph.node(node_id).sequence)
    for node_id in sorted(keep):
        for successor in graph.successors(node_id):
            if successor in keep:
                sub.add_edge(node_id, successor)
    return sub


def local_subgraph(
    graph: SequenceGraph,
    start_node: int,
    radius_bp: int,
    acyclic: bool = False,
) -> SequenceGraph:
    """Extract the local subgraph within *radius_bp* bases of *start_node*.

    This models the context extraction vg performs around a seed hit
    before GSSW alignment.  Traversal goes both directions; the budget is
    consumed by node lengths.  With ``acyclic=True``, back edges that would
    create cycles are dropped (vg DAG-ifies the extracted context).
    """
    if start_node not in graph:
        raise GraphError(f"unknown start node {start_node}")
    if radius_bp < 0:
        raise GraphError("radius_bp must be non-negative")
    budget: dict[int, int] = {start_node: radius_bp}
    queue = deque([start_node])
    while queue:
        node_id = queue.popleft()
        remaining = budget[node_id]
        for neighbor in (*graph.successors(node_id), *graph.predecessors(node_id)):
            cost = len(graph.node(node_id))
            next_budget = remaining - cost
            if next_budget >= 0 and budget.get(neighbor, -1) < next_budget:
                budget[neighbor] = next_budget
                queue.append(neighbor)
    sub = induced_subgraph(graph, budget.keys())
    if acyclic:
        sub = dagify(sub)
    return sub


def dagify(graph: SequenceGraph) -> SequenceGraph:
    """Drop back edges until the graph is acyclic (order: DFS discovery).

    A lightweight stand-in for vg's unrolling; sufficient because our
    synthetic graphs contain few cycles (duplications).
    """
    color: dict[int, int] = {}
    back_edges: set[tuple[int, int]] = set()

    for root in sorted(graph.node_ids()):
        if root in color:
            continue
        stack: list[tuple[int, Iterable[int]]] = [(root, iter(graph.successors(root)))]
        color[root] = 1
        while stack:
            node_id, successors = stack[-1]
            advanced = False
            for successor in successors:
                if color.get(successor, 0) == 1:
                    back_edges.add((node_id, successor))
                elif successor not in color:
                    color[successor] = 1
                    stack.append((successor, iter(graph.successors(successor))))
                    advanced = True
                    break
            if not advanced:
                color[node_id] = 2
                stack.pop()

    if not back_edges:
        return graph
    out = SequenceGraph()
    for node in graph.nodes():
        out.add_node(node.node_id, node.sequence)
    for source, target in graph.edges():
        if (source, target) not in back_edges:
            out.add_edge(source, target)
    return out


def split_nodes(graph: SequenceGraph, max_length: int) -> SequenceGraph:
    """Split every node longer than *max_length* into a chain of pieces.

    Reproduces the paper's Split-M-Graph construction (Section 6.2):
    nodes with more than *max_length* bases become chains of
    *max_length*-base nodes.  Paths are rewritten through the chains.
    New node ids extend past the current maximum id.
    """
    if max_length < 1:
        raise GraphError("max_length must be at least 1")
    out = SequenceGraph()
    next_id = max(graph.node_ids(), default=-1) + 1
    chains: dict[int, list[int]] = {}

    for node in sorted(graph.nodes(), key=lambda n: n.node_id):
        if len(node) <= max_length:
            out.add_node(node.node_id, node.sequence)
            chains[node.node_id] = [node.node_id]
            continue
        piece_ids: list[int] = []
        for offset in range(0, len(node), max_length):
            piece = node.sequence[offset : offset + max_length]
            if offset == 0:
                out.add_node(node.node_id, piece)
                piece_ids.append(node.node_id)
            else:
                out.add_node(next_id, piece)
                piece_ids.append(next_id)
                next_id += 1
        for left, right in zip(piece_ids, piece_ids[1:]):
            out.add_edge(left, right)
        chains[node.node_id] = piece_ids

    for source, target in graph.edges():
        out.add_edge(chains[source][-1], chains[target][0])
    for path in graph.paths():
        walk: list[int] = []
        for node_id in path.nodes:
            walk.extend(chains[node_id])
        out.add_path(path.name, walk)
    return out


def compact_chains(graph: SequenceGraph) -> SequenceGraph:
    """Merge non-branching chains into single nodes ("unchop").

    A node pair (u, v) merges when u's only successor is v, v's only
    predecessor is u, and no path starts/ends between them in a way that
    would change path spelling (always true here since paths are walks).
    The inverse of :func:`split_nodes` up to node ids.
    """
    # Nodes where a path begins or ends must stay chain boundaries: the
    # merged node would otherwise spell more than the path traverses.
    path_starts = {path.nodes[0] for path in graph.paths()}
    path_ends = {path.nodes[-1] for path in graph.paths()}

    def can_join(left: int, right: int) -> bool:
        return left not in path_ends and right not in path_starts

    member_of: dict[int, int] = {}
    chains: list[list[int]] = []
    for node_id in sorted(graph.node_ids()):
        if node_id in member_of:
            continue
        # Walk backwards to the chain head.
        head = node_id
        while True:
            predecessors = graph.predecessors(head)
            if len(predecessors) != 1:
                break
            previous = predecessors[0]
            if graph.out_degree(previous) != 1 or previous == head or previous in member_of:
                break
            if previous == node_id:  # pure cycle; stop to avoid looping forever
                break
            if not can_join(previous, head):
                break
            head = previous
        chain = [head]
        member_of[head] = len(chains)
        current = head
        while True:
            successors = graph.successors(current)
            if len(successors) != 1:
                break
            nxt = successors[0]
            if graph.in_degree(nxt) != 1 or nxt in member_of:
                break
            if not can_join(current, nxt):
                break
            chain.append(nxt)
            member_of[nxt] = len(chains)
            current = nxt
        chains.append(chain)

    out = SequenceGraph()
    chain_id = {index: chain[0] for index, chain in enumerate(chains)}
    position_in_chain: dict[int, int] = {}
    for chain in chains:
        for position, node_id in enumerate(chain):
            position_in_chain[node_id] = position
    for index, chain in enumerate(chains):
        sequence = "".join(graph.node(node_id).sequence for node_id in chain)
        out.add_node(chain_id[index], sequence)
    for source, target in graph.edges():
        source_chain = member_of[source]
        target_chain = member_of[target]
        if source_chain == target_chain:
            # Internal chain edges disappear; back edges (cycles within
            # one chain, incl. self-loops) become a self-edge.
            if position_in_chain[target] != position_in_chain[source] + 1:
                out.add_edge(chain_id[source_chain], chain_id[source_chain])
            continue
        out.add_edge(chain_id[source_chain], chain_id[target_chain])
    for path in graph.paths():
        walk: list[int] = []
        previous: int | None = None
        for node_id in path.nodes:
            chain_index = member_of[node_id]
            continuation = (
                previous is not None
                and member_of[previous] == chain_index
                and position_in_chain[previous] + 1 == position_in_chain[node_id]
            )
            if not continuation:
                walk.append(chain_id[chain_index])
            previous = node_id
        out.add_path(path.name, walk)
    return out


def connected_components(graph: SequenceGraph) -> list[set[int]]:
    """Weakly connected components, largest first."""
    seen: set[int] = set()
    components: list[set[int]] = []
    for root in graph.node_ids():
        if root in seen:
            continue
        component: set[int] = set()
        queue = deque([root])
        seen.add(root)
        while queue:
            node_id = queue.popleft()
            component.add(node_id)
            for neighbor in (*graph.successors(node_id), *graph.predecessors(node_id)):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        components.append(component)
    return sorted(components, key=len, reverse=True)
