"""Sequence-graph substrate: model, algorithms, GFA I/O, builders."""

from repro.graph.bubbles import (
    Superbubble,
    deconstruct,
    find_superbubbles,
    superbubble_from,
)
from repro.graph.builder import (
    GraphPangenome,
    build_variation_graph,
    simulate_graph_pangenome,
)
from repro.graph.distance import UNREACHABLE, GraphPosition, min_distance, reachable_within
from repro.graph.gfa import gfa_string, parse_gfa, parse_gfa_string, write_gfa
from repro.graph.model import GraphStats, Node, Path, SequenceGraph
from repro.graph.ops import (
    compact_chains,
    connected_components,
    dagify,
    induced_subgraph,
    is_acyclic,
    local_subgraph,
    split_nodes,
    topological_sort,
)

__all__ = [
    "Superbubble", "deconstruct", "find_superbubbles", "superbubble_from",
    "GraphPangenome", "build_variation_graph", "simulate_graph_pangenome",
    "UNREACHABLE", "GraphPosition", "min_distance", "reachable_within",
    "gfa_string", "parse_gfa", "parse_gfa_string", "write_gfa",
    "GraphStats", "Node", "Path", "SequenceGraph",
    "compact_chains", "connected_components", "dagify", "induced_subgraph",
    "is_acyclic", "local_subgraph", "split_nodes", "topological_sort",
]
