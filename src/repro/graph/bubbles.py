"""Superbubble detection and variant deconstruction.

Pangenome graphs decompose into *superbubbles*: single-entry,
single-exit subgraphs that correspond to variation sites.  Downstream
analyses the paper motivates (variant calling, GWAS) consume the graph
through this decomposition, and ``deconstruct`` inverts the variation-
graph builder: it recovers, for every haplotype path, the variant set
against a chosen reference path — with the round-trip guarantee that
applying the recovered variants to the reference reproduces the
haplotype sequence exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GraphError
from repro.graph.model import SequenceGraph
from repro.sequence.mutate import Variant, VariantType


@dataclass(frozen=True)
class Superbubble:
    """A single-entry/single-exit bubble: all walks from *source* reach
    *sink* without leaving the bubble's interior."""

    source: int
    sink: int
    interior: frozenset[int]

    @property
    def size(self) -> int:
        return len(self.interior)


def superbubble_from(graph: SequenceGraph, source: int) -> Superbubble | None:
    """The superbubble starting at *source*, if one exists.

    Onodera et al.'s forward-search check: expand vertices whose parents
    are all visited; the bubble closes when exactly one frontier vertex
    remains and nothing else is pending.  Tips and cycles back to the
    source disqualify the bubble.
    """
    if graph.out_degree(source) < 2:
        return None
    seen: set[int] = {source}
    visited: set[int] = set()
    stack: list[int] = [source]
    while stack:
        vertex = stack.pop()
        visited.add(vertex)
        if graph.out_degree(vertex) == 0:
            return None  # a tip escapes the bubble
        for child in graph.successors(vertex):
            if child == source:
                return None  # cycle back to the entrance
            seen.add(child)
            if all(parent in visited for parent in graph.predecessors(child)):
                stack.append(child)
        if len(stack) == 1 and not (seen - visited - set(stack)):
            sink = stack[0]
            if sink == source:
                return None
            interior = frozenset(visited - {source})
            return Superbubble(source=source, sink=sink, interior=interior)
    return None


def find_superbubbles(graph: SequenceGraph) -> list[Superbubble]:
    """All superbubbles, in source-id order."""
    bubbles = []
    for node_id in sorted(graph.node_ids()):
        bubble = superbubble_from(graph, node_id)
        if bubble is not None:
            bubbles.append(bubble)
    return bubbles


def _classify(ref_allele: str, alt_allele: str) -> VariantType:
    if not ref_allele:
        return VariantType.INSERTION
    if not alt_allele:
        return VariantType.DELETION
    if len(ref_allele) == len(alt_allele):
        return VariantType.SNP
    return (
        VariantType.INSERTION
        if len(alt_allele) > len(ref_allele)
        else VariantType.DELETION
    )


def deconstruct(
    graph: SequenceGraph, reference_name: str
) -> dict[str, list[Variant]]:
    """Recover per-haplotype variants against *reference_name*'s path.

    For every superbubble whose source and sink lie on the reference
    path, each other path's spelling through the bubble is compared with
    the reference's; differences become :class:`Variant` records in
    reference coordinates.  Haplotypes that do not traverse a bubble
    (or enter it through a different walk endpoint) contribute nothing
    for that site.
    """
    reference = graph.path(reference_name)
    ref_index: dict[int, int] = {}
    ref_offset: dict[int, int] = {}
    position = 0
    for index, node_id in enumerate(reference.nodes):
        if node_id in ref_index:
            raise GraphError("reference path revisits a node; cannot deconstruct")
        ref_index[node_id] = index
        ref_offset[node_id] = position
        position += len(graph.node(node_id))

    bubbles = [
        bubble
        for bubble in find_superbubbles(graph)
        if bubble.source in ref_index and bubble.sink in ref_index
        and ref_index[bubble.source] < ref_index[bubble.sink]
    ]

    out: dict[str, list[Variant]] = {}
    for name in graph.path_names():
        if name == reference_name:
            continue
        walk = graph.path(name).nodes
        walk_index = {node_id: step for step, node_id in enumerate(walk)}
        variants: list[Variant] = []
        for bubble in bubbles:
            source_step = walk_index.get(bubble.source)
            sink_step = walk_index.get(bubble.sink)
            if source_step is None or sink_step is None or sink_step <= source_step:
                continue
            alt_allele = "".join(
                graph.node(node_id).sequence
                for node_id in walk[source_step + 1 : sink_step]
            )
            ref_inner = reference.nodes[
                ref_index[bubble.source] + 1 : ref_index[bubble.sink]
            ]
            ref_allele = "".join(graph.node(n).sequence for n in ref_inner)
            if ref_allele == alt_allele:
                continue
            variant_position = ref_offset[bubble.source] + len(
                graph.node(bubble.source)
            )
            variants.append(
                Variant(
                    kind=_classify(ref_allele, alt_allele),
                    position=variant_position,
                    ref=ref_allele,
                    alt=alt_allele,
                )
            )
        variants.extend(_endpoint_variants(graph, reference, ref_index, ref_offset, walk))
        out[name] = sorted(variants, key=lambda v: v.position)
    return out


def _endpoint_variants(
    graph: SequenceGraph,
    reference,
    ref_index: dict[int, int],
    ref_offset: dict[int, int],
    walk: tuple[int, ...],
) -> list[Variant]:
    """Variants at the sequence ends, which no superbubble covers (the
    allele node is a tip: it has no flanking segment on one side)."""
    variants: list[Variant] = []
    common_steps = [step for step, node in enumerate(walk) if node in ref_index]
    if not common_steps:
        return variants

    def spell(nodes) -> str:
        return "".join(graph.node(n).sequence for n in nodes)

    # Trailing divergence: everything after the last shared node.
    last_step = common_steps[-1]
    last_node = walk[last_step]
    ref_tail = spell(reference.nodes[ref_index[last_node] + 1 :])
    alt_tail = spell(walk[last_step + 1 :])
    if ref_tail != alt_tail:
        variants.append(
            Variant(
                kind=_classify(ref_tail, alt_tail),
                position=ref_offset[last_node] + len(graph.node(last_node)),
                ref=ref_tail,
                alt=alt_tail,
            )
        )
    # Leading divergence: everything before the first shared node.
    first_step = common_steps[0]
    first_node = walk[first_step]
    ref_head = spell(reference.nodes[: ref_index[first_node]])
    alt_head = spell(walk[:first_step])
    if ref_head != alt_head:
        variants.append(
            Variant(
                kind=_classify(ref_head, alt_head),
                position=0,
                ref=ref_head,
                alt=alt_head,
            )
        )
    return variants
