"""Variation-graph construction from a reference plus variant sets.

This is the library's fast path for producing realistic pangenome graphs:
it chops the reference at variant breakpoints, adds one allele node per
alternate allele, threads a path per haplotype, and therefore guarantees
that every haplotype path spells exactly the haplotype's linear sequence.
The slower discovery-based pipelines construct graphs from alignments
instead: :func:`repro.build.cactus.build_progressive` (Minigraph–Cactus)
and the PGGB chain :func:`repro.build.wfmash.all_to_all` →
:func:`repro.build.seqwish.induce_graph` →
:func:`repro.build.gfaffix.polish` / :func:`repro.build.smoothxg.smooth`.
This builder gives experiments a ground-truth graph with known topology.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import GraphError
from repro.graph.model import SequenceGraph
from repro.sequence.mutate import Variant, VariantRates, sample_variants
from repro.sequence.records import SequenceRecord
from repro.sequence.simulate import Pangenome, random_genome


@dataclass(frozen=True)
class _Site:
    """A normalized variant site: replace reference [start, end) by alt."""

    start: int
    end: int
    alt: str
    key: tuple[int, str, str]  # (position, ref, alt) of the original variant


def _normalize(variant: Variant) -> _Site:
    """Trim the shared prefix so ref/alt are minimal (VCF-style padding off)."""
    ref, alt = variant.ref, variant.alt
    start = variant.position
    shared = 0
    while shared < len(ref) and shared < len(alt) and ref[shared] == alt[shared]:
        shared += 1
    return _Site(
        start=start + shared,
        end=start + len(ref),
        alt=alt[shared:],
        key=(variant.position, variant.ref, variant.alt),
    )


def _consistent_sites(
    haplotype_variants: dict[str, list[Variant]],
) -> tuple[list[_Site], dict[str, set[tuple[int, str, str]]]]:
    """Merge per-haplotype variants into one non-overlapping global site set.

    Distinct alleles at identical positions are kept (multi-allelic sites);
    genuinely overlapping intervals are resolved first-come in position
    order, and losing variants are dropped from their haplotypes.
    """
    unique: dict[tuple[int, str, str], _Site] = {}
    for variants in haplotype_variants.values():
        for variant in variants:
            site = _normalize(variant)
            unique.setdefault(site.key, site)

    kept: list[_Site] = []
    last_end = -1
    for site in sorted(unique.values(), key=lambda s: (s.start, s.end, s.alt)):
        # Require a >=1 bp reference gap between consecutive sites so every
        # allele node is separated by a reference segment; this keeps path
        # threading simple (no allele-to-allele edges are ever needed).
        # Multi-allelic sites (identical interval, different alt) are kept.
        if site.start > last_end:
            kept.append(site)
            last_end = max(last_end, site.end, site.start)
        elif kept and (site.start, site.end) == (kept[-1].start, kept[-1].end):
            kept.append(site)
    kept_keys = {site.key for site in kept}

    carried: dict[str, set[tuple[int, str, str]]] = {}
    for name, variants in haplotype_variants.items():
        carried[name] = {
            _normalize(variant).key
            for variant in variants
            if _normalize(variant).key in kept_keys
        }
    return kept, carried


def build_variation_graph(
    reference: SequenceRecord,
    haplotype_variants: dict[str, list[Variant]],
    reference_path_name: str | None = None,
) -> SequenceGraph:
    """Build a variation graph from *reference* and per-haplotype variants.

    Returns a graph with one path per haplotype plus a reference path.
    Haplotype paths spell the haplotype sequences exactly (for the subset
    of variants that survived global overlap resolution).
    """
    sites, carried = _consistent_sites(haplotype_variants)
    ref_seq = reference.sequence
    for site in sites:
        if site.end > len(ref_seq):
            raise GraphError(f"variant site [{site.start},{site.end}) exceeds reference")

    breakpoints = {0, len(ref_seq)}
    for site in sites:
        breakpoints.add(site.start)
        breakpoints.add(site.end)
    cuts = sorted(breakpoints)

    graph = SequenceGraph()
    next_id = 0
    segment_nodes: list[tuple[int, int, int]] = []  # (start, end, node_id)
    for start, end in zip(cuts, cuts[1:]):
        if end > start:
            graph.add_node(next_id, ref_seq[start:end])
            segment_nodes.append((start, end, next_id))
            next_id += 1

    # Consecutive reference segments are always linked: the reference path
    # must be walkable even across deletion sites.
    for (_, _, left), (_, _, right) in zip(segment_nodes, segment_nodes[1:]):
        graph.add_edge(left, right)

    segment_at_start = {start: node_id for start, _, node_id in segment_nodes}
    segment_at_end = {end: node_id for _, end, node_id in segment_nodes}

    def segment_before(position: int) -> int | None:
        """Node id of the reference segment ending exactly at *position*."""
        return segment_at_end.get(position)

    def segment_after(position: int) -> int | None:
        """Node id of the reference segment starting exactly at *position*."""
        return segment_at_start.get(position)

    alt_node_of: dict[tuple[int, str, str], int | None] = {}
    for site in sites:
        left = segment_before(site.start)
        right = segment_after(site.end)
        if site.alt:
            alt_id = next_id
            next_id += 1
            graph.add_node(alt_id, site.alt)
            if left is not None:
                graph.add_edge(left, alt_id)
            if right is not None:
                graph.add_edge(alt_id, right)
            alt_node_of[site.key] = alt_id
        else:
            # Pure deletion: bypass edge.
            if left is not None and right is not None:
                graph.add_edge(left, right)
            alt_node_of[site.key] = None

    ref_walk = [node_id for _, _, node_id in segment_nodes]
    ref_name = reference_path_name or reference.name
    graph.add_path(ref_name, ref_walk)

    ordered_sites = sorted(sites, key=lambda s: (s.start, s.end, s.alt))
    for haplotype, keys in sorted(carried.items()):
        walk: list[int] = []
        cursor = 0  # index into segment_nodes
        for site in ordered_sites:
            if site.key not in keys:
                continue
            # Emit reference segments strictly before the site.
            while cursor < len(segment_nodes) and segment_nodes[cursor][1] <= site.start:
                walk.append(segment_nodes[cursor][2])
                cursor += 1
            alt_id = alt_node_of[site.key]
            if alt_id is not None:
                walk.append(alt_id)
            # Skip reference segments covered by [start, end).
            while cursor < len(segment_nodes) and segment_nodes[cursor][1] <= site.end:
                cursor += 1
        while cursor < len(segment_nodes):
            walk.append(segment_nodes[cursor][2])
            cursor += 1
        if not walk:
            raise GraphError(f"haplotype {haplotype!r} produced an empty walk")
        graph.add_path(haplotype, walk)
    return graph


@dataclass(frozen=True)
class GraphPangenome:
    """A variation graph together with the linear sequences it encodes."""

    graph: SequenceGraph
    reference: SequenceRecord
    haplotypes: tuple[SequenceRecord, ...]

    @property
    def pangenome(self) -> Pangenome:
        return Pangenome(ancestor=self.reference, haplotypes=self.haplotypes)


def simulate_graph_pangenome(
    genome_length: int = 20_000,
    n_haplotypes: int = 8,
    seed: int = 0,
    rates: VariantRates | None = None,
) -> GraphPangenome:
    """Simulate a population and build its ground-truth variation graph.

    Unlike :func:`repro.sequence.simulate.simulate_pangenome`, the returned
    haplotype sequences are re-derived from the graph paths, so path
    spelling and linear sequences agree exactly.
    """
    reference = random_genome(genome_length, seed=seed)
    rates = rates or VariantRates()
    haplotype_variants: dict[str, list[Variant]] = {}
    for index in range(n_haplotypes):
        rng = random.Random(f"{seed}-haplotype-{index}")
        haplotype_variants[f"hap{index}"] = sample_variants(
            reference.sequence, rates=rates, rng=rng
        )
    graph = build_variation_graph(reference, haplotype_variants)
    haplotypes = tuple(
        SequenceRecord(name, graph.path_sequence(name))
        for name in sorted(haplotype_variants)
    )
    return GraphPangenome(graph=graph, reference=reference, haplotypes=haplotypes)
