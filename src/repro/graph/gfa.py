"""GFA version 1 reading and writing (forward-strand subset).

The suite exchanges graphs in GFA1 like the real toolchain (vg, minigraph,
seqwish, odgi all speak GFA).  We support ``H``/``S``/``L``/``P`` records
with ``+`` orientations; reverse orientations raise :class:`GFAError`
because the library models inversions as distinct nodes (see
:mod:`repro.graph.model`).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

from repro.errors import GFAError
from repro.graph.model import SequenceGraph

_GFA_VERSION = "VN:Z:1.0"


def parse_gfa(source: str | Path | TextIO) -> SequenceGraph:
    """Parse GFA1 text from a path or handle into a :class:`SequenceGraph`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii") as handle:
            return _parse(handle)
    return _parse(source)


def parse_gfa_string(text: str) -> SequenceGraph:
    """Parse GFA1 from a string."""
    return _parse(io.StringIO(text))


def _parse(handle: TextIO) -> SequenceGraph:
    graph = SequenceGraph()
    pending_edges: list[tuple[int, int, int]] = []
    pending_paths: list[tuple[str, list[int], int]] = []
    for line_number, raw in enumerate(handle, start=1):
        line = raw.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        fields = line.split("\t")
        record_type = fields[0]
        if record_type == "H":
            continue
        if record_type == "S":
            _parse_segment(graph, fields, line_number)
        elif record_type == "L":
            pending_edges.append((*_parse_link(fields, line_number), line_number))
        elif record_type == "P":
            name, walk = _parse_path(fields, line_number)
            pending_paths.append((name, walk, line_number))
        else:
            raise GFAError(f"unsupported record type {record_type!r}", line_number)
    for source, target, line_number in pending_edges:
        if source not in graph or target not in graph:
            raise GFAError(f"link references unknown segment", line_number)
        graph.add_edge(source, target)
    for name, walk, line_number in pending_paths:
        try:
            graph.add_path(name, walk)
        except Exception as exc:  # GraphError carries the real message
            raise GFAError(f"invalid path {name!r}: {exc}", line_number) from exc
    return graph


def _parse_segment(graph: SequenceGraph, fields: list[str], line_number: int) -> None:
    if len(fields) < 3:
        raise GFAError("S record needs id and sequence", line_number)
    try:
        node_id = int(fields[1])
    except ValueError:
        raise GFAError(f"segment id must be an integer: {fields[1]!r}", line_number) from None
    sequence = fields[2]
    if sequence == "*":
        raise GFAError("segments without sequence are not supported", line_number)
    try:
        graph.add_node(node_id, sequence.upper())
    except Exception as exc:
        raise GFAError(f"invalid segment {node_id}: {exc}", line_number) from exc


def _parse_link(fields: list[str], line_number: int) -> tuple[int, int]:
    if len(fields) < 6:
        raise GFAError("L record needs 5 fields", line_number)
    _, source, source_orient, target, target_orient, overlap = fields[:6]
    if source_orient != "+" or target_orient != "+":
        raise GFAError("reverse orientations are not supported", line_number)
    if overlap not in ("0M", "*"):
        raise GFAError(f"only blunt links supported, got overlap {overlap!r}", line_number)
    try:
        return int(source), int(target)
    except ValueError:
        raise GFAError("link endpoints must be integer segment ids", line_number) from None


def _parse_path(fields: list[str], line_number: int) -> tuple[str, list[int]]:
    if len(fields) < 3:
        raise GFAError("P record needs name and walk", line_number)
    name = fields[1]
    walk: list[int] = []
    for step in fields[2].split(","):
        if not step.endswith("+"):
            raise GFAError(
                f"path step {step!r} is not forward-oriented", line_number
            )
        try:
            walk.append(int(step[:-1]))
        except ValueError:
            raise GFAError(f"bad path step {step!r}", line_number) from None
    return name, walk


def write_gfa(graph: SequenceGraph, destination: str | Path | TextIO) -> None:
    """Write *graph* as GFA1."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="ascii") as handle:
            _write(graph, handle)
    else:
        _write(graph, destination)


def gfa_string(graph: SequenceGraph) -> str:
    """Render *graph* as a GFA1 string."""
    buffer = io.StringIO()
    _write(graph, buffer)
    return buffer.getvalue()


def _write(graph: SequenceGraph, handle: TextIO) -> None:
    handle.write(f"H\t{_GFA_VERSION}\n")
    for node_id in sorted(graph.node_ids()):
        handle.write(f"S\t{node_id}\t{graph.node(node_id).sequence}\n")
    for source, target in sorted(graph.edges()):
        handle.write(f"L\t{source}\t+\t{target}\t+\t0M\n")
    for name in graph.path_names():
        walk = ",".join(f"{node_id}+" for node_id in graph.path(name))
        handle.write(f"P\t{name}\t{walk}\t*\n")
