"""``python -m repro`` — the suite's command-line runner."""

import sys

from repro.harness.cli import main

if __name__ == "__main__":
    sys.exit(main())
