"""PangenomicsBench reproduction: a pangenomics benchmark suite in Python.

The package layers three systems (see DESIGN.md):

* substrates — sequences (:mod:`repro.sequence`), graphs
  (:mod:`repro.graph`), indexes (:mod:`repro.index`), aligners
  (:mod:`repro.align`), graph construction (:mod:`repro.build`:
  wfmash → seqwish → GFAffix/smoothxg, and Minigraph–Cactus),
  layout (:mod:`repro.layout`) and end-to-end tools (:mod:`repro.tools`);
* the benchmark suite — :mod:`repro.kernels` and :mod:`repro.harness`;
* characterization instruments — :mod:`repro.uarch` (CPU model) and
  :mod:`repro.gpu` (SIMT simulator), plus :mod:`repro.analysis`.
"""

__version__ = "1.7.0"

from repro.errors import (
    AlignmentError,
    CyclicGraphError,
    DatasetError,
    GFAError,
    GraphError,
    KernelError,
    ReproError,
    SequenceError,
    ServeError,
    ServeTimeout,
    ServiceOverloaded,
    SimulationError,
)

__all__ = [
    "__version__",
    "AlignmentError", "CyclicGraphError", "DatasetError", "GFAError",
    "GraphError", "KernelError", "ReproError", "SequenceError",
    "ServeError", "ServeTimeout", "ServiceOverloaded",
    "SimulationError",
]
