"""Request-scoped trace propagation: one trace id across processes.

A :class:`TraceContext` is minted once per service request
(:meth:`~repro.serve.service.BenchService.submit`) and rides on the
:class:`~repro.harness.executor.Job` through the service worker pool and
the process-pool executor into the child process's tracer.  Every span
record the request produces — the ``serve/*`` lifecycle records in the
parent, the ``executor/*`` records, and the kernel spans recorded (and
spooled) inside the worker — carries the request's ``trace`` id, so the
spans shipped back inside the report stitch into one cross-process trace
(:func:`stitch_trace`), viewable as a single Chrome trace.

The context is identity, not time: it carries no clocks.  Span
timestamps stay in each process's ``perf_counter`` timebase; with the
executor's fork-based workers the timebase is inherited, so stitched
traces line up without offset arithmetic.

Coalesced and cache-hit requests do not re-execute, so they never own
kernel spans; the service records an annotated *link* span instead
(``serve/coalesce/*`` / ``serve/cache-hit/*`` with a ``link`` attr
naming the executing request's trace id).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, replace
from typing import Iterable

from repro.obs.spans import merge_records


@dataclass(frozen=True)
class TraceContext:
    """One request's identity: a trace id plus the parent span id the
    request's root spans link back to (-1 when no span was recorded at
    mint time, e.g. tracing disabled)."""

    trace_id: str
    span_id: int = -1

    @classmethod
    def mint(cls) -> "TraceContext":
        """A fresh context with a process-unique 16-hex trace id."""
        return cls(trace_id=secrets.token_hex(8))

    def child(self, span_id: int) -> "TraceContext":
        """The same trace with a new parent span id."""
        return replace(self, span_id=span_id)


def annotate_records(records: Iterable[dict],
                     context: TraceContext) -> list[dict]:
    """Tag *records* with *context* in place (returns them for
    chaining).

    Records that already carry a ``trace`` id keep it — a cached
    report's spans belong to the execution that produced them, and a
    link span, not a re-tag, is how a later request references them.
    Root records (``parent == -1``) additionally get a ``parent_span``
    pointing at the context's minting span, which is what lets a
    child-process span tree hang off the parent-process submit record.
    """
    out = list(records)
    for record in out:
        record.setdefault("trace", context.trace_id)
        if record.get("parent", -1) == -1 and context.span_id >= 0:
            record.setdefault("parent_span", context.span_id)
    return out


def stitch_trace(trace_id: str,
                 *record_lists: Iterable[dict]) -> list[dict]:
    """Merge *record_lists* (parent tracer + report spans) and keep the
    records belonging to *trace_id* — one request's cross-process
    trace, ready for :func:`~repro.obs.spans.write_chrome_trace`."""
    merged = merge_records(*record_lists)
    return [record for record in merged if record.get("trace") == trace_id]


def trace_ids(records: Iterable[dict]) -> list[str]:
    """Distinct trace ids present in *records*, in first-seen order."""
    seen: list[str] = []
    for record in records:
        trace = record.get("trace")
        if trace and trace not in seen:
            seen.append(trace)
    return seen
