"""The process-current tracer.

Library code does not thread a tracer through every signature; it calls
``trace.span("seqwish/closure")`` against the module-current tracer,
which defaults to :data:`~repro.obs.spans.NULL_TRACER` (zero overhead).
``repro trace`` / ``--trace-out`` install a real
:class:`~repro.obs.spans.Tracer` for the run via :func:`use`; the
executor's workers install their own per-process tracer the same way.

The current tracer is process-global, not thread-local: one observed
run per process is the model (the :class:`Tracer` itself is
thread-safe, so threads inside that run may open spans freely).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.spans import NULL_TRACER, NullTracer, Span, Tracer, _NullSpan

_current: Tracer | NullTracer = NULL_TRACER


def current_tracer() -> Tracer | NullTracer:
    """The tracer library spans currently record to."""
    return _current


def enabled() -> bool:
    """True when a real tracer is installed."""
    return _current is not NULL_TRACER


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install *tracer* (``None`` restores the null tracer)."""
    global _current
    _current = tracer if tracer is not None else NULL_TRACER
    return _current


@contextmanager
def use(tracer: Tracer | NullTracer) -> Iterator[Tracer | NullTracer]:
    """Install *tracer* for the duration of the block."""
    global _current
    previous = _current
    _current = tracer
    try:
        yield tracer
    finally:
        _current = previous


def span(name: str, attrs: dict | None = None) -> "Span | _NullSpan":
    """A span on the current tracer — free when tracing is disabled."""
    return _current.span(name, attrs)


def timed_span(name: str, attrs: dict | None = None) -> Span:
    """A span that *always* measures wall time.

    The single source of truth for code that needs the number even with
    tracing off (kernel wall seconds, stage timers): bound to the
    current tracer when one is installed, otherwise an unbound
    :class:`Span` that measures and records nowhere.
    """
    if _current is NULL_TRACER:
        return Span(name, attrs)
    return _current.span(name, attrs)
