"""Prometheus-style text exposition and JSON snapshots of metrics.

Input is always a :meth:`~repro.obs.metrics.MetricsRegistry.as_dict`
export — the same associatively-mergeable dict that rides inside
:class:`~repro.harness.runner.KernelReport` — so anything that can
produce or merge registry exports (a live service, a saved reports
file, a worker's shipped-back metrics) can be exposed.

Two formats, both deterministic:

* :func:`exposition` — the Prometheus text format (version 0.0.4):
  one ``# TYPE`` line per family, counters suffixed ``_total``,
  histograms expanded to cumulative ``le`` buckets plus ``_sum`` and
  ``_count``.  Families are sorted by name and series by label string,
  so byte-identical registries render byte-identical pages regardless
  of insertion order.
* :func:`snapshot` / :func:`registry_from_snapshot` — a JSON envelope
  around the raw export.  ``exposition(registry_from_snapshot(
  json-round-tripped snapshot).as_dict())`` equals the original text —
  the property the exposition tests pin down.

Series keys follow :func:`~repro.obs.metrics.series_name`
(``name{k1=v1,k2=v2}``); :func:`parse_series` inverts it.  Label values
containing ``,`` or ``=`` are not escaped by ``series_name`` and will
not survive the round trip — keep label values to plain identifiers.
"""

from __future__ import annotations

import math
import re

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry

#: Content type a /metrics endpoint should declare for the text format.
TEXT_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Schema version stamped on JSON snapshots.
SNAPSHOT_SCHEMA = 1

_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def parse_series(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`~repro.obs.metrics.series_name`:
    ``"a.b{k=v}"`` -> ``("a.b", {"k": "v"})``."""
    if "{" in key and key.endswith("}"):
        name, _, inner = key.partition("{")
        labels: dict[str, str] = {}
        for part in inner[:-1].split(","):
            if not part:
                continue
            label, _, value = part.partition("=")
            labels[label] = value
        return name, labels
    return key, {}


def _prom_name(name: str) -> str:
    """A metric/label name legal in the exposition format (dots and
    other invalid characters become underscores)."""
    out = _INVALID_NAME_CHARS.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _label_str(labels: dict[str, str], extra: "tuple[str, str] | None" = None
               ) -> str:
    pairs = [(_prom_name(k), str(v)) for k, v in sorted(labels.items())]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    value = float(value)
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.10g}"


def _scalar_lines(section: dict, suffix: str = "") -> dict[str, list[str]]:
    """Counter/gauge series grouped by sanitized family name."""
    families: dict[str, list[str]] = {}
    for key in sorted(section):
        name, labels = parse_series(key)
        family = _prom_name(name) + suffix
        families.setdefault(family, []).append(
            f"{family}{_label_str(labels)} {_fmt(section[key])}"
        )
    return families


def _histogram_lines(section: dict) -> dict[str, list[str]]:
    families: dict[str, list[str]] = {}
    for key in sorted(section):
        name, labels = parse_series(key)
        family = _prom_name(name)
        payload = section[key]
        lines = families.setdefault(family, [])
        bounds = sorted((b for b in payload["buckets"] if b != "inf"),
                        key=float)
        cumulative = 0
        for bound in bounds:
            cumulative += payload["buckets"][bound]
            le = _label_str(labels, ("le", _fmt(float(bound))))
            lines.append(f"{family}_bucket{le} {cumulative}")
        le = _label_str(labels, ("le", "+Inf"))
        lines.append(f"{family}_bucket{le} {payload['count']}")
        plain = _label_str(labels)
        lines.append(f"{family}_sum{plain} {_fmt(payload['sum'])}")
        lines.append(f"{family}_count{plain} {payload['count']}")
    return families


def exposition(exported: dict) -> str:
    """*exported* (a registry :meth:`as_dict`) as Prometheus text."""
    typed: list[tuple[str, str, list[str]]] = []
    for family, lines in _scalar_lines(exported.get("counters", {}),
                                       suffix="_total").items():
        typed.append((family, "counter", lines))
    for family, lines in _scalar_lines(exported.get("gauges", {})).items():
        typed.append((family, "gauge", lines))
    for family, lines in _histogram_lines(
            exported.get("histograms", {})).items():
        typed.append((family, "histogram", lines))

    # The registry allows one *name* to back metrics of different kinds
    # (e.g. a last-value gauge next to a histogram).  Prometheus does
    # not: a family name may carry exactly one TYPE.  Resolve by moving
    # scalar families that collide with a histogram to ``<name>_<kind>``
    # — histograms keep the base name since their series are the ones
    # dashboards aggregate.
    histogram_names = {family for family, kind, _ in typed
                       if kind == "histogram"}
    resolved: list[tuple[str, str, list[str]]] = []
    for family, kind, lines in typed:
        if kind != "histogram" and family in histogram_names:
            renamed = f"{family}_{kind}"
            lines = [line.replace(family, renamed, 1) for line in lines]
            family = renamed
        resolved.append((family, kind, lines))

    out: list[str] = []
    for family, kind, lines in sorted(resolved):
        out.append(f"# TYPE {family} {kind}")
        out.extend(lines)
    return "\n".join(out) + "\n" if out else ""


def snapshot(exported: dict, **meta: object) -> dict:
    """A JSON-able envelope around a registry export; extra keyword
    arguments become top-level metadata fields."""
    return {"schema": SNAPSHOT_SCHEMA, "metrics": exported, **meta}


def registry_from_snapshot(payload: dict) -> MetricsRegistry:
    """Rebuild a registry from a :func:`snapshot` (possibly after a
    JSON round trip)."""
    if not isinstance(payload, dict) or "metrics" not in payload:
        raise ReproError("not a telemetry snapshot (no 'metrics' key)")
    schema = payload.get("schema", SNAPSHOT_SCHEMA)
    if isinstance(schema, int) and schema > SNAPSHOT_SCHEMA:
        raise ReproError(
            f"unsupported snapshot schema {schema!r} (this build reads "
            f"<= {SNAPSHOT_SCHEMA})"
        )
    registry = MetricsRegistry()
    registry.merge_dict(payload["metrics"])
    return registry
