"""repro.obs: the observability layer (spans, metrics, attribution).

The paper's characterization is *regional* — VTune top-down per pipeline
phase, PIN instruction mixes, per-stage runtime breakdowns (Figs. 2/3/6)
— so the reproduction needs observability smaller than one kernel run.
Three cooperating pieces:

* :mod:`repro.obs.spans` — a hierarchical, thread-safe span tracer with
  a zero-overhead null implementation, a text tree report, and Chrome
  trace-event JSON export (loadable in Perfetto / ``chrome://tracing``);
* :mod:`repro.obs.metrics` — a process-local registry of labeled
  counters / gauges / histograms with a JSON-merging export that rides
  inside :class:`~repro.harness.runner.KernelReport`;
* :mod:`repro.obs.attribution` — a span listener that snapshots
  :class:`~repro.uarch.machine.TraceMachine` counters at span
  boundaries, yielding per-phase top-down / MPKI / instruction-mix (the
  VTune-regions analog of the paper's Fig. 6).

:mod:`repro.obs.trace` holds the process-current tracer; library code
calls ``trace.span("seqwish/closure")`` and pays nothing unless a real
tracer is installed (``repro trace <kernel>`` or ``--trace-out``).

The telemetry plane (PR 8) adds four more pieces:

* :mod:`repro.obs.exposition` — Prometheus-style text exposition and
  JSON snapshots of any registry export;
* :mod:`repro.obs.telemetry` — the background HTTP endpoint
  (``/metrics``, ``/healthz``, ``/readyz``) a
  :class:`~repro.serve.service.BenchService` serves scrape traffic
  from (imported lazily — pulling :mod:`http.server` into every kernel
  run would be waste);
* :mod:`repro.obs.context` — :class:`TraceContext` request identity
  propagated across the process pool so one submission's spans stitch
  into one trace;
* :mod:`repro.obs.baseline` — the median±MAD perf-regression sentinel
  over the committed ``BENCH_*.json`` trajectories (``repro obs
  check``).
"""

from repro.obs.attribution import UNTRACED, PhaseAttributor
from repro.obs.context import TraceContext, annotate_records, stitch_trace
from repro.obs.exposition import (
    exposition,
    parse_series,
    registry_from_snapshot,
    snapshot,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    chrome_trace,
    render_tree,
    spans_from_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "MetricsRegistry",
    "PhaseAttributor",
    "UNTRACED",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "TraceContext",
    "annotate_records",
    "stitch_trace",
    "chrome_trace",
    "exposition",
    "parse_series",
    "registry_from_snapshot",
    "render_tree",
    "snapshot",
    "spans_from_chrome_trace",
    "write_chrome_trace",
]
