"""A process-local registry of labeled counters, gauges and histograms.

Prometheus-shaped but in-process: a metric is a name plus a label set
(``counter("kernel.runs", kernel="tc")``), each distinct label
combination is its own series, and the registry exports everything as a
plain JSON-able dict that merges associatively — counters and histogram
buckets add, gauges last-write-win — so per-kernel metric dicts collected
from worker processes fold into one suite view.

Export schema (``MetricsRegistry.as_dict``)::

    {"counters":   {"kernel.runs{kernel=tc}": 3.0, ...},
     "gauges":     {"kernel.execute_seconds{kernel=tc}": 0.41, ...},
     "histograms": {"executor.queue_wait_seconds": {
         "count": 8, "sum": 0.93, "buckets": {"0.001": 0, ..., "inf": 8}}}}
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from typing import Iterator

from repro.errors import ReproError

#: Default histogram bucket upper bounds (seconds-flavoured).
DEFAULT_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 60.0)


def series_name(name: str, labels: dict[str, object]) -> str:
    """Canonical series key: ``name{k1=v1,k2=v2}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ReproError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Cumulative-bucket histogram with count and sum."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +inf overflow
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def as_dict(self) -> dict:
        buckets = {str(bound): count
                   for bound, count in zip(self.bounds, self.bucket_counts)}
        buckets["inf"] = self.bucket_counts[-1]
        return {"count": self.count, "sum": self.sum, "buckets": buckets}


class MetricsRegistry:
    """Holds every series created through it; see the module docstring
    for the export schema.

    Series creation, export and merge are guarded by an internal lock,
    so worker threads (the serve layer's pool) may record into one
    registry concurrently.  The returned metric objects themselves are
    intentionally lock-free — ``inc``/``set``/``observe`` stay cheap;
    callers that need exact cross-thread counts serialize their own
    updates (the service increments its counters under its queue lock).
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        key = series_name(name, labels)
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = series_name(name, labels)
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: object) -> Histogram:
        key = series_name(name, labels)
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(bounds)
        return metric

    def as_dict(self) -> dict:
        """JSON-able export; empty sections are omitted."""
        out: dict = {}
        with self._lock:
            if self._counters:
                out["counters"] = {k: c.value
                                   for k, c in self._counters.items()}
            if self._gauges:
                out["gauges"] = {k: g.value for k, g in self._gauges.items()}
            if self._histograms:
                out["histograms"] = {k: h.as_dict()
                                     for k, h in self._histograms.items()}
        return out

    def merge_dict(self, exported: dict) -> None:
        """Fold an :meth:`as_dict` export into this registry (counters
        and histogram buckets add; gauges overwrite)."""
        with self._lock:
            merged = merge(self.as_dict(), exported)
            self._counters = {k: _counter_at(v)
                              for k, v in merged.get("counters", {}).items()}
            self._gauges = {k: _gauge_at(v)
                            for k, v in merged.get("gauges", {}).items()}
            self._histograms = {
                k: _histogram_from(v)
                for k, v in merged.get("histograms", {}).items()
            }


def _counter_at(value: float) -> Counter:
    metric = Counter()
    metric.value = value
    return metric


def _gauge_at(value: float) -> Gauge:
    metric = Gauge()
    metric.value = value
    return metric


def _histogram_from(payload: dict) -> Histogram:
    bounds = tuple(sorted(
        float(b) for b in payload["buckets"] if b != "inf"
    ))
    metric = Histogram(bounds)
    metric.count = payload["count"]
    metric.sum = payload["sum"]
    metric.bucket_counts = [payload["buckets"][str(b)] for b in bounds]
    metric.bucket_counts.append(payload["buckets"].get("inf", 0))
    return metric


def merge(left: dict, right: dict) -> dict:
    """Associatively merge two :meth:`MetricsRegistry.as_dict` exports."""
    out: dict = {}
    counters = dict(left.get("counters", {}))
    for key, value in right.get("counters", {}).items():
        counters[key] = counters.get(key, 0.0) + value
    if counters:
        out["counters"] = counters
    gauges = dict(left.get("gauges", {}))
    gauges.update(right.get("gauges", {}))
    if gauges:
        out["gauges"] = gauges
    histograms = {k: _copy_hist(v)
                  for k, v in left.get("histograms", {}).items()}
    for key, payload in right.get("histograms", {}).items():
        if key not in histograms:
            histograms[key] = _copy_hist(payload)
            continue
        target = histograms[key]
        if set(target["buckets"]) != set(payload["buckets"]):
            raise ReproError(f"histogram {key!r} bucket bounds differ")
        target["count"] += payload["count"]
        target["sum"] += payload["sum"]
        for bound, count in payload["buckets"].items():
            target["buckets"][bound] += count
    if histograms:
        out["histograms"] = histograms
    return out


def _copy_hist(payload: dict) -> dict:
    return {"count": payload["count"], "sum": payload["sum"],
            "buckets": dict(payload["buckets"])}


def quantile_estimate(payload: dict, q: float) -> float:
    """q-quantile estimate from an exported histogram.

    Interpolates linearly within the bucket containing the q-th
    observation (lower edge = previous finite bound, 0.0 for the first
    bucket), so p50/p95/p99 move smoothly instead of snapping to bucket
    bounds.  Observations landing in the +Inf overflow bucket clamp to
    the largest finite bound — an estimate can understate an extreme
    tail but never reports ``inf``.  An empty histogram estimates 0.0.
    """
    if not 0.0 <= q <= 1.0:
        raise ReproError("quantile must be in [0, 1]")
    count = payload["count"]
    if count == 0:
        return 0.0
    bounds = sorted((b for b in payload["buckets"] if b != "inf"), key=float)
    target = q * count
    cumulative = 0
    lower = 0.0
    for bound in bounds:
        in_bucket = payload["buckets"][bound]
        if in_bucket > 0 and cumulative + in_bucket >= target:
            upper = float(bound)
            fraction = (target - cumulative) / in_bucket
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        cumulative += in_bucket
        lower = float(bound)
    # Only overflow observations remain past the finite bounds: clamp.
    return lower if bounds else math.inf


# -- the process-current registry ----------------------------------------

_current = MetricsRegistry()


def current_registry() -> MetricsRegistry:
    return _current


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    global _current
    _current = registry if registry is not None else MetricsRegistry()
    return _current


@contextmanager
def use(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install *registry* as current for the duration of the block."""
    global _current
    previous = _current
    _current = registry
    try:
        yield registry
    finally:
        _current = previous


def counter(name: str, **labels: object) -> Counter:
    """``current_registry().counter(...)`` convenience."""
    return _current.counter(name, **labels)


def gauge(name: str, **labels: object) -> Gauge:
    return _current.gauge(name, **labels)


def histogram(name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS,
              **labels: object) -> Histogram:
    return _current.histogram(name, bounds, **labels)
