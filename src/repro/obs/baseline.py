"""The perf-regression sentinel: robust baselines over trajectories.

The repo-root ``BENCH_*.json`` files accumulate one entry per
benchmarked build (the trajectory benches in ``benchmarks/`` append
them), which makes speed regressions visible PR-over-PR — *if* someone
looks.  This module is the automated looker: for each tracked series it
takes the trailing window of historical entries, computes a robust
baseline (median ± MAD — a single outlier build cannot poison it), and
classifies the newest entry ``ok`` / ``warn`` / ``regress`` against
per-metric ratio thresholds.  ``repro obs check`` renders the table,
writes machine-readable ``obs_check.json``, and exits nonzero on any
``regress`` so CI can gate on it.

Two sources feed the sentinel:

* :func:`check_trajectories` — the committed ``BENCH_sweep.json`` /
  ``BENCH_serve_load.json`` / ``BENCH_trace_throughput.json`` /
  ``BENCH_scale_sweep.json`` series listed in :data:`TRACKED_SERIES`.
  Fewer than two entries means there is nothing to compare yet; the
  series reports ``no-history`` (which counts as ok) rather than
  blocking young trajectories.
* :func:`check_reports` — fresh :class:`~repro.harness.runner.
  KernelReport` metrics: per-kernel wall seconds (lower is better) and
  IPC (higher is better) of a candidate reports file against a baseline
  reports file, for ad-hoc before/after gating of a branch.

Thresholds combine a multiplicative guard (``value/median`` beyond
``warn_ratio``/``regress_ratio``) with an additive MAD guard (3·MAD /
6·MAD), taking whichever is more permissive — so noisy series need to
move both materially *and* beyond their own historical jitter before
they alarm.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import ReproError

#: Trailing history entries a baseline is computed over.
DEFAULT_WINDOW = 8

#: Schema version stamped on obs_check.json.
CHECK_SCHEMA = 1

#: Ranking used to fold per-series statuses into an overall status.
_SEVERITY = {"ok": 0, "no-history": 0, "missing": 0, "warn": 1, "regress": 2}

#: MAD multipliers for the additive guard (warn, regress).
MAD_WARN = 3.0
MAD_REGRESS = 6.0


@dataclass(frozen=True)
class SeriesSpec:
    """One tracked trajectory series and its alarm thresholds.

    *direction* says which way is worse: ``"lower"`` means lower values
    are better (latency, wall time) so growth alarms; ``"higher"``
    means higher is better (throughput, hit rate) so shrinkage alarms.
    Ratios are expressed as degradation factors — ``regress_ratio=2.0``
    on a lower-better series fires when the candidate is 2x the
    baseline; on a higher-better series when it is half.
    """

    name: str
    file: str
    field: str
    direction: str = "lower"
    warn_ratio: float = 1.25
    regress_ratio: float = 1.5


#: The series `repro obs check` watches by default.  Latency thresholds
#: are deliberately below 2.0 so a doubled latency is a hard regression;
#: rate-style series get tight ratios because they are already
#: normalized.
TRACKED_SERIES: tuple[SeriesSpec, ...] = (
    SeriesSpec("serve_load.p50_ms", "BENCH_serve_load.json",
               "p50_ms", "lower", warn_ratio=1.3, regress_ratio=1.8),
    SeriesSpec("serve_load.p99_ms", "BENCH_serve_load.json",
               "p99_ms", "lower", warn_ratio=1.3, regress_ratio=1.8),
    SeriesSpec("serve_load.requests_per_sec", "BENCH_serve_load.json",
               "requests_per_sec", "higher",
               warn_ratio=1.3, regress_ratio=2.0),
    SeriesSpec("serve_load.served_without_execution_rate",
               "BENCH_serve_load.json", "served_without_execution_rate",
               "higher", warn_ratio=1.05, regress_ratio=1.25),
    SeriesSpec("sweep.cold_points_per_sec", "BENCH_sweep.json",
               "cold_points_per_sec", "higher",
               warn_ratio=1.3, regress_ratio=2.0),
    SeriesSpec("sweep.warm_speedup", "BENCH_sweep.json",
               "warm_speedup", "higher", warn_ratio=1.5, regress_ratio=3.0),
    SeriesSpec("sweep.warm_cache_hit_rate", "BENCH_sweep.json",
               "warm_cache_hit_rate", "higher",
               warn_ratio=1.05, regress_ratio=1.25),
    SeriesSpec("sweep.cold_wall_seconds", "BENCH_sweep.json",
               "cold_wall_seconds", "lower",
               warn_ratio=1.3, regress_ratio=2.0),
    SeriesSpec("trace_throughput.overall_speedup",
               "BENCH_trace_throughput.json", "overall_speedup",
               "higher", warn_ratio=1.3, regress_ratio=2.0),
    SeriesSpec("trace_throughput.characterization_wall_seconds",
               "BENCH_trace_throughput.json",
               "characterization_wall_seconds", "lower",
               warn_ratio=1.3, regress_ratio=2.0),
    SeriesSpec("scale_sweep.wall_growth_exponent", "BENCH_scale_sweep.json",
               "wall_growth_exponent", "lower",
               warn_ratio=1.2, regress_ratio=1.5),
    SeriesSpec("scale_sweep.memory_growth_exponent",
               "BENCH_scale_sweep.json", "memory_growth_exponent",
               "lower", warn_ratio=1.2, regress_ratio=1.5),
    SeriesSpec("layout_crossover.crossover_nodes",
               "BENCH_layout_crossover.json", "crossover_nodes",
               "lower", warn_ratio=1.3, regress_ratio=2.0),
    SeriesSpec("layout_crossover.gpu_speedup_at_max",
               "BENCH_layout_crossover.json", "gpu_speedup_at_max",
               "higher", warn_ratio=1.3, regress_ratio=2.0),
)


@dataclass
class SeriesCheck:
    """One series' verdict: the candidate value against its baseline."""

    series: str
    file: str
    status: str
    value: "float | None" = None
    baseline: "float | None" = None
    mad: "float | None" = None
    ratio: "float | None" = None
    window: int = 0
    direction: str = "lower"
    note: str = ""


def robust_center(values: Sequence[float]) -> tuple[float, float]:
    """(median, MAD) of *values* — the outlier-resistant baseline."""
    if not values:
        raise ReproError("cannot baseline an empty series")
    ordered = sorted(values)
    median = _median(ordered)
    mad = _median(sorted(abs(v - median) for v in ordered))
    return median, mad


def _median(ordered: Sequence[float]) -> float:
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def classify(history: Sequence[float], value: float,
             spec: SeriesSpec) -> SeriesCheck:
    """Classify *value* against the trailing *history* of *spec*."""
    check = SeriesCheck(series=spec.name, file=spec.file, status="ok",
                        value=value, window=len(history),
                        direction=spec.direction)
    if not history:
        check.status = "no-history"
        check.note = "first entry; nothing to compare against"
        return check
    median, mad = robust_center(history)
    check.baseline = median
    check.mad = mad
    if spec.direction == "lower":
        check.ratio = value / median if median else math.inf
        warn_at = max(median * spec.warn_ratio, median + MAD_WARN * mad)
        regress_at = max(median * spec.regress_ratio,
                         median + MAD_REGRESS * mad)
        if value > regress_at:
            check.status = "regress"
        elif value > warn_at:
            check.status = "warn"
    elif spec.direction == "higher":
        check.ratio = median / value if value else math.inf
        warn_at = min(median / spec.warn_ratio, median - MAD_WARN * mad)
        regress_at = min(median / spec.regress_ratio,
                         median - MAD_REGRESS * mad)
        if value < regress_at:
            check.status = "regress"
        elif value < warn_at:
            check.status = "warn"
    else:
        raise ReproError(
            f"series {spec.name!r} has unknown direction {spec.direction!r}"
        )
    if check.status != "ok":
        if spec.direction == "lower":
            moved = f"grew to {check.ratio:.2f}x"
        else:
            fraction = (1.0 / check.ratio) if math.isfinite(check.ratio) else 0.0
            moved = f"fell to {fraction:.2f}x"
        check.note = (f"{moved} of baseline {median:.4g} "
                      f"(MAD {mad:.4g}, n={len(history)})")
    return check


def series_values(root: Path, spec: SeriesSpec) -> "list[float] | None":
    """The trajectory values for *spec* under *root*, oldest first;
    None when the trajectory file is absent."""
    path = root / spec.file
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except ValueError as error:
        raise ReproError(f"trajectory {path} is not JSON: {error}")
    values = []
    for entry in payload.get("entries", []):
        raw = entry.get(spec.field)
        if isinstance(raw, (int, float)):
            values.append(float(raw))
    return values


def repo_root() -> Path:
    """The checkout root (where the BENCH_*.json trajectories live)."""
    return Path(__file__).resolve().parents[3]


def check_trajectories(
    root: "str | Path | None" = None,
    specs: Iterable[SeriesSpec] = TRACKED_SERIES,
    window: int = DEFAULT_WINDOW,
) -> list[SeriesCheck]:
    """Classify the newest entry of every tracked trajectory series."""
    base = Path(root) if root is not None else repo_root()
    checks = []
    for spec in specs:
        values = series_values(base, spec)
        if values is None:
            checks.append(SeriesCheck(
                series=spec.name, file=spec.file, status="missing",
                direction=spec.direction,
                note=f"{spec.file} not found under {base}"))
            continue
        if not values:
            checks.append(SeriesCheck(
                series=spec.name, file=spec.file, status="missing",
                direction=spec.direction,
                note=f"{spec.file} has no {spec.field!r} entries"))
            continue
        history = values[:-1][-window:]
        checks.append(classify(history, values[-1], spec))
    return checks


def check_reports(candidate: dict, baseline: dict,
                  warn_ratio: float = 1.25,
                  regress_ratio: float = 1.5) -> list[SeriesCheck]:
    """Compare two ``{kernel: KernelReport}`` mappings (from
    :func:`~repro.harness.runner.load_reports`): wall seconds (lower is
    better) and IPC when both sides measured it (higher is better)."""
    checks = []
    for kernel in sorted(set(candidate) & set(baseline)):
        new, old = candidate[kernel], baseline[kernel]
        if new.error or old.error:
            checks.append(SeriesCheck(
                series=f"report.{kernel}.wall_seconds", file="reports",
                status="missing", note="errored report on one side"))
            continue
        wall = SeriesSpec(f"report.{kernel}.wall_seconds", "reports",
                          "wall_seconds", "lower", warn_ratio, regress_ratio)
        checks.append(classify([old.wall_seconds], new.wall_seconds, wall))
        if new.ipc and old.ipc:
            ipc = SeriesSpec(f"report.{kernel}.ipc", "reports", "ipc",
                             "higher", warn_ratio, regress_ratio)
            checks.append(classify([old.ipc], new.ipc, ipc))
    missing = sorted(set(baseline) - set(candidate))
    for kernel in missing:
        checks.append(SeriesCheck(
            series=f"report.{kernel}.wall_seconds", file="reports",
            status="missing", note="kernel absent from candidate reports"))
    return checks


def overall_status(checks: Iterable[SeriesCheck]) -> str:
    """The worst per-series status: ok < warn < regress."""
    worst = "ok"
    for check in checks:
        if _SEVERITY.get(check.status, 0) > _SEVERITY[worst]:
            worst = "warn" if _SEVERITY[check.status] == 1 else "regress"
    return worst


def write_check(checks: Sequence[SeriesCheck], path: "str | Path",
                metadata: "dict | None" = None) -> Path:
    """Serialize the sentinel verdict to *path* (obs_check.json)."""
    payload = {
        "schema": CHECK_SCHEMA,
        "status": overall_status(checks),
        "checks": [_jsonable(asdict(check)) for check in checks],
    }
    if metadata:
        payload["metadata"] = metadata
    out = Path(path)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return out


def _jsonable(payload: dict) -> dict:
    return {k: (None if isinstance(v, float) and not math.isfinite(v) else v)
            for k, v in payload.items()}


def render_checks(checks: Sequence[SeriesCheck]) -> str:
    """The human table ``repro obs check`` prints."""
    header = (f"{'series':<42} {'status':<10} {'value':>12} "
              f"{'baseline':>12} {'ratio':>7}  note")
    lines = [header, "-" * len(header)]
    for check in checks:
        value = f"{check.value:.4g}" if check.value is not None else "-"
        base = f"{check.baseline:.4g}" if check.baseline is not None else "-"
        if check.ratio is None:
            ratio = "-"
        elif not math.isfinite(check.ratio):
            ratio = "inf"
        else:
            ratio = f"{check.ratio:.2f}x"
        lines.append(f"{check.series:<42} {check.status:<10} {value:>12} "
                     f"{base:>12} {ratio:>7}  {check.note}")
    lines.append("-" * len(header))
    lines.append(f"overall: {overall_status(checks)}")
    return "\n".join(lines)
