"""Hierarchical span tracing with a zero-overhead disabled path.

A :class:`Span` is one timed region; entering it starts the clock,
leaving it stops the clock and (when the span is bound to a
:class:`Tracer`) appends a plain-dict record to the tracer.  Records are
JSON- and pickle-friendly on purpose: they ride inside
:class:`~repro.harness.runner.KernelReport` across process boundaries
and serialize into Chrome trace-event files.

The *null* path is the hot path: with no tracer installed,
``trace.span(...)`` returns a shared :data:`NULL_SPAN` singleton whose
``__enter__``/``__exit__`` do nothing — no clock reads, no allocation —
so instrumented library code costs nothing in ordinary runs (the
disabled-overhead test in ``tests/obs`` holds this to account).

Record schema (one dict per finished span)::

    {"name": str, "id": int, "parent": int,  # -1 at the root
     "ts": float, "dur": float,              # seconds from tracer epoch
     "tid": int, "pid": int,
     "attrs": dict,                          # only when non-empty
     "trace": str, "parent_span": int}       # only when a TraceContext
                                             # is attached (repro.obs.context)
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from time import perf_counter
from typing import Callable, Iterable

from repro.errors import ReproError


class Span:
    """One timed region; a re-usable-once context manager.

    Unbound spans (``tracer=None``) still measure — they are the
    single source of truth for wall time in :class:`Kernel.run` and
    :class:`~repro.tools.base.StageTimer` even when tracing is off —
    but record nowhere.
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id", "tid",
                 "start", "duration", "_tracer")

    def __init__(self, name: str, attrs: dict | None = None,
                 tracer: "Tracer | None" = None) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = -1
        self.parent_id = -1
        self.tid = 0
        self.start = 0.0
        self.duration = 0.0
        self._tracer = tracer

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._enter(self)
        self.start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = perf_counter() - self.start
        if self._tracer is not None:
            self._tracer._exit(self)
        return False


class _NullSpan:
    """The do-nothing span: shared, allocation-free, immutable."""

    __slots__ = ()

    #: Mirrors :attr:`Span.duration` so callers can read it uniformly.
    duration = 0.0
    name = ""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The shared null span every disabled ``span()`` call returns.
NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer stand-in when tracing is disabled: hands out
    :data:`NULL_SPAN` and records nothing."""

    __slots__ = ()

    def span(self, name: str, attrs: dict | None = None) -> _NullSpan:
        return NULL_SPAN


#: Shared disabled tracer (the process default; see repro.obs.trace).
NULL_TRACER = NullTracer()


class Tracer:
    """A thread-safe hierarchical span recorder.

    Nesting is tracked per thread (each thread keeps its own open-span
    stack); finished records land in one shared, append-only list in
    finish order.  ``listeners`` (objects with ``on_enter(span)`` /
    ``on_exit(span)``) observe span boundaries — the μarch attributor in
    :mod:`repro.obs.attribution` plugs in here.  ``on_finish`` (one
    callable receiving each finished record) supports incremental
    spooling, which is how the executor recovers partial spans from a
    timed-out worker.

    ``context`` (any object with ``trace_id``/``span_id`` attributes,
    in practice a :class:`~repro.obs.context.TraceContext`) tags every
    record this tracer produces with the request's ``trace`` id — and
    root records with a ``parent_span`` link — at record-creation time,
    so even spool lines written by a worker that later dies carry the
    request identity.
    """

    def __init__(self, on_finish: Callable[[dict], None] | None = None,
                 context=None) -> None:
        self.epoch = perf_counter()
        self.listeners: list = []
        self.on_finish = on_finish
        self.context = context
        self._lock = threading.Lock()
        self._records: list[dict] = []
        self._next_id = 0
        self._local = threading.local()

    # -- recording -------------------------------------------------------

    def span(self, name: str, attrs: dict | None = None) -> Span:
        """A new span bound to this tracer (use as a context manager)."""
        return Span(name, attrs, tracer=self)

    def traced(self, name: str) -> Callable:
        """Decorator form: run the wrapped callable inside a span."""
        def decorate(function: Callable) -> Callable:
            def wrapper(*args, **kwargs):
                with self.span(name):
                    return function(*args, **kwargs)
            wrapper.__name__ = getattr(function, "__name__", name)
            return wrapper
        return decorate

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _enter(self, span: Span) -> None:
        stack = self._stack()
        span.parent_id = stack[-1].span_id if stack else -1
        span.tid = threading.get_ident()
        with self._lock:
            span.span_id = self._next_id
            self._next_id += 1
        stack.append(span)
        for listener in self.listeners:
            listener.on_enter(span)

    def _exit(self, span: Span) -> None:
        # Exception-safe unwind: pop until this span is removed, so a
        # span leaked by a raised exception cannot corrupt the stack.
        stack = self._stack()
        while stack and stack.pop() is not span:
            pass
        for listener in self.listeners:
            listener.on_exit(span)
        record = {
            "name": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "ts": span.start - self.epoch,
            "dur": span.duration,
            "tid": span.tid,
            "pid": os.getpid(),
        }
        if span.attrs:
            record["attrs"] = dict(span.attrs)
        self._contextualize(record)
        self._append(record)

    def add_record(self, name: str, start: float, duration: float,
                   attrs: dict | None = None,
                   trace: str | None = None) -> dict:
        """Record an externally-timed interval (*start* in
        ``perf_counter`` timebase) — used by the executor for job
        lifecycle and queue-wait events it times itself.  *trace*
        overrides the tracer-level context's trace id for this record
        (the service tags each lifecycle record with the owning
        request's id)."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        record = {
            "name": name,
            "id": span_id,
            "parent": -1,
            "ts": start - self.epoch,
            "dur": duration,
            "tid": threading.get_ident(),
            "pid": os.getpid(),
        }
        if attrs:
            record["attrs"] = dict(attrs)
        if trace is not None:
            record["trace"] = trace
        else:
            self._contextualize(record)
        self._append(record)
        return record

    def _contextualize(self, record: dict) -> None:
        context = self.context
        if context is None:
            return
        record["trace"] = context.trace_id
        if record["parent"] == -1 and context.span_id >= 0:
            record["parent_span"] = context.span_id

    def _append(self, record: dict) -> None:
        with self._lock:
            self._records.append(record)
        if self.on_finish is not None:
            self.on_finish(record)

    # -- reading ---------------------------------------------------------

    def records(self) -> list[dict]:
        """All finished span records, in finish order."""
        with self._lock:
            return list(self._records)

    def mark(self) -> int:
        """A position in the record list; pair with :meth:`records_since`."""
        with self._lock:
            return len(self._records)

    def records_since(self, mark: int) -> list[dict]:
        """Records finished after *mark* (from :meth:`mark`)."""
        with self._lock:
            return list(self._records[mark:])


# -- Chrome trace-event export (Perfetto / chrome://tracing) -------------


def chrome_trace(records: Iterable[dict]) -> dict:
    """Span records as a Chrome trace-event JSON object.

    Complete ("X") events with microsecond timestamps; open the file in
    https://ui.perfetto.dev or ``chrome://tracing``.
    """
    events = []
    for record in records:
        event = {
            "name": record["name"],
            "ph": "X",
            "cat": "repro",
            "ts": record["ts"] * 1e6,
            "dur": record["dur"] * 1e6,
            "pid": record.get("pid", 0),
            "tid": record.get("tid", 0),
        }
        args = dict(record["attrs"]) if record.get("attrs") else {}
        if record.get("trace"):
            args["trace"] = record["trace"]
        if args:
            event["args"] = args
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: Iterable[dict], path: str | Path) -> Path:
    """Serialize *records* to a Chrome trace-event file at *path*."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(records), indent=1))
    return path


def spans_from_chrome_trace(payload: dict) -> list[dict]:
    """Invert :func:`chrome_trace` (parent links are not representable
    in the event format and come back as -1)."""
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ReproError("not a Chrome trace-event object")
    records = []
    for event in payload["traceEvents"]:
        if event.get("ph") != "X":
            continue
        record = {
            "name": event["name"],
            "id": -1,
            "parent": -1,
            "ts": event["ts"] / 1e6,
            "dur": event["dur"] / 1e6,
            "tid": event.get("tid", 0),
            "pid": event.get("pid", 0),
        }
        if event.get("args"):
            record["attrs"] = dict(event["args"])
        records.append(record)
    return records


def merge_records(*record_lists: Iterable[dict]) -> list[dict]:
    """Concatenate record lists, dropping (pid, id) duplicates — used
    when worker-collected spans overlap the parent tracer's own."""
    merged: list[dict] = []
    seen: set[tuple[int, int]] = set()
    for records in record_lists:
        for record in records:
            key = (record.get("pid", 0), record.get("id", -1))
            if key[1] != -1 and key in seen:
                continue
            seen.add(key)
            merged.append(record)
    return merged


# -- text tree / flame report --------------------------------------------


def render_tree(records: list[dict], title: str | None = None) -> str:
    """An indented span tree with same-name siblings aggregated.

    Each line shows total seconds, call count, and the share of the
    parent's time — the flame-style report ``repro trace`` prints.
    """
    children: dict[tuple[int, int], list[dict]] = {}
    for record in records:
        key = (record.get("pid", 0), record.get("parent", -1))
        children.setdefault(key, []).append(record)

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))

    def walk(pid: int, parent_id: int, depth: int,
             parent_seconds: float) -> None:
        grouped: dict[str, list[dict]] = {}
        for record in children.get((pid, parent_id), []):
            grouped.setdefault(record["name"], []).append(record)
        for name, group in sorted(
            grouped.items(), key=lambda item: -sum(r["dur"] for r in item[1])
        ):
            seconds = sum(record["dur"] for record in group)
            share = (f"  {100.0 * seconds / parent_seconds:5.1f}%"
                     if parent_seconds > 0 else "")
            count = f"  {len(group)}x" if len(group) > 1 else ""
            lines.append(
                f"{'  ' * depth}{name:<{max(1, 44 - 2 * depth)}}"
                f"{seconds:10.4f}s{share}{count}"
            )
            for record in group:
                walk(pid, record["id"], depth + 1, seconds)

    pids = sorted({record.get("pid", 0) for record in records})
    for pid in pids:
        if len(pids) > 1:
            lines.append(f"[pid {pid}]")
        roots = children.get((pid, -1), [])
        total = sum(record["dur"] for record in roots)
        walk(pid, -1, 0, total)
    return "\n".join(lines)
