"""The live telemetry plane: /metrics, /healthz, /readyz over HTTP.

:class:`TelemetryServer` is a stdlib ``ThreadingHTTPServer`` on a
daemon thread — no new dependencies, safe to run beside a
:class:`~repro.serve.service.BenchService`'s worker pool (pass
``telemetry_port=`` to the service and it manages the lifecycle).  It
can also front a bare :class:`~repro.obs.metrics.MetricsRegistry` for
non-serve processes.

Routes:

* ``/metrics`` — Prometheus text exposition
  (:func:`~repro.obs.exposition.exposition`) of the ambient process
  registry merged with the service's own registry plus live gauges
  (queue depth, inflight, worker liveness, cache occupancy, uptime).
  ``?format=json`` returns the JSON snapshot instead.
* ``/healthz`` — liveness: 200 with a JSON body while the process and
  its workers are up, 503 once the service is stopping or its workers
  have died.
* ``/readyz`` — readiness to accept work: 503 while the queue is at
  its admission limit, workers are not yet started, or shutdown has
  begun.  The body always carries queue depth, inflight count, worker
  liveness and cache occupancy, so a scrape of a 503 still tells you
  *why*.

Scrapes never block benchmark work: handlers only read locked
snapshots (``stats()``-grade accessors), never execute jobs.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.errors import ReproError
from repro.obs import metrics as obs_metrics
from repro.obs.exposition import TEXT_CONTENT_TYPE, exposition, snapshot

#: Routes the server answers (advertised in 404 bodies).
ROUTES = ("/metrics", "/healthz", "/readyz")


class TelemetryServer:
    """Serve telemetry for a service (or a bare registry) over HTTP.

    ``port=0`` binds an ephemeral port; read :attr:`port`/:attr:`url`
    after :meth:`start`.  ``stop()`` is idempotent and joins the
    serving thread.
    """

    def __init__(self, service=None,
                 registry: "obs_metrics.MetricsRegistry | None" = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.registry = registry
        self.host = host
        self._requested_port = port
        self._httpd: "_TelemetryHTTPServer | None" = None
        self._thread: "threading.Thread | None" = None
        self._started_at = time.monotonic()

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "TelemetryServer":
        if self._httpd is not None:
            return self
        try:
            httpd = _TelemetryHTTPServer(
                (self.host, self._requested_port), _TelemetryHandler)
        except OSError as error:
            raise ReproError(
                f"cannot bind telemetry endpoint on "
                f"{self.host}:{self._requested_port}: {error}"
            )
        httpd.telemetry = self
        self._httpd = httpd
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=httpd.serve_forever, name="repro-telemetry", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        httpd, thread = self._httpd, self._thread
        self._httpd = self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise ReproError("telemetry server is not running")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- payloads --------------------------------------------------------

    def uptime(self) -> float:
        return time.monotonic() - self._started_at

    def exported(self) -> dict:
        """The merged registry export a scrape sees: ambient process
        registry + service (or explicit) registry + live gauges."""
        ambient = obs_metrics.current_registry()
        out = ambient.as_dict()
        if self.service is not None:
            out = obs_metrics.merge(out, self.service.metrics.as_dict())
        if self.registry is not None and self.registry is not ambient:
            out = obs_metrics.merge(out, self.registry.as_dict())
        gauges = self._live_gauges()
        if gauges:
            out = obs_metrics.merge(out, {"gauges": gauges})
        return out

    def _live_gauges(self) -> dict[str, float]:
        gauges = {"telemetry.uptime_seconds": round(self.uptime(), 3)}
        if self.service is not None:
            ready = self.service.readiness()
            gauges["serve.queue_depth"] = float(ready["queue_depth"])
            gauges["serve.inflight"] = float(ready["inflight"])
            gauges["serve.workers_alive"] = float(ready["workers_alive"])
            cache = ready.get("cache") or {}
            if "entries" in cache:
                gauges["serve.cache_entries"] = float(cache["entries"])
            if "bytes" in cache:
                gauges["serve.cache_bytes"] = float(cache["bytes"])
        return gauges

    def health(self) -> dict:
        if self.service is not None:
            payload = self.service.health()
        else:
            payload = {"status": "ok", "workers": None}
        payload["uptime_seconds"] = round(self.uptime(), 3)
        return payload

    def readiness(self) -> dict:
        if self.service is not None:
            return self.service.readiness()
        return {"ready": True, "queue_depth": 0, "inflight": 0,
                "workers_alive": 0, "cache": {}}


class _TelemetryHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    #: Back-reference set by :meth:`TelemetryServer.start`.
    telemetry: TelemetryServer


class _TelemetryHandler(BaseHTTPRequestHandler):
    server_version = "repro-telemetry"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        telemetry = self.server.telemetry
        parts = urlsplit(self.path)
        try:
            if parts.path == "/metrics":
                fmt = parse_qs(parts.query).get("format", ["text"])[0]
                exported = telemetry.exported()
                if fmt == "json":
                    self._reply(200, _json(snapshot(
                        exported, uptime_seconds=round(telemetry.uptime(), 3)
                    )), "application/json")
                else:
                    self._reply(200, exposition(exported), TEXT_CONTENT_TYPE)
            elif parts.path == "/healthz":
                payload = telemetry.health()
                code = 200 if payload.get("status") == "ok" else 503
                self._reply(code, _json(payload), "application/json")
            elif parts.path == "/readyz":
                payload = telemetry.readiness()
                code = 200 if payload.get("ready") else 503
                self._reply(code, _json(payload), "application/json")
            else:
                self._reply(404, _json({"error": "not found",
                                        "routes": list(ROUTES)}),
                            "application/json")
        except Exception as error:  # scrape must never kill the server
            self._reply(500, _json({"error": str(error)}),
                        "application/json")

    def _reply(self, code: int, body: str, content_type: str) -> None:
        encoded = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def log_message(self, format: str, *args) -> None:
        """Scrape logging is noise; drop it."""


def _json(payload: dict) -> str:
    return json.dumps(payload, indent=1, sort_keys=True)
