"""Per-phase μarch attribution: TraceMachine counters at span boundaries.

The paper builds Fig. 6 from VTune *regions* — top-down slots attributed
to named code ranges, not whole binaries.  Our analog: a
:class:`PhaseAttributor` registered as a tracer listener snapshots the
:class:`~repro.uarch.machine.TraceMachine` counters at every span enter
and exit, and attributes each inter-boundary counter delta to the
*innermost* open span (exclusive attribution).  Counters seen outside
every span accumulate under :data:`UNTRACED`, so the per-phase counts
always sum exactly to the whole-run :class:`MachineSummary` — the
invariant the obs tests assert.

Each phase's accumulated delta is itself a :class:`MachineSummary`, so
the existing top-down / MPKI / instruction-mix analyses apply per phase
unchanged.

Attribution assumes the probe event stream is single-threaded (as every
kernel in the suite is); spans from other threads would interleave
boundaries nondeterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uarch.branch import BranchStats
from repro.uarch.cache import CacheConfig
from repro.uarch.events import OpClass
from repro.uarch.machine import MachineSummary, TraceMachine
from repro.uarch.topdown import analyze

#: Phase key for counters recorded outside any open span.
UNTRACED = "(untraced)"


@dataclass(frozen=True)
class _Snapshot:
    """All TraceMachine counters at one instant."""

    op_counts: tuple[int, ...]
    load_levels: tuple[int, ...]
    store_levels: tuple[int, ...]
    branches: int
    mispredictions: int
    taken: int
    dependent_latency_cycles: float
    l1_misses: int
    l2_misses: int
    l3_misses: int


_OPS = tuple(OpClass)
_LEVELS = (1, 2, 3, 4)


def snapshot(machine: TraceMachine) -> _Snapshot:
    """Freeze *machine*'s counters (cheap: tuples of ints)."""
    stats = machine.predictor.stats
    return _Snapshot(
        op_counts=tuple(machine.op_counts[op] for op in _OPS),
        load_levels=tuple(machine.load_levels[level] for level in _LEVELS),
        store_levels=tuple(machine.store_levels[level] for level in _LEVELS),
        branches=stats.branches,
        mispredictions=stats.mispredictions,
        taken=stats.taken,
        dependent_latency_cycles=machine.dependent_latency_cycles,
        l1_misses=machine.cache.l1.misses,
        l2_misses=machine.cache.l2.misses,
        l3_misses=machine.cache.l3.misses,
    )


@dataclass
class PhaseCounters:
    """Accumulated counter deltas for one phase."""

    op_counts: list[int] = field(default_factory=lambda: [0] * len(_OPS))
    load_levels: list[int] = field(default_factory=lambda: [0] * 4)
    store_levels: list[int] = field(default_factory=lambda: [0] * 4)
    branches: int = 0
    mispredictions: int = 0
    taken: int = 0
    dependent_latency_cycles: float = 0.0
    l1_misses: int = 0
    l2_misses: int = 0
    l3_misses: int = 0

    def add(self, before: _Snapshot, after: _Snapshot) -> None:
        for index in range(len(_OPS)):
            self.op_counts[index] += after.op_counts[index] - before.op_counts[index]
        for index in range(4):
            self.load_levels[index] += (
                after.load_levels[index] - before.load_levels[index]
            )
            self.store_levels[index] += (
                after.store_levels[index] - before.store_levels[index]
            )
        self.branches += after.branches - before.branches
        self.mispredictions += after.mispredictions - before.mispredictions
        self.taken += after.taken - before.taken
        self.dependent_latency_cycles += (
            after.dependent_latency_cycles - before.dependent_latency_cycles
        )
        self.l1_misses += after.l1_misses - before.l1_misses
        self.l2_misses += after.l2_misses - before.l2_misses
        self.l3_misses += after.l3_misses - before.l3_misses

    @property
    def instructions(self) -> int:
        return sum(self.op_counts)

    def summary(self, cache_config: CacheConfig) -> MachineSummary:
        """This phase's deltas as a MachineSummary, so top-down / MPKI /
        instruction-mix apply to the phase exactly as to a whole run."""
        return MachineSummary(
            op_counts={op: self.op_counts[i] for i, op in enumerate(_OPS)},
            load_level_counts={lvl: self.load_levels[i]
                               for i, lvl in enumerate(_LEVELS)},
            store_level_counts={lvl: self.store_levels[i]
                                for i, lvl in enumerate(_LEVELS)},
            branch_stats=BranchStats(
                branches=self.branches,
                mispredictions=self.mispredictions,
                taken=self.taken,
            ),
            dependent_latency_cycles=self.dependent_latency_cycles,
            cache_config=cache_config,
            l1_misses=self.l1_misses,
            l2_misses=self.l2_misses,
            l3_misses=self.l3_misses,
        )


class PhaseAttributor:
    """Tracer listener splitting a TraceMachine's counters across spans.

    Register on a tracer (``tracer.listeners.append(attributor)``) for
    the duration of an instrumented run, then call :meth:`finish` to
    flush the tail and :meth:`report` for the per-phase analyses.
    Phases are keyed by span *name* — repeated spans (one per loop
    iteration, say) aggregate into one labeled series.
    """

    def __init__(self, machine: TraceMachine) -> None:
        self.machine = machine
        self.phases: dict[str, PhaseCounters] = {}
        self._stack: list[str] = []
        self._last = snapshot(machine)

    def _flush(self) -> None:
        now = snapshot(self.machine)
        key = self._stack[-1] if self._stack else UNTRACED
        counters = self.phases.get(key)
        if counters is None:
            counters = self.phases[key] = PhaseCounters()
        counters.add(self._last, now)
        self._last = now

    def on_enter(self, span) -> None:
        self._flush()
        self._stack.append(span.name)

    def on_exit(self, span) -> None:
        self._flush()
        while self._stack and self._stack.pop() != span.name:
            pass

    def finish(self) -> None:
        """Attribute any counters seen since the last span boundary."""
        self._flush()

    def report(self, cache_config: CacheConfig) -> dict[str, dict]:
        """Per-phase analysis dicts, JSON-ready, largest phase first.

        Zero-instruction phases are dropped; the remaining per-phase
        ``instructions`` sum exactly to the whole run's total.
        """
        out: dict[str, dict] = {}
        ordered = sorted(self.phases.items(),
                         key=lambda item: -item[1].instructions)
        for name, counters in ordered:
            if counters.instructions == 0:
                continue
            summary = counters.summary(cache_config)
            topdown = analyze(summary)
            out[name] = {
                "instructions": summary.instructions,
                "ipc": topdown.ipc,
                "topdown": topdown.as_dict(),
                "mpki": summary.mpki(),
                "instruction_mix": summary.instruction_mix(),
                "branch_misprediction_rate":
                    summary.branch_stats.misprediction_rate,
            }
        return out
