"""smoothxg: path-consistent block partitioning re-aligned with POA.

After seqwish induction, locally under-aligned regions leave ragged
bubbles.  smoothxg cuts the graph into *blocks* — stretches of bounded
path length — extracts every path's fragment through each block, and
re-aligns the fragments with partial order alignment; the paper notes
~80% of smoothxg's time is POA, which is why PGGB's polish stage is
POA-dominated in Figure 3.

Blocks here are derived from path coordinates: each node is bucketed by
the smallest offset at which any path reaches it, and each path's walk
is cut wherever its steps change bucket.  Fragments of one bucket are
aligned with the adaptive-banded POA (:func:`repro.align.poa`
machinery, abPOA-style), which keeps the DP work linear in fragment
length while preserving POA's control/memory profile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.poa import PoaGraph
from repro.errors import GraphError
from repro.graph.model import SequenceGraph
from repro.obs import trace
from repro.uarch.events import NULL_PROBE, AddressSpace, MachineProbe, OpClass


@dataclass(frozen=True)
class SmoothBlock:
    """One smoothing block: its nodes, path fragments, and consensus."""

    block_id: int
    node_ids: tuple[int, ...]
    sequences: tuple[str, ...]
    consensus: str
    poa_cells: int


@dataclass
class SmoothStats:
    """Work counters for one smoothing run."""

    blocks: int = 0
    fragments: int = 0
    poa_cells: int = 0
    consensus_bases: int = 0


def smooth(
    graph: SequenceGraph,
    block_length: int = 600,
    band: int = 24,
    probe: MachineProbe = NULL_PROBE,
) -> tuple[list[SmoothBlock], SmoothStats]:
    """Partition *graph* into path-consistent blocks and POA each one.

    Returns ``(blocks, stats)``; ``stats.poa_cells`` is the total DP
    work, the quantity Figure 3 attributes polish time to.  The blocks
    partition every path: concatenating a path's fragments in order
    reproduces the path's spelled sequence exactly.
    """
    if block_length <= 0:
        raise GraphError("block_length must be positive")
    if graph.path_count == 0:
        raise GraphError("smoothing needs at least one path")
    space = AddressSpace()
    bucket_base = space.alloc(8 * max(1, graph.node_count))

    # Bucket each node by the smallest path offset reaching it.  The
    # per-step bucket-table traffic accumulates per span and flushes as
    # blocks (the probe never steers the partition).
    with trace.span("smoothxg/bucket"):
        min_offset: dict[int, int] = {}
        bucket_loads: list[int] = []
        bucket_stores: list[int] = []
        for path in graph.paths():
            offset = 0
            for node_id in path.nodes:
                bucket_loads.append(bucket_base + 8 * (node_id % 4096))
                if node_id not in min_offset or offset < min_offset[node_id]:
                    min_offset[node_id] = offset
                    bucket_stores.append(bucket_base + 8 * (node_id % 4096))
                offset += len(graph.node(node_id))
        probe.load_block(bucket_loads, 8)
        probe.alu_bulk(OpClass.SCALAR_ALU, 2 * len(bucket_loads))
        probe.store_block(bucket_stores, 8)
        bucket_of = {
            node_id: offset // block_length
            for node_id, offset in min_offset.items()
        }

    # Cut each path where its steps change bucket; collect fragments.
    with trace.span("smoothxg/cut"):
        block_nodes: dict[int, set[int]] = {}
        block_fragments: dict[int, list[str]] = {}
        cut_branches: list[bool] = []
        for node_id, bucket in bucket_of.items():
            block_nodes.setdefault(bucket, set()).add(node_id)
        for path in graph.paths():
            fragment: list[str] = []
            fragment_bucket: int | None = None
            for node_id in path.nodes:
                bucket = bucket_of[node_id]
                cut_branches.append(bucket != fragment_bucket)
                if bucket != fragment_bucket and fragment:
                    block_fragments.setdefault(fragment_bucket, []).append(
                        "".join(fragment)
                    )
                    fragment = []
                fragment_bucket = bucket
                fragment.append(graph.node(node_id).sequence)
            if fragment:
                block_fragments.setdefault(fragment_bucket, []).append(
                    "".join(fragment)
                )
        probe.branch_trace(1401, cut_branches)

    stats = SmoothStats()
    blocks: list[SmoothBlock] = []
    with trace.span("smoothxg/poa"):
        for bucket in sorted(block_nodes):
            fragments = block_fragments.get(bucket, [])
            if not fragments:
                continue
            poa = PoaGraph(probe=probe)
            for fragment in fragments:
                poa.add_sequence(fragment, band=band)
            consensus = poa.consensus()
            cells = poa.cells_computed
            blocks.append(SmoothBlock(
                block_id=bucket,
                node_ids=tuple(sorted(block_nodes[bucket])),
                sequences=tuple(fragments),
                consensus=consensus,
                poa_cells=cells,
            ))
            stats.blocks += 1
            stats.fragments += len(fragments)
            stats.poa_cells += cells
            stats.consensus_bases += len(consensus)
    return blocks, stats
