"""GFAffix-style polishing: collapse redundant and shared-prefix nodes.

Graph induction leaves *blunt redundancy*: sibling nodes (same
predecessors) that spell identical sequences, or sequences sharing a
prefix — each walk through them spells the same bases twice over.
GFAffix detects such walk-preserving redundancy and collapses it.  The
reproduction implements the two core rules:

* **identical siblings** — nodes with the same predecessor set and the
  same sequence merge into one node (successor sets union, path steps
  rewrite);
* **shared prefixes** — sibling groups whose sequences share a common
  prefix split that prefix into one shared node, leaving the divergent
  remainders as separate successors.

Both rules preserve every path's spelled sequence exactly (asserted by
the tests); total stored bases strictly decrease on every applied rule,
so iteration to a fixpoint terminates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.model import SequenceGraph
from repro.obs import trace
from repro.uarch.events import NULL_PROBE, AddressSpace, MachineProbe, OpClass


@dataclass
class PolishStats:
    """Work counters for one polish run."""

    nodes_merged: int = 0
    prefixes_collapsed: int = 0
    rounds: int = 0
    bases_removed: int = 0


def polish(
    graph: SequenceGraph,
    probe: MachineProbe = NULL_PROBE,
    max_rounds: int = 16,
) -> tuple[SequenceGraph, PolishStats]:
    """Collapse redundant/shared-prefix nodes of *graph*.

    Returns ``(polished_graph, stats)``; the input graph is not
    modified.  Every path of the output spells exactly what it spelled
    in the input.
    """
    state = _MutableGraph(graph)
    stats = PolishStats()
    space = AddressSpace()
    signature_base = space.alloc(32 * max(1, len(state.sequence)))
    for _ in range(max_rounds):
        stats.rounds += 1
        with trace.span("gfaffix/siblings"):
            changed = _merge_identical_siblings(
                state, stats, probe, signature_base
            )
        with trace.span("gfaffix/prefixes"):
            changed |= _collapse_shared_prefixes(
                state, stats, probe, signature_base
            )
        if not changed:
            break
    return state.build(), stats


class _MutableGraph:
    """An editable mirror of a :class:`SequenceGraph`."""

    def __init__(self, graph: SequenceGraph) -> None:
        self.sequence: dict[int, str] = {
            node.node_id: node.sequence for node in graph.nodes()
        }
        self.succ: dict[int, set[int]] = {n: set() for n in self.sequence}
        self.pred: dict[int, set[int]] = {n: set() for n in self.sequence}
        for source, target in graph.edges():
            self.succ[source].add(target)
            self.pred[target].add(source)
        self.paths: dict[str, list[int]] = {
            path.name: list(path.nodes) for path in graph.paths()
        }
        self.next_id = max(self.sequence, default=-1) + 1

    def new_node(self, sequence: str) -> int:
        node_id = self.next_id
        self.next_id += 1
        self.sequence[node_id] = sequence
        self.succ[node_id] = set()
        self.pred[node_id] = set()
        return node_id

    def add_edge(self, source: int, target: int) -> None:
        self.succ[source].add(target)
        self.pred[target].add(source)

    def remove_node(self, node_id: int) -> None:
        for target in self.succ.pop(node_id):
            self.pred[target].discard(node_id)
        for source in self.pred.pop(node_id):
            self.succ[source].discard(node_id)
        del self.sequence[node_id]

    def rewrite_paths(self, mapping: dict[int, list[int]]) -> None:
        """Replace every occurrence of each key node by its step list."""
        for name, steps in self.paths.items():
            if not any(step in mapping for step in steps):
                continue
            rewritten: list[int] = []
            for step in steps:
                rewritten.extend(mapping.get(step, [step]))
            self.paths[name] = rewritten

    def build(self) -> SequenceGraph:
        graph = SequenceGraph()
        for node_id in self.sequence:
            graph.add_node(node_id, self.sequence[node_id])
        for source, targets in self.succ.items():
            for target in targets:
                graph.add_edge(source, target)
        for name, steps in self.paths.items():
            graph.add_path(name, steps)
        return graph


def _merge_identical_siblings(
    state: _MutableGraph,
    stats: PolishStats,
    probe: MachineProbe,
    signature_base: int,
) -> bool:
    """Merge nodes sharing (predecessor set, sequence); keep the smallest id."""
    groups: dict[tuple[frozenset[int], str], list[int]] = {}
    for node_id, sequence in state.sequence.items():
        probe.load(signature_base + 32 * (node_id % 4096), 32)
        probe.alu(OpClass.SCALAR_ALU, 2 + len(sequence) // 8)
        if node_id in state.succ[node_id]:
            continue  # self-loops stay as-is
        key = (frozenset(state.pred[node_id]), sequence)
        groups.setdefault(key, []).append(node_id)
    changed = False
    for members in groups.values():
        probe.branch(site=1301, taken=len(members) > 1)
        if len(members) < 2:
            continue
        members.sort()
        keeper, rest = members[0], members[1:]
        mapping: dict[int, list[int]] = {}
        for node_id in rest:
            for target in state.succ[node_id]:
                if target != node_id:
                    state.add_edge(keeper, target)
            mapping[node_id] = [keeper]
            state.remove_node(node_id)
            stats.nodes_merged += 1
            stats.bases_removed += len(state.sequence[keeper])
            probe.store(signature_base + 32 * (node_id % 4096), 32)
        state.rewrite_paths(mapping)
        changed = True
    return changed


def _collapse_shared_prefixes(
    state: _MutableGraph,
    stats: PolishStats,
    probe: MachineProbe,
    signature_base: int,
) -> bool:
    """Split the longest common prefix out of same-parent sibling groups."""
    changed = False
    touched: set[int] = set()
    for parent in list(state.sequence):
        if parent not in state.sequence or parent in touched:
            continue
        siblings: dict[str, list[int]] = {}
        for child in state.succ[parent]:
            probe.load(signature_base + 32 * (child % 4096), 8)
            if child == parent or child in touched:
                continue
            if child in state.succ[child]:
                continue
            siblings.setdefault(state.sequence[child][0], []).append(child)
        for group in siblings.values():
            group = sorted(set(group))
            probe.branch(site=1302, taken=len(group) > 1)
            if len(group) < 2:
                continue
            if any(node in touched for node in group):
                continue
            sequences = [state.sequence[node] for node in group]
            prefix_length = _common_prefix(sequences, probe)
            if prefix_length == 0:
                continue
            # Identical full sequences are the sibling-merge rule's job
            # (it also checks predecessor sets); skip pure duplicates.
            if all(len(s) == prefix_length for s in sequences):
                continue
            prefix_node = state.new_node(sequences[0][:prefix_length])
            for node in group:
                for source in list(state.pred[node]):
                    state.succ[source].discard(node)
                    state.pred[node].discard(source)
                    state.add_edge(source, prefix_node)
            mapping: dict[int, list[int]] = {}
            for node in group:
                remainder = state.sequence[node][prefix_length:]
                if remainder:
                    state.sequence[node] = remainder
                    state.add_edge(prefix_node, node)
                    mapping[node] = [prefix_node, node]
                    touched.add(node)
                else:
                    for target in state.succ[node]:
                        state.add_edge(prefix_node, target)
                    mapping[node] = [prefix_node]
                    state.remove_node(node)
                    stats.nodes_merged += 1
                stats.bases_removed += prefix_length
            # One group's prefix stays; the duplicates were removed.
            stats.bases_removed -= prefix_length
            state.rewrite_paths(mapping)
            stats.prefixes_collapsed += 1
            touched.add(prefix_node)
            changed = True
            probe.store(signature_base + 32 * (prefix_node % 4096), 32)
    return changed


def _common_prefix(sequences: list[str], probe: MachineProbe) -> int:
    shortest = min(sequences, key=len)
    for index in range(len(shortest)):
        probe.alu(OpClass.SCALAR_ALU, len(sequences))
        if any(s[index] != shortest[index] for s in sequences):
            probe.branch(site=1303, taken=True)
            return index
    probe.branch(site=1303, taken=False)
    return len(shortest)
