"""wfmash: MashMap-style sketch mapping plus WFA base-level alignment.

wfmash is PGGB's aligner (Section 2.2): a MashMap-like sketch mapper
proposes homologous segment pairs from minimizer-sketch Jaccard
similarity, then WFA aligns each proposed segment at base level.  The
output consumed downstream (by seqwish's transitive closure) is the set
of *exact-match segments* of those alignments.

The reproduction keeps that two-phase structure:

1. **Sketch mapping.**  Every record gets a minimizer sketch
   (:func:`repro.index.minimizer.minimizers`); candidate record pairs are
   gated on the Jaccard estimate of their sketch sets, and each query
   segment votes shared minimizers into diagonal buckets to locate its
   target window (MashMap's winning-diagonal heuristic).
2. **Base alignment.**  The segment is aligned against its window with
   :func:`repro.align.wfa.wfa_edit_distance`; segments whose measured
   divergence exceeds the threshold are rejected (wfmash's identity
   filter), and the WFA's DP work accumulates into ``stats.wfa_cells``.
   Accepted segments emit their anchors extended to *maximal exact
   matches* — the match segments a real wfmash run spells out in its
   CIGARs' ``=`` runs.

Matches are guaranteed exact (both substrings identical): anchors are
verified character-by-character during extension, so downstream closure
never unifies differing bases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.wfa import wfa_edit_distance
from repro.errors import AlignmentError
from repro.index.minimizer import Minimizer, minimizers
from repro.obs import trace
from repro.sequence.records import SequenceRecord
from repro.uarch.events import NULL_PROBE, AddressSpace, MachineProbe, OpClass

#: Diagonal bucket width for the segment-mapping vote.
_DIAG_BUCKET = 64


@dataclass(frozen=True)
class Match:
    """One exact-match segment between two records (both on the forward
    strand): ``query[query_start : query_start+length] ==
    target[target_start : target_start+length]``."""

    query_name: str
    target_name: str
    query_start: int
    target_start: int
    length: int


@dataclass
class WfmashStats:
    """Work counters for one all-to-all mapping run."""

    pairs_considered: int = 0
    pairs_mapped: int = 0
    segments_mapped: int = 0
    segments_rejected: int = 0
    anchors: int = 0
    wfa_cells: int = 0
    matched_bases: int = 0


def all_to_all(
    records: list[SequenceRecord],
    probe: MachineProbe = NULL_PROBE,
    k: int = 15,
    w: int = 10,
    segment_length: int = 512,
    min_jaccard: float = 0.02,
    min_match: int = 20,
    max_divergence: float = 0.3,
) -> tuple[list[Match], WfmashStats]:
    """All-to-all exact-match segments across *records*.

    Every unordered record pair passing the sketch Jaccard gate is
    segment-mapped and WFA-verified; each pair is emitted once with the
    lower-indexed record as the query (the closure downstream is
    symmetric).  Returns ``(matches, stats)``.
    """
    if min_match < k:
        min_match = k
    stats = WfmashStats()
    space = AddressSpace()
    with trace.span("wfmash/sketch"):
        sketches = [_Sketch(record, k, w, space) for record in records]
    matches: list[Match] = []
    with trace.span("wfmash/map"):
        gate_outcomes: list[bool] = []
        for qi in range(len(records)):
            for ti in range(qi + 1, len(records)):
                stats.pairs_considered += 1
                query, target = sketches[qi], sketches[ti]
                jaccard = query.jaccard(target, probe)
                gate_outcomes.append(jaccard >= min_jaccard)
                if jaccard < min_jaccard:
                    continue
                emitted = _map_pair(
                    query, target, probe, stats,
                    segment_length=segment_length,
                    min_match=min_match,
                    max_divergence=max_divergence,
                )
                if emitted:
                    stats.pairs_mapped += 1
                    matches.extend(emitted)
        probe.branch_trace(1101, gate_outcomes)
    return matches, stats


class _Sketch:
    """A record's minimizer sketch plus a hash -> positions table."""

    def __init__(self, record: SequenceRecord, k: int, w: int,
                 space: AddressSpace) -> None:
        self.record = record
        self.k = k
        self.minimizers: list[Minimizer] = minimizers(record.sequence, k, w)
        self.hashes = {m.hash_value for m in self.minimizers}
        self.table: dict[int, list[Minimizer]] = {}
        for minimizer in self.minimizers:
            self.table.setdefault(minimizer.hash_value, []).append(minimizer)
        # Synthetic address region: one 16-byte entry per sketch position.
        self.base = space.alloc(16 * max(1, len(self.minimizers)))

    def jaccard(self, other: "_Sketch", probe: MachineProbe) -> float:
        small, large = (self, other) if len(self.hashes) <= len(other.hashes) \
            else (other, self)
        n = len(small.hashes)
        modulus = max(1, len(small.minimizers))
        probe.load_block(small.base + 16 * (np.arange(n) % modulus), 8)
        probe.alu_bulk(OpClass.SCALAR_ALU, 2 * n)
        shared = len(small.hashes & large.hashes)
        union = len(self.hashes) + len(other.hashes) - shared
        if union == 0:
            return 0.0
        return shared / union


def _map_pair(
    query: _Sketch,
    target: _Sketch,
    probe: MachineProbe,
    stats: WfmashStats,
    segment_length: int,
    min_match: int,
    max_divergence: float,
) -> list[Match]:
    """Map every query segment onto the target; emit verified matches."""
    a = query.record.sequence
    b = target.record.sequence
    emitted: list[Match] = []
    #: diagonal -> query end of the last maximal run emitted on it; anchors
    #: landing inside an emitted run skip re-extension (they would only
    #: rediscover the same run).
    covered: dict[int, int] = {}
    minimizer_index = 0
    n_minimizers = len(query.minimizers)
    # Per-pair event accumulators, flushed as blocks after the segment
    # loop (the probe never steers the mapping, so batching preserves
    # the event stream up to ordering against the WFA's own events).
    table_loads: list[int] = []
    hit_branches: list[bool] = []
    anchor_alu = 0
    vote_alu = 0
    vote_stores: list[int] = []
    divergence_branches: list[bool] = []
    covered_loads: list[int] = []
    covered_branches: list[bool] = []
    extend_alu = 0
    left_outcomes: list[bool] = []
    left_bulk = 0
    right_outcomes: list[bool] = []
    right_bulk = 0
    for start in range(0, len(a), segment_length):
        end = min(start + segment_length, len(a))
        if end - start < query.k:
            break
        # Collect this segment's anchors from shared minimizers.
        anchors: list[tuple[int, int]] = []
        while minimizer_index < n_minimizers and \
                query.minimizers[minimizer_index].position < start:
            minimizer_index += 1
        scan = minimizer_index
        while scan < n_minimizers and query.minimizers[scan].position < end:
            minimizer = query.minimizers[scan]
            scan += 1
            table_loads.append(target.base + 16 * (minimizer.hash_value %
                                                   max(1, len(target.minimizers))))
            hits = target.table.get(minimizer.hash_value)
            hit_branches.append(hits is not None)
            if not hits:
                continue
            for hit in hits:
                if hit.is_reverse == minimizer.is_reverse:
                    anchors.append((minimizer.position, hit.position))
                    anchor_alu += 2
        stats.anchors += len(anchors)
        if not anchors:
            stats.segments_rejected += 1
            continue
        # Diagonal vote: the modal bucket decides the target window.
        votes: dict[int, int] = {}
        for q_pos, t_pos in anchors:
            bucket = (t_pos - q_pos) // _DIAG_BUCKET
            votes[bucket] = votes.get(bucket, 0) + 1
            vote_alu += 3
            vote_stores.append(query.base + 8 * (bucket % max(1, len(votes))))
        best_bucket = max(votes, key=lambda bucket: (votes[bucket], -bucket))
        best_diag = best_bucket * _DIAG_BUCKET + _DIAG_BUCKET // 2
        segment_anchors = [
            (q, t) for q, t in anchors
            if abs((t - q) - best_diag) <= 2 * _DIAG_BUCKET
        ]
        if not segment_anchors:
            stats.segments_rejected += 1
            continue
        # Base-level verification: WFA the segment against its window.
        t_lo = max(0, start + best_diag)
        t_hi = min(len(b), end + best_diag)
        if t_hi - t_lo < query.k:
            stats.segments_rejected += 1
            continue
        try:
            result = wfa_edit_distance(a[start:end], b[t_lo:t_hi], probe=probe)
        except AlignmentError:
            stats.segments_rejected += 1
            continue
        stats.wfa_cells += (result.stats.cells_extended
                            + result.stats.diagonals_processed)
        divergence = result.distance / max(end - start, t_hi - t_lo)
        divergence_branches.append(divergence <= max_divergence)
        if divergence > max_divergence:
            stats.segments_rejected += 1
            continue
        stats.segments_mapped += 1
        for q_pos, t_pos in sorted(segment_anchors):
            diag = t_pos - q_pos
            covered_loads.append(query.base + 8 * (diag % 1024))
            covered_branches.append(covered.get(diag, -1) > q_pos)
            if covered.get(diag, -1) > q_pos:
                continue
            match = _extend_anchor(a, b, q_pos, t_pos)
            if match is None:
                continue
            q_start, t_start, length = match
            extend_alu += 2 * length
            left = q_pos - q_start
            trained = min(left, 3)
            left_outcomes.extend([True] * trained)
            left_bulk += left - trained
            left_outcomes.append(False)
            right = length - left
            trained = min(right, 3)
            right_outcomes.extend([True] * trained)
            right_bulk += right - trained
            right_outcomes.append(False)
            if length < min_match:
                continue
            covered[diag] = q_start + length
            stats.matched_bases += length
            emitted.append(Match(
                query_name=query.record.name,
                target_name=target.record.name,
                query_start=q_start,
                target_start=t_start,
                length=length,
            ))
    probe.load_block(table_loads, 8)
    probe.branch_trace(1102, hit_branches)
    probe.alu_bulk(OpClass.SCALAR_ALU, anchor_alu + vote_alu + extend_alu)
    probe.store_block(vote_stores, 8)
    probe.branch_trace(1103, divergence_branches)
    probe.load_block(covered_loads, 8)
    probe.branch_trace(1106, covered_branches)
    probe.branch_trace(1104, left_outcomes)
    if left_bulk:
        probe.branch_bulk(1104, left_bulk)
    probe.branch_trace(1105, right_outcomes)
    if right_bulk:
        probe.branch_bulk(1105, right_bulk)
    return emitted


def _extend_anchor(
    a: str, b: str, q_pos: int, t_pos: int
) -> tuple[int, int, int] | None:
    """Extend an anchor to its maximal exact run; verifies every base.

    Returns ``(query_start, target_start, length)`` or None when the
    anchor itself mismatches (a sketch hash collision).  Extension events
    (compare ALU work, the two run branches) are credited in bulk by the
    caller's per-pair flush.
    """
    if a[q_pos] != b[t_pos]:
        return None
    left = 0
    while q_pos - left - 1 >= 0 and t_pos - left - 1 >= 0 and \
            a[q_pos - left - 1] == b[t_pos - left - 1]:
        left += 1
    right = 1
    while q_pos + right < len(a) and t_pos + right < len(b) and \
            a[q_pos + right] == b[t_pos + right]:
        right += 1
    length = left + right
    return q_pos - left, t_pos - left, length
