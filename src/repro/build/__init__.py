"""Graph construction: the algorithms the TC kernel and Figure 3 come from.

This package re-implements the PGGB and Minigraph-Cactus construction
stack (DESIGN.md's "Graph construction" inventory row) from scratch:

* :mod:`repro.build.wfmash` — MashMap-style sketch mapping plus WFA
  base-level alignment producing all-to-all exact-match segments;
* :mod:`repro.build.seqwish` — the transitive-closure (TC) algorithm
  over those matches, and graph induction from the closed positions;
* :mod:`repro.build.gfaffix` — walk-preserving collapse of redundant
  and shared-prefix nodes (GFAffix-style polishing);
* :mod:`repro.build.smoothxg` — path-consistent block partitioning
  re-aligned with (banded) POA (smoothxg-style smoothing);
* :mod:`repro.build.cactus` — the Minigraph-Cactus progressive
  pipeline: reference-seeded graph, minimizer anchoring, GWFA patching.

Every entry point accepts a :class:`repro.uarch.events.MachineProbe`
and reports structured work statistics, so the TC kernel's topdown /
cache / instmix studies observe real event streams.
"""

from repro.build.cactus import CactusStats, ProgressiveBuild, build_progressive
from repro.build.gfaffix import PolishStats, polish
from repro.build.seqwish import (
    InduceResult,
    TranscloseResult,
    TranscloseStats,
    induce_graph,
    transclose,
)
from repro.build.smoothxg import SmoothBlock, SmoothStats, smooth
from repro.build.wfmash import Match, WfmashStats, all_to_all

__all__ = [
    "CactusStats", "ProgressiveBuild", "build_progressive",
    "PolishStats", "polish",
    "InduceResult", "TranscloseResult", "TranscloseStats",
    "induce_graph", "transclose",
    "SmoothBlock", "SmoothStats", "smooth",
    "Match", "WfmashStats", "all_to_all",
]
