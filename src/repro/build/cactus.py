"""Minigraph-Cactus: progressive, reference-seeded graph construction.

Where PGGB aligns everything against everything, Minigraph-Cactus (MC)
builds progressively (Section 2.2): the first genome seeds the graph,
and each further haplotype is mapped against the *current* graph —
minimizer anchors locate the conserved stretches, and the gaps between
anchors are patched with GWFA.  Small divergences are absorbed into the
existing reference nodes (MC's reference bias: only the seed genome is
guaranteed to be spelled exactly by its path); structural divergences
become new alternative-allele nodes bubbled off the reference walk.

The reproduction mirrors that loop:

1. the reference is chopped into fixed-length nodes threaded by a path;
2. each haplotype is seeded against a minimizer index of the current
   graph (:class:`repro.index.minimizer.GraphMinimizerIndex`), anchors
   are chained colinearly, and ``stats.anchors`` counts the chain;
3. between consecutive anchored nodes the haplotype gap is aligned with
   :func:`repro.align.gwfa.gwfa_align` (``stats.gwfa_invocations``); low
   divergence threads the reference nodes, high divergence inserts an
   alt node (``stats.variants`` counts both kinds of discovered sites).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.align.gwfa import gwfa_align
from repro.build.gfaffix import PolishStats, polish
from repro.errors import AlignmentError, GraphError
from repro.graph.model import SequenceGraph
from repro.index.minimizer import GraphMinimizerIndex
from repro.obs import trace
from repro.sequence.records import SequenceRecord
from repro.uarch.events import NULL_PROBE, AddressSpace, MachineProbe, OpClass


@dataclass
class CactusStats:
    """Work counters for one progressive build."""

    anchors: int = 0
    gwfa_invocations: int = 0
    variants: int = 0
    alt_nodes: int = 0
    patched_bases: int = 0


@dataclass
class ProgressiveBuild:
    """The built graph plus construction statistics."""

    graph: SequenceGraph
    stats: CactusStats = field(default_factory=CactusStats)
    polish_stats: PolishStats | None = None


def build_progressive(
    records: list[SequenceRecord],
    run_polish: bool = True,
    probe: MachineProbe = NULL_PROBE,
    node_length: int = 64,
    k: int = 15,
    w: int = 10,
    max_gap: int = 4000,
    divergence_threshold: float = 0.2,
    diagonal_band: int = 2000,
) -> ProgressiveBuild:
    """Progressively build a graph from *records* (first = reference).

    Each subsequent record is anchored and threaded against the current
    graph; with ``run_polish`` the result is GFAffix-polished before
    returning.  The reference path always spells the reference exactly.
    """
    if not records:
        raise GraphError("progressive build needs at least one record")
    stats = CactusStats()
    space = AddressSpace()
    anchor_base = space.alloc(1 << 20)

    with trace.span("cactus/seed"):
        graph, n_reference_nodes = _seed_reference(records[0], node_length)
    for record in records[1:]:
        with trace.span("cactus/thread", {"record": record.name}):
            _thread_haplotype(
                graph, record, n_reference_nodes, node_length, stats, probe,
                anchor_base, k=k, w=w, max_gap=max_gap,
                divergence_threshold=divergence_threshold,
                diagonal_band=diagonal_band,
            )
    polish_stats: PolishStats | None = None
    if run_polish:
        with trace.span("cactus/polish"):
            graph, polish_stats = polish(graph, probe=probe)
    return ProgressiveBuild(graph=graph, stats=stats, polish_stats=polish_stats)


def _seed_reference(
    reference: SequenceRecord, node_length: int
) -> tuple[SequenceGraph, int]:
    """Chop the reference into a node chain threaded by its path."""
    if node_length < 2:
        raise GraphError("node_length must be at least 2")
    graph = SequenceGraph()
    sequence = reference.sequence
    node_ids = []
    for start in range(0, len(sequence), node_length):
        node_id = len(node_ids)
        graph.add_node(node_id, sequence[start : start + node_length])
        node_ids.append(node_id)
    for source, target in zip(node_ids, node_ids[1:]):
        graph.add_edge(source, target)
    graph.add_path(reference.name, node_ids)
    return graph, len(node_ids)


def _thread_haplotype(
    graph: SequenceGraph,
    record: SequenceRecord,
    n_reference_nodes: int,
    node_length: int,
    stats: CactusStats,
    probe: MachineProbe,
    anchor_base: int,
    k: int,
    w: int,
    max_gap: int,
    divergence_threshold: float,
    diagonal_band: int,
) -> None:
    """Map one haplotype onto the current graph and thread its path."""
    index = GraphMinimizerIndex(graph, k=k, w=w)
    seeds = index.seeds_for(record.sequence)
    # Anchor only to reference-backbone nodes: their node ids are their
    # linear order, which gives the chain its coordinate system.  (Alt
    # nodes still participate via the GWFA patching, which walks the
    # whole graph.)
    anchors: list[tuple[int, int]] = []  # (read_pos, reference_pos)
    for seed in seeds:
        probe.load(anchor_base + 16 * (seed.node_id % 4096), 16)
        probe.branch(site=1501,
                     taken=not seed.is_reverse and seed.node_id < n_reference_nodes)
        if seed.is_reverse or seed.node_id >= n_reference_nodes:
            continue
        anchors.append(
            (seed.read_position, seed.node_id * node_length + seed.node_offset)
        )
    chain = _chain_anchors(anchors, probe, diagonal_band)
    stats.anchors += len(chain)

    if not chain:
        # Nothing homologous found: the whole haplotype is one alt node.
        alt = _add_alt_node(graph, record.sequence)
        stats.alt_nodes += 1
        stats.variants += 1
        graph.add_path(record.name, [alt])
        return

    # Reduce the chain to node granularity.  Each anchor's diagonal
    # projects its reference node onto read coordinates: the read span
    # [read_start, read_end) is what the node absorbs.  Keep one span
    # per node, monotone and non-overlapping in both coordinates.
    supported: list[tuple[int, int, int]] = []  # (node, read_start, read_end)
    for read_pos, ref_pos in chain:
        node_id = ref_pos // node_length
        read_start = read_pos - (ref_pos - node_id * node_length)
        read_end = min(len(record.sequence),
                       read_start + len(graph.node(node_id)))
        probe.alu(OpClass.SCALAR_ALU, 4)
        if read_start < 0:
            continue
        if supported and (node_id <= supported[-1][0]
                          or read_start < supported[-1][2]):
            continue
        supported.append((node_id, read_start, read_end))
        probe.store(anchor_base + 16 * (node_id % 4096), 16)

    if not supported:
        alt = _add_alt_node(graph, record.sequence)
        stats.alt_nodes += 1
        stats.variants += 1
        graph.add_path(record.name, [alt])
        return

    path: list[int] = []
    first_node, first_start, _ = supported[0]
    _thread_gap(
        graph, record.sequence[:first_start], None, first_node, path,
        stats, probe, max_gap, divergence_threshold,
    )
    path.append(first_node)
    for (prev_node, _, prev_end), (next_node, next_start, _) in zip(
        supported, supported[1:]
    ):
        gap = record.sequence[prev_end:next_start]
        _thread_gap(
            graph, gap, prev_node, next_node, path,
            stats, probe, max_gap, divergence_threshold,
        )
        path.append(next_node)
    last_node, _, last_end = supported[-1]
    _thread_gap(
        graph, record.sequence[last_end:], last_node, None, path,
        stats, probe, max_gap, divergence_threshold,
    )
    graph.add_path(record.name, path)


def _chain_anchors(
    anchors: list[tuple[int, int]],
    probe: MachineProbe,
    diagonal_band: int,
) -> list[tuple[int, int]]:
    """Greedy colinear chain of (read_pos, ref_pos) anchors.

    Seeds vote a modal diagonal; anchors within the band around it are
    chained monotonically in both coordinates (the cheap stand-in for
    minigraph's 2D DP chaining, adequate for mostly-colinear genomes).
    """
    if not anchors:
        return []
    votes: dict[int, int] = {}
    for read_pos, ref_pos in anchors:
        bucket = (ref_pos - read_pos) // 256
        votes[bucket] = votes.get(bucket, 0) + 1
        probe.alu(OpClass.SCALAR_ALU, 3)
    modal = max(votes, key=lambda bucket: (votes[bucket], -bucket))
    center = modal * 256 + 128
    chain: list[tuple[int, int]] = []
    last_read, last_ref = -1, -1
    for read_pos, ref_pos in sorted(anchors):
        in_band = abs((ref_pos - read_pos) - center) <= diagonal_band
        monotone = read_pos > last_read and ref_pos > last_ref
        probe.branch(site=1502, taken=in_band and monotone)
        if in_band and monotone:
            chain.append((read_pos, ref_pos))
            last_read, last_ref = read_pos, ref_pos
    return chain


def _add_alt_node(graph: SequenceGraph, sequence: str) -> int:
    node_id = max(graph.node_ids()) + 1
    graph.add_node(node_id, sequence)
    return node_id


def _thread_gap(
    graph: SequenceGraph,
    gap: str,
    prev_node: int | None,
    next_node: int | None,
    path: list[int],
    stats: CactusStats,
    probe: MachineProbe,
    max_gap: int,
    divergence_threshold: float,
) -> None:
    """Thread the region between two anchored reference nodes.

    Appends the intermediate steps (reference nodes or an alt node) to
    *path* and records variant/GWFA statistics.  ``prev_node is None``
    marks the haplotype head, ``next_node is None`` the tail.
    """
    if prev_node is None:
        interior = list(range(0, next_node)) if next_node else []
    elif next_node is None:
        interior = list(range(prev_node + 1, _reference_extent(graph, prev_node)))
    else:
        interior = list(range(prev_node + 1, next_node))

    if not gap:
        # Pure deletion of the skipped reference stretch (if any).
        if interior:
            stats.variants += 1
            if prev_node is not None and next_node is not None:
                graph.add_edge(prev_node, next_node)
        return
    if not interior:
        # Pure insertion between adjacent reference nodes.
        alt = _add_alt_node(graph, gap)
        stats.alt_nodes += 1
        stats.variants += 1
        if prev_node is not None:
            graph.add_edge(prev_node, alt)
        if next_node is not None:
            graph.add_edge(alt, next_node)
        path.append(alt)
        return

    reference_span = sum(len(graph.node(n)) for n in interior)
    divergent = True
    if len(gap) <= max_gap and abs(len(gap) - reference_span) <= max(
        32, int(divergence_threshold * max(len(gap), reference_span))
    ):
        try:
            result = gwfa_align(gap, graph, interior[0], 0, probe=probe)
            stats.gwfa_invocations += 1
            stats.patched_bases += len(gap)
            limit = max(2.0, divergence_threshold * max(len(gap), reference_span))
            divergent = result.distance > limit
            probe.branch(site=1503, taken=divergent)
            if not divergent and result.distance > 0:
                stats.variants += 1
        except AlignmentError:
            divergent = True
    if divergent:
        alt = _add_alt_node(graph, gap)
        stats.alt_nodes += 1
        stats.variants += 1
        if prev_node is not None:
            graph.add_edge(prev_node, alt)
        if next_node is not None:
            graph.add_edge(alt, next_node)
        path.append(alt)
    else:
        # Absorb the small divergence into the reference walk (bias).
        path.extend(interior)


def _reference_extent(graph: SequenceGraph, node_id: int) -> int:
    """One past the last reference-chain node reachable from *node_id*
    by consecutive ids (the chopped reference backbone)."""
    current = node_id
    while graph.has_edge(current, current + 1):
        current += 1
    return current + 1
