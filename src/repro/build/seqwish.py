"""seqwish: transitive closure of match segments and graph induction.

This is the algorithm behind the suite's TC kernel (the paper's
highest-retiring, highest-IPC kernel — Table 6's 3.14).  seqwish
concatenates all input sequences into one coordinate space, indexes the
all-to-all exact-match segments in an implicit interval tree, and then
computes the *transitive closure* of the match relation over sequence
positions: starting from each unseen position it chases matches through
the tree, unioning every reachable position into one closure, with a
seen-bitvector preventing rework.  Each closure becomes one base of the
induced graph; compaction merges unbranching runs of closures into
nodes, and each input sequence threads a path that spells it exactly.

The hot loop — interval-tree stabs feeding a bitvector-guarded
breadth-first chase — is exactly the access pattern the paper
characterizes, and every step reports to the :class:`MachineProbe`:
tree-node visits load tree entries, bitvector tests load/store bit
words, and the union bookkeeping counts as scalar ALU work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backends import SCALAR, VECTORIZED, check_backend
from repro.errors import GraphError
from repro.graph.model import SequenceGraph
from repro.obs import trace
from repro.sequence.records import SequenceRecord
from repro.uarch.events import NULL_PROBE, AddressSpace, MachineProbe, OpClass


@dataclass
class TranscloseStats:
    """Work counters for one transitive-closure run (the TC kernel's
    reported work units)."""

    positions: int = 0
    matches: int = 0
    closures: int = 0
    tree_queries: int = 0
    tree_nodes_visited: int = 0
    bitvector_reads: int = 0
    unions: int = 0


@dataclass
class TranscloseResult:
    """The closed position space.

    Attributes:
        offsets: Record name -> start of that record in the global
            concatenated coordinate space.
        closure_of: Global position -> closure id (closure ids are dense
            and assigned in ascending order of their smallest position).
        closure_base: Closure id -> the single character its members share.
        stats: Work counters.
    """

    offsets: dict[str, int]
    closure_of: list[int]
    closure_base: list[str]
    stats: TranscloseStats


class ImplicitIntervalTree:
    """A static implicit interval tree over half-open match intervals.

    Intervals are sorted by start into a flat array; an implicit binary
    heap over that array stores subtree max-ends, so a point stab walks
    O(log n) heap nodes plus the hits.  This mirrors the cache behaviour
    seqwish gets from its implicit interval tree: mostly-sequential loads
    down one root-to-leaf spine, then a local scan.
    """

    def __init__(self, intervals: list[tuple[int, int, int]],
                 space: AddressSpace) -> None:
        #: (start, end, other_start) sorted by start.
        self.intervals = sorted(intervals)
        self.size = len(self.intervals)
        # Heap over the sorted array: node i covers leaves [lo_i, hi_i).
        self._leaf_base = 1
        while self._leaf_base < max(1, self.size):
            self._leaf_base *= 2
        self._max_end = [0] * (2 * self._leaf_base)
        for index, (_, end, _) in enumerate(self.intervals):
            self._max_end[self._leaf_base + index] = end
        for node in range(self._leaf_base - 1, 0, -1):
            self._max_end[node] = max(self._max_end[2 * node],
                                      self._max_end[2 * node + 1])
        self.base = space.alloc(16 * (2 * self._leaf_base))

    def stab(self, position: int, probe: MachineProbe,
             stats: TranscloseStats,
             acc: "tuple[list[int], list[bool]] | None" = None,
             ) -> list[tuple[int, int, int]]:
        """All intervals containing *position*.

        With *acc* — a ``(load_addresses, prune_outcomes)`` pair — the
        per-node events accumulate there for the caller to flush as one
        block across many stabs; otherwise they flush per call.
        """
        stats.tree_queries += 1
        hits: list[tuple[int, int, int]] = []
        if self.size == 0:
            return hits
        intervals = self.intervals
        max_end = self._max_end
        leaf_base = self._leaf_base
        loads, prunes = acc if acc is not None else ([], [])
        visited = 0
        stack = [1]
        while stack:
            node = stack.pop()
            visited += 1
            loads.append(self.base + 16 * node)
            # Per-node arithmetic: heap index math (2n, 2n+1), the
            # max-end and start comparisons, the leaf test, and the
            # explicit-stack bookkeeping.  The compiled loop falls
            # through on the common descend/scan path; the subtree
            # prune is the rare taken edge, so the branch is strongly
            # biased and the predictor tracks it almost perfectly —
            # this is why seqwish retires instead of speculating.
            pruned = max_end[node] <= position
            prunes.append(pruned)
            if pruned:
                continue
            if node >= leaf_base:
                index = node - leaf_base
                if index < self.size:
                    start, end, other = intervals[index]
                    if start <= position < end:
                        hits.append((start, end, other))
                continue
            # Left subtree always eligible; right subtree only if its
            # leftmost start can still be <= position.
            left = 2 * node
            right = left + 1
            stack.append(left)
            right_first = self._first_leaf(right)
            if right_first < self.size and \
                    intervals[right_first][0] <= position:
                stack.append(right)
        stats.tree_nodes_visited += visited
        if acc is None:
            probe.load_block(loads, 16)
            probe.alu_bulk(OpClass.SCALAR_ALU, 8 * visited)
            probe.branch_trace(1201, prunes)
        return hits

    def _first_leaf(self, node: int) -> int:
        while node < self._leaf_base:
            node *= 2
        return node - self._leaf_base

    def plan_stabs(self, total: int) -> "StabPlan":
        """Precompute every position's stab, bit-identically to :meth:`stab`.

        Stab outcomes depend only on the position, and the closure chase
        stabs each position exactly once, so the whole run's tree events
        can be computed up front.  The trick making this vectorizable:
        both the prune test (``position < max_end``) and the right-child
        push test (``position >= first_start``) constrain positions to a
        prefix/suffix, so the set of positions visiting any node is an
        *interval* ``[lo, hi)`` — one top-down pass over the heap in
        static right-first preorder (the exact DFS pop order) yields
        them, and ragged numpy gathers assemble the per-position visit
        and hit sequences in that same order.
        """
        if self.size == 0 or total == 0:
            empty_off = np.zeros(total + 1, dtype=np.int64)
            empty = np.empty(0, dtype=np.int64)
            return StabPlan(
                visit_loads=empty,
                visit_prunes=np.empty(0, dtype=bool),
                visit_offsets=empty_off,
                hit_partners=empty,
                hit_offsets=empty_off.copy(),
            )
        leaf_base = self._leaf_base
        intervals = self.intervals
        max_end = np.asarray(self._max_end, dtype=np.int64)
        # Visited-position interval per node, walked in right-first
        # preorder (stack pushes left then right, so right pops first —
        # mirroring stab()'s explicit stack).
        lo = np.zeros(2 * leaf_base, dtype=np.int64)
        hi = np.zeros(2 * leaf_base, dtype=np.int64)
        lo[1], hi[1] = 0, total
        preorder: list[int] = []
        stack = [1]
        while stack:
            node = stack.pop()
            if lo[node] >= hi[node]:
                continue
            preorder.append(node)
            if node >= leaf_base:
                continue
            explored_hi = min(int(hi[node]), int(max_end[node]))
            explored_lo = int(lo[node])
            if explored_lo >= explored_hi:
                continue
            left = 2 * node
            right = left + 1
            lo[left], hi[left] = explored_lo, explored_hi
            right_first = self._first_leaf(right)
            if right_first < self.size:
                lo[right] = max(explored_lo, intervals[right_first][0])
                hi[right] = explored_hi
                stack.append(left)
                stack.append(right)
            else:
                stack.append(left)

        nodes = np.asarray(preorder, dtype=np.int64)
        vlo = lo[nodes]
        vhi = hi[nodes]
        positions, rep = _ragged_ranges(vlo, vhi)
        node_rep = np.repeat(nodes, rep)
        order = np.argsort(positions, kind="stable")
        pos_sorted = positions[order]
        node_sorted = node_rep[order]
        visit_counts = np.bincount(pos_sorted, minlength=total)
        visit_offsets = np.zeros(total + 1, dtype=np.int64)
        np.cumsum(visit_counts, out=visit_offsets[1:])
        visit_loads = self.base + 16 * node_sorted
        visit_prunes = max_end[node_sorted] <= pos_sorted

        # Hits: visited leaves with start <= position < end — another
        # interval intersection, gathered in the same preorder order.
        leaf_sel = nodes >= leaf_base
        leaf_index = nodes[leaf_sel] - leaf_base
        in_range = leaf_index < self.size
        leaf_index = leaf_index[in_range]
        if leaf_index.size:
            starts = np.asarray(
                [intervals[int(i)][0] for i in leaf_index], dtype=np.int64
            )
            ends = np.asarray(
                [intervals[int(i)][1] for i in leaf_index], dtype=np.int64
            )
            others = np.asarray(
                [intervals[int(i)][2] for i in leaf_index], dtype=np.int64
            )
            hlo = np.maximum(vlo[leaf_sel][in_range], starts)
            hhi = np.minimum(vhi[leaf_sel][in_range], ends)
            keep = hlo < hhi
            hlo, hhi = hlo[keep], hhi[keep]
            starts, others = starts[keep], others[keep]
            hit_pos, hit_rep = _ragged_ranges(hlo, hhi)
            hit_partner = np.repeat(others - starts, hit_rep) + hit_pos
            horder = np.argsort(hit_pos, kind="stable")
            hit_pos_sorted = hit_pos[horder]
            hit_partners = hit_partner[horder]
            hit_counts = np.bincount(hit_pos_sorted, minlength=total)
        else:
            hit_partners = np.empty(0, dtype=np.int64)
            hit_counts = np.zeros(total, dtype=np.int64)
        hit_offsets = np.zeros(total + 1, dtype=np.int64)
        np.cumsum(hit_counts, out=hit_offsets[1:])
        return StabPlan(
            visit_loads=visit_loads,
            visit_prunes=visit_prunes,
            visit_offsets=visit_offsets,
            hit_partners=hit_partners,
            hit_offsets=hit_offsets,
        )


@dataclass
class StabPlan:
    """Precomputed per-position stab events (see
    :meth:`ImplicitIntervalTree.plan_stabs`), grouped by position:
    position *p*'s visits live at ``visit_offsets[p]:visit_offsets[p+1]``
    in exact DFS order, hits likewise in ``hit_partners``."""

    visit_loads: np.ndarray
    visit_prunes: np.ndarray
    visit_offsets: np.ndarray
    hit_partners: np.ndarray
    hit_offsets: np.ndarray

    def gather_visits(self, order: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Visit (loads, prunes) for positions in stab *order*."""
        idx = _ragged_gather(self.visit_offsets, order)
        return self.visit_loads[idx], self.visit_prunes[idx]

    def gather_hits(self, order: np.ndarray) -> np.ndarray:
        """Hit partners for positions in stab *order*."""
        return self.hit_partners[_ragged_gather(self.hit_offsets, order)]


def _ragged_ranges(lo: np.ndarray, hi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``arange(lo[i], hi[i])`` for all i, plus the lengths."""
    rep = hi - lo
    total = int(rep.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), rep
    seg_start = np.cumsum(rep) - rep
    flat = np.arange(total, dtype=np.int64)
    flat += np.repeat(lo - seg_start, rep)
    return flat, rep


def _ragged_gather(offsets: np.ndarray, order: np.ndarray) -> np.ndarray:
    """Indices selecting each *order* element's ``offsets`` slice, concatenated."""
    starts = offsets[order]
    lengths = offsets[order + 1] - starts
    flat, _ = _ragged_ranges(starts, starts + lengths)
    return flat


def transclose(
    records: list[SequenceRecord],
    matches,
    probe: MachineProbe = NULL_PROBE,
    backend: str = VECTORIZED,
) -> TranscloseResult:
    """Transitively close *matches* over the concatenated *records*.

    Every match segment asserts position-wise equivalence between its
    query and target ranges; the closure unifies each equivalence class
    into one *closure* holding one shared character.  Matches must be
    exact (as :func:`repro.build.wfmash.all_to_all` guarantees); a
    non-exact match raises :class:`GraphError` because it would merge
    different characters into one graph base.
    """
    if not records:
        raise GraphError("transclose needs at least one record")
    check_backend(backend, (SCALAR, VECTORIZED), "transclose", GraphError)
    vectorize = backend == VECTORIZED
    with trace.span("seqwish/intervals"):
        offsets: dict[str, int] = {}
        total = 0
        for record in records:
            if record.name in offsets:
                raise GraphError(f"duplicate record name {record.name!r}")
            offsets[record.name] = total
            total += len(record.sequence)
        text = "".join(record.sequence for record in records)

        stats = TranscloseStats(positions=total, matches=len(matches))
        space = AddressSpace()
        intervals: list[tuple[int, int, int]] = []
        for match in matches:
            if match.length <= 0:
                continue
            q = offsets[match.query_name] + match.query_start
            t = offsets[match.target_name] + match.target_start
            if q + match.length > total or t + match.length > total:
                raise GraphError("match segment out of range")
            # Both orientations of the pairing, so chases are symmetric.
            intervals.append((q, q + match.length, t))
            intervals.append((t, t + match.length, q))
    with trace.span("seqwish/tree"):
        tree = ImplicitIntervalTree(intervals, space)
        # The stab plan is pure tree-phase precomputation (no probe
        # events), so its wall time attributes to seqwish/tree; the
        # events it feeds still flush inside seqwish/closure below.
        plan = tree.plan_stabs(total) if vectorize else None
    bitvector_base = space.alloc(total // 8 + 1)
    closure_base_addr = space.alloc(4 * total)

    seen = bytearray(total)
    closure_of = [-1] * total
    closure_base: list[str] = []
    # The outer sweep scans the seen bitvector one 64-bit word at a
    # time, the way seqwish's sdsl bitvector is actually consumed: one
    # load and a tzcnt-style scan per word, with a single skip branch
    # when every bit in the word is already set.
    # Events buffer in flat lists over the whole sweep and flush as
    # blocks before the closure span closes, so per-phase attribution
    # still sees them inside ``seqwish/closure``.
    with trace.span("seqwish/closure"):
        word_loads: list[int] = []
        word_skips: list[bool] = []
        bit_stores: list[int] = []
        closure_stores: list[int] = []
        partner_loads: list[int] = []
        tree_acc: tuple[list[int], list[bool]] = ([], [])
        stab_order: list[int] = []
        alu_total = 0
        for word_start in range(0, total, 64):
            word_end = min(word_start + 64, total)
            stats.bitvector_reads += word_end - word_start
            word_loads.append(bitvector_base + word_start // 8)
            alu_total += 2
            word_skips.append(all(seen[word_start:word_end]))
            for position in range(word_start, word_end):
                if seen[position]:
                    continue
                # tzcnt + clearing the found bit + global offset math.
                alu_total += 2
                closure_id = len(closure_base)
                base = text[position]
                seen[position] = 1
                bit_stores.append(bitvector_base + position // 8)
                stack = [position]
                while stack:
                    current = stack.pop()
                    closure_of[current] = closure_id
                    closure_stores.append(closure_base_addr + 4 * current)
                    if text[current] != base:
                        raise GraphError(
                            "non-exact match: closure would merge "
                            f"{base!r} with {text[current]!r}"
                        )
                    if plan is not None:
                        stab_order.append(current)
                        hit_slice = plan.hit_partners[
                            plan.hit_offsets[current]:plan.hit_offsets[current + 1]
                        ]
                        for partner in hit_slice.tolist():
                            if not seen[partner]:
                                seen[partner] = 1
                                bit_stores.append(bitvector_base + partner // 8)
                                stack.append(partner)
                        continue
                    alu_total += 2
                    for start, _end, other in tree.stab(
                        current, probe, stats, acc=tree_acc
                    ):
                        partner = other + (current - start)
                        stats.bitvector_reads += 1
                        stats.unions += 1
                        partner_loads.append(bitvector_base + partner // 8)
                        # Branchless union step: bit test, unconditional
                        # OR-write of the mark, and a conditionally-moved
                        # stack cursor bump — no mispredictable branch on
                        # the seen bit (it flips exactly once per
                        # position, the worst case for a predictor).
                        alu_total += 6
                        if not seen[partner]:
                            seen[partner] = 1
                            bit_stores.append(bitvector_base + partner // 8)
                            stack.append(partner)
                closure_base.append(base)
        probe.load_block(word_loads, 8)
        probe.branch_trace(1202, word_skips)
        if plan is not None:
            # Reassemble the tree/partner event stream in exact stab
            # order from the precomputed plan — bit-identical to the
            # per-stab scalar path, including stats.
            order = np.asarray(stab_order, dtype=np.int64)
            tree_loads, tree_prunes = plan.gather_visits(order)
            partners = plan.gather_hits(order)
            n_visits = int(tree_loads.shape[0])
            n_hits = int(partners.shape[0])
            stats.tree_queries += len(stab_order)
            stats.tree_nodes_visited += n_visits
            stats.bitvector_reads += n_hits
            stats.unions += n_hits
            alu_total += 2 * len(stab_order) + 6 * n_hits
            probe.load_block(tree_loads, 16)
            probe.branch_trace(1201, tree_prunes)
            probe.load_block(bitvector_base + partners // 8, 1)
            n_tree_loads = n_visits
        else:
            probe.load_block(tree_acc[0], 16)
            probe.branch_trace(1201, tree_acc[1])
            probe.load_block(partner_loads, 1)
            n_tree_loads = len(tree_acc[0])
        probe.store_block(closure_stores, 4)
        probe.store_block(bit_stores, 1)
        probe.alu_bulk(OpClass.SCALAR_ALU, alu_total + 8 * n_tree_loads)
    stats.closures = len(closure_base)
    return TranscloseResult(
        offsets=offsets,
        closure_of=closure_of,
        closure_base=closure_base,
        stats=stats,
    )


@dataclass
class InduceResult:
    """An induced graph plus the closure it came from."""

    graph: SequenceGraph
    closure: TranscloseResult
    stats: TranscloseStats = field(init=False)

    def __post_init__(self) -> None:
        self.stats = self.closure.stats


def induce_graph(
    records: list[SequenceRecord],
    matches,
    probe: MachineProbe = NULL_PROBE,
    backend: str = VECTORIZED,
) -> InduceResult:
    """Close *matches* and induce the compacted sequence graph.

    One path per input record spells that record exactly (the invariant
    README and the pipeline tests assert).  Compaction merges runs of
    closures that are unbranching *and* never start or end a record —
    so every path enters a node at its first base and leaves at its last.
    """
    closure = transclose(records, matches, probe=probe, backend=backend)
    with trace.span("seqwish/induce"):
        graph = _induce_from_closure(records, closure, probe)
    return InduceResult(graph=graph, closure=closure)


def _induce_from_closure(
    records: list[SequenceRecord],
    closure: TranscloseResult,
    probe: MachineProbe,
) -> SequenceGraph:
    """Compact *closure* into a sequence graph (see :func:`induce_graph`)."""
    closure_of = closure.closure_of
    closure_base = closure.closure_base
    n_closures = len(closure_base)

    # Per-record closure walks, plus the closure-level link structure.
    walks: dict[str, list[int]] = {}
    successors: dict[int, set[int]] = {}
    predecessors: dict[int, set[int]] = {}
    walk_starts: set[int] = set()
    walk_ends: set[int] = set()
    link_ops = 0
    for record in records:
        offset = closure.offsets[record.name]
        walk = closure_of[offset : offset + len(record.sequence)]
        walks[record.name] = walk
        walk_starts.add(walk[0])
        walk_ends.add(walk[-1])
        for source, target in zip(walk, walk[1:]):
            successors.setdefault(source, set()).add(target)
            predecessors.setdefault(target, set()).add(source)
            link_ops += 2
    probe.alu_bulk(OpClass.SCALAR_ALU, link_ops)

    def merges_with_predecessor(closure_id: int) -> bool:
        """True when this closure extends its unique predecessor's node."""
        preds = predecessors.get(closure_id)
        if preds is None or len(preds) != 1:
            return False
        (pred,) = preds
        if pred == closure_id:
            return False
        if successors.get(pred) != {closure_id}:
            return False
        return closure_id not in walk_starts and pred not in walk_ends

    # Chains: maximal unbranching closure runs become graph nodes.
    chain_of: list[int] = [-1] * n_closures
    chain_index: list[int] = [0] * n_closures
    chains: list[list[int]] = []
    merge_branches: list[bool] = []
    member_stores: list[int] = []
    for closure_id in range(n_closures):
        merged = merges_with_predecessor(closure_id)
        merge_branches.append(merged)
        if merged:
            continue
        chain = [closure_id]
        current = closure_id
        while True:
            nexts = successors.get(current)
            if nexts is None or len(nexts) != 1:
                break
            (candidate,) = nexts
            if not merges_with_predecessor(candidate):
                break
            chain.append(candidate)
            current = candidate
        chain_id = len(chains)
        for index, member in enumerate(chain):
            chain_of[member] = chain_id
            chain_index[member] = index
            member_stores.append((1 << 24) + 8 * member)
        chains.append(chain)
    probe.branch_trace(1204, merge_branches)
    probe.store_block(member_stores, 8)

    graph = SequenceGraph()
    for chain_id, chain in enumerate(chains):
        graph.add_node(chain_id, "".join(closure_base[c] for c in chain))
    for source, targets in successors.items():
        source_chain = chain_of[source]
        for target in targets:
            target_chain = chain_of[target]
            # Internal chain adjacencies are already merged into one node.
            if source_chain == target_chain and \
                    chain_index[target] == chain_index[source] + 1:
                continue
            graph.add_edge(source_chain, target_chain)

    for record in records:
        walk = walks[record.name]
        steps: list[int] = []
        position = 0
        while position < len(walk):
            chain_id = chain_of[walk[position]]
            steps.append(chain_id)
            position += len(chains[chain_id]) - chain_index[walk[position]]
        graph.add_path(record.name, steps)
    return graph
