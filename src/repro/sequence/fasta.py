"""Minimal FASTA / FASTQ reading and writing.

Only the features the benchmark suite needs: multi-record FASTA with
wrapped lines, and 4-line FASTQ.  Everything round-trips through
:class:`~repro.sequence.records.SequenceRecord` and
:class:`~repro.sequence.records.Read`.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.errors import SequenceError
from repro.sequence.records import Read, SequenceRecord

_PHRED_OFFSET = 33


def _open_text(source: str | Path | TextIO) -> tuple[TextIO, bool]:
    """Return (handle, should_close) for a path or an open text handle."""
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="ascii"), True
    return source, False


def parse_fasta(source: str | Path | TextIO) -> Iterator[SequenceRecord]:
    """Yield :class:`SequenceRecord` objects from FASTA *source*.

    Accepts a path or an open text handle.  Sequence lines may be wrapped.
    """
    handle, should_close = _open_text(source)
    try:
        name = ""
        description = ""
        chunks: list[str] = []
        for line_number, raw in enumerate(handle, start=1):
            line = raw.rstrip("\n")
            if not line:
                continue
            if line.startswith(">"):
                if name:
                    yield SequenceRecord(name, "".join(chunks).upper(), description)
                header = line[1:].strip()
                if not header:
                    raise SequenceError(f"line {line_number}: empty FASTA header")
                name, _, description = header.partition(" ")
                chunks = []
            else:
                if not name:
                    raise SequenceError(
                        f"line {line_number}: sequence data before any FASTA header"
                    )
                chunks.append(line.strip())
        if name:
            yield SequenceRecord(name, "".join(chunks).upper(), description)
    finally:
        if should_close:
            handle.close()


def read_fasta(source: str | Path | TextIO) -> list[SequenceRecord]:
    """Read all FASTA records from *source* into a list."""
    return list(parse_fasta(source))


def write_fasta(
    records: Iterable[SequenceRecord],
    destination: str | Path | TextIO,
    line_width: int = 80,
) -> None:
    """Write *records* to *destination* in FASTA format."""
    if line_width <= 0:
        raise SequenceError("line_width must be positive")
    handle: TextIO
    if isinstance(destination, (str, Path)):
        handle = open(destination, "w", encoding="ascii")
        should_close = True
    else:
        handle = destination
        should_close = False
    try:
        for record in records:
            header = record.name
            if record.description:
                header = f"{header} {record.description}"
            handle.write(f">{header}\n")
            seq = record.sequence
            for offset in range(0, len(seq), line_width):
                handle.write(seq[offset : offset + line_width] + "\n")
    finally:
        if should_close:
            handle.close()


def fasta_string(records: Iterable[SequenceRecord], line_width: int = 80) -> str:
    """Render *records* as a FASTA string."""
    buffer = io.StringIO()
    write_fasta(records, buffer, line_width=line_width)
    return buffer.getvalue()


def parse_fastq(source: str | Path | TextIO) -> Iterator[Read]:
    """Yield :class:`Read` objects from 4-line FASTQ *source*."""
    handle, should_close = _open_text(source)
    try:
        while True:
            header = handle.readline()
            if not header:
                return
            header = header.rstrip("\n")
            if not header.startswith("@"):
                raise SequenceError(f"FASTQ header must start with '@': {header!r}")
            sequence = handle.readline().rstrip("\n")
            plus = handle.readline().rstrip("\n")
            quality = handle.readline().rstrip("\n")
            if not plus.startswith("+"):
                raise SequenceError(f"FASTQ separator must start with '+': {plus!r}")
            if len(quality) != len(sequence):
                raise SequenceError(
                    f"FASTQ quality length {len(quality)} != sequence length "
                    f"{len(sequence)} for read {header[1:]!r}"
                )
            name = header[1:].split(" ", 1)[0]
            phred = tuple(ord(ch) - _PHRED_OFFSET for ch in quality)
            yield Read(name=name, sequence=sequence.upper(), quality=phred)
    finally:
        if should_close:
            handle.close()


def write_fastq(reads: Iterable[Read], destination: str | Path | TextIO) -> None:
    """Write *reads* to *destination* in 4-line FASTQ format.

    Reads without qualities get a constant Q30 string.
    """
    if isinstance(destination, (str, Path)):
        handle = open(destination, "w", encoding="ascii")
        should_close = True
    else:
        handle = destination
        should_close = False
    try:
        for read in reads:
            quality = read.quality or tuple([30] * len(read.sequence))
            quality_string = "".join(chr(q + _PHRED_OFFSET) for q in quality)
            handle.write(f"@{read.name}\n{read.sequence}\n+\n{quality_string}\n")
    finally:
        if should_close:
            handle.close()
