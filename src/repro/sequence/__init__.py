"""Sequence substrate: alphabet, records, FASTA/FASTQ, variants, simulators."""

from repro.sequence.alphabet import (
    complement,
    decode,
    encode,
    gc_content,
    hamming_distance,
    is_dna,
    pack_2bit,
    reverse_complement,
    unpack_2bit,
    validate_dna,
)
from repro.sequence.fasta import (
    fasta_string,
    parse_fasta,
    parse_fastq,
    read_fasta,
    write_fasta,
    write_fastq,
)
from repro.sequence.mutate import (
    Variant,
    VariantRates,
    VariantType,
    apply_variants,
    sample_variants,
)
from repro.sequence.records import Read, ReadSet, SequenceRecord
from repro.sequence.simulate import (
    HIFI,
    ILLUMINA,
    Pangenome,
    ReadProfile,
    ReadSimulator,
    random_genome,
    simulate_pangenome,
    simulate_reads,
)

__all__ = [
    "complement", "decode", "encode", "gc_content", "hamming_distance",
    "is_dna", "pack_2bit", "reverse_complement", "unpack_2bit", "validate_dna",
    "fasta_string", "parse_fasta", "parse_fastq", "read_fasta", "write_fasta",
    "write_fastq",
    "Variant", "VariantRates", "VariantType", "apply_variants", "sample_variants",
    "Read", "ReadSet", "SequenceRecord",
    "HIFI", "ILLUMINA", "Pangenome", "ReadProfile", "ReadSimulator",
    "random_genome", "simulate_pangenome", "simulate_reads",
]
