"""DNA alphabet utilities: validation, encoding, and complementation.

The whole library works on uppercase ``A C G T`` strings (``N`` is accepted
on input and resolved or rejected depending on the caller).  A 2-bit
encoding is provided for kernels that model packed representations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SequenceError

DNA_BASES = "ACGT"
DNA_SET = frozenset(DNA_BASES)
DNA_WITH_N = frozenset(DNA_BASES + "N")

#: Base -> 2-bit code used across the library (A=0, C=1, G=2, T=3).
BASE_TO_CODE = {base: code for code, base in enumerate(DNA_BASES)}
CODE_TO_BASE = {code: base for base, code in BASE_TO_CODE.items()}

_COMPLEMENT = str.maketrans("ACGTN", "TGCAN")

# Lookup table from ASCII byte to 2-bit code; 255 marks invalid bytes.
_ENCODE_TABLE = np.full(256, 255, dtype=np.uint8)
for _base, _code in BASE_TO_CODE.items():
    _ENCODE_TABLE[ord(_base)] = _code
    _ENCODE_TABLE[ord(_base.lower())] = _code


def is_dna(sequence: str, allow_n: bool = False) -> bool:
    """Return True if *sequence* consists only of uppercase DNA bases."""
    allowed = DNA_WITH_N if allow_n else DNA_SET
    return all(ch in allowed for ch in sequence)


def validate_dna(sequence: str, allow_n: bool = False, name: str = "sequence") -> str:
    """Return *sequence* if it is valid DNA, else raise :class:`SequenceError`."""
    if not sequence:
        raise SequenceError(f"{name} is empty")
    if not is_dna(sequence, allow_n=allow_n):
        bad = sorted({ch for ch in sequence if ch not in DNA_WITH_N})
        raise SequenceError(f"{name} contains invalid characters: {bad!r}")
    return sequence


def complement(sequence: str) -> str:
    """Return the complement of *sequence* (N maps to N)."""
    return sequence.translate(_COMPLEMENT)


def reverse_complement(sequence: str) -> str:
    """Return the reverse complement of *sequence*."""
    return complement(sequence)[::-1]


def encode(sequence: str) -> np.ndarray:
    """Encode DNA into a ``uint8`` array of 2-bit codes (A=0 C=1 G=2 T=3).

    Raises :class:`SequenceError` on characters outside ``ACGTacgt``.
    """
    raw = np.frombuffer(sequence.encode("ascii"), dtype=np.uint8)
    codes = _ENCODE_TABLE[raw]
    if (codes == 255).any():
        bad_positions = np.nonzero(codes == 255)[0]
        raise SequenceError(
            f"cannot 2-bit encode character {sequence[bad_positions[0]]!r} "
            f"at position {int(bad_positions[0])}"
        )
    return codes


def decode(codes: np.ndarray) -> str:
    """Decode a 2-bit code array back into a DNA string."""
    if len(codes) == 0:
        return ""
    if codes.min() < 0 or codes.max() > 3:
        raise SequenceError("codes out of range for 2-bit DNA decoding")
    return "".join(CODE_TO_BASE[int(code)] for code in codes)


def pack_2bit(sequence: str) -> tuple[np.ndarray, int]:
    """Pack DNA into a little-endian 2-bit-per-base ``uint64`` array.

    Returns ``(words, length)`` where base ``i`` occupies bits
    ``2*(i % 32)`` of word ``i // 32``.  This mirrors the packed
    representations used by the bit-parallel kernels.
    """
    codes = encode(sequence)
    length = len(codes)
    n_words = (length + 31) // 32
    words = np.zeros(n_words, dtype=np.uint64)
    for i, code in enumerate(codes):
        words[i // 32] |= np.uint64(int(code)) << np.uint64(2 * (i % 32))
    return words, length


def unpack_2bit(words: np.ndarray, length: int) -> str:
    """Inverse of :func:`pack_2bit`."""
    bases = []
    for i in range(length):
        word = int(words[i // 32])
        code = (word >> (2 * (i % 32))) & 0x3
        bases.append(CODE_TO_BASE[code])
    return "".join(bases)


def gc_content(sequence: str) -> float:
    """Fraction of G/C bases in *sequence* (0.0 for the empty string)."""
    if not sequence:
        return 0.0
    gc = sum(1 for ch in sequence if ch in "GC")
    return gc / len(sequence)


def hamming_distance(a: str, b: str) -> int:
    """Hamming distance between equal-length sequences."""
    if len(a) != len(b):
        raise SequenceError("hamming_distance requires equal-length sequences")
    return sum(1 for x, y in zip(a, b) if x != y)
