"""Sequence record types shared across the library.

A :class:`SequenceRecord` is a named DNA sequence (an assembly, a contig, a
haplotype).  A :class:`Read` is a sequencing read sampled from some truth
sequence, carrying its provenance for accuracy evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SequenceError
from repro.sequence.alphabet import reverse_complement, validate_dna


@dataclass(frozen=True)
class SequenceRecord:
    """A named DNA sequence.

    Attributes:
        name: Unique identifier (FASTA header token).
        sequence: Uppercase DNA string.
        description: Optional free-form description (rest of FASTA header).
    """

    name: str
    sequence: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SequenceError("sequence record needs a non-empty name")
        validate_dna(self.sequence, allow_n=True, name=f"record {self.name!r}")

    def __len__(self) -> int:
        return len(self.sequence)

    def subsequence(self, start: int, end: int, name: str | None = None) -> "SequenceRecord":
        """Return records[start:end] as a new record (half-open interval)."""
        if not 0 <= start <= end <= len(self.sequence):
            raise SequenceError(
                f"invalid slice [{start}, {end}) of record {self.name!r} "
                f"with length {len(self.sequence)}"
            )
        return SequenceRecord(
            name=name or f"{self.name}:{start}-{end}",
            sequence=self.sequence[start:end],
            description=self.description,
        )

    def reverse_complement(self) -> "SequenceRecord":
        """Return the reverse-complement record, suffixing the name."""
        return SequenceRecord(
            name=f"{self.name}_rc",
            sequence=reverse_complement(self.sequence),
            description=self.description,
        )


@dataclass(frozen=True)
class Read:
    """A simulated sequencing read with provenance.

    Attributes:
        name: Read identifier.
        sequence: Read bases as sequenced (errors included).
        truth_name: Name of the source sequence the read was sampled from.
        truth_start: 0-based start of the sampled window on the source.
        truth_end: End (exclusive) of the sampled window.
        is_reverse: True if the read is the reverse complement of the window.
        quality: Optional per-base Phred qualities.
    """

    name: str
    sequence: str
    truth_name: str = ""
    truth_start: int = -1
    truth_end: int = -1
    is_reverse: bool = False
    quality: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise SequenceError("read needs a non-empty name")
        validate_dna(self.sequence, allow_n=True, name=f"read {self.name!r}")
        if self.quality and len(self.quality) != len(self.sequence):
            raise SequenceError(
                f"read {self.name!r}: quality length {len(self.quality)} "
                f"does not match sequence length {len(self.sequence)}"
            )

    def __len__(self) -> int:
        return len(self.sequence)

    @property
    def has_provenance(self) -> bool:
        """True if the read records where it was sampled from."""
        return bool(self.truth_name) and self.truth_start >= 0


@dataclass(frozen=True)
class ReadSet:
    """An immutable collection of reads with summary statistics."""

    reads: tuple[Read, ...]

    def __len__(self) -> int:
        return len(self.reads)

    def __iter__(self):
        return iter(self.reads)

    def __getitem__(self, index: int) -> Read:
        return self.reads[index]

    @property
    def total_bases(self) -> int:
        return sum(len(read) for read in self.reads)

    @property
    def mean_length(self) -> float:
        if not self.reads:
            return 0.0
        return self.total_bases / len(self.reads)

    def coverage(self, genome_length: int) -> float:
        """Sequencing depth over a genome of *genome_length* bases."""
        if genome_length <= 0:
            raise SequenceError("genome_length must be positive")
        return self.total_bases / genome_length
