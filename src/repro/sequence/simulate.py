"""Synthetic genomes, pangenome populations, and sequencing reads.

The paper evaluates on HG002 reads mapped against the HPRC chromosome-20
pangenome.  We have no access to those multi-gigabyte datasets, so this
module generates the closest synthetic equivalents: an ancestral genome,
a population of haplotypes diverged from it by a typed variant model, and
reads with Illumina-like and PacBio-HiFi-like profiles (lengths and error
rates taken from Section 4.2 of the paper).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import SequenceError
from repro.sequence.alphabet import DNA_BASES, reverse_complement
from repro.sequence.mutate import VariantRates, apply_variants, sample_variants
from repro.sequence.records import Read, ReadSet, SequenceRecord


def random_genome(length: int, seed: int = 0, gc: float = 0.41) -> SequenceRecord:
    """Generate a random genome of *length* bases with GC fraction *gc*.

    GC defaults to the human genome-wide average.  Runs of low-complexity
    sequence are injected at a low rate so minimizer density varies like
    it does on real genomes.
    """
    if length <= 0:
        raise SequenceError("genome length must be positive")
    if not 0.0 < gc < 1.0:
        raise SequenceError("gc must be in (0, 1)")
    rng = random.Random(seed)
    at_each = (1.0 - gc) / 2.0
    gc_each = gc / 2.0
    weights = [at_each, gc_each, gc_each, at_each]  # A C G T
    bases: list[str] = []
    while len(bases) < length:
        if rng.random() < 0.002 and length - len(bases) > 50:
            # Low-complexity run: short tandem repeat of a random 1-4mer.
            unit = "".join(rng.choice(DNA_BASES) for _ in range(rng.randint(1, 4)))
            copies = rng.randint(5, 25)
            bases.extend((unit * copies)[: length - len(bases)])
        else:
            bases.append(rng.choices(DNA_BASES, weights=weights)[0])
    return SequenceRecord("ancestor", "".join(bases[:length]))


@dataclass(frozen=True)
class Pangenome:
    """A synthetic population: an ancestor and diverged haplotypes.

    Attributes:
        ancestor: The ancestral reference the haplotypes diverged from.
        haplotypes: The population of assembled haplotype sequences.
    """

    ancestor: SequenceRecord
    haplotypes: tuple[SequenceRecord, ...]

    @property
    def records(self) -> list[SequenceRecord]:
        """All sequences, ancestor first (the usual graph-building input)."""
        return [self.ancestor, *self.haplotypes]

    def __len__(self) -> int:
        return len(self.haplotypes)


def simulate_pangenome(
    genome_length: int = 20_000,
    n_haplotypes: int = 8,
    seed: int = 0,
    rates: VariantRates | None = None,
) -> Pangenome:
    """Simulate a pangenome population.

    Each haplotype gets an independent variant set against the shared
    ancestor, so pairs of haplotypes share the ancestor's backbone but
    differ at their private variant sites — the same structure that makes
    real pangenome graphs mostly-linear with local bubbles.
    """
    if n_haplotypes < 1:
        raise SequenceError("need at least one haplotype")
    ancestor = random_genome(genome_length, seed=seed)
    rates = rates or VariantRates()
    haplotypes = []
    for index in range(n_haplotypes):
        rng = random.Random(f"{seed}-haplotype-{index}")
        variants = sample_variants(ancestor.sequence, rates=rates, rng=rng)
        sequence = apply_variants(ancestor.sequence, variants)
        haplotypes.append(SequenceRecord(f"hap{index}", sequence))
    return Pangenome(ancestor=ancestor, haplotypes=tuple(haplotypes))


@dataclass(frozen=True)
class ReadProfile:
    """A sequencing technology profile.

    Attributes:
        name: Profile label.
        mean_length: Mean read length in bases.
        length_sd: Standard deviation of read length (0 for fixed-length).
        substitution_rate: Per-base substitution error probability.
        insertion_rate: Per-base insertion error probability.
        deletion_rate: Per-base deletion error probability.
    """

    name: str
    mean_length: int
    length_sd: int
    substitution_rate: float
    insertion_rate: float
    deletion_rate: float

    @property
    def error_rate(self) -> float:
        return self.substitution_rate + self.insertion_rate + self.deletion_rate


#: Illumina HiSeq-like short reads (150 bp, as in Table 2).
ILLUMINA = ReadProfile("illumina", mean_length=150, length_sd=0,
                       substitution_rate=0.002, insertion_rate=0.0001,
                       deletion_rate=0.0001)

#: PacBio HiFi-like long reads (~15 kbp mean, ~1% error, as in Table 2/4.2).
HIFI = ReadProfile("hifi", mean_length=15_000, length_sd=3_000,
                   substitution_rate=0.004, insertion_rate=0.003,
                   deletion_rate=0.003)


@dataclass
class ReadSimulator:
    """Samples error-bearing reads from a truth sequence.

    Attributes:
        profile: The sequencing technology profile.
        seed: RNG seed; every simulator with the same seed and inputs
            produces the same reads.
    """

    profile: ReadProfile
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(f"{self.seed}-{self.profile.name}")

    def simulate(
        self,
        truth: SequenceRecord,
        n_reads: int | None = None,
        coverage: float | None = None,
        both_strands: bool = True,
    ) -> ReadSet:
        """Sample reads from *truth*.

        Exactly one of *n_reads* and *coverage* must be given; coverage is
        converted to a read count with the profile's mean length.
        """
        if (n_reads is None) == (coverage is None):
            raise SequenceError("specify exactly one of n_reads / coverage")
        if coverage is not None:
            n_reads = max(1, round(coverage * len(truth) / self.profile.mean_length))
        assert n_reads is not None
        reads = [self._one_read(truth, index, both_strands) for index in range(n_reads)]
        return ReadSet(tuple(reads))

    def _one_read(self, truth: SequenceRecord, index: int, both_strands: bool) -> Read:
        length = self._sample_length(len(truth))
        start = self._rng.randrange(0, len(truth) - length + 1)
        window = truth.sequence[start : start + length]
        is_reverse = both_strands and self._rng.random() < 0.5
        if is_reverse:
            window = reverse_complement(window)
        sequence = self._apply_errors(window)
        return Read(
            name=f"{truth.name}_read{index}",
            sequence=sequence,
            truth_name=truth.name,
            truth_start=start,
            truth_end=start + length,
            is_reverse=is_reverse,
        )

    def _sample_length(self, truth_length: int) -> int:
        if self.profile.length_sd == 0:
            length = self.profile.mean_length
        else:
            length = round(self._rng.gauss(self.profile.mean_length, self.profile.length_sd))
        length = max(20, min(length, truth_length))
        return length

    def _apply_errors(self, window: str) -> str:
        out: list[str] = []
        for base in window:
            roll = self._rng.random()
            if roll < self.profile.deletion_rate:
                continue
            if roll < self.profile.deletion_rate + self.profile.insertion_rate:
                out.append(self._rng.choice(DNA_BASES))
                out.append(base)
            elif roll < self.profile.error_rate:
                out.append(self._rng.choice([b for b in DNA_BASES if b != base]))
            else:
                out.append(base)
        if not out:
            out.append(window[0])
        return "".join(out)


def simulate_reads(
    truth: SequenceRecord,
    profile: ReadProfile = ILLUMINA,
    n_reads: int | None = None,
    coverage: float | None = None,
    seed: int = 0,
) -> ReadSet:
    """Convenience wrapper around :class:`ReadSimulator`."""
    return ReadSimulator(profile, seed=seed).simulate(truth, n_reads=n_reads, coverage=coverage)
