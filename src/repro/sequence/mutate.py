"""Variant model: typed variants applied to a reference sequence.

A pangenome is synthesized by sampling a set of :class:`Variant` objects
against an ancestral reference and applying a subset of them to each
haplotype.  Variants use reference coordinates (0-based, end-exclusive for
deletions); application resolves coordinate shifts by applying right-to-left.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

from repro.errors import SequenceError
from repro.sequence.alphabet import DNA_BASES, reverse_complement, validate_dna


class VariantType(Enum):
    """Kinds of variation supported by the synthesizer."""

    SNP = "snp"
    INSERTION = "insertion"
    DELETION = "deletion"
    INVERSION = "inversion"
    DUPLICATION = "duplication"


@dataclass(frozen=True)
class Variant:
    """A single variant against a reference sequence.

    Attributes:
        kind: The variant type.
        position: 0-based reference position where the variant applies.
        ref: Reference allele (bases consumed on the reference).
        alt: Alternate allele (bases produced on the haplotype).
    """

    kind: VariantType
    position: int
    ref: str
    alt: str

    def __post_init__(self) -> None:
        if self.position < 0:
            raise SequenceError("variant position must be non-negative")
        if self.ref:
            validate_dna(self.ref, name="variant ref allele")
        if self.alt:
            validate_dna(self.alt, name="variant alt allele")
        if not self.ref and not self.alt:
            raise SequenceError("variant must change at least one base")

    @property
    def end(self) -> int:
        """Reference position just past the consumed bases."""
        return self.position + len(self.ref)

    @property
    def length_delta(self) -> int:
        """Haplotype length change introduced by this variant."""
        return len(self.alt) - len(self.ref)


def _non_overlapping(variants: Sequence[Variant]) -> list[Variant]:
    """Return variants sorted by position with overlapping ones dropped."""
    kept: list[Variant] = []
    last_end = -1
    for variant in sorted(variants, key=lambda v: (v.position, v.end)):
        if variant.position >= last_end:
            kept.append(variant)
            last_end = max(last_end, variant.end)
    return kept


def apply_variants(reference: str, variants: Iterable[Variant]) -> str:
    """Apply *variants* to *reference* and return the mutated haplotype.

    Overlapping variants are resolved by keeping the first in position
    order.  Variants extending past the reference end are rejected.
    """
    ordered = _non_overlapping(list(variants))
    for variant in ordered:
        if variant.end > len(reference):
            raise SequenceError(
                f"variant at {variant.position} extends past reference end "
                f"({variant.end} > {len(reference)})"
            )
        actual = reference[variant.position : variant.end]
        if variant.ref and actual != variant.ref:
            raise SequenceError(
                f"variant ref allele {variant.ref!r} does not match reference "
                f"{actual!r} at position {variant.position}"
            )
    pieces: list[str] = []
    cursor = 0
    for variant in ordered:
        pieces.append(reference[cursor : variant.position])
        pieces.append(variant.alt)
        cursor = variant.end
    pieces.append(reference[cursor:])
    return "".join(pieces)


@dataclass(frozen=True)
class VariantRates:
    """Per-base probabilities used when sampling a variant set.

    The defaults approximate human inter-haplotype divergence scaled up
    slightly so that small synthetic genomes still produce interesting
    graphs (the paper's graphs average ~27 bp per node).
    """

    snp: float = 0.01
    insertion: float = 0.0015
    deletion: float = 0.0015
    inversion: float = 0.0001
    duplication: float = 0.0001
    indel_mean_length: float = 3.0
    sv_mean_length: float = 120.0

    def total(self) -> float:
        return self.snp + self.insertion + self.deletion + self.inversion + self.duplication


def sample_variants(
    reference: str,
    rates: VariantRates | None = None,
    rng: random.Random | None = None,
) -> list[Variant]:
    """Sample a non-overlapping variant set against *reference*.

    The number of variants is Poisson-like: each position independently
    seeds a variant with probability ``rates.total()``; types are chosen
    proportionally to their individual rates.
    """
    rates = rates or VariantRates()
    rng = rng or random.Random(0)
    total = rates.total()
    if total <= 0:
        return []
    weights = [rates.snp, rates.insertion, rates.deletion, rates.inversion, rates.duplication]
    kinds = [
        VariantType.SNP,
        VariantType.INSERTION,
        VariantType.DELETION,
        VariantType.INVERSION,
        VariantType.DUPLICATION,
    ]
    n_sites = max(0, int(rng.gauss(total * len(reference), max(1.0, (total * len(reference)) ** 0.5))))
    variants: list[Variant] = []
    for _ in range(n_sites):
        position = rng.randrange(len(reference))
        kind = rng.choices(kinds, weights=weights)[0]
        variant = _make_variant(reference, kind, position, rates, rng)
        if variant is not None:
            variants.append(variant)
    return _non_overlapping(variants)


def _geometric_length(mean: float, rng: random.Random) -> int:
    """Sample a geometric length with the given mean, at least 1."""
    if mean <= 1.0:
        return 1
    p = 1.0 / mean
    length = 1
    while rng.random() > p and length < int(mean * 10):
        length += 1
    return length


def _random_bases(length: int, rng: random.Random) -> str:
    return "".join(rng.choice(DNA_BASES) for _ in range(length))


def _make_variant(
    reference: str,
    kind: VariantType,
    position: int,
    rates: VariantRates,
    rng: random.Random,
) -> Variant | None:
    """Build a concrete variant of *kind* at *position*, or None if it
    would not fit on the reference."""
    ref_base = reference[position]
    if kind is VariantType.SNP:
        alternatives = [base for base in DNA_BASES if base != ref_base]
        return Variant(kind, position, ref_base, rng.choice(alternatives))
    if kind is VariantType.INSERTION:
        length = _geometric_length(rates.indel_mean_length, rng)
        return Variant(kind, position, ref_base, ref_base + _random_bases(length, rng))
    if kind is VariantType.DELETION:
        length = _geometric_length(rates.indel_mean_length, rng)
        end = min(position + 1 + length, len(reference))
        if end - position < 2:
            return None
        return Variant(kind, position, reference[position:end], ref_base)
    if kind is VariantType.INVERSION:
        length = max(8, _geometric_length(rates.sv_mean_length, rng))
        end = min(position + length, len(reference))
        if end - position < 8:
            return None
        segment = reference[position:end]
        return Variant(kind, position, segment, reverse_complement(segment))
    if kind is VariantType.DUPLICATION:
        length = max(8, _geometric_length(rates.sv_mean_length, rng))
        end = min(position + length, len(reference))
        if end - position < 8:
            return None
        segment = reference[position:end]
        return Variant(kind, position, segment, segment + segment)
    raise SequenceError(f"unknown variant kind {kind!r}")
