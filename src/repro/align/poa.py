"""Partial order alignment (POA) and its adaptive-banded variant.

POA aligns a sequence against a DAG of previously aligned sequences and
fuses the alignment back into the DAG; iterating over a set of sequences
yields a consensus.  The paper meets POA twice in graph building
(Section 2.2): Cactus's graph induction is constrained by abPOA (the
adaptive-banded variant) and smoothxg's polishing spends ~80% of its
time in POA.

The implementation uses unit-ish linear gap scores with full traceback;
:func:`abpoa_align` restricts each row to an adaptive band around the
previous row's maximum, trading exactness for the banded work profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends import SCALAR, VECTORIZED, check_backend
from repro.errors import AlignmentError
from repro.uarch.events import NULL_PROBE, MachineProbe, OpClass

_NEG_INF = float("-inf")


@dataclass
class _PoaNode:
    base: str
    weight: int
    predecessors: list[int]
    successors: list[int]


@dataclass(frozen=True)
class PoaAlignment:
    """Alignment of a sequence to the POA graph.

    ``pairs`` holds (node_index or None, sequence_index or None) columns:
    (n, s) match/mismatch, (n, None) node skipped (deletion),
    (None, s) inserted base.
    """

    score: float
    pairs: tuple[tuple[int | None, int | None], ...]
    cells_computed: int


class PoaGraph:
    """A partial-order alignment graph built incrementally from sequences."""

    def __init__(
        self,
        match: int = 2,
        mismatch: int = 4,
        gap: int = 4,
        probe: MachineProbe = NULL_PROBE,
        backend: str = VECTORIZED,
    ) -> None:
        if match <= 0 or mismatch < 0 or gap <= 0:
            raise AlignmentError("invalid POA scores")
        check_backend(backend, (SCALAR, VECTORIZED), "PoaGraph",
                      AlignmentError)
        self.match = match
        self.mismatch = mismatch
        self.gap = gap
        self.probe = probe
        self.backend = backend
        self.vectorize = backend == VECTORIZED
        self._nodes: list[_PoaNode] = []
        self.sequences_added = 0
        self.cells_computed = 0

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def node_base(self, index: int) -> str:
        return self._nodes[index].base

    def add_sequence(self, sequence: str, band: int | None = None) -> PoaAlignment | None:
        """Align *sequence* to the graph and fuse it in.

        Returns the alignment (None for the first sequence).  With *band*
        set, rows are restricted to an adaptive band of that half-width
        around the previous row's best column (abPOA).
        """
        if not sequence:
            raise AlignmentError("empty sequence")
        if not self._nodes:
            previous = None
            for offset, base in enumerate(sequence):
                self._nodes.append(_PoaNode(base, 1, [], []))
                if previous is not None:
                    self._link(previous, offset)
                previous = offset
            self.sequences_added += 1
            return None
        alignment = self.align(sequence, band=band)
        self._fuse(sequence, alignment)
        self.sequences_added += 1
        return alignment

    def align(self, sequence: str, band: int | None = None) -> PoaAlignment:
        """Global-ish alignment of *sequence* to the graph (free start/end
        rows in the graph direction, global in the sequence)."""
        order = self._topological_order()
        m = len(sequence)
        probe = self.probe
        vec = self.vectorize
        # scores[node][j]; row -1 is the virtual origin row.
        origin: list[float] | np.ndarray
        if vec:
            origin = -float(self.gap) * np.arange(m + 1, dtype=np.float64)
            seq_codes = np.frombuffer(sequence.encode("ascii"), dtype=np.uint8)
            load_blocks: list[np.ndarray] = []
        else:
            origin = [0.0] + [-(self.gap) * j for j in range(1, m + 1)]
        scores: dict[int, list[float] | np.ndarray] = {}
        trace: dict[int, list[tuple[int, int]]] = {}  # (pred_node or -1, move)
        # moves: 0 diag, 1 up (graph gap), 2 left (sequence gap)
        windows: dict[int, tuple[int, int]] = {}
        cells = 0
        for node_index in order:
            node = self._nodes[node_index]
            predecessors = [p for p in node.predecessors]
            if band is None:
                lo, hi = 1, m
            else:
                if predecessors:
                    centers = [windows[p] for p in predecessors if p in windows]
                    lo = max(1, min(c[0] for c in centers))
                    hi = min(m, max(c[1] for c in centers) + 1)
                else:
                    lo, hi = 1, min(m, 2 * band + 1)
            sources = predecessors or [-1]
            best_first = max(
                (origin[0] if p == -1 else scores[p][0]) for p in sources
            )
            best_pred_0 = max(sources, key=lambda p: origin[0] if p == -1 else scores[p][0])
            if vec:
                row, row_trace = self._row_vec(
                    node_index, node, sources, seq_codes,
                    origin, scores, lo, hi, m,
                    best_first - self.gap, load_blocks,
                )
                row_trace[0] = (best_pred_0, 1)
                cells += max(0, hi - lo + 1)
                scores[node_index] = row
                trace[node_index] = row_trace
                best_j = int(np.argmax(row))
            else:
                row = [_NEG_INF] * (m + 1)
                row_trace = [(-2, -2)] * (m + 1)
                row[0] = best_first - self.gap
                row_trace[0] = (best_pred_0, 1)
                for j in range(lo, hi + 1):
                    cells += 1
                    probe.alu(OpClass.SCALAR_ALU, 6)
                    best = _NEG_INF
                    best_move = (-2, -2)
                    sub = self.match if node.base == sequence[j - 1] else -self.mismatch
                    for p in sources:
                        p_row = origin if p == -1 else scores[p]
                        probe.load((p + 2) * 4096 + j * 4, 4)
                        diag = p_row[j - 1] + sub
                        if diag > best:
                            best = diag
                            best_move = (p, 0)
                        up = p_row[j] - self.gap
                        if up > best:
                            best = up
                            best_move = (p, 1)
                    left = row[j - 1] - self.gap
                    if left > best:
                        best = left
                        best_move = (node_index, 2)
                    row[j] = best
                    row_trace[j] = best_move
                scores[node_index] = row
                trace[node_index] = row_trace
                finite = [j for j in range(m + 1) if row[j] > _NEG_INF]
                best_j = max(finite, key=lambda j: row[j])
            if band is not None:
                windows[node_index] = (max(1, best_j - band), min(m, best_j + band))
        self.cells_computed += cells
        if vec:
            # One block per align() call: same addresses and op totals as
            # the per-cell reference, coarser interleaving.
            if load_blocks:
                probe.load_block(np.concatenate(load_blocks), 4)
            probe.alu_bulk(OpClass.SCALAR_ALU, 6 * cells)

        # Best end: highest score at j = m over all sink-ish nodes (free
        # end in the graph direction: any node may end the alignment).
        end_node = max(scores, key=lambda n: scores[n][m])
        pairs = self._traceback(sequence, scores, trace, end_node, origin)
        return PoaAlignment(
            score=float(scores[end_node][m]), pairs=tuple(pairs), cells_computed=cells
        )

    def _row_vec(
        self,
        node_index: int,
        node: _PoaNode,
        sources: list[int],
        seq_codes: np.ndarray,
        origin: np.ndarray,
        scores: dict[int, "list[float] | np.ndarray"],
        lo: int,
        hi: int,
        m: int,
        row0: float,
        load_blocks: list[np.ndarray],
    ) -> tuple[np.ndarray, list[tuple[int, int]]]:
        """One DP row as whole-row numpy ops, bit-identical to the scalar
        cell loop.

        All scores are integer-valued float64 (or -inf), so the
        arithmetic is exact; the left-gap chain
        ``row[j] = max(base[j], row[j-1] - gap)`` becomes a running
        maximum of ``base[j] + j*gap``; first-max ``argmax`` over the
        candidate rows reproduces the strict-``>`` precedence
        (diag/up per source in order, then left).
        """
        row = np.full(m + 1, _NEG_INF, dtype=np.float64)
        row[0] = row0
        row_trace: list[tuple[int, int]] = [(-2, -2)] * (m + 1)
        if hi < lo:
            return row, row_trace
        gap = float(self.gap)
        width = hi - lo + 1
        j_arr = np.arange(lo, hi + 1, dtype=np.float64)
        sub = np.where(
            seq_codes[lo - 1:hi] == ord(node.base),
            float(self.match), -float(self.mismatch),
        )
        src_arr = np.asarray(sources, dtype=np.int64)
        candidates = np.empty((2 * len(sources), width), dtype=np.float64)
        for s, p in enumerate(sources):
            p_row = np.asarray(origin if p == -1 else scores[p])
            candidates[2 * s] = p_row[lo - 1:hi] + sub
            candidates[2 * s + 1] = p_row[lo:hi + 1] - gap
        base_best = candidates.max(axis=0)
        base_arg = candidates.argmax(axis=0)
        # Left-gap chain via max-plus prefix scan (exact: integer-valued
        # floats; -inf propagates).
        scan = np.empty(width + 1, dtype=np.float64)
        scan[0] = row[lo - 1] + gap * (lo - 1)
        scan[1:] = base_best + gap * j_arr
        np.maximum.accumulate(scan, out=scan)
        row[lo:hi + 1] = scan[1:] - gap * j_arr
        prev_final = scan[:-1] - gap * (j_arr - 1)
        left_wins = (prev_final - gap) > base_best
        dead = np.isneginf(row[lo:hi + 1])
        preds = np.where(left_wins, node_index, src_arr[base_arg >> 1])
        moves = np.where(left_wins, 2, base_arg & 1)
        preds[dead] = -2
        moves[dead] = -2
        row_trace[lo:hi + 1] = zip(preds.tolist(), moves.tolist())
        # The same (source, column) load addresses the per-cell loop
        # emits, j-major then source-minor.
        cols = 4 * np.arange(lo, hi + 1, dtype=np.int64)
        load_blocks.append(np.add.outer(cols, (src_arr + 2) * 4096).ravel())
        return row, row_trace

    def consensus(self) -> str:
        """Heaviest path through the graph (by node weight then edge)."""
        order = self._topological_order()
        best: dict[int, float] = {}
        back: dict[int, int] = {}
        for node_index in order:
            node = self._nodes[node_index]
            incoming = [(best[p], p) for p in node.predecessors if p in best]
            if incoming:
                value, parent = max(incoming)
                best[node_index] = value + node.weight
                back[node_index] = parent
            else:
                best[node_index] = float(node.weight)
        end = max(best, key=lambda n: best[n])
        path = [end]
        while path[-1] in back:
            path.append(back[path[-1]])
        path.reverse()
        return "".join(self._nodes[n].base for n in path)

    # ------------------------------------------------------------------

    def _link(self, source: int, target: int) -> None:
        if target not in self._nodes[source].successors:
            self._nodes[source].successors.append(target)
            self._nodes[target].predecessors.append(source)

    def _topological_order(self) -> list[int]:
        in_degree = [len(node.predecessors) for node in self._nodes]
        ready = [i for i, d in enumerate(in_degree) if d == 0]
        order: list[int] = []
        while ready:
            node_index = ready.pop()
            order.append(node_index)
            for successor in self._nodes[node_index].successors:
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
        if len(order) != len(self._nodes):
            raise AlignmentError("POA graph became cyclic")
        return order

    def _traceback(
        self,
        sequence: str,
        scores: dict[int, list[float]],
        trace: dict[int, list[tuple[int, int]]],
        end_node: int,
        origin: list[float],
    ) -> list[tuple[int | None, int | None]]:
        pairs: list[tuple[int | None, int | None]] = []
        node_index = end_node
        j = len(sequence)
        while node_index != -1 and not (node_index == -1 and j == 0):
            predecessor, move = trace[node_index][j]
            if move == 0:
                pairs.append((node_index, j - 1))
                node_index = predecessor
                j -= 1
            elif move == 1:
                pairs.append((node_index, None))
                node_index = predecessor
            elif move == 2:
                pairs.append((None, j - 1))
                j -= 1
            else:
                break
        while j > 0:
            pairs.append((None, j - 1))
            j -= 1
        pairs.reverse()
        return pairs

    def _fuse(self, sequence: str, alignment: PoaAlignment) -> None:
        """Merge an alignment into the graph, adding nodes for novelties."""
        previous: int | None = None
        for node_index, seq_index in alignment.pairs:
            current: int | None = None
            if node_index is not None and seq_index is not None:
                if self._nodes[node_index].base == sequence[seq_index]:
                    self._nodes[node_index].weight += 1
                    current = node_index
                else:
                    current = self._new_node(sequence[seq_index])
            elif seq_index is not None:
                current = self._new_node(sequence[seq_index])
            # Deletions ((node, None)) consume no sequence base; skip.
            if current is not None:
                if previous is not None:
                    self._link(previous, current)
                previous = current

    def _new_node(self, base: str) -> int:
        self._nodes.append(_PoaNode(base, 1, [], []))
        return len(self._nodes) - 1


def poa_consensus(
    sequences: list[str],
    match: int = 2,
    mismatch: int = 4,
    gap: int = 4,
    band: int | None = None,
    probe: MachineProbe = NULL_PROBE,
) -> tuple[str, int]:
    """Consensus of *sequences* via POA; returns (consensus, cells)."""
    if not sequences:
        raise AlignmentError("poa_consensus needs at least one sequence")
    graph = PoaGraph(match=match, mismatch=mismatch, gap=gap, probe=probe)
    for sequence in sequences:
        graph.add_sequence(sequence, band=band)
    return graph.consensus(), graph.cells_computed


def abpoa_align(
    sequences: list[str],
    band: int = 32,
    probe: MachineProbe = NULL_PROBE,
) -> tuple[str, int]:
    """Adaptive-banded POA consensus (Gao et al.'s abPOA, simplified)."""
    return poa_consensus(sequences, band=band, probe=probe)
