"""Alignment scoring schemes and result types.

Two families are used across the suite (Section 3): *affine-gap* scoring
(Smith–Waterman/GSSW, POA) where opening a gap costs more than extending
it, and *non-affine/edit* scoring (Myers/GBV, WFA/GWFA) where every
difference costs 1 — the accuracy/performance trade the paper highlights
for GraphAligner and minigraph.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AffineScoring:
    """Affine-gap scoring: gap of length L costs gap_open + L*gap_extend.

    Match adds +match; mismatch adds -mismatch.  All penalty fields are
    stored positive.
    """

    match: int = 1
    mismatch: int = 4
    gap_open: int = 6
    gap_extend: int = 1

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise ValueError("match bonus must be positive")
        if min(self.mismatch, self.gap_open, self.gap_extend) < 0:
            raise ValueError("penalties must be non-negative")

    def substitution(self, a: str, b: str) -> int:
        """Score contribution of aligning base *a* to base *b*."""
        return self.match if a == b else -self.mismatch


#: vg's default scoring (1/4/6/1), used by GSSW in vg map.
VG_DEFAULT = AffineScoring(match=1, mismatch=4, gap_open=6, gap_extend=1)


@dataclass(frozen=True)
class CigarOp:
    """One CIGAR run: operation in {M, =, X, I, D} and its length."""

    op: str
    length: int

    def __post_init__(self) -> None:
        if self.op not in "M=XID":
            raise ValueError(f"unknown CIGAR op {self.op!r}")
        if self.length <= 0:
            raise ValueError("CIGAR run length must be positive")


def cigar_string(ops: list[CigarOp]) -> str:
    """Render CIGAR runs as the usual compact string."""
    return "".join(f"{op.length}{op.op}" for op in ops)


@dataclass(frozen=True)
class AlignmentResult:
    """Outcome of a pairwise or sequence-to-graph alignment.

    Attributes:
        score: Alignment score (scheme-dependent; edit distances are
            reported as non-negative distances by their own functions).
        query_end: End position (exclusive) of the aligned query span.
        target_end: End position on the target; for graph alignments this
            is an offset within ``end_node``.
        end_node: Node id the alignment ends in (-1 for linear targets).
        cigar: Optional traceback.
        cells_computed: DP cells evaluated — the work measure used by the
            paper when comparing aligners.
    """

    score: int
    query_end: int = -1
    target_end: int = -1
    end_node: int = -1
    cigar: tuple[CigarOp, ...] = field(default=())
    cells_computed: int = 0

    @property
    def cigar_string(self) -> str:
        return cigar_string(list(self.cigar))
